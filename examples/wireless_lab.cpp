// Wireless laboratory walkthrough: rebuild the paper's §3.2 testbed piece
// by piece and watch an experiment unfold minute by minute.
//
// This example shows the full apparatus API — wireless channel, cross
// traffic, ping feedback, monitor controller, server pool, NTP-corrected
// target clock — and narrates one 30-minute run: channel state, hint
// readings, controller decisions, and the SNTP offsets the target node
// reports along the way.
#include <cstdio>

#include "core/stats.h"
#include "mntp/params.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

using namespace mntp;

int main() {
  // 1. Assemble the testbed. Every knob has a paper-calibrated default;
  //    here we show a few being set explicitly.
  ntp::TestbedConfig config;
  config.seed = 2016;  // IMC 2016
  config.wireless = true;
  config.ntp_correction = true;
  config.traffic.mean_idle = core::Duration::seconds(20);
  config.controller.control_interval = core::Duration::seconds(10);
  ntp::Testbed bed(config);

  // 2. Attach the measurement client: plain SNTP at the 5 s lab cadence.
  ntp::SntpClientPolicy policy;
  policy.poll_interval = core::Duration::seconds(5);
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), policy);

  bed.start();
  sntp.start();

  // 3. Narrate the run.
  const protocol::HintThresholds thresholds;
  std::printf("min | state | tx pwr | RSSI    | noise   | SNR  | gate | "
              "dl-freq | ping loss | offsets seen\n");
  std::size_t seen = 0;
  for (int minute = 1; minute <= 30; ++minute) {
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::minutes(minute));
    const auto hints = bed.channel().observe_hints(bed.sim().now());
    const auto ping = bed.pinger().stats();
    const auto& offsets = sntp.samples();
    core::RunningStats last_minute;
    for (std::size_t i = seen; i < offsets.size(); ++i) {
      last_minute.add(offsets[i].offset.to_millis());
    }
    seen = offsets.size();
    std::printf("%3d | %-5s | %4.0fdBm | %6.1f  | %6.1f  | %4.1f | %-4s | "
                "%6.2fx | %8.0f%% | n=%zu mean %+7.2f ms max %+7.2f\n",
                minute,
                bed.channel().in_bad_state(bed.sim().now()) ? "BAD" : "good",
                bed.channel().tx_power().value(), hints.rssi.value(),
                hints.noise.value(), hints.snr_margin().value(),
                thresholds.favorable(hints) ? "open" : "shut",
                bed.traffic().frequency_scale(), ping.loss_fraction() * 100.0,
                last_minute.count(), last_minute.mean(), last_minute.max());
  }

  // 4. Wrap up.
  const auto all = sntp.offsets_ms();
  const auto s = core::summarize(all);
  std::printf("\n30-minute run summary:\n");
  std::printf("  SNTP offsets: n=%zu mean %+0.2f ms sd %.2f max|.| %.2f\n",
              s.count, s.mean, s.stddev, core::max_abs(all));
  std::printf("  poll failures: %zu of %zu polls\n", sntp.failures(),
              sntp.polls());
  std::printf("  monitor controller: %zu ticks (%zu relieve, %zu pressure), "
              "%zu downloads completed\n",
              bed.controller().ticks(), bed.controller().relieve_count(),
              bed.controller().pressure_count(),
              bed.traffic().downloads_completed());
  std::printf("  NTP kept the system clock at %+0.3f ms from true time\n",
              bed.true_clock_offset_ms());
  return 0;
}
