// Quickstart: synchronize a simulated wireless host with SNTP and with
// MNTP side by side, and print what each protocol reported.
//
// This is the smallest end-to-end use of the library:
//   1. build a Testbed (wireless channel + interference + server pool,
//      NTP-disciplined system clock);
//   2. attach a plain SNTP client and an MNTP client (head-to-head
//      configuration: same 5 s cadence, gating + filtering on);
//   3. run for 20 simulated minutes and compare reported offsets.
#include <cstdio>

#include "core/stats.h"
#include "mntp/mntp_client.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

int main() {
  using namespace mntp;

  ntp::TestbedConfig config;
  config.seed = 1;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);

  // Plain SNTP: poll every 5 s, report offsets, never touch the clock.
  ntp::SntpClientPolicy sntp_policy;
  sntp_policy.poll_interval = core::Duration::seconds(5);
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), sntp_policy);

  // MNTP in the head-to-head configuration of §5.1.
  protocol::MntpClient mntp_client(bed.sim(), bed.target_clock(), bed.pool(),
                               bed.channel(), protocol::head_to_head_params(),
                               bed.fork_rng());

  bed.start();
  sntp.start();
  mntp_client.start();
  bed.sim().run_until(core::TimePoint::epoch() + core::Duration::minutes(20));

  const auto sntp_offsets = sntp.offsets_ms();
  const auto mntp_offsets = mntp_client.engine().accepted_offsets_ms();

  const core::Summary s1 = core::summarize(sntp_offsets);
  const core::Summary s2 = core::summarize(mntp_offsets);
  std::printf("SNTP reported offsets (ms): %s\n", s1.to_string().c_str());
  std::printf("MNTP reported offsets (ms): %s\n", s2.to_string().c_str());
  std::printf("MNTP deferrals: %zu, filter rejections: %zu\n",
              mntp_client.engine().deferrals(),
              mntp_client.engine().rejected_offsets_ms().size());
  std::printf("max |offset|: SNTP %.1f ms vs MNTP %.1f ms\n",
              core::max_abs(sntp_offsets), core::max_abs(mntp_offsets));
  std::printf("true clock offset now: %.3f ms\n", bed.true_clock_offset_ms());
  return 0;
}
