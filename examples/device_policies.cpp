// Vendor sync-policy comparison: how far do commodity mobile clocks
// actually wander? (§2's motivation, quantified.)
//
// Runs the same phone-grade oscillator on the same 4G network for three
// days under four regimes — Android defaults (daily SNTP, 5 s update
// threshold, NITZ), Android without NITZ, Windows Mobile (weekly, no
// retries), and MNTP-grade 5 s lab polling — and prints the resulting
// true clock error trajectories.
#include <cstdio>

#include "core/stats.h"
#include "device/device_sim.h"

using namespace mntp;

namespace {

void report(const device::DeviceSimResult& r) {
  std::printf("\n-- %s --\n", r.policy_name.c_str());
  std::printf("  polls %zu (failures %zu), clock updates %zu, NITZ fixes %zu\n",
              r.sntp_polls, r.sntp_failures, r.clock_updates, r.nitz_fixes);
  std::printf("  |clock error|: mean %.1f ms, max %.1f ms\n",
              r.mean_abs_offset_ms, r.max_abs_offset_ms);
  // Sparse trajectory print-out: every ~12 h.
  std::printf("  trajectory (hours: error ms):");
  for (std::size_t i = 0; i < r.offset_series.size(); i += 24) {
    std::printf(" %0.0fh:%+0.0f", r.offset_series[i].first / 3600.0,
                r.offset_series[i].second);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto span = core::Duration::hours(72);

  device::DeviceSimConfig android;
  android.seed = 99;
  android.policy = device::android_policy();
  report(device::run_device_simulation(android, span));

  device::DeviceSimConfig android_no_nitz = android;
  android_no_nitz.policy.name = "android (NITZ unavailable)";
  android_no_nitz.policy.use_nitz = false;
  report(device::run_device_simulation(android_no_nitz, span));

  device::DeviceSimConfig windows = android;
  windows.policy = device::windows_mobile_policy();
  report(device::run_device_simulation(windows, span));

  device::DeviceSimConfig lab = android;
  lab.policy = device::lab_policy();
  lab.policy.name = "lab 5s polling (reporting only)";
  report(device::run_device_simulation(lab, span));

  std::printf("\nTakeaway: vendor policies leave commodity devices hundreds of\n"
              "milliseconds to seconds off true time — the gap MNTP closes\n"
              "without resorting to continuous polling.\n");
  return 0;
}
