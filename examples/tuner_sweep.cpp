// MNTP tuner workflow: capture a trace, persist it as CSV, reload it, and
// grid-search the protocol parameters offline (§5.3).
//
// This is the workflow a deployment engineer would follow: log offsets +
// hints on the target device for a few hours, then replay Algorithm 1
// offline under candidate parameter settings and pick a configuration on
// the accuracy to request-budget frontier.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "mntp/trace.h"
#include "mntp/tuner.h"
#include "ntp/testbed.h"

using namespace mntp;

int main() {
  // 1. Capture: two hours of offsets from 3 sources + hints, every 5 s.
  ntp::TestbedConfig config;
  config.seed = 77;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  protocol::tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(),
                                 bed.channel(), {}, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(2));
  logger.stop();
  std::printf("captured %zu trace records (%.0f min)\n", logger.trace().size(),
              logger.trace().span_s() / 60.0);

  // 2. Persist and reload the trace (the CSV is the interchange format
  //    between the on-device logger and the offline tuner).
  const std::string path = "/tmp/mntp_tuner_trace.csv";
  {
    std::ofstream out(path);
    out << logger.trace().to_csv();
  }
  std::stringstream buffer;
  {
    std::ifstream in(path);
    buffer << in.rdbuf();
  }
  const auto reloaded = protocol::Trace::from_csv(buffer.str());
  if (!reloaded.ok()) {
    std::printf("trace reload failed: %s\n", reloaded.error().message.c_str());
    return 1;
  }
  std::printf("round-tripped trace through %s (%zu records)\n", path.c_str(),
              reloaded.value().size());

  // 3. Search: sweep the four Algorithm 1 parameters.
  protocol::tuner::SearchSpace space;
  space.warmup_periods = {core::Duration::minutes(15), core::Duration::minutes(30),
                          core::Duration::minutes(60)};
  space.warmup_wait_times = {core::Duration::seconds(15),
                             core::Duration::seconds(30)};
  space.regular_wait_times = {core::Duration::minutes(2),
                              core::Duration::minutes(5),
                              core::Duration::minutes(15)};
  space.reset_periods = {core::Duration::hours(2), core::Duration::hours(4)};
  auto entries = protocol::tuner::search(reloaded.value(), space);

  // 4. Report the accuracy/requests frontier.
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.rmse_ms < b.rmse_ms;
  });
  std::printf("\n%zu configurations, best RMSE first:\n", entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1, entries[i].to_string().c_str());
  }

  // Pareto frontier: configurations not dominated in (rmse, requests).
  std::printf("\nPareto-efficient configurations (no cheaper config is more "
              "accurate):\n");
  std::size_t best_requests = SIZE_MAX;
  for (const auto& e : entries) {  // already sorted by RMSE
    if (e.requests < best_requests) {
      best_requests = e.requests;
      std::printf("  * %s\n", e.to_string().c_str());
    }
  }
  return 0;
}
