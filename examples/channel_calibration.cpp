// Channel calibration walkthrough: prints the raw behaviour of every
// substrate so a user can sanity-check (or re-tune) the simulation
// against the paper's published numbers before running experiments.
//
//   1. wired NTP discipline convergence (the "NTP clock correction"
//      baseline must hold the clock within a few ms);
//   2. wireless channel dynamics: good/bad occupancy, hint statistics,
//      gate pass rate under the MNTP thresholds;
//   3. SNTP offset statistics over wired vs wireless paths;
//   4. 4G cellular SNTP offsets (Fig 5 substrate).
#include <cstdio>

#include "core/stats.h"
#include "mntp/params.h"
#include "net/cellular.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"

using namespace mntp;

namespace {

void wired_discipline() {
  ntp::TestbedConfig config;
  config.seed = 11;
  config.wireless = false;
  config.ntp_correction = true;
  config.monitor_active = false;
  ntp::Testbed bed(config);
  bed.start();

  core::RunningStats tail_offset;
  for (int minute = 1; minute <= 60; ++minute) {
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::minutes(minute));
    const double off = bed.true_clock_offset_ms();
    if (minute > 20) tail_offset.add(off);
    if (minute % 10 == 0) {
      std::printf("  t=%2dmin  true clock offset %+8.3f ms  (freq comp %+6.2f ppm, "
                  "steps=%zu, last combined %+7.3f ms, survivors=%zu)\n",
                  minute, off, bed.target_clock().frequency_compensation_ppm(),
                  bed.ntp_client()->steps(),
                  bed.ntp_client()->last_combined_offset().to_millis(),
                  bed.ntp_client()->last_survivor_count());
    }
  }
  std::printf("  steady state (t>20min): mean %+0.3f ms, sd %.3f ms, "
              "max |.| %.3f ms\n",
              tail_offset.mean(), tail_offset.stddev(),
              std::max(std::abs(tail_offset.min()), std::abs(tail_offset.max())));
}

void channel_dynamics() {
  ntp::TestbedConfig config;
  config.seed = 12;
  config.wireless = true;
  config.ntp_correction = false;
  ntp::Testbed bed(config);
  bed.start();

  const protocol::HintThresholds thresholds;
  std::size_t samples = 0, bad = 0, favorable = 0;
  core::RunningStats rssi, noise, snr;
  for (int i = 0; i < 3600; ++i) {
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::seconds(i + 1));
    const auto hints = bed.channel().observe_hints(bed.sim().now());
    ++samples;
    if (bed.channel().in_bad_state(bed.sim().now())) ++bad;
    if (thresholds.favorable(hints)) ++favorable;
    rssi.add(hints.rssi.value());
    noise.add(hints.noise.value());
    snr.add(hints.snr_margin().value());
  }
  std::printf("  bad-state occupancy: %.1f%%   gate pass rate: %.1f%%\n",
              100.0 * static_cast<double>(bad) / static_cast<double>(samples),
              100.0 * static_cast<double>(favorable) / static_cast<double>(samples));
  std::printf("  RSSI  mean %6.1f dBm sd %4.1f   noise mean %6.1f dBm sd %4.1f   "
              "SNR mean %5.1f dB\n",
              rssi.mean(), rssi.stddev(), noise.mean(), noise.stddev(), snr.mean());
  std::printf("  monitor: %zu control ticks (%zu relieve / %zu pressure), "
              "%zu downloads\n",
              bed.controller().ticks(), bed.controller().relieve_count(),
              bed.controller().pressure_count(), bed.traffic().downloads_completed());
}

void sntp_offsets(bool wireless, bool corrected) {
  ntp::TestbedConfig config;
  config.seed = 13;
  config.wireless = wireless;
  config.ntp_correction = corrected;
  ntp::Testbed bed(config);

  ntp::SntpClientPolicy policy;
  policy.poll_interval = core::Duration::seconds(5);
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), policy);
  bed.start();
  sntp.start();
  bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(1));

  const auto offsets = sntp.offsets_ms();
  const core::Summary s = core::summarize(offsets);
  std::printf("  %-8s %-12s mean %+8.2f ms  sd %7.2f  max|.| %8.2f  "
              "(n=%zu, failures=%zu)\n",
              wireless ? "wireless" : "wired",
              corrected ? "corrected" : "free-run", s.mean, s.stddev,
              core::max_abs(offsets), offsets.size(), sntp.failures());
  std::printf("           true clock offset at end: %+.3f ms\n",
              bed.true_clock_offset_ms());
}

void cellular_offsets() {
  core::Rng rng(14);
  sim::Simulation sim;
  sim::DisciplinedClock clock(
      sim::OscillatorParams{.constant_skew_ppm = 0.0, .read_noise_s = 30e-6},
      rng.fork());
  net::CellularNetwork cellular(net::CellularParams{}, rng.fork());
  ntp::ServerPool pool(ntp::PoolParams{}, rng.fork());
  ntp::SntpClientPolicy policy;
  policy.poll_interval = core::Duration::seconds(5);
  ntp::SntpClient sntp(sim, clock, pool, &cellular.uplink(),
                       &cellular.downlink(), policy);
  sntp.start();
  sim.run_until(core::TimePoint::epoch() + core::Duration::hours(3));
  const auto offsets = sntp.offsets_ms();
  const core::Summary s = core::summarize(offsets);
  std::printf("  4G SNTP offsets: mean %+8.2f ms  sd %7.2f  max %8.2f  (n=%zu)\n",
              s.mean, s.stddev, s.max, offsets.size());
}

}  // namespace

int main() {
  std::printf("[1] wired NTP discipline convergence\n");
  wired_discipline();
  std::printf("\n[2] wireless channel dynamics (1 h)\n");
  channel_dynamics();
  std::printf("\n[3] SNTP offset statistics (1 h, 5 s polls)\n");
  sntp_offsets(/*wireless=*/false, /*corrected=*/true);
  sntp_offsets(/*wireless=*/false, /*corrected=*/false);
  sntp_offsets(/*wireless=*/true, /*corrected=*/true);
  sntp_offsets(/*wireless=*/true, /*corrected=*/false);
  std::printf("\n[4] cellular (4G) SNTP offsets (3 h)\n");
  cellular_offsets();
  return 0;
}
