// Full MNTP deployment: everything the library offers, together.
//
// A phone-grade device on a harsh wireless channel runs MNTP end to end
// for 12 hours: warm-up with multi-source false-ticker rejection, drift
// estimation and frequency correction, regular-phase filtering with
// corrections applied to the system clock, the self-tuning controller
// adapting the polling cadence, the unstable-channel fallback armed, and
// the radio energy bill accounted. This is the configuration a real
// mobile OS integration would ship.
#include <cstdio>

#include "core/stats.h"
#include "device/energy.h"
#include "mntp/mntp_client.h"
#include "mntp/self_tuning.h"
#include "ntp/testbed.h"

using namespace mntp;

int main() {
  ntp::TestbedConfig config;
  config.seed = 4242;
  config.wireless = true;
  config.ntp_correction = false;  // MNTP owns the clock
  config.client_clock.constant_skew_ppm = 14.0;  // cheap phone crystal
  config.client_clock.wander_ppm_per_sqrt_s = 0.04;
  config.client_clock.temp_amplitude_ppm = 2.5;
  config.client_clock.initial_offset_s = 0.35;  // as booted
  config.pool.false_ticker_count = 1;           // one bad pool member
  ntp::Testbed bed(config);

  protocol::MntpParams params;
  params.warmup_period = core::Duration::minutes(20);
  params.warmup_wait_time = core::Duration::seconds(15);
  params.regular_wait_time = core::Duration::minutes(1);
  params.reset_period = core::Duration::hours(6);
  params.apply_corrections_to_clock = true;
  params.max_deferral = core::Duration::minutes(10);  // never fully starve

  protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                              bed.channel(), params, bed.fork_rng());
  protocol::SelfTunerParams tuning;
  tuning.adapt_interval = core::Duration::minutes(15);
  tuning.min_regular_wait = core::Duration::seconds(30);
  tuning.max_regular_wait = core::Duration::minutes(10);

  bed.start();
  client.start();
  protocol::SelfTuner tuner(bed.sim(), client, tuning);
  tuner.start();

  std::printf("hour | clock err (ms) | phase   | wait   | requests | "
              "deferrals | forced\n");
  std::vector<double> errors_ms;
  for (int hour = 1; hour <= 12; ++hour) {
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(hour));
    const double err = bed.true_clock_offset_ms();
    errors_ms.push_back(std::abs(err));
    std::printf("%4d | %+13.2f | %-7s | %5.0fs | %8zu | %9zu | %zu\n", hour,
                err,
                client.engine().phase() == protocol::Phase::kWarmup ? "warmup"
                                                                    : "regular",
                client.engine().params().regular_wait_time.to_seconds(),
                client.requests_sent(), client.engine().deferrals(),
                client.forced_emissions());
  }

  // Energy bill for the whole half-day.
  device::EnergyAccountant energy;
  for (const auto& h : client.hint_log()) {
    if (h.emitted) energy.on_exchange(h.hints.when, 152);
  }
  const double joules = energy.total_mj(bed.sim().now()) / 1e3;

  const auto err_summary = core::summarize(errors_ms);
  std::printf("\n12-hour deployment summary:\n");
  std::printf("  boot error 350 ms; |clock error| after warm-up: mean %.1f ms, "
              "max %.1f ms\n",
              err_summary.mean, err_summary.max);
  std::printf("  requests %zu, filter rejections %zu, tuner adjustments %zu "
              "(current wait %.0f s)\n",
              client.requests_sent(), client.engine().rejected_offsets_ms().size(),
              tuner.speedups() + tuner.backoffs(),
              tuner.current_wait().to_seconds());
  if (const auto drift = client.engine().drift_s_per_s()) {
    std::printf("  estimated residual drift: %+.2f ppm\n", *drift * 1e6);
  }
  std::printf("  radio energy: %.0f J (%.1f min radio-on) — vs ~%.0f J for\n"
              "  16 s full-NTP polling over the same half day\n",
              joules, energy.radio_on_time(bed.sim().now()).to_seconds() / 60.0,
              (12.0 * 3600.0 / 16.0) * 0.85 /* ~per-round J, promo+tail */);
  return 0;
}
