// PTP demo: synchronize a LAN slave to a grandmaster with IEEE 1588
// two-step exchanges, and watch the servo converge from a cold start.
//
// Shows the third protocol family of the paper's background (§2) working
// end to end: Sync/Follow_Up/Delay_Req/Delay_Resp on the wire, the PI
// servo stepping then slewing, and the difference hardware-grade
// timestamping makes.
#include <cstdio>

#include "core/stats.h"
#include "net/wired_link.h"
#include "ptp/ptp_nodes.h"
#include "sim/simulation.h"

using namespace mntp;

namespace {

void run(const char* label, double timestamp_noise_s) {
  core::Rng rng(90);
  sim::Simulation sim;
  // Slave boots 80 ms off with a 25 ppm crystal.
  sim::DisciplinedClock clock(
      sim::OscillatorParams{.initial_offset_s = 0.08, .constant_skew_ppm = 25.0},
      rng.fork());
  net::WiredLink m2s(net::WiredLinkParams::lan(), rng.fork());
  net::WiredLink s2m(net::WiredLinkParams::lan(), rng.fork());
  ptp::PtpMaster master(
      sim, ptp::PtpMasterParams{.timestamp_noise_s = timestamp_noise_s},
      rng.fork());
  ptp::PtpSlave slave(
      sim, clock, ptp::PtpSlaveParams{.timestamp_noise_s = timestamp_noise_s, .servo = {}},
      rng.fork());
  master.attach(slave, net::LinkPath({&m2s}), net::LinkPath({&s2m}));
  master.start();

  std::printf("\n-- %s --\n", label);
  std::printf("  t      | slave clock error | exchanges | servo freq\n");
  for (double t : {1.0, 5.0, 15.0, 60.0, 300.0, 900.0}) {
    sim.run_until(core::TimePoint::epoch() + core::Duration::from_seconds(t));
    const double err = clock.offset_at(sim.now());
    std::printf("  %5.0fs | %+13.3f us | %9zu | %+7.2f ppm\n", t, err * 1e6,
                slave.exchanges_completed(), slave.servo().frequency_ppm());
  }

  // Steady state over the next 5 minutes.
  core::RunningStats steady;
  for (int i = 0; i < 300; ++i) {
    sim.run_until(core::TimePoint::epoch() + core::Duration::seconds(900 + i));
    steady.add(std::abs(clock.offset_at(sim.now())) * 1e6);
  }
  std::printf("  steady state |error|: mean %.1f us, max %.1f us "
              "(servo steps: %zu)\n",
              steady.mean(), steady.max(), slave.servo().steps());
}

}  // namespace

int main() {
  std::printf("PTP two-step synchronization on a LAN (1 Hz Sync)\n");
  run("hardware timestamping (100 ns capture jitter)", 100e-9);
  run("software timestamping (50 us capture jitter)", 50e-6);
  std::printf("\nCompare with build/bench/ext_protocol_family for the full\n"
              "PTP vs NTP vs SNTP accuracy hierarchy.\n");
  return 0;
}
