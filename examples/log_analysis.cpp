// NTP server log analysis walkthrough (§3.1): generate a day of logs for
// one server, then run each stage of the measurement pipeline the paper
// describes — protocol classification from raw packets, hostname-based
// provider classification, synchronization-state filtering, and min-OWD
// extraction — printing what each stage sees.
#include <cstdio>

#include "core/stats.h"
#include "logs/analyze.h"
#include "logs/classify.h"
#include "logs/generate.h"

using namespace mntp;

int main() {
  // Generate the SU1 log at 1:200 scale (~106 clients).
  logs::LogGenerator generator({.scale = 1.0 / 200.0}, core::Rng(4));
  const logs::ServerLog log = generator.generate(14);  // SU1
  std::printf("generated log for %s: %zu clients, %llu requests\n",
              std::string(log.spec.id).c_str(), log.clients.size(),
              static_cast<unsigned long long>(log.total_requests()));

  // Stage 1: protocol classification straight from the captured packets.
  std::size_t sntp = 0, ntp_full = 0, unparseable = 0;
  for (const auto& c : log.clients) {
    const auto packet = ntp::NtpPacket::parse(c.request_wire);
    if (!packet.ok()) {
      ++unparseable;
      continue;
    }
    if (logs::classify_protocol(packet.value()) == logs::Protocol::kSntp) {
      ++sntp;
    } else {
      ++ntp_full;
    }
  }
  std::printf("\nstage 1 - protocol from wire capture: %zu SNTP, %zu NTP, "
              "%zu unparseable\n",
              sntp, ntp_full, unparseable);

  // Stage 2: provider classification from hostnames.
  std::size_t classified = 0, unclassified = 0;
  std::size_t per_category[4] = {0, 0, 0, 0};
  for (const auto& c : log.clients) {
    if (const auto cat = logs::category_from_hostname(c.hostname)) {
      ++classified;
      ++per_category[static_cast<std::size_t>(*cat)];
    } else {
      ++unclassified;
    }
  }
  std::printf("stage 2 - hostname classification: %zu classified "
              "(cloud %zu / isp %zu / broadband %zu / mobile %zu), %zu not\n",
              classified, per_category[0], per_category[1], per_category[2],
              per_category[3], unclassified);

  // Stage 3: synchronization-state filtering + min-OWD extraction.
  std::size_t invalid_probes = 0, valid_probes = 0;
  for (const auto& c : log.clients) {
    for (float owd : c.owd_samples_ms) {
      (owd < 0 ? invalid_probes : valid_probes) += 1;
    }
  }
  std::printf("stage 3 - OWD validity filter: %zu valid probes kept, "
              "%zu unsynchronized probes discarded\n",
              valid_probes, invalid_probes);

  // Stage 4: the per-provider analysis (Figure 1 material).
  const auto stats = logs::LogAnalyzer::provider_owd_stats(log, 3);
  std::printf("\nstage 4 - per-provider min-OWD at %s:\n",
              std::string(log.spec.id).c_str());
  for (const auto& ps : stats) {
    std::printf("  %-6s %-10s clients %3zu  median %5.0f ms  IQR [%4.0f, %4.0f]"
                "  SNTP %.0f%%\n",
                ps.provider_name.c_str(),
                std::string(category_name(ps.category)).c_str(), ps.clients,
                ps.min_owd_ms.median, ps.min_owd_ms.p25, ps.min_owd_ms.p75,
                ps.sntp_share * 100.0);
  }

  // Table-1-style roll-up.
  const auto server_stats = logs::LogAnalyzer::server_stats(log);
  std::printf("\nroll-up: %s stratum %u, %zu clients, %llu measurements, "
              "%.1f%% SNTP\n",
              server_stats.server_id.c_str(), server_stats.stratum,
              server_stats.unique_clients,
              static_cast<unsigned long long>(server_stats.total_measurements),
              server_stats.sntp_share() * 100.0);
  return 0;
}
