#include "sim/clock_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mntp::sim {

OscillatorModel::OscillatorModel(OscillatorParams params, core::Rng rng)
    : params_(params), rng_(std::move(rng)), offset_s_(params.initial_offset_s) {
  if (params_.integration_step <= core::Duration::zero()) {
    throw std::invalid_argument("OscillatorModel: integration_step must be > 0");
  }
  last_temp_ppm_ = temp_skew_ppm(core::TimePoint::epoch());
}

double OscillatorModel::temp_skew_ppm(core::TimePoint t) const {
  if (params_.temp_amplitude_ppm == 0.0) return 0.0;
  const double phase = 2.0 * std::numbers::pi * t.to_seconds() /
                           params_.temp_period.to_seconds() +
                       params_.temp_phase_rad;
  return params_.temp_amplitude_ppm * std::sin(phase);
}

void OscillatorModel::advance_to(core::TimePoint t) {
  if (t < last_) {
    throw std::logic_error("OscillatorModel: time moved backwards");
  }
  const double step_s = params_.integration_step.to_seconds();
  while (last_ < t) {
    const core::TimePoint next = std::min(t, last_ + params_.integration_step);
    const double dt = (next - last_).to_seconds();
    // Trapezoidal integration of the frequency error over [last_, next].
    const double temp_now = temp_skew_ppm(next);
    const double freq_ppm =
        params_.constant_skew_ppm + wander_ppm_ + 0.5 * (last_temp_ppm_ + temp_now);
    offset_s_ += freq_ppm * 1e-6 * dt;
    // Random-walk update of the variable skew, full steps only so the
    // process statistics do not depend on query granularity.
    if (params_.wander_ppm_per_sqrt_s > 0.0 && dt >= step_s * 0.999) {
      wander_ppm_ += rng_.normal(0.0, params_.wander_ppm_per_sqrt_s * std::sqrt(dt));
      wander_ppm_ = std::clamp(wander_ppm_, -params_.wander_clamp_ppm,
                               params_.wander_clamp_ppm);
    }
    last_temp_ppm_ = temp_now;
    last_ = next;
  }
}

double OscillatorModel::offset_at(core::TimePoint t) {
  advance_to(t);
  return offset_s_;
}

double OscillatorModel::read_offset(core::TimePoint t) {
  const double base = offset_at(t);
  if (params_.read_noise_s <= 0.0) return base;
  return base + rng_.normal(0.0, params_.read_noise_s);
}

core::TimePoint OscillatorModel::local_time(core::TimePoint t) {
  return t + core::Duration::from_seconds(offset_at(t));
}

double OscillatorModel::current_skew_ppm() const {
  return params_.constant_skew_ppm + wander_ppm_ + last_temp_ppm_;
}

double DisciplinedClock::offset_at(core::TimePoint t) {
  integrate_comp(t);
  return osc_.offset_at(t) + corr_s_;
}

double DisciplinedClock::read_offset(core::TimePoint t) {
  integrate_comp(t);
  return osc_.read_offset(t) + corr_s_;
}

core::TimePoint DisciplinedClock::local_time(core::TimePoint t) {
  return t + core::Duration::from_seconds(offset_at(t));
}

void DisciplinedClock::step(core::Duration delta) {
  corr_s_ += delta.to_seconds();
  total_stepped_ += delta.abs();
}

void DisciplinedClock::set_frequency_compensation(core::TimePoint t, double ppm) {
  integrate_comp(t);
  comp_ppm_ = ppm;
}

void DisciplinedClock::integrate_comp(core::TimePoint t) {
  if (!comp_started_) {
    comp_since_ = t;
    comp_started_ = true;
    return;
  }
  if (t > comp_since_) {
    corr_s_ += comp_ppm_ * 1e-6 * (t - comp_since_).to_seconds();
    comp_since_ = t;
  }
}

}  // namespace mntp::sim
