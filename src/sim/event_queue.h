// Discrete-event queue.
//
// A binary heap of (time, sequence) keyed events. Ties at the same instant
// fire in scheduling order (FIFO), which keeps simulations deterministic
// and makes cause-before-effect reasoning valid within a timestep.
// Cancellation is O(1) via a shared tombstone flag; cancelled entries are
// dropped lazily when they surface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "core/time.h"

namespace mntp::sim {

/// Handle to a scheduled event, usable to cancel it before it fires.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event; a no-op if it already fired or was cancelled.
  void cancel() {
    if (auto p = alive_.lock()) *p = false;
  }

  /// True while the event is still scheduled to fire.
  [[nodiscard]] bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::weak_ptr<bool> alive_;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when`. Returns a cancel handle.
  EventHandle schedule(core::TimePoint when, Action action);

  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event; TimePoint::max() when empty.
  [[nodiscard]] core::TimePoint next_time() const;

  /// Pop and run the earliest live event; returns its time. Requires
  /// !empty().
  core::TimePoint run_next();

  /// Number of scheduled events not yet fired, INCLUDING cancelled
  /// entries that have not yet been purged — an upper bound on live
  /// events, never an undercount. Purging is lazy but not tied to
  /// run_next() alone: every accessor that inspects the heap head
  /// (empty(), next_time(), run_next()) drops cancelled entries that
  /// have reached the head, so a cancel followed by any peek may lower
  /// size() by more than the peek itself consumed. The bound is exact
  /// (size() == live events) whenever no cancelled entry is buried
  /// behind a live one.
  [[nodiscard]] std::size_t size() const { return live_; }

  void clear();

 private:
  struct Entry {
    core::TimePoint when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  mutable std::size_t live_ = 0;
};

}  // namespace mntp::sim
