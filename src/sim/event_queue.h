// Discrete-event queue — allocation-free on the schedule/fire hot path.
//
// Three pieces replace the old shared_ptr-flag + std::function +
// std::priority_queue design (two heap allocations per schedule() and a
// const_cast move-out of top()):
//
//   * A slab of slot records recycled through a free list. Each slot
//     holds the event's action and a generation counter; `EventHandle`
//     is a POD `{queue, slot, generation}` triple, so cancelling or
//     querying a handle whose slot was recycled is safely inert — the
//     generation no longer matches. No per-event control block.
//   * `core::FixedFunction<void(), 48>` stores the action: captures up
//     to 48 bytes live inline in the slot (zero allocations); larger
//     captures fall back to one heap allocation and bump the global
//     `core::fixed_function_heap_fallbacks()` counter.
//   * An explicit 4-ary min-heap over POD entries `(time, seq, slot,
//     generation)`. Pop moves entries out of a plain vector — no
//     const_cast — and the 4-ary layout halves the sift-down depth of a
//     binary heap on the deep queues the churn bench builds.
//
// Ties at the same instant fire in scheduling order (FIFO via `seq`),
// which keeps simulations deterministic and makes cause-before-effect
// reasoning valid within a timestep. Cancellation is O(1): the slot is
// released immediately and its heap entry becomes a tombstone (the
// generations disagree), dropped lazily when it surfaces at the head —
// or eagerly, in bulk, when tombstones exceed the bounded-slack
// compaction rule (more than max(64, size()/2) dead entries triggers a
// filter + re-heapify so a cancel-heavy workload cannot grow the heap
// without bound).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/fixed_function.h"
#include "core/time.h"

namespace mntp::sim {

class EventQueue;

/// Handle to a scheduled event, usable to cancel it before it fires.
/// Handles must not outlive the queue that issued them (they hold a
/// plain pointer to it); within the queue's lifetime a stale handle —
/// fired, cancelled, or its slot since recycled — is safely inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event; a no-op if it already fired or was cancelled.
  void cancel();

  /// True while the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  /// Inline capture budget per event; sized so every scheduling site on
  /// the simulator's hot paths (this-pointer plus a few words) stays
  /// allocation-free.
  using Action = core::FixedFunction<void(), 48>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `action` at absolute time `when`. Returns a cancel handle.
  /// The callable is constructed directly in its slab slot (no temporary
  /// Action, no relocation) — together with the inline capture buffer
  /// this makes schedule() allocation-free for captures <= 48 bytes.
  template <typename F>
  EventHandle schedule(core::TimePoint when, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.action.emplace(std::forward<F>(action));
    heap_.push_back(HeapEntry{when.ns(), next_seq_++, slot, s.generation});
    heap_sift_up(heap_.size() - 1);
    return EventHandle{this, slot, s.generation};
  }

  [[nodiscard]] bool empty() const {
    drop_dead();
    return heap_.empty();
  }

  /// Time of the earliest live event; TimePoint::max() when empty.
  [[nodiscard]] core::TimePoint next_time() const {
    drop_dead();
    return heap_.empty() ? core::TimePoint::max()
                         : core::TimePoint::from_ns(heap_[0].when_ns);
  }

  /// Pop and run the earliest live event; returns its time. Requires
  /// !empty().
  core::TimePoint run_next();

  /// Number of scheduled events not yet fired, INCLUDING cancelled
  /// entries that have not yet been purged — an upper bound on live
  /// events, never an undercount. Purging is lazy but not tied to
  /// run_next() alone: every accessor that inspects the heap head
  /// (empty(), next_time(), run_next()) drops cancelled entries that
  /// have reached the head, so a cancel followed by any peek may lower
  /// size() by more than the peek itself consumed. The bound is exact
  /// (size() == live events) whenever no cancelled entry is buried
  /// behind a live one.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Cancelled entries still occupying heap space (awaiting lazy purge
  /// or compaction); size() - dead_entries() is the live-event count.
  [[nodiscard]] std::size_t dead_entries() const { return dead_; }

  void clear();

 private:
  friend class EventHandle;

  /// Heap entries are POD: the action lives in the slab, so sift moves
  /// are trivially-copyable 24-byte shuffles.
  struct HeapEntry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  struct Slot {
    Action action;
    /// Bumped on every release (fire/cancel/clear); a handle or heap
    /// entry whose generation disagrees is stale. 32 bits wrap after
    /// 4G reuses of one slot — far beyond any simulation here.
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Compaction slack floor: tombstones are tolerated until they exceed
  /// max(kCompactionFloor, size()/2).
  static constexpr std::size_t kCompactionFloor = 64;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.seq < b.seq;
  }

  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    return slots_[e.slot].generation == e.generation;
  }

  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      slots_[slot].next_free = kNilSlot;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.action.reset();
    ++s.generation;  // invalidates every outstanding handle + heap entry
    s.next_free = free_head_;
    free_head_ = slot;
  }

  void cancel_slot(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] bool slot_pending(std::uint32_t slot,
                                  std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  // The heap mutations below are physically non-const but logically
  // const: purging tombstones never changes the set of live events.
  void heap_sift_up(std::size_t i) const {
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void heap_sift_down(std::size_t i) const {
    const std::size_t n = heap_.size();
    const HeapEntry e = heap_[i];
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }
  void heap_pop_root() const {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heap_sift_down(0);
  }
  /// Drop tombstones that have surfaced at the heap head.
  void drop_dead() const {
    while (!heap_.empty() && !entry_live(heap_[0])) {
      heap_pop_root();
      --dead_;
    }
  }
  /// Remove ALL tombstones and re-heapify (the compaction rule).
  void compact();

  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 0;
  /// Tombstoned entries currently in heap_.
  mutable std::size_t dead_ = 0;
};

inline void EventHandle::cancel() {
  if (queue_ != nullptr) queue_->cancel_slot(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_pending(slot_, generation_);
}

}  // namespace mntp::sim
