// Local clock models.
//
// Each simulated host owns an oscillator whose time drifts away from true
// time. Following the measurement literature the paper builds on (Paxson's
// calibration work [45], Murdoch's skew study [42]), the model is a
// constant frequency skew — which dominates in practice — plus a bounded
// random-walk variable skew, a diurnal temperature-driven frequency term
// (the paper observes wired drift is "dependent on the temperature of the
// vendor-specific oscillator"), and white phase noise on each reading.
//
// `DisciplinedClock` layers correction state (phase steps and frequency
// compensation, the two knobs a clock discipline such as ntpd's PLL has)
// on top of the free-running oscillator.
#pragma once

#include <stdexcept>

#include "core/rng.h"
#include "core/time.h"

namespace mntp::sim {

/// Free-running oscillator parameters. Signs follow the convention
/// offset = local - true: a positive skew means the local clock runs fast.
struct OscillatorParams {
  /// Phase offset at t = 0, in seconds.
  double initial_offset_s = 0.0;
  /// Constant frequency error in parts per million. Commodity crystals
  /// are typically within +-50 ppm; the paper's 4-hour free-run (Fig 12)
  /// shows a drift trend of roughly -20 ms/hour ~ -5.5 ppm.
  double constant_skew_ppm = 0.0;
  /// Random-walk frequency modulation: the per-sqrt(second) standard
  /// deviation of the wander increment, in ppm.
  double wander_ppm_per_sqrt_s = 0.0;
  /// Hard bound on |variable skew| so wander cannot run away over long
  /// simulations (physically, temperature-compensated bounds).
  double wander_clamp_ppm = 10.0;
  /// Peak amplitude of the diurnal temperature-induced frequency swing.
  double temp_amplitude_ppm = 0.0;
  /// Period of the temperature cycle (default 24 h).
  core::Duration temp_period = core::Duration::hours(24);
  /// Phase of the temperature cycle at t = 0, radians.
  double temp_phase_rad = 0.0;
  /// White phase noise added to each *reading*, seconds (stddev). Does
  /// not integrate into the clock state.
  double read_noise_s = 0.0;
  /// Integration step for the wander process.
  core::Duration integration_step = core::Duration::milliseconds(500);
};

/// A free-running local clock. Queries must be issued with non-decreasing
/// true time (the simulation only moves forward).
class OscillatorModel {
 public:
  OscillatorModel(OscillatorParams params, core::Rng rng);

  /// True offset (local - true) at true time t, in seconds, excluding
  /// read noise. Advances internal wander state; t must be >= the last
  /// queried time.
  [[nodiscard]] double offset_at(core::TimePoint t);

  /// A clock *reading* at true time t: offset plus white read noise.
  [[nodiscard]] double read_offset(core::TimePoint t);

  /// Local time corresponding to true time t (no read noise).
  [[nodiscard]] core::TimePoint local_time(core::TimePoint t);

  /// Current total frequency error (constant + wander + temperature), ppm.
  [[nodiscard]] double current_skew_ppm() const;

  [[nodiscard]] const OscillatorParams& params() const { return params_; }

 private:
  void advance_to(core::TimePoint t);
  [[nodiscard]] double temp_skew_ppm(core::TimePoint t) const;

  OscillatorParams params_;
  core::Rng rng_;
  core::TimePoint last_;
  double offset_s_;
  double wander_ppm_ = 0.0;
  double last_temp_ppm_ = 0.0;
};

/// A disciplined clock: an oscillator plus correction state. This is the
/// system clock of a simulated host; SNTP/NTP/MNTP clients read it and
/// may step its phase or trim its frequency.
class DisciplinedClock {
 public:
  DisciplinedClock(OscillatorParams params, core::Rng rng)
      : osc_(params, std::move(rng)) {}

  /// Offset (local - true) of the *disciplined* clock at true time t,
  /// seconds, excluding read noise.
  [[nodiscard]] double offset_at(core::TimePoint t);

  /// A noisy reading of the disciplined clock's offset.
  [[nodiscard]] double read_offset(core::TimePoint t);

  /// Local (disciplined) time at true time t.
  [[nodiscard]] core::TimePoint local_time(core::TimePoint t);

  /// Apply a phase step: local time jumps by `delta` (a measured offset
  /// of +x is corrected by stepping -x).
  void step(core::Duration delta);

  /// Set the frequency compensation applied from true time t onward, in
  /// ppm. Positive compensation speeds the disciplined clock up.
  void set_frequency_compensation(core::TimePoint t, double ppm);

  [[nodiscard]] double frequency_compensation_ppm() const { return comp_ppm_; }

  /// Total phase stepped so far (diagnostics).
  [[nodiscard]] core::Duration total_stepped() const { return total_stepped_; }

  [[nodiscard]] OscillatorModel& oscillator() { return osc_; }

 private:
  void integrate_comp(core::TimePoint t);

  OscillatorModel osc_;
  double corr_s_ = 0.0;        // accumulated phase correction
  double comp_ppm_ = 0.0;      // active frequency compensation
  core::TimePoint comp_since_; // last time the compensation integral advanced
  bool comp_started_ = false;
  core::Duration total_stepped_ = core::Duration::zero();
};

}  // namespace mntp::sim
