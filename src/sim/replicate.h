// Deterministic multi-seed replication: run K independent replicates of
// a scenario in parallel and aggregate their metrics.
//
// The paper's methodology (§5) scores parameter choices over many
// trace/seed combinations; the figure benches likewise gain statistical
// weight from replicating one scenario across independent channel/clock
// realizations. Replicates are embarrassingly parallel — each one is a
// pure function of its seed — so they fan out across the existing
// core::ThreadPool with the same determinism contract as the tuner's
// grid search:
//
//   * Per-replicate seeds are derived, not drawn: replicate 0 runs the
//     scenario's base seed unchanged (so `--replicates 1` IS the
//     single-run experiment, bit for bit), and replicate r > 0 gets
//     `core::splitmix64(base_seed + (r-1) * golden_gamma)` — the
//     splitmix64 stream seeded at base_seed, read out at index r-1.
//     Adding replicates never perturbs earlier ones.
//   * Each worker writes only its own replicate's pre-sized result slot,
//     so the report is bit-identical for every `threads` value,
//     including the inline `threads <= 1` path (no pool is created).
//
// Scenarios run full simulations, so the only shared state they may
// touch is the thread-safe obs layer (atomic counters, mutexed sinks) —
// the same rule core::ThreadPool documents for all offline parallelism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/stats.h"
#include "obs/hdr_histogram.h"

namespace mntp::sim {

/// Seed for replicate `replicate` of a scenario whose base seed is
/// `base_seed`. Identity at replicate 0; splitmix64 stream otherwise.
[[nodiscard]] std::uint64_t replicate_seed(std::uint64_t base_seed,
                                           std::size_t replicate);

/// One scenario metric observed in a single replicate.
struct MetricValue {
  std::string name;
  double value = 0.0;
};

/// One whole distribution observed in a single replicate (e.g. every
/// per-poll offset). obs::HdrHistogram, not the P² Histogram, precisely
/// because these are merged across replicates.
struct DistributionValue {
  std::string name;
  obs::HdrHistogram histogram;
};

/// Everything one replicate reports: scalar metrics plus distributions.
struct ReplicateResult {
  std::vector<MetricValue> metrics;
  std::vector<DistributionValue> distributions;
};

/// A distribution merged across all replicates. Because
/// HdrHistogram::merge is order-insensitive bit for bit, `merged` is
/// identical for every --threads value.
struct MergedDistribution {
  std::string name;
  obs::HdrHistogram merged;
};

/// A metric aggregated across all replicates.
struct ReplicatedMetric {
  std::string name;
  /// Value per replicate, indexed by replicate number.
  std::vector<double> per_replicate;
  /// Summary statistics over per_replicate.
  core::Summary summary;
};

struct ReplicateReport {
  std::uint64_t base_seed = 0;
  std::size_t replicates = 0;
  std::vector<ReplicatedMetric> metrics;
  /// Cross-replicate merged distributions; empty unless the scenario
  /// reports distributions (the rich-scenario overload of run()).
  std::vector<MergedDistribution> distributions;

  /// Metric by name; nullptr when absent.
  [[nodiscard]] const ReplicatedMetric* find(std::string_view name) const;
  /// Median across replicates of metric `name`; `fallback` when absent.
  [[nodiscard]] double median(std::string_view name,
                              double fallback = 0.0) const;
  /// Merged distribution by name; nullptr when absent.
  [[nodiscard]] const MergedDistribution* find_distribution(
      std::string_view name) const;
};

class ReplicationRunner {
 public:
  struct Options {
    std::size_t replicates = 1;
    /// Worker threads; <= 1 runs every replicate inline on the caller
    /// (the exact serial path — no pool is constructed).
    std::size_t threads = 1;
  };

  /// A scenario is a pure function of (seed, replicate_index) returning
  /// its observed metrics. Every replicate must return the same metric
  /// names in the same order; the runner throws std::runtime_error on a
  /// mismatch (a scenario whose metric set depends on the seed cannot be
  /// aggregated).
  using Scenario = std::function<std::vector<MetricValue>(
      std::uint64_t seed, std::size_t replicate)>;

  /// Scenario variant that also reports whole distributions, merged
  /// across replicates in the report. Every replicate must report the
  /// same distribution names in the same order, with identical
  /// HdrHistogram layouts (merge() throws otherwise).
  using RichScenario = std::function<ReplicateResult(std::uint64_t seed,
                                                     std::size_t replicate)>;

  explicit ReplicationRunner(Options options) : options_(options) {}

  /// Run all replicates (parallel per options_.threads) and aggregate.
  /// The report is bit-identical for every thread count.
  [[nodiscard]] ReplicateReport run(std::uint64_t base_seed,
                                    const Scenario& scenario) const;
  [[nodiscard]] ReplicateReport run(std::uint64_t base_seed,
                                    const RichScenario& scenario) const;

 private:
  Options options_;
};

}  // namespace mntp::sim
