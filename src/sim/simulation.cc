#include "sim/simulation.h"

namespace mntp::sim {

void Simulation::run_until(core::TimePoint deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
  if (deadline > now_) now_ = deadline;
}

void Simulation::run() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++executed_;
  }
}

void PeriodicProcess::start(core::Duration initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.after(initial_delay, [this] { fire(); });
}

void PeriodicProcess::stop() {
  pending_.cancel();
  running_ = false;
}

void PeriodicProcess::fire() {
  // Reschedule before running the action so the action can observe a
  // consistent "running" state and may call stop() to break the chain.
  pending_ = sim_.after(interval_, [this] { fire(); });
  action_();
}

}  // namespace mntp::sim
