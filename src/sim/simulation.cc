#include "sim/simulation.h"

#include "obs/metric_names.h"
#include "obs/profiler.h"

namespace mntp::sim {

namespace {

/// Queue depths are small integers; linear-ish low buckets then doubling.
obs::HistogramOptions queue_depth_buckets() {
  return obs::HistogramOptions{.bucket_bounds = {1, 2, 4, 8, 16, 32, 64, 128,
                                                 256, 512, 1024}};
}

}  // namespace

Simulation::Simulation()
    : telemetry_(&obs::Telemetry::global()),
      dispatched_counter_(telemetry_->metrics().counter(
          obs::metric_names::kSimEventsDispatched)),
      queue_depth_(telemetry_->metrics().histogram(
          obs::metric_names::kSimQueueDepth, queue_depth_buckets())),
      run_until_span_(
          obs::resolve_span_histograms(*telemetry_, obs::spans::kSimRunUntil)),
      run_span_(obs::resolve_span_histograms(*telemetry_, obs::spans::kSimRun)) {
  bind_timeline();
}

void Simulation::set_telemetry(obs::Telemetry& telemetry) {
  telemetry_ = &telemetry;
  dispatched_counter_ =
      telemetry_->metrics().counter(obs::metric_names::kSimEventsDispatched);
  queue_depth_ = telemetry_->metrics().histogram(
      obs::metric_names::kSimQueueDepth, queue_depth_buckets());
  run_until_span_ =
      obs::resolve_span_histograms(*telemetry_, obs::spans::kSimRunUntil);
  run_span_ = obs::resolve_span_histograms(*telemetry_, obs::spans::kSimRun);
  sampler_event_.cancel();
  bind_timeline();
}

void Simulation::bind_timeline() {
  timeline_ = &telemetry_->timeseries();
  // The capture decision is taken here, on the constructing thread: a
  // replicate worker under a SuppressScope binds an inert sampler even
  // though the recorder itself is enabled.
  timeline_capturing_ = timeline_->capturing();
  next_sample_ = now_;
  if (timeline_capturing_) {
    queue_depth_probe_ = timeline_->probe(
        obs::metric_names::kTsSimQueueDepth, {},
        [this](core::TimePoint) -> std::optional<double> {
          return static_cast<double>(queue_.size());
        });
  } else {
    queue_depth_probe_.reset();
  }
}

void Simulation::arm_sampler(core::TimePoint deadline) {
  if (!timeline_capturing_) return;
  sampler_deadline_ = deadline;
  if (sampler_event_.pending()) return;  // extend the deadline only
  if (next_sample_ < now_) next_sample_ = now_;
  schedule_next_sample();
}

void Simulation::schedule_next_sample() {
  if (next_sample_ > sampler_deadline_) return;
  sampler_event_ = queue_.schedule(next_sample_, [this] {
    timeline_->sample(now_);
    next_sample_ = now_ + timeline_->cadence();
    schedule_next_sample();
  });
}

void Simulation::dispatch_next() {
  now_ = queue_.next_time();
  // Sample queue depth every 64th dispatch: depth histograms want shape,
  // not per-event resolution, and the dispatch loop is the hottest path
  // in the simulator.
  if ((executed_ & 63u) == 0) {
    queue_depth_->record(static_cast<double>(queue_.size()));
  }
  queue_.run_next();
  ++executed_;
}

void Simulation::run_until(core::TimePoint deadline) {
  obs::ProfileScope profile(obs::spans::kSimRunUntil, now_);
  obs::SpanTimer span(run_until_span_, now_);
  arm_sampler(deadline);
  // The dispatch count is batched into one counter update per run call:
  // per-event atomic increments are measurable on the churn bench, and
  // nothing observes the counter mid-run (the loop never yields).
  const std::uint64_t before = executed_;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    dispatch_next();
  }
  dispatched_counter_->inc(executed_ - before);
  if (deadline > now_) now_ = deadline;
  span.finish(now_);
}

void Simulation::run() {
  obs::ProfileScope profile(obs::spans::kSimRun, now_);
  obs::SpanTimer span(run_span_, now_);
  const std::uint64_t before = executed_;
  while (!queue_.empty()) {
    dispatch_next();
  }
  dispatched_counter_->inc(executed_ - before);
  span.finish(now_);
}

void PeriodicProcess::start(core::Duration initial_delay) {
  stop();
  running_ = true;
  pending_ = sim_.after(initial_delay, [this] { fire(); });
}

void PeriodicProcess::stop() {
  pending_.cancel();
  running_ = false;
}

void PeriodicProcess::fire() {
  // Reschedule before running the action so the action can observe a
  // consistent "running" state and may call stop() to break the chain.
  pending_ = sim_.after(interval_, [this] { fire(); });
  action_();
}

}  // namespace mntp::sim
