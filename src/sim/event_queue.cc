#include "sim/event_queue.h"

#include <stdexcept>

namespace mntp::sim {

EventHandle EventQueue::schedule(core::TimePoint when, Action action) {
  auto alive = std::make_shared<bool>(true);
  EventHandle handle{alive};
  heap_.push(Entry{when, next_seq_++, std::move(action), std::move(alive)});
  ++live_;
  return handle;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && !*heap_.top().alive) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

core::TimePoint EventQueue::next_time() const {
  drop_dead();
  return heap_.empty() ? core::TimePoint::max() : heap_.top().when;
}

core::TimePoint EventQueue::run_next() {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::run_next on empty queue");
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because pop() immediately removes it.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_;
  *entry.alive = false;
  entry.action();
  return entry.when;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  live_ = 0;
}

}  // namespace mntp::sim
