#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace mntp::sim {

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
  if (!slot_pending(slot, generation)) return;
  release_slot(slot);  // the heap entry is now a tombstone
  ++dead_;
  if (dead_ > kCompactionFloor && dead_ > heap_.size() / 2) compact();
}

void EventQueue::compact() {
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (entry_live(e)) heap_[kept++] = e;
  }
  heap_.resize(kept);
  dead_ = 0;
  // Floyd build-heap over the survivors. The heap's internal layout has
  // no behavioural surface: (time, seq) is a total order, so pop order
  // is identical whether or not compaction ran.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      heap_sift_down(i);
    }
  }
}

core::TimePoint EventQueue::run_next() {
  drop_dead();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::run_next on empty queue");
  }
  const HeapEntry entry = heap_[0];
  heap_pop_root();
  // Move the action out and release the slot BEFORE invoking: the action
  // may schedule (possibly reusing this very slot) or cancel freely.
  Action action = std::move(slots_[entry.slot].action);
  release_slot(entry.slot);
  action();
  return core::TimePoint::from_ns(entry.when_ns);
}

void EventQueue::clear() {
  for (const HeapEntry& e : heap_) {
    if (entry_live(e)) release_slot(e.slot);
  }
  heap_.clear();
  dead_ = 0;
}

}  // namespace mntp::sim
