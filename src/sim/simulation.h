// Simulation kernel: owns the event queue and the one true timeline.
//
// Components schedule callbacks against absolute or relative simulated
// time; `run_until`/`run` drain the queue in timestamp order. "True time"
// (`now()`) is the oracle against which all clock offsets in experiments
// are measured — it plays the role of the paper's NIST-disciplined
// reference ("true time offset" from ntpq, §3.2).
#pragma once

#include <cstdint>
#include <utility>

#include "core/time.h"
#include "obs/telemetry.h"
#include "sim/event_queue.h"

namespace mntp::sim {

class Simulation {
 public:
  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated (true) time.
  [[nodiscard]] core::TimePoint now() const { return now_; }

  /// Schedule at an absolute instant; instants in the past fire
  /// immediately on the next run step (clamped to now). The callable is
  /// forwarded straight into the queue's slab (see EventQueue::schedule).
  template <typename F>
  EventHandle at(core::TimePoint when, F&& action) {
    if (when < now_) when = now_;
    return queue_.schedule(when, std::forward<F>(action));
  }

  /// Schedule after a (non-negative) delay from now.
  template <typename F>
  EventHandle after(core::Duration delay, F&& action) {
    if (delay < core::Duration::zero()) delay = core::Duration::zero();
    return queue_.schedule(now_ + delay, std::forward<F>(action));
  }

  /// Run every event with timestamp <= `deadline`, in order. On return
  /// now() == max(now(), deadline) — even when no event fired at the
  /// deadline itself — so subsequent relative scheduling (`after`) is
  /// anchored at the deadline. A deadline in the past is a no-op.
  void run_until(core::TimePoint deadline);

  /// Run until the queue is fully drained.
  void run();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] EventQueue& queue() { return queue_; }

  /// Telemetry context this simulation records into. Bound at
  /// construction to the then-current obs::Telemetry::global(); the sink
  /// for event-queue stats (sim.events_dispatched, sim.queue_depth) and
  /// run_until timing spans.
  [[nodiscard]] obs::Telemetry& telemetry() const { return *telemetry_; }
  /// Rebind (e.g. a long-lived simulation crossing telemetry scopes).
  void set_telemetry(obs::Telemetry& telemetry);

 private:
  void dispatch_next();
  /// Timeline sampling (obs/timeseries.h): when the bound telemetry's
  /// TimeSeriesRecorder is capturing on this thread at construction /
  /// rebinding, run_until() arms a self-rescheduling sampler event that
  /// calls recorder.sample(now) on the recorder's cadence, bounded by the
  /// run_until deadline (never by run(), which must drain the queue).
  /// With the recorder off — the default — nothing is ever scheduled, so
  /// event interleaving is untouched.
  void bind_timeline();
  void arm_sampler(core::TimePoint deadline);
  void schedule_next_sample();

  EventQueue queue_;
  core::TimePoint now_;
  std::uint64_t executed_ = 0;
  obs::Telemetry* telemetry_;
  obs::Counter* dispatched_counter_;
  obs::Histogram* queue_depth_;
  obs::TimeSeriesRecorder* timeline_ = nullptr;
  bool timeline_capturing_ = false;
  core::TimePoint next_sample_;
  core::TimePoint sampler_deadline_;
  EventHandle sampler_event_;
  obs::ProbeHandle queue_depth_probe_;
  /// Span histograms resolved once per telemetry binding, so run()/
  /// run_until() open their timing spans without name concatenation or
  /// registry lookups (the dispatch loop is allocation-free once warm).
  obs::SpanHistograms run_until_span_;
  obs::SpanHistograms run_span_;
};

/// Repeating task helper: runs `action` every `interval`, starting at
/// `start`, until cancelled or the simulation stops running. The action
/// may cancel the process from within itself.
class PeriodicProcess {
 public:
  using Action = EventQueue::Action;

  PeriodicProcess(Simulation& sim, core::Duration interval, Action action)
      : sim_(sim), interval_(interval), action_(std::move(action)) {}

  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Begin firing; the first invocation happens after `initial_delay`.
  void start(core::Duration initial_delay = core::Duration::zero());

  /// Cancel the pending invocation and stop rescheduling.
  void stop();

  /// Change the interval; takes effect at the next reschedule.
  void set_interval(core::Duration interval) { interval_ = interval; }

  [[nodiscard]] bool running() const { return running_; }

 private:
  void fire();

  Simulation& sim_;
  core::Duration interval_;
  Action action_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace mntp::sim
