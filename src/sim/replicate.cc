#include "sim/replicate.h"

#include <stdexcept>

#include "core/rng.h"
#include "core/thread_pool.h"

namespace mntp::sim {

std::uint64_t replicate_seed(std::uint64_t base_seed, std::size_t replicate) {
  if (replicate == 0) return base_seed;
  // The splitmix64 stream seeded at base_seed, skipped ahead to index
  // `replicate`: state_r = base + r * gamma, output = mix(state_r).
  // Index 0 is intentionally NOT mixed — it is the base seed itself, so
  // one replicate reproduces the original single-seed experiment.
  constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;
  return core::splitmix64(base_seed +
                          (static_cast<std::uint64_t>(replicate) - 1) * kGamma);
}

const ReplicatedMetric* ReplicateReport::find(std::string_view name) const {
  for (const ReplicatedMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double ReplicateReport::median(std::string_view name, double fallback) const {
  const ReplicatedMetric* m = find(name);
  return m != nullptr ? m->summary.median : fallback;
}

ReplicateReport ReplicationRunner::run(std::uint64_t base_seed,
                                       const Scenario& scenario) const {
  const std::size_t k = options_.replicates == 0 ? 1 : options_.replicates;
  // Deterministic result placement: slot r belongs to replicate r, so
  // the aggregation below sees the same values in the same order no
  // matter which worker ran which replicate.
  std::vector<std::vector<MetricValue>> per_replicate(k);
  const auto run_one = [&](std::size_t r) {
    per_replicate[r] = scenario(replicate_seed(base_seed, r), r);
  };
  if (options_.threads <= 1 || k == 1) {
    for (std::size_t r = 0; r < k; ++r) run_one(r);
  } else {
    core::ThreadPool pool(options_.threads);
    pool.parallel_for(0, k, run_one);
  }

  ReplicateReport report;
  report.base_seed = base_seed;
  report.replicates = k;
  report.metrics.reserve(per_replicate[0].size());
  for (const MetricValue& mv : per_replicate[0]) {
    ReplicatedMetric metric;
    metric.name = mv.name;
    metric.per_replicate.reserve(k);
    report.metrics.push_back(std::move(metric));
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (per_replicate[r].size() != report.metrics.size()) {
      throw std::runtime_error("ReplicationRunner: replicate " +
                               std::to_string(r) +
                               " returned a different metric count");
    }
    for (std::size_t i = 0; i < report.metrics.size(); ++i) {
      if (per_replicate[r][i].name != report.metrics[i].name) {
        throw std::runtime_error("ReplicationRunner: replicate " +
                                 std::to_string(r) + " metric " +
                                 std::to_string(i) + " is named '" +
                                 per_replicate[r][i].name + "', expected '" +
                                 report.metrics[i].name + "'");
      }
      report.metrics[i].per_replicate.push_back(per_replicate[r][i].value);
    }
  }
  for (ReplicatedMetric& m : report.metrics) {
    m.summary = core::summarize(m.per_replicate);
  }
  return report;
}

}  // namespace mntp::sim
