#include "sim/replicate.h"

#include <stdexcept>

#include "core/rng.h"
#include "core/thread_pool.h"

namespace mntp::sim {

std::uint64_t replicate_seed(std::uint64_t base_seed, std::size_t replicate) {
  if (replicate == 0) return base_seed;
  // The splitmix64 stream seeded at base_seed, skipped ahead to index
  // `replicate`: state_r = base + r * gamma, output = mix(state_r).
  // Index 0 is intentionally NOT mixed — it is the base seed itself, so
  // one replicate reproduces the original single-seed experiment.
  constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;
  return core::splitmix64(base_seed +
                          (static_cast<std::uint64_t>(replicate) - 1) * kGamma);
}

const ReplicatedMetric* ReplicateReport::find(std::string_view name) const {
  for (const ReplicatedMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

double ReplicateReport::median(std::string_view name, double fallback) const {
  const ReplicatedMetric* m = find(name);
  return m != nullptr ? m->summary.median : fallback;
}

const MergedDistribution* ReplicateReport::find_distribution(
    std::string_view name) const {
  for (const MergedDistribution& d : distributions) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

ReplicateReport ReplicationRunner::run(std::uint64_t base_seed,
                                       const Scenario& scenario) const {
  return run(base_seed,
             RichScenario([&scenario](std::uint64_t seed, std::size_t r) {
               return ReplicateResult{.metrics = scenario(seed, r),
                                      .distributions = {}};
             }));
}

ReplicateReport ReplicationRunner::run(std::uint64_t base_seed,
                                       const RichScenario& scenario) const {
  const std::size_t k = options_.replicates == 0 ? 1 : options_.replicates;
  // Deterministic result placement: slot r belongs to replicate r, so
  // the aggregation below sees the same values in the same order no
  // matter which worker ran which replicate.
  std::vector<ReplicateResult> per_replicate(k);
  const auto run_one = [&](std::size_t r) {
    per_replicate[r] = scenario(replicate_seed(base_seed, r), r);
  };
  if (options_.threads <= 1 || k == 1) {
    for (std::size_t r = 0; r < k; ++r) run_one(r);
  } else {
    core::ThreadPool pool(options_.threads);
    pool.parallel_for(0, k, run_one);
  }

  ReplicateReport report;
  report.base_seed = base_seed;
  report.replicates = k;
  report.metrics.reserve(per_replicate[0].metrics.size());
  for (const MetricValue& mv : per_replicate[0].metrics) {
    ReplicatedMetric metric;
    metric.name = mv.name;
    metric.per_replicate.reserve(k);
    report.metrics.push_back(std::move(metric));
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (per_replicate[r].metrics.size() != report.metrics.size()) {
      throw std::runtime_error("ReplicationRunner: replicate " +
                               std::to_string(r) +
                               " returned a different metric count");
    }
    for (std::size_t i = 0; i < report.metrics.size(); ++i) {
      if (per_replicate[r].metrics[i].name != report.metrics[i].name) {
        throw std::runtime_error(
            "ReplicationRunner: replicate " + std::to_string(r) + " metric " +
            std::to_string(i) + " is named '" +
            per_replicate[r].metrics[i].name + "', expected '" +
            report.metrics[i].name + "'");
      }
      report.metrics[i].per_replicate.push_back(
          per_replicate[r].metrics[i].value);
    }
  }
  for (ReplicatedMetric& m : report.metrics) {
    m.summary = core::summarize(m.per_replicate);
  }

  // Merge distributions replicate by replicate. The merge order is fixed
  // (slot order), but HdrHistogram::merge is order-insensitive anyway, so
  // the result is bit-identical for every thread count.
  report.distributions.reserve(per_replicate[0].distributions.size());
  for (const DistributionValue& dv : per_replicate[0].distributions) {
    report.distributions.push_back(MergedDistribution{
        .name = dv.name, .merged = obs::HdrHistogram(dv.histogram.options())});
  }
  for (std::size_t r = 0; r < k; ++r) {
    if (per_replicate[r].distributions.size() != report.distributions.size()) {
      throw std::runtime_error("ReplicationRunner: replicate " +
                               std::to_string(r) +
                               " returned a different distribution count");
    }
    for (std::size_t i = 0; i < report.distributions.size(); ++i) {
      if (per_replicate[r].distributions[i].name !=
          report.distributions[i].name) {
        throw std::runtime_error(
            "ReplicationRunner: replicate " + std::to_string(r) +
            " distribution " + std::to_string(i) + " is named '" +
            per_replicate[r].distributions[i].name + "', expected '" +
            report.distributions[i].name + "'");
      }
      report.distributions[i].merged.merge(
          per_replicate[r].distributions[i].histogram);
    }
  }
  return report;
}

}  // namespace mntp::sim
