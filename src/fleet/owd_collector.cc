#include "fleet/owd_collector.h"

#include <string>

#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::fleet {

namespace {

// Shared layout for every fleet OWD histogram: measured OWDs live in
// [0, 3000] ms with ~10 us floor; 2^5 sub-buckets bound quantile error
// at ~1.6%. One constant so local slots and registry series always
// merge-compatibly.
obs::HdrHistogramOptions owd_hist_options() {
  return obs::HdrHistogramOptions{
      .min_magnitude = 0.01, .max_magnitude = 1e5, .sub_bucket_bits = 5};
}

constexpr std::array<Speaker, 2> kSpeakers{Speaker::kNtp, Speaker::kSntp};
constexpr std::array<Population, 2> kPopulations{Population::kWired,
                                                 Population::kWireless};
constexpr std::array<logs::ProviderCategory, 4> kCategories{
    logs::ProviderCategory::kCloud, logs::ProviderCategory::kIsp,
    logs::ProviderCategory::kBroadband, logs::ProviderCategory::kMobile};

}  // namespace

OwdCollector::Slot::Slot() {
  for (auto& row : by_class) {
    for (auto& h : row) h = obs::HdrHistogram(owd_hist_options());
  }
  for (auto& h : by_category) h = obs::HdrHistogram(owd_hist_options());
}

OwdCollector::OwdCollector(std::size_t slots, double valid_min_ms,
                           double valid_max_ms)
    : valid_min_ms_(valid_min_ms),
      valid_max_ms_(valid_max_ms),
      slots_(slots) {
  obs::MetricsRegistry& m = obs::Telemetry::global().metrics();
  for (Speaker sp : kSpeakers) {
    for (Population pop : kPopulations) {
      reg_class_[static_cast<std::size_t>(sp)][static_cast<std::size_t>(pop)] =
          m.hdr_histogram(
              obs::metric_names::kFleetOwdMs, owd_hist_options(),
              obs::Labels{{"speaker", std::string(speaker_name(sp))},
                          {"population", std::string(population_name(pop))}});
    }
  }
  for (logs::ProviderCategory cat : kCategories) {
    reg_category_[static_cast<std::size_t>(cat)] = m.hdr_histogram(
        obs::metric_names::kFleetCategoryOwdMs, owd_hist_options(),
        obs::Labels{{"category", std::string(logs::category_name(cat))}});
  }
  reg_invalid_ = m.sharded_counter(obs::metric_names::kFleetOwdInvalid);
}

void OwdCollector::record(std::size_t slot, Speaker speaker,
                          Population population,
                          logs::ProviderCategory category, double owd_ms) {
  Slot& local = slots_[slot];
  if (owd_ms < valid_min_ms_ || owd_ms > valid_max_ms_) {
    ++local.invalid;
    reg_invalid_->inc();
    return;
  }
  const auto sp = static_cast<std::size_t>(speaker);
  const auto pop = static_cast<std::size_t>(population);
  const auto cat = static_cast<std::size_t>(category);
  ++local.valid;
  local.by_class[sp][pop].record(owd_ms);
  local.by_category[cat].record(owd_ms);
  reg_class_[sp][pop]->record(owd_ms);
  reg_category_[cat]->record(owd_ms);
}

OwdCollector::Summary OwdCollector::merged() const {
  Summary out;
  for (auto& row : out.by_class) {
    for (auto& h : row) h = obs::HdrHistogram(owd_hist_options());
  }
  for (auto& h : out.by_category) h = obs::HdrHistogram(owd_hist_options());
  for (const Slot& slot : slots_) {
    out.valid += slot.valid;
    out.invalid += slot.invalid;
    for (std::size_t sp = 0; sp < 2; ++sp) {
      for (std::size_t pop = 0; pop < 2; ++pop) {
        out.by_class[sp][pop].merge(slot.by_class[sp][pop]);
      }
    }
    for (std::size_t cat = 0; cat < 4; ++cat) {
      out.by_category[cat].merge(slot.by_category[cat]);
    }
  }
  return out;
}

}  // namespace mntp::fleet
