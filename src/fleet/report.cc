#include "fleet/report.h"

#include <array>
#include <fstream>

#include "core/json_writer.h"
#include "logs/spec.h"

namespace mntp::fleet {

namespace {

void write_owd_row(core::JsonWriter& w, const obs::HdrHistogram& h) {
  w.kv("count", h.count());
  w.key("p50_ms").value_fixed(h.quantile(0.50), 3);
  w.key("p90_ms").value_fixed(h.quantile(0.90), 3);
  w.key("p99_ms").value_fixed(h.quantile(0.99), 3);
  w.key("mean_ms").value_fixed(h.mean(), 3);
  w.key("min_ms").value_fixed(h.min(), 3);
  w.key("max_ms").value_fixed(h.max(), 3);
}

}  // namespace

std::string render_fleet_report(const FleetParams& params,
                                const FleetResult& result) {
  std::string out;
  core::JsonWriter w(out, 2);
  w.begin_object();
  w.kv("kind", "mntp_fleet_report");
  w.kv("schema_version", std::int64_t{1});

  w.key("params").begin_object();
  w.kv("clients", params.clients);
  w.key("duration_s").value_fixed(params.duration_s, 3);
  w.kv("shards", static_cast<std::uint64_t>(params.shards));
  w.kv("seed", params.seed);
  w.kv("kod_limit_per_slice", params.kod_limit_per_slice);
  w.key("cache_bucket_ms").value_fixed(params.cache_bucket_ms, 3);
  w.key("batch_window_ms").value_fixed(params.batch_window_ms, 3);
  w.kv("use_snr_lut", params.use_snr_lut);
  w.kv("coarse_ou_advance", params.coarse_ou_advance);
  w.end_object();

  w.key("population").begin_object();
  w.kv("clients", result.clients);
  w.kv("sntp_clients", result.sntp_clients);
  w.kv("ntp_clients", result.ntp_clients);
  w.kv("wireless_clients", result.wireless_clients);
  w.kv("wired_clients", result.wired_clients);
  w.end_object();

  w.key("totals").begin_object();
  w.kv("queries", result.queries);
  w.kv("arrived", result.arrived);
  w.kv("dropped", result.dropped);
  w.kv("kod", result.kod);
  w.kv("batches", result.batches);
  w.kv("cache_hits", result.cache_hits);
  w.kv("cache_misses", result.cache_misses);
  w.kv("owd_valid", result.owd.valid);
  w.kv("owd_invalid", result.owd.invalid);
  w.end_object();

  w.key("throughput").begin_object();
  w.kv("threads", static_cast<std::uint64_t>(result.threads));
  w.key("wall_s").value_fixed(result.wall_s, 6);
  w.key("qps").value_fixed(result.qps, 1);
  w.key("qps_per_core").value_fixed(result.qps_per_core, 1);
  w.end_object();

  w.key("servers").begin_array();
  for (std::size_t s = 0; s < result.server_requests.size(); ++s) {
    w.begin_object();
    w.kv("id", s < logs::kPaperServers.size()
                   ? logs::kPaperServers[s].id
                   : std::string_view("?"));
    w.kv("requests", result.server_requests[s]);
    w.end_object();
  }
  w.end_array();

  w.key("owd").begin_array();
  for (Speaker sp : {Speaker::kNtp, Speaker::kSntp}) {
    for (Population pop : {Population::kWired, Population::kWireless}) {
      w.begin_object();
      w.kv("speaker", speaker_name(sp));
      w.kv("population", population_name(pop));
      write_owd_row(w, result.owd.by_class[static_cast<std::size_t>(sp)]
                                          [static_cast<std::size_t>(pop)]);
      w.end_object();
    }
  }
  w.end_array();

  w.key("category_owd").begin_array();
  constexpr std::array<logs::ProviderCategory, 4> kCategories{
      logs::ProviderCategory::kCloud, logs::ProviderCategory::kIsp,
      logs::ProviderCategory::kBroadband, logs::ProviderCategory::kMobile};
  for (logs::ProviderCategory cat : kCategories) {
    w.begin_object();
    w.kv("category", logs::category_name(cat));
    write_owd_row(w, result.owd.by_category[static_cast<std::size_t>(cat)]);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out += '\n';
  return out;
}

bool write_fleet_report(const std::string& path, const FleetParams& params,
                        const FleetResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_fleet_report(params, result);
  return static_cast<bool>(out);
}

}  // namespace mntp::fleet
