// Server-side request pipeline: batching, response caching, KoD.
//
// Phase B of the fleet simulator (see simulator.h) hands each server the
// slice's arrivals in canonical order — sorted by (arrival time, client
// id), which is invariant under shard partitioning and thread count —
// and this pipeline applies the three server-side mechanisms the
// tentpole models:
//
//   * request batching: arrivals within one batch window are one
//     processing batch (fleet.server.batches counts windows);
//   * response caching: the server's transmit-timestamp error is
//     computed once per cache bucket and served from cache within it.
//     The cached value is a pure function of (server seed, bucket
//     index) — NOT of which request missed first — so cache behaviour
//     can never leak scheduling into results;
//   * kiss-of-death rate limiting: requests beyond the per-slice limit
//     get a KoD instead of time, and the offending client's poll
//     interval backs off multiplicatively (capped). A client has exactly
//     one home server, so the interval write is disjoint across the
//     concurrently-processed servers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fleet/client_fleet.h"
#include "fleet/owd_collector.h"
#include "fleet/params.h"
#include "obs/metrics.h"

namespace mntp::fleet {

/// One delivered query as Phase A emits it. `partial_ms` is the
/// client-side half of the measured OWD (true delay minus client clock
/// error); Phase B adds the server's cached clock error.
struct ArrivalRecord {
  std::uint64_t arrive_ns;
  std::uint32_t client;
  double partial_ms;
};

struct ServerTotals {
  std::uint64_t requests = 0;
  std::uint64_t kod = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class ServerFleet {
 public:
  /// `servers` = number of server slots (indices into logs::kPaperServers
  /// when the fleet uses the paper population). Binds registry handles
  /// from the current global obs context: per-server
  /// fleet.server.requests{server=...} plus fleet-wide kod / batches /
  /// cache counters.
  ServerFleet(const FleetParams& params, std::size_t servers);

  /// Process one server's canonically-sorted slice batch. Safe to call
  /// concurrently for DISTINCT servers: per-server state is indexed,
  /// client interval writes are disjoint by home server, and the
  /// collector slot is the server index.
  void process_slice(std::size_t server,
                     std::span<const ArrivalRecord> arrivals,
                     const ClientFleet& fleet,
                     std::span<std::uint64_t> interval_ns,
                     OwdCollector& owd);

  [[nodiscard]] const ServerTotals& totals(std::size_t server) const {
    return state_[server].totals;
  }
  [[nodiscard]] std::size_t servers() const { return state_.size(); }

  /// Clear all per-run state (cache, batch cursor, totals).
  void reset();

 private:
  static constexpr std::uint64_t kNoBucket = ~0ULL;

  struct State {
    std::uint64_t cached_bucket = kNoBucket;
    double cached_err_ms = 0.0;
    std::uint64_t prev_batch = kNoBucket;
    ServerTotals totals;
  };

  std::uint64_t seed_root_;  // server stream root of the fleet seed
  std::uint64_t kod_limit_;
  double kod_backoff_factor_;
  std::uint64_t kod_cap_ns_;
  std::uint64_t cache_bucket_ns_;
  std::uint64_t batch_window_ns_;
  double server_err_sigma_ms_;
  std::vector<State> state_;
  std::vector<obs::ShardedCounter*> requests_counter_;  // per server
  obs::ShardedCounter* kod_counter_;
  obs::ShardedCounter* batches_counter_;
  obs::ShardedCounter* cache_hit_counter_;
  obs::ShardedCounter* cache_miss_counter_;
};

}  // namespace mntp::fleet
