#include "fleet/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::fleet {

namespace {

constexpr std::uint64_t kClientStream = 0;  // see client_fleet.cc seed map
constexpr double kNsPerSec = 1e9;
constexpr double kNsPerMs = 1e6;

/// Euler tick used by the slow (coarse_ou_advance=false) shadowing
/// integrator, matching WirelessChannelParams::tick.
constexpr double kOuTickS = 0.1;

}  // namespace

bool FleetResult::deterministic_equal(const FleetResult& other) const {
  return clients == other.clients && sntp_clients == other.sntp_clients &&
         ntp_clients == other.ntp_clients &&
         wireless_clients == other.wireless_clients &&
         wired_clients == other.wired_clients && queries == other.queries &&
         arrived == other.arrived && dropped == other.dropped &&
         kod == other.kod && batches == other.batches &&
         cache_hits == other.cache_hits &&
         cache_misses == other.cache_misses &&
         server_requests == other.server_requests && owd == other.owd;
}

Simulator::Simulator(std::shared_ptr<const ClientFleet> fleet,
                     FleetParams params)
    : fleet_(std::move(fleet)), params_(params) {
  if (!fleet_) throw std::invalid_argument("Simulator: null fleet");
  if (params_.shards == 0) {
    throw std::invalid_argument("Simulator: shards must be > 0");
  }
  const double min_poll_s =
      std::min(params_.sntp_poll_min_s,
               std::ldexp(1.0, params_.ntp_poll_min_log2));
  if (params_.slice_s <= 0.0 || params_.slice_s >= min_poll_s) {
    // The at-most-one-query-per-client-per-slice invariant (and with it
    // the collision-free calendar wheel) needs slice < min poll.
    throw std::invalid_argument(
        "Simulator: slice_s must be in (0, min poll interval)");
  }
  if (params_.use_snr_lut) {
    snr_lut_ = net::SnrFailureLut::build(params_.snr50_db,
                                         params_.snr_slope_db);
  }
  obs::MetricsRegistry& m = obs::Telemetry::global().metrics();
  queries_counter_ = m.sharded_counter(obs::metric_names::kFleetClientQueries);
  dropped_counter_ = m.sharded_counter(obs::metric_names::kFleetClientDropped);
}

FleetResult Simulator::run(std::size_t threads) {
  const auto wall_start = std::chrono::steady_clock::now();
  const ClientFleet& fleet = *fleet_;
  const std::size_t n = static_cast<std::size_t>(fleet.size());
  const auto slice_ns =
      static_cast<std::uint64_t>(params_.slice_s * kNsPerSec);
  const auto duration_ns =
      static_cast<std::uint64_t>(params_.duration_s * kNsPerSec);
  const std::uint64_t n_slices = (duration_ns + slice_ns - 1) / slice_ns;
  const std::size_t shards = std::min(params_.shards, n);
  const std::size_t per_shard = (n + shards - 1) / shards;
  const std::size_t servers = logs::kPaperServers.size();

  // Wheel horizon: one slot per slice of the maximum possible poll
  // interval (the KoD backoff cap) plus slack, so slot index (poll /
  // slice) mod H is collision-free — every id drained at slice t polls
  // exactly in slice t.
  const std::uint64_t wheel_h =
      static_cast<std::uint64_t>(params_.kod_backoff_cap_s / params_.slice_s) +
      2;

  // Per-run mutable client state, copied so runs are independent.
  std::vector<std::uint64_t> next_poll(fleet.init_next_poll_ns());
  std::vector<std::uint64_t> interval(fleet.init_interval_ns());
  std::vector<double> shadow_db(n, 0.0);
  std::vector<std::uint64_t> last_adv_ns(n, 0);

  // Calendar wheels and arrival buffers, per shard.
  std::vector<std::vector<std::vector<std::uint32_t>>> wheel(shards);
  std::vector<std::vector<std::uint32_t>> drain_scratch(shards);
  std::vector<std::vector<std::vector<ArrivalRecord>>> arrivals(shards);
  for (std::size_t sh = 0; sh < shards; ++sh) {
    wheel[sh].resize(wheel_h);
    arrivals[sh].resize(servers);
    const std::size_t lo = sh * per_shard;
    const std::size_t hi = std::min(lo + per_shard, n);
    for (std::size_t i = lo; i < hi; ++i) {
      if (next_poll[i] < duration_ns) {
        wheel[sh][(next_poll[i] / slice_ns) % wheel_h].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
  }

  // Per-shard tallies (disjoint writes; summed serially after the loop).
  std::vector<std::uint64_t> shard_queries(shards, 0);
  std::vector<std::uint64_t> shard_dropped(shards, 0);

  OwdCollector owd(servers, params_.owd_valid_min_ms,
                   params_.owd_valid_max_ms);
  ServerFleet server_fleet(params_, servers);
  std::vector<std::vector<ArrivalRecord>> gather(servers);

  const std::uint64_t client_root =
      core::derive_stream_seed(params_.seed, kClientStream);
  const double mobile_shape = params_.pareto_shape_mobile;
  const double fixed_shape = params_.pareto_shape_fixed;

  core::ThreadPool pool(threads <= 1 ? 0 : threads);

  for (std::uint64_t slice = 0; slice < n_slices; ++slice) {
    const std::uint64_t slot_index = slice % wheel_h;
    // Phase A: clients. Each shard owns its wheel, its arrival buffers
    // and its slice tallies; the only shared reads are the immutable
    // fleet columns.
    pool.parallel_for(0, shards, [&](std::size_t sh) {
      std::vector<std::uint32_t>& scratch = drain_scratch[sh];
      scratch.swap(wheel[sh][slot_index]);
      std::uint64_t q_count = 0;
      std::uint64_t d_count = 0;
      for (const std::uint32_t id : scratch) {
        const std::uint64_t poll_ns = next_poll[id];
        core::SmallRng q(core::derive_stream_seed(
            core::derive_stream_seed(client_root, id), poll_ns));
        ++q_count;
        queries_counter_->inc();

        const std::uint8_t traits = fleet.traits()[id];
        const bool wireless = (traits & ClientTraits::kWireless) != 0;
        bool delivered;
        double backoff_ms = 0.0;
        if (wireless) {
          // Shadowing OU advance across the idle gap: one exact
          // transition on the fast path, Euler ticks otherwise (the
          // same pair of integrators WirelessChannel::advance_to has,
          // here keyed per client).
          const double gap_s =
              static_cast<double>(poll_ns - last_adv_ns[id]) / kNsPerSec;
          double sh_db = shadow_db[id];
          if (params_.coarse_ou_advance) {
            const double d = std::exp(-gap_s / params_.shadowing_tau_s);
            sh_db = d * sh_db + params_.shadowing_sigma_db *
                                    std::sqrt(1.0 - d * d) *
                                    q.normal(0.0, 1.0);
          } else {
            double remaining = gap_s;
            while (remaining > 0.0) {
              const double dt = std::min(remaining, kOuTickS);
              const double a = dt / params_.shadowing_tau_s;
              sh_db += -a * sh_db + params_.shadowing_sigma_db *
                                        std::sqrt(2.0 * a) *
                                        q.normal(0.0, 1.0);
              remaining -= dt;
            }
          }
          shadow_db[id] = sh_db;
          last_adv_ns[id] = poll_ns;

          const double snr_db = fleet.snr_mean_db()[id] + sh_db;
          const double p_fail =
              params_.use_snr_lut
                  ? snr_lut_(snr_db)
                  : 1.0 / (1.0 + std::exp((snr_db - params_.snr50_db) /
                                          params_.snr_slope_db));
          // MAC retry loop, same draw discipline as WirelessChannel:
          // no backoff is drawn for a retry that never happens.
          delivered = false;
          for (int attempt = 0; attempt <= params_.max_retries; ++attempt) {
            if (!q.bernoulli(p_fail)) {
              delivered = true;
              break;
            }
            if (attempt == params_.max_retries) break;
            backoff_ms += q.exponential(params_.retry_backoff_ms) *
                          static_cast<double>(attempt + 1);
          }
        } else {
          delivered = !q.bernoulli(params_.wired_loss);
        }

        if (delivered) {
          const bool mobile = fleet.category(id) ==
                              logs::ProviderCategory::kMobile;
          double owd_ms =
              static_cast<double>(fleet.base_owd_ms()[id]) *
                  q.pareto(1.0, mobile ? mobile_shape : fixed_shape) +
              backoff_ms;
          owd_ms = std::min(owd_ms, params_.owd_cap_ms);
          const double poll_s = static_cast<double>(poll_ns) / kNsPerSec;
          const double client_err_ms =
              static_cast<double>(fleet.clock_err_ms()[id]) +
              static_cast<double>(fleet.skew_ppm()[id]) * poll_s * 1e-3;
          arrivals[sh][fleet.server()[id]].push_back(ArrivalRecord{
              .arrive_ns =
                  poll_ns + static_cast<std::uint64_t>(owd_ms * kNsPerMs),
              .client = id,
              .partial_ms = owd_ms - client_err_ms,
          });
        } else {
          ++d_count;
          dropped_counter_->inc();
        }

        const std::uint64_t np = poll_ns + interval[id];
        next_poll[id] = np;
        if (np < duration_ns) {
          wheel[sh][(np / slice_ns) % wheel_h].push_back(id);
        }
      }
      scratch.clear();
      shard_queries[sh] += q_count;
      shard_dropped[sh] += d_count;
    });

    // Phase B: servers. Gather each server's arrivals from every shard,
    // sort into the canonical (arrival, client) order, run the
    // batching / cache / KoD pipeline. KoD interval writes are disjoint
    // by home server.
    pool.parallel_for(0, servers, [&](std::size_t s) {
      std::vector<ArrivalRecord>& batch = gather[s];
      batch.clear();
      for (std::size_t sh = 0; sh < shards; ++sh) {
        batch.insert(batch.end(), arrivals[sh][s].begin(),
                     arrivals[sh][s].end());
        arrivals[sh][s].clear();
      }
      std::sort(batch.begin(), batch.end(),
                [](const ArrivalRecord& a, const ArrivalRecord& b) {
                  return a.arrive_ns != b.arrive_ns
                             ? a.arrive_ns < b.arrive_ns
                             : a.client < b.client;
                });
      server_fleet.process_slice(s, batch, fleet, interval, owd);
    });
  }

  FleetResult result;
  result.clients = fleet.size();
  result.sntp_clients = fleet.sntp_clients();
  result.ntp_clients = fleet.ntp_clients();
  result.wireless_clients = fleet.wireless_clients();
  result.wired_clients = fleet.wired_clients();
  for (std::size_t sh = 0; sh < shards; ++sh) {
    result.queries += shard_queries[sh];
    result.dropped += shard_dropped[sh];
  }
  result.server_requests.resize(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    const ServerTotals& t = server_fleet.totals(s);
    result.server_requests[s] = t.requests;
    result.arrived += t.requests;
    result.kod += t.kod;
    result.batches += t.batches;
    result.cache_hits += t.cache_hits;
    result.cache_misses += t.cache_misses;
  }
  result.owd = owd.merged();

  result.threads = threads == 0 ? 1 : threads;
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (result.wall_s > 0.0) {
    result.qps = static_cast<double>(result.queries) / result.wall_s;
    result.qps_per_core = result.qps / static_cast<double>(result.threads);
  }
  return result;
}

}  // namespace mntp::fleet
