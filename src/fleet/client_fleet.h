// Struct-of-arrays client population.
//
// One client is ~30 bytes spread across parallel arrays instead of an
// object graph: the simulator's inner loops touch exactly the columns
// they need (poll scheduling reads two u64 arrays; OWD sampling reads
// two floats and a trait byte), which is what keeps the fleet path
// memory-bound-friendly at 10^6 clients. All columns here are IMMUTABLE
// after build() — per-run mutable state (next poll, backed-off interval,
// shadowing) lives in Simulator, so one fleet can be shared read-only
// across runs, threads and bench reps.
//
// The population mirrors logs::generate's calibration against the
// paper's Table 1 / Figures 1-2 (src/logs/spec.h): clients pick a home
// server weighted by Table-1 unique-client counts, a provider weighted
// by the Figure-1 structure (ISP-internal servers biased toward
// infrastructure NTP speakers), an SNTP/NTP speaker per the provider's
// SNTP share, and a base OWD from the provider's min-OWD distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "fleet/params.h"
#include "logs/spec.h"

namespace mntp::fleet {

/// Bit flags packed into ClientFleet::traits().
struct ClientTraits {
  static constexpr std::uint8_t kSntp = 1U << 0;
  static constexpr std::uint8_t kWireless = 1U << 1;
  static constexpr std::uint8_t kUnsynchronized = 1U << 2;
};

class ClientFleet {
 public:
  /// Deterministic single-pass build from `params.seed`. Gaussian
  /// columns (clock error, skew, SNR margin) are batch-filled through
  /// Rng::fill_normal; the categorical picks run in one serial loop.
  [[nodiscard]] static ClientFleet build(const FleetParams& params);

  [[nodiscard]] std::uint64_t size() const { return size_; }

  // Immutable columns (index = client id).
  [[nodiscard]] const std::vector<std::uint8_t>& traits() const {
    return traits_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& provider() const {
    return provider_;
  }
  [[nodiscard]] const std::vector<std::uint16_t>& server() const {
    return server_;
  }
  [[nodiscard]] const std::vector<float>& base_owd_ms() const {
    return base_owd_ms_;
  }
  [[nodiscard]] const std::vector<float>& clock_err_ms() const {
    return clock_err_ms_;
  }
  [[nodiscard]] const std::vector<float>& skew_ppm() const {
    return skew_ppm_;
  }
  [[nodiscard]] const std::vector<float>& snr_mean_db() const {
    return snr_mean_db_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& init_interval_ns() const {
    return init_interval_ns_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& init_next_poll_ns() const {
    return init_next_poll_ns_;
  }

  [[nodiscard]] Speaker speaker(std::uint64_t i) const {
    return (traits_[i] & ClientTraits::kSntp) != 0 ? Speaker::kSntp
                                                   : Speaker::kNtp;
  }
  [[nodiscard]] Population population(std::uint64_t i) const {
    return (traits_[i] & ClientTraits::kWireless) != 0 ? Population::kWireless
                                                       : Population::kWired;
  }
  [[nodiscard]] logs::ProviderCategory category(std::uint64_t i) const {
    return logs::kPaperProviders[provider_[i]].category;
  }

  /// Population tallies (computed once at build).
  [[nodiscard]] std::uint64_t sntp_clients() const { return sntp_clients_; }
  [[nodiscard]] std::uint64_t ntp_clients() const {
    return size_ - sntp_clients_;
  }
  [[nodiscard]] std::uint64_t wireless_clients() const {
    return wireless_clients_;
  }
  [[nodiscard]] std::uint64_t wired_clients() const {
    return size_ - wireless_clients_;
  }

 private:
  std::uint64_t size_ = 0;
  std::uint64_t sntp_clients_ = 0;
  std::uint64_t wireless_clients_ = 0;
  std::vector<std::uint8_t> traits_;
  std::vector<std::uint8_t> provider_;
  std::vector<std::uint16_t> server_;
  std::vector<float> base_owd_ms_;
  std::vector<float> clock_err_ms_;  // error at t=0 (huge when unsync)
  std::vector<float> skew_ppm_;
  std::vector<float> snr_mean_db_;   // meaningful for wireless clients
  std::vector<std::uint64_t> init_interval_ns_;
  std::vector<std::uint64_t> init_next_poll_ns_;  // first poll, in [0, interval)
};

}  // namespace mntp::fleet
