#include "fleet/server_fleet.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/rng.h"
#include "ntp/server.h"
#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::fleet {

namespace {
constexpr std::uint64_t kServerStream = 1;  // see client_fleet.cc seed map
constexpr double kNsPerMs = 1e6;
}  // namespace

ServerFleet::ServerFleet(const FleetParams& params, std::size_t servers)
    : seed_root_(core::derive_stream_seed(params.seed, kServerStream)),
      kod_limit_(params.kod_limit_per_slice),
      kod_backoff_factor_(params.kod_backoff_factor),
      kod_cap_ns_(static_cast<std::uint64_t>(params.kod_backoff_cap_s * 1e9)),
      cache_bucket_ns_(
          static_cast<std::uint64_t>(params.cache_bucket_ms * kNsPerMs)),
      batch_window_ns_(
          static_cast<std::uint64_t>(params.batch_window_ms * kNsPerMs)),
      server_err_sigma_ms_(params.server_err_sigma_ms),
      state_(servers) {
  obs::MetricsRegistry& m = obs::Telemetry::global().metrics();
  requests_counter_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    const std::string_view id = s < logs::kPaperServers.size()
                                    ? logs::kPaperServers[s].id
                                    : std::string_view("?");
    requests_counter_.push_back(
        m.sharded_counter(obs::metric_names::kFleetServerRequests,
                          obs::Labels{{"server", std::string(id)}}));
  }
  kod_counter_ = m.sharded_counter(obs::metric_names::kFleetServerKod);
  batches_counter_ = m.sharded_counter(obs::metric_names::kFleetServerBatches);
  cache_hit_counter_ =
      m.sharded_counter(obs::metric_names::kFleetServerCacheHits);
  cache_miss_counter_ =
      m.sharded_counter(obs::metric_names::kFleetServerCacheMisses);
}

void ServerFleet::process_slice(std::size_t server,
                                std::span<const ArrivalRecord> arrivals,
                                const ClientFleet& fleet,
                                std::span<std::uint64_t> interval_ns,
                                OwdCollector& owd) {
  State& st = state_[server];
  const std::uint64_t server_seed =
      core::derive_stream_seed(seed_root_, server);
  std::uint64_t slice_requests = 0;
  for (const ArrivalRecord& a : arrivals) {
    ++st.totals.requests;
    requests_counter_[server]->inc();
    // Batching: a new batch window opens a new batch. The cursor
    // persists across slices so a window straddling a slice boundary is
    // still one batch.
    const std::uint64_t batch = a.arrive_ns / batch_window_ns_;
    if (batch != st.prev_batch) {
      st.prev_batch = batch;
      ++st.totals.batches;
      batches_counter_->inc();
    }
    // KoD rate limit: over-limit requests get no time response; the
    // client backs off its poll interval (capped).
    if (++slice_requests > kod_limit_) {
      ++st.totals.kod;
      kod_counter_->inc();
      interval_ns[a.client] = ntp::kod_backoff_interval_ns(
          interval_ns[a.client], kod_backoff_factor_, kod_cap_ns_);
      continue;
    }
    // Response cache: the server's clock error is a pure function of
    // (server seed, cache bucket) — recomputed on a bucket change,
    // served from cache inside it.
    const std::uint64_t bucket = a.arrive_ns / cache_bucket_ns_;
    if (bucket != st.cached_bucket) {
      st.cached_bucket = bucket;
      core::SmallRng rng(core::derive_stream_seed(server_seed, bucket));
      st.cached_err_ms = rng.normal(0.0, server_err_sigma_ms_);
      ++st.totals.cache_misses;
      cache_miss_counter_->inc();
    } else {
      ++st.totals.cache_hits;
      cache_hit_counter_->inc();
    }
    const double owd_ms = a.partial_ms + st.cached_err_ms;
    owd.record(server, fleet.speaker(a.client), fleet.population(a.client),
               fleet.category(a.client), owd_ms);
  }
}

void ServerFleet::reset() {
  for (State& st : state_) st = State{};
}

}  // namespace mntp::fleet
