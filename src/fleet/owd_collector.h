// Per-(speaker, population) and per-provider-category OWD aggregation.
//
// Two consumers, two stores:
//
//   * the obs registry — fleet.owd_ms{speaker,population} and
//     fleet.category_owd_ms{category} obs::ShardedHdrHistograms (plus
//     the fleet.owd.invalid counter), so the fleet's distributions land
//     in run reports next to every other layer's metrics;
//   * per-slot local HdrHistograms — one slot per server, written only
//     by that server's Phase-B task (disjoint, no synchronization), and
//     merged in fixed slot order into a Summary after the run joins.
//
// The Summary is what FleetResult carries: it reflects exactly one run
// (the registry accumulates across a process's runs) and supports exact
// equality, which is what the determinism tests compare across thread
// and shard counts. HdrHistogram::merge is commutative and associative
// bit for bit, so the fixed-order merge equals any other order — the
// order is fixed anyway to make that property irrelevant rather than
// load-bearing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/params.h"
#include "logs/spec.h"
#include "obs/hdr_histogram.h"
#include "obs/metrics.h"

namespace mntp::fleet {

class OwdCollector {
 public:
  /// Binds registry handles from the current global obs context and
  /// sizes one local slot per writer (= per server). The validity
  /// window is the §3.1 filter: measured OWDs outside it count as
  /// invalid and enter no histogram.
  OwdCollector(std::size_t slots, double valid_min_ms, double valid_max_ms);

  /// Record one measured OWD from writer `slot`. Thread-safe across
  /// DISTINCT slots only (by design: one Phase-B task per server).
  void record(std::size_t slot, Speaker speaker, Population population,
              logs::ProviderCategory category, double owd_ms);

  struct Summary {
    /// [speaker][population], indexed by the enum values.
    std::array<std::array<obs::HdrHistogram, 2>, 2> by_class;
    /// Indexed by logs::ProviderCategory.
    std::array<obs::HdrHistogram, 4> by_category;
    std::uint64_t valid = 0;
    std::uint64_t invalid = 0;

    [[nodiscard]] bool operator==(const Summary&) const = default;
  };

  /// Merge every slot (fixed slot order) into one Summary.
  [[nodiscard]] Summary merged() const;

 private:
  struct Slot {
    std::array<std::array<obs::HdrHistogram, 2>, 2> by_class;
    std::array<obs::HdrHistogram, 4> by_category;
    std::uint64_t valid = 0;
    std::uint64_t invalid = 0;
    Slot();
  };

  double valid_min_ms_;
  double valid_max_ms_;
  std::vector<Slot> slots_;
  // Registry handles (shared across slots; Sharded* are thread-safe).
  std::array<std::array<obs::ShardedHdrHistogram*, 2>, 2> reg_class_{};
  std::array<obs::ShardedHdrHistogram*, 4> reg_category_{};
  obs::ShardedCounter* reg_invalid_ = nullptr;
};

}  // namespace mntp::fleet
