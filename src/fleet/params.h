// Fleet-scale client-population simulation: parameters and vocabulary.
//
// The per-client simulators (ntp::SntpClient, protocol::MntpEngine on a
// sim::EventQueue) answer "what does one client experience"; the paper's
// §3.1 measurement study asks the transposed question — "what does a
// *server* see from millions of clients". Replaying one event per query
// through the event kernel would spend the whole budget on queue churn.
// The fleet layer instead keeps the population in struct-of-arrays form
// (src/fleet/client_fleet.h) and advances it in time-sliced batches per
// shard (src/fleet/simulator.h), so the inner loop is a tight pass over
// contiguous arrays with no allocation and no priority queue.
//
// Determinism contract (the same one sim::ReplicationRunner and the
// sharded obs metrics obey): every random decision is a pure function of
// seeds, never of shard partitioning or thread scheduling. Client i's
// per-query stream is core::SmallRng(derive_stream_seed(client_seed,
// next_poll_ns)) — poll times strictly increase, so each query owns a
// unique stream — and server-side randomness is a pure function of
// (server seed, time bucket). Results are bit-identical for any
// --threads AND any shard count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mntp::fleet {

/// Protocol the client speaks (the paper's SNTP-vs-full-NTP split of
/// Figure 2: mobile providers are ≥95% SNTP).
enum class Speaker : std::uint8_t { kNtp = 0, kSntp = 1 };

/// Last-hop population tag: wired (fixed-line) or wireless (802.11 /
/// cellular last hop with MAC retries and heavy-tailed stalls).
enum class Population : std::uint8_t { kWired = 0, kWireless = 1 };

[[nodiscard]] constexpr std::string_view speaker_name(Speaker s) {
  return s == Speaker::kNtp ? "ntp" : "sntp";
}
[[nodiscard]] constexpr std::string_view population_name(Population p) {
  return p == Population::kWired ? "wired" : "wireless";
}

struct FleetParams {
  // --- Population ------------------------------------------------------
  std::uint64_t clients = 100'000;
  std::uint64_t seed = 1;
  /// Fraction of clients whose clock is wildly unsynchronized (their
  /// measured OWDs fall outside the validity window and are filtered,
  /// mirroring the Durairajan heuristic logs::generate models).
  double unsynchronized_fraction = 0.06;
  /// Synchronized clients: clock offset ~ N(0, sigma) ms, skew ~ N(0,
  /// sigma) ppm. Unsynchronized: |offset| uniform in [min,max] seconds.
  double clock_offset_sigma_ms = 20.0;
  double skew_sigma_ppm = 20.0;
  double unsync_offset_min_s = 30.0;
  double unsync_offset_max_s = 300.0;
  /// Non-mobile clients are wireless with this probability (mobile
  /// provider clients are always wireless).
  double wireless_fraction = 0.22;

  // --- Polling ---------------------------------------------------------
  /// SNTP speakers poll at a fixed per-client interval drawn uniformly
  /// from [min,max] s (the paper's SNTP stacks poll on app-defined
  /// timers, not NTP's adaptive schedule).
  double sntp_poll_min_s = 16.0;
  double sntp_poll_max_s = 112.0;
  /// NTP speakers poll at 2^k s, k uniform in [min,max] (RFC 5905 poll
  /// exponent range 6..10).
  int ntp_poll_min_log2 = 6;
  int ntp_poll_max_log2 = 10;

  // --- Time slicing ----------------------------------------------------
  double duration_s = 60.0;
  /// Batch granularity. Must stay below the minimum poll interval so a
  /// client fires at most once per slice (asserted at run()).
  double slice_s = 1.0;
  std::size_t shards = 64;

  // --- Server side -----------------------------------------------------
  /// Kiss-of-death rate limit: per server, requests beyond this count in
  /// one slice get a KoD instead of time; the client backs its poll
  /// interval off by `kod_backoff_factor`, capped at `kod_backoff_cap_s`.
  std::uint64_t kod_limit_per_slice = 1'500;
  double kod_backoff_factor = 4.0;
  double kod_backoff_cap_s = 2'048.0;
  /// Response cache: a server computes its transmit-timestamp error once
  /// per time bucket and serves every request in the bucket from cache.
  double cache_bucket_ms = 250.0;
  /// Request batching: arrivals within one window are processed as one
  /// batch (fleet.server.batches counts windows, not requests).
  double batch_window_ms = 10.0;
  /// Server clock error stddev (the per-bucket cached value), ms.
  double server_err_sigma_ms = 2.0;

  // --- Channel ---------------------------------------------------------
  // The fleet path defaults ONTO the fast paths WirelessChannelParams
  // keeps opt-in: there is no per-realization baseline to preserve here,
  // and at 10^6 clients the exp() per MAC attempt and per-tick OU draws
  // are the hot multiplies (see DESIGN.md §10). Turning either off is
  // only useful to measure what they buy.
  bool use_snr_lut = true;
  bool coarse_ou_advance = true;
  /// Mean SNR margin and its per-client spread (dB); per-query SNR adds
  /// the OU shadowing state.
  double snr_mean_db = 12.0;
  double snr_sigma_db = 3.0;
  double snr50_db = 8.0;
  double snr_slope_db = 2.2;
  double shadowing_sigma_db = 2.5;
  double shadowing_tau_s = 25.0;
  int max_retries = 6;
  double retry_backoff_ms = 5.0;
  /// Fixed-line last hop: plain Bernoulli loss, no retry delay.
  double wired_loss = 0.002;
  /// Per-sample OWD jitter: base * Pareto(1, shape); heavier tail for
  /// mobile-provider clients (logs::generate uses the same split).
  double pareto_shape_mobile = 2.2;
  double pareto_shape_fixed = 4.0;
  double owd_cap_ms = 3'000.0;

  // --- Measured-OWD validity window (§3.1 filter) ----------------------
  double owd_valid_min_ms = 0.0;
  double owd_valid_max_ms = 3'000.0;
};

}  // namespace mntp::fleet
