// Fleet report artifact: kind "mntp_fleet_report", schema_version 1.
//
// One whole-file JSON document per fleet run, written by
// bench/fleet_qps.cc under --fleet-out and validated by
// scripts/check_telemetry_schema.py --kind fleet. It carries the
// §3.1-style aggregates (per-server request totals a la Table 1,
// per-category and per-(speaker, population) OWD quantiles a la
// Figures 1-2), the conservation tallies the validator cross-checks,
// and the throughput block the bench gate reads.
#pragma once

#include <string>

#include "fleet/simulator.h"

namespace mntp::fleet {

/// Serialize the report document (pretty-printed, stable key order).
[[nodiscard]] std::string render_fleet_report(const FleetParams& params,
                                              const FleetResult& result);

/// Write the report to `path`. Returns false on I/O failure.
bool write_fleet_report(const std::string& path, const FleetParams& params,
                        const FleetResult& result);

}  // namespace mntp::fleet
