#include "fleet/client_fleet.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>

namespace mntp::fleet {

namespace {

// Seed namespace: streams 0/1/2 of the fleet seed belong to clients,
// servers and the population build respectively (see simulator.cc for
// the client/server halves). Keeping the three roots disjoint means a
// client id can never collide with a server index in seed space.
constexpr std::uint64_t kBuildStream = 2;

/// Cumulative Table-1 unique-client weights for the home-server pick.
std::array<double, logs::kPaperServers.size()> server_cumulative() {
  std::array<double, logs::kPaperServers.size()> cum{};
  double total = 0.0;
  for (std::size_t i = 0; i < logs::kPaperServers.size(); ++i) {
    total += static_cast<double>(logs::kPaperServers[i].unique_clients);
    cum[i] = total;
  }
  return cum;
}

/// Provider weights for one server class. ISP-internal servers serve
/// mostly infrastructure (routers): non-ISP providers are downweighted
/// x0.05, the same bias logs::generate applies.
std::array<double, logs::kPaperProviders.size()> provider_cumulative(
    bool isp_internal) {
  std::array<double, logs::kPaperProviders.size()> cum{};
  double total = 0.0;
  for (std::size_t i = 0; i < logs::kPaperProviders.size(); ++i) {
    double w = logs::kPaperProviders[i].client_weight;
    if (isp_internal &&
        logs::kPaperProviders[i].category != logs::ProviderCategory::kIsp) {
      w *= 0.05;
    }
    total += w;
    cum[i] = total;
  }
  return cum;
}

std::size_t pick_cumulative(std::span<const double> cum, double u) {
  const double x = u * cum.back();
  const auto it = std::upper_bound(cum.begin(), cum.end(), x);
  return std::min(static_cast<std::size_t>(it - cum.begin()),
                  cum.size() - 1);
}

constexpr std::uint64_t kNsPerSec = 1'000'000'000ULL;

}  // namespace

ClientFleet ClientFleet::build(const FleetParams& params) {
  if (params.clients == 0) {
    throw std::invalid_argument("ClientFleet: clients must be > 0");
  }
  const std::size_t n = static_cast<std::size_t>(params.clients);
  ClientFleet fleet;
  fleet.size_ = params.clients;
  fleet.traits_.resize(n);
  fleet.provider_.resize(n);
  fleet.server_.resize(n);
  fleet.base_owd_ms_.resize(n);
  fleet.clock_err_ms_.resize(n);
  fleet.skew_ppm_.resize(n);
  fleet.snr_mean_db_.resize(n);
  fleet.init_interval_ns_.resize(n);
  fleet.init_next_poll_ns_.resize(n);

  core::Rng rng(core::derive_stream_seed(params.seed, kBuildStream));

  // Gaussian columns first, batch-filled (Rng::fill_normal amortizes the
  // polar method's pair structure); the serial pass below overwrites the
  // entries that are not plain Gaussians (unsynchronized clock errors).
  std::vector<double> scratch(n);
  rng.fill_normal(scratch, 0.0, params.clock_offset_sigma_ms);
  for (std::size_t i = 0; i < n; ++i) {
    fleet.clock_err_ms_[i] = static_cast<float>(scratch[i]);
  }
  rng.fill_normal(scratch, 0.0, params.skew_sigma_ppm);
  for (std::size_t i = 0; i < n; ++i) {
    fleet.skew_ppm_[i] = static_cast<float>(scratch[i]);
  }
  rng.fill_normal(scratch, params.snr_mean_db, params.snr_sigma_db);
  for (std::size_t i = 0; i < n; ++i) {
    fleet.snr_mean_db_[i] = static_cast<float>(scratch[i]);
  }

  const auto server_cum = server_cumulative();
  const auto provider_cum_public = provider_cumulative(false);
  const auto provider_cum_internal = provider_cumulative(true);

  for (std::size_t i = 0; i < n; ++i) {
    // Home server weighted by Table-1 unique-client counts.
    const std::size_t s = pick_cumulative(server_cum, rng.uniform(0.0, 1.0));
    const logs::ServerSpec& server = logs::kPaperServers[s];
    fleet.server_[i] = static_cast<std::uint16_t>(s);

    // Provider, then the provider-derived traits.
    const std::size_t p = pick_cumulative(
        server.isp_internal ? provider_cum_internal : provider_cum_public,
        rng.uniform(0.0, 1.0));
    const logs::ProviderSpec& provider = logs::kPaperProviders[p];
    fleet.provider_[i] = static_cast<std::uint8_t>(p);

    std::uint8_t traits = 0;
    double sntp_p = provider.sntp_fraction;
    if (server.isp_internal) sntp_p *= 0.25;
    if (rng.bernoulli(sntp_p)) traits |= ClientTraits::kSntp;
    const bool mobile =
        provider.category == logs::ProviderCategory::kMobile;
    if (mobile || rng.bernoulli(params.wireless_fraction)) {
      traits |= ClientTraits::kWireless;
    }

    // Base (minimum) OWD from the provider's min-OWD distribution, the
    // same shapes logs::generate draws: lognormal around the median for
    // fixed-line providers, wide uniform for mobile. Clamped like the
    // log generator so no provider escapes its category band.
    double base_ms;
    if (mobile) {
      base_ms = rng.uniform(0.35 * provider.min_owd_median_ms,
                            1.75 * provider.min_owd_median_ms);
    } else {
      base_ms = rng.lognormal(std::log(provider.min_owd_median_ms),
                              provider.min_owd_sigma);
    }
    base_ms = std::clamp(base_ms, 1.0, 997.0);
    fleet.base_owd_ms_[i] = static_cast<float>(base_ms);

    if (rng.bernoulli(params.unsynchronized_fraction)) {
      traits |= ClientTraits::kUnsynchronized;
      const double mag_ms = 1'000.0 * rng.uniform(params.unsync_offset_min_s,
                                                  params.unsync_offset_max_s);
      fleet.clock_err_ms_[i] =
          static_cast<float>(rng.bernoulli(0.5) ? mag_ms : -mag_ms);
    }

    // Poll schedule: SNTP on an app-defined timer, NTP on a power-of-two
    // exponent. First poll lands uniformly inside one interval so the
    // fleet is phase-desynchronized from slice 0.
    double interval_s;
    if ((traits & ClientTraits::kSntp) != 0) {
      interval_s = rng.uniform(params.sntp_poll_min_s, params.sntp_poll_max_s);
    } else {
      const auto k = rng.uniform_int(params.ntp_poll_min_log2,
                                     params.ntp_poll_max_log2);
      interval_s = std::ldexp(1.0, static_cast<int>(k));
    }
    const auto interval_ns =
        static_cast<std::uint64_t>(interval_s * static_cast<double>(kNsPerSec));
    fleet.init_interval_ns_[i] = interval_ns;
    fleet.init_next_poll_ns_[i] = static_cast<std::uint64_t>(
        rng.uniform(0.0, 1.0) * static_cast<double>(interval_ns));

    fleet.traits_[i] = traits;
    if ((traits & ClientTraits::kSntp) != 0) ++fleet.sntp_clients_;
    if ((traits & ClientTraits::kWireless) != 0) ++fleet.wireless_clients_;
  }
  return fleet;
}

}  // namespace mntp::fleet
