// Time-sliced, sharded fleet simulator.
//
// Advancing 10^6 clients through sim::EventQueue would cost a
// priority-queue op plus an allocated closure per query; the fleet
// instead runs a two-phase loop over fixed time slices:
//
//   Phase A (parallel over client shards): each shard drains this
//     slice's slot of its calendar wheel, samples every due client's
//     channel + OWD, appends delivered queries to its per-(shard,
//     server) arrival buffer, and reschedules the client. The slice is
//     shorter than the minimum poll interval, so a client fires at most
//     once per slice.
//   Phase B (parallel over servers): each server gathers its arrivals
//     from every shard, sorts them by (arrival time, client id) — a
//     canonical order independent of sharding — and runs the
//     batching / response-cache / KoD pipeline (fleet/server_fleet.h).
//
// Determinism: every random draw is a pure function of seeds (per-query
// core::SmallRng streams keyed by (client seed, poll time); per-bucket
// server streams), aggregation is order-insensitive (integer counters,
// HdrHistogram merges), and cross-phase writes are disjoint (a client
// belongs to one shard and one home server). Results are bit-identical
// for any --threads and any shard count; fleet_determinism_test pins
// both axes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/client_fleet.h"
#include "fleet/owd_collector.h"
#include "fleet/params.h"
#include "fleet/server_fleet.h"
#include "net/snr_lut.h"
#include "obs/metrics.h"

namespace mntp::fleet {

struct FleetResult {
  // Population (copied from the fleet for the report writer).
  std::uint64_t clients = 0;
  std::uint64_t sntp_clients = 0;
  std::uint64_t ntp_clients = 0;
  std::uint64_t wireless_clients = 0;
  std::uint64_t wired_clients = 0;

  // Conservation: queries == arrived + dropped;
  // arrived == sum(server_requests);
  // cache_hits + cache_misses == arrived - kod;
  // owd.valid + owd.invalid == arrived - kod.
  std::uint64_t queries = 0;
  std::uint64_t arrived = 0;
  std::uint64_t dropped = 0;
  std::uint64_t kod = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<std::uint64_t> server_requests;
  OwdCollector::Summary owd;

  // Throughput (excluded from deterministic_equal: wall time is the one
  // quantity that legitimately varies across runs).
  std::size_t threads = 1;
  double wall_s = 0.0;
  double qps = 0.0;
  double qps_per_core = 0.0;

  /// Exact equality of everything except the throughput block — the
  /// contract fleet_determinism_test asserts across thread and shard
  /// counts.
  [[nodiscard]] bool deterministic_equal(const FleetResult& other) const;
};

class Simulator {
 public:
  /// Binds fleet.client.* registry handles from the current global obs
  /// context and prebuilds the shared SNR lookup table. The fleet is
  /// taken by shared_ptr so bench reps can reuse one immutable
  /// population across many run() calls.
  Simulator(std::shared_ptr<const ClientFleet> fleet, FleetParams params);

  /// One full run over `params.duration_s`, fanned out over
  /// `threads` workers (0/1 = exact serial path, per core::ThreadPool).
  /// Mutable client state is copied fresh per call, so repeated runs are
  /// independent and identical.
  [[nodiscard]] FleetResult run(std::size_t threads);

  [[nodiscard]] const FleetParams& params() const { return params_; }
  [[nodiscard]] const ClientFleet& fleet() const { return *fleet_; }

 private:
  std::shared_ptr<const ClientFleet> fleet_;
  FleetParams params_;
  net::SnrFailureLut snr_lut_;  // empty unless params_.use_snr_lut
  obs::ShardedCounter* queries_counter_;
  obs::ShardedCounter* dropped_counter_;
};

}  // namespace mntp::fleet
