// Least-squares linear regression.
//
// MNTP's drift estimator fits a first-degree polynomial (a trend line)
// through (time, offset) samples, extrapolates it to predict the next
// offset, and accepts/rejects samples by their squared error against that
// prediction (paper §4.2, Algorithm 1 `estimateDrift`). The incremental
// form supports the §5.3 refinement of re-estimating drift on every new
// accepted sample without refitting from scratch.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

namespace mntp::core {

/// Result of a linear fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1]; 1 for a perfect fit.
  /// Defined as 1 when the y values are constant.
  double r_squared = 1.0;
  std::size_t count = 0;

  /// Predicted y at x.
  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
  /// Residual of an observation against the fit.
  [[nodiscard]] double residual(double x, double y) const { return y - predict(x); }
};

/// Ordinary least squares over paired samples. Requires xs.size() ==
/// ys.size(). Returns nullopt with fewer than two points or when all x
/// values coincide (vertical line).
[[nodiscard]] std::optional<LinearFit> least_squares(std::span<const double> xs,
                                                     std::span<const double> ys);

/// Incremental least-squares accumulator: O(1) add and O(1) fit, with
/// support for removing the oldest contribution when used behind a window.
///
/// Internally keeps sums centered on the first x value to avoid
/// catastrophic cancellation when x values are large (nanosecond
/// timestamps) and closely spaced.
class IncrementalLinReg {
 public:
  /// Add an (x, y) observation.
  void add(double x, double y);

  /// Remove a previously added observation. The caller is responsible for
  /// only removing points that were added (used for sliding windows).
  void remove(double x, double y);

  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }

  /// Current fit, or nullopt when underdetermined.
  [[nodiscard]] std::optional<LinearFit> fit() const;

  /// Convenience: predicted y at x from the current fit; nullopt when
  /// the fit is underdetermined.
  [[nodiscard]] std::optional<double> predict(double x) const;

 private:
  std::size_t n_ = 0;
  double x0_ = 0.0;  // centering origin, fixed at the first added x
  bool have_origin_ = false;
  double sx_ = 0.0;
  double sy_ = 0.0;
  double sxx_ = 0.0;
  double sxy_ = 0.0;
  double syy_ = 0.0;
};

}  // namespace mntp::core
