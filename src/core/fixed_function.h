// Small-buffer, move-only callable wrapper for allocation-free hot paths.
//
// `FixedFunction<R(Args...), N>` stores any callable whose decayed type
// fits in N bytes (and is nothrow-move-constructible) inline, with no
// heap allocation on construction, move, invocation, or destruction —
// the property the event kernel's schedule/fire path depends on.
// Oversized or throwing-move callables still work, but fall back to a
// single heap allocation and bump a process-wide counter
// (`core::fixed_function_heap_fallbacks()`), so regressions are loud in
// tests instead of silently re-introducing per-event allocations.
//
// Differences from std::function, all deliberate:
//   * move-only (captured state is never copied, so move-only captures
//     like unique_ptr work and accidental copies cannot allocate);
//   * no target_type()/target() RTTI surface;
//   * invoking an empty FixedFunction is undefined (asserted in debug)
//     rather than throwing std::bad_function_call.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mntp::core {

namespace detail {

/// Process-wide count of FixedFunction constructions (any instantiation)
/// that exceeded the inline buffer and heap-allocated. Relaxed atomic:
/// totals are exact, ordering is irrelevant.
inline std::atomic<std::uint64_t> fixed_function_heap_fallbacks{0};

}  // namespace detail

/// Total heap-fallback constructions across all FixedFunction
/// instantiations since process start.
[[nodiscard]] inline std::uint64_t fixed_function_heap_fallbacks() {
  return detail::fixed_function_heap_fallbacks.load(std::memory_order_relaxed);
}

template <typename Signature, std::size_t N = 48>
class FixedFunction;

template <typename R, typename... Args, std::size_t N>
class FixedFunction<R(Args...), N> {
 public:
  static constexpr std::size_t kInlineBytes = N;

  FixedFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FixedFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  FixedFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  FixedFunction(FixedFunction&& other) noexcept { take(std::move(other)); }

  FixedFunction& operator=(FixedFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(std::move(other));
    }
    return *this;
  }

  FixedFunction(const FixedFunction&) = delete;
  FixedFunction& operator=(const FixedFunction&) = delete;

  ~FixedFunction() { reset(); }

  /// Destroy the held callable (if any); *this becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Destroy the current callable and construct `f` directly in this
  /// function's storage — no temporary FixedFunction, no relocation.
  /// The event queue's schedule path uses this to build the action
  /// in its slab slot in one step.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FixedFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      detail::fixed_function_heap_fallbacks.fetch_add(
          1, std::memory_order_relaxed);
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the held callable lives in the inline buffer (empty
  /// functions report true: they hold nothing on the heap).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ == nullptr || ops_->inline_storage;
  }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty FixedFunction");
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-construct dst's storage from src's, then destroy src's.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* storage, Args&&... args) -> R {
        return (*static_cast<Fn*>(storage))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        Fn* fn = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      },
      [](void* storage) noexcept { static_cast<Fn*>(storage)->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* storage, Args&&... args) -> R {
        return (**static_cast<Fn**>(storage))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* storage) noexcept { delete *static_cast<Fn**>(storage); },
      /*inline_storage=*/false,
  };

  void take(FixedFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  static constexpr std::size_t kStorageBytes =
      N < sizeof(void*) ? sizeof(void*) : N;

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kStorageBytes];
};

}  // namespace mntp::core
