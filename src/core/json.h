// Minimal JSON value model and recursive-descent parser.
//
// The observability layer *writes* JSON by hand (obs/report.h, the
// profiler's Chrome trace export) because emission is hot and append-only;
// this header is the *reading* half — used by tools/mntp_inspect to load
// run reports and profiles back in, and by tests to round-trip what the
// writers produced. It is deliberately small: full JSON per RFC 8259
// minus floating-point corner-case niceties (numbers parse via strtod),
// with integers preserved exactly when they fit in int64.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"

namespace mntp::core {

/// A parsed JSON document node. Value type with shared_ptr-backed
/// containers so copies are cheap; parsed documents are read-only.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  /// True for both kInt and kDouble.
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Accessors return a neutral default on type mismatch (0, "", empty);
  /// callers validating schemas check type() / has() first.
  [[nodiscard]] bool as_bool() const { return type_ == Type::kBool && bool_; }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& as_array() const;
  [[nodiscard]] const std::map<std::string, Json>& as_object() const;

  /// Object member lookup; returns a null Json when absent or not an
  /// object (chainable: j["a"]["b"].as_int()).
  [[nodiscard]] const Json& operator[](std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
  /// Array element; null Json when out of range.
  [[nodiscard]] const Json& at(std::size_t i) const;
  /// Array/object size; 0 otherwise.
  [[nodiscard]] std::size_t size() const;

  /// Parse a complete document. Trailing non-whitespace is an error.
  [[nodiscard]] static Result<Json> parse(std::string_view text);

  static Json make_null() { return Json(); }
  static Json make_bool(bool b);
  static Json make_int(std::int64_t v);
  static Json make_double(double v);
  static Json make_string(std::string s);
  static Json make_array(std::vector<Json> items);
  static Json make_object(std::map<std::string, Json> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::shared_ptr<const std::string> string_;
  std::shared_ptr<const std::vector<Json>> array_;
  std::shared_ptr<const std::map<std::string, Json>> object_;
};

}  // namespace mntp::core
