// Shared JSON emission: escaping, nesting, numeric formatting.
//
// Every observability artifact in this repo is JSON written by hand on a
// hot(ish) path — run reports (obs/report.cc), Chrome trace profiles
// (obs/profiler.cc), perf-suite baselines (bench/perf_suite.cc), query
// traces (obs/query_trace.cc). Before this header each writer carried
// its own copy of string escaping and number rendering; JsonWriter is
// the single implementation they all append through.
//
// The writer targets an append-only std::string (the callers' existing
// idiom: build one line/object, then stream it), tracks nesting and
// comma placement itself, and renders numbers the way the readers
// expect: finite doubles via %.17g (round-trippable through strtod),
// non-finite mapped to null (JSON has no inf/nan), integers exactly.
// With `indent > 0` it pretty-prints (newline + indentation per
// element) for human-facing artifacts like BENCH_results.json.
//
// It is a serializer, not a validator: keys outside objects or
// mismatched end_*() calls are caller bugs (asserted in debug builds).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mntp::core {

/// JSON string escaping (quotes, backslashes, control characters;
/// non-ASCII passes through as UTF-8).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Append `v` rendered as a JSON number: %.17g for finite values,
/// `null` for inf/nan.
void append_json_number(std::string& out, double v);

class JsonWriter {
 public:
  /// Appends to `out`; `indent` > 0 pretty-prints with that many spaces
  /// per nesting level, 0 emits the compact single-line form.
  explicit JsonWriter(std::string& out, int indent = 0)
      : out_(out), indent_(indent) {}

  JsonWriter& begin_object() {
    element_prologue();
    out_ += '{';
    levels_.push_back(Level{.in_object = true, .first = true});
    return *this;
  }
  JsonWriter& end_object() {
    assert(!levels_.empty() && levels_.back().in_object);
    close_level();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    element_prologue();
    out_ += '[';
    levels_.push_back(Level{.in_object = false, .first = true});
    return *this;
  }
  JsonWriter& end_array() {
    assert(!levels_.empty() && !levels_.back().in_object);
    close_level();
    out_ += ']';
    return *this;
  }

  /// Member key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view k) {
    assert(!levels_.empty() && levels_.back().in_object &&
           !levels_.back().key_pending);
    element_prologue();
    out_ += '"';
    out_ += json_escape(k);
    out_ += indent_ > 0 ? "\": " : "\":";
    levels_.back().key_pending = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    element_prologue();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    element_prologue();
    append_json_number(out_, v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    element_prologue();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    element_prologue();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    element_prologue();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& null() {
    element_prologue();
    out_ += "null";
    return *this;
  }
  /// Fixed-decimal number (e.g. microsecond fields rendered "%.3f").
  JsonWriter& value_fixed(double v, int decimals);
  /// Pre-rendered JSON; the caller vouches for its validity.
  JsonWriter& raw(std::string_view json) {
    element_prologue();
    out_ += json;
    return *this;
  }

  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  struct Level {
    bool in_object = false;
    bool first = true;
    bool key_pending = false;
  };

  /// Comma / newline / indentation before a key or a top-level value.
  void element_prologue();
  /// Newline + dedent before the closing bracket of a non-empty level.
  void close_level();

  std::string& out_;
  int indent_;
  std::vector<Level> levels_;
};

}  // namespace mntp::core
