// Descriptive statistics used throughout the measurement pipeline:
// streaming moments (Welford), order statistics / percentile boxes,
// empirical CDFs and RMSE — the quantities the paper reports for every
// experiment (mean/stddev offsets, min-OWD medians, tuner RMSE).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mntp::core {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable; O(1) memory regardless of sample count.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator into this one (parallel-safe combination).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero when fewer than two samples.
  [[nodiscard]] double variance() const;
  /// Sample variance (divides by n-1). Zero when fewer than two samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sample_stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary plus moments, computed from a full sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// One-line rendering: "n=... mean=... sd=... min/med/max=...".
  [[nodiscard]] std::string to_string() const;
};

/// Compute a Summary over the sample. Copies and sorts internally.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of a *sorted* sample; p in [0,100].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double p);

/// Linear-interpolated percentile of an unsorted sample (copies + sorts).
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Root mean square error of xs against a constant reference value
/// (the tuner measures offsets against a perfectly synchronized clock,
/// i.e. reference 0).
[[nodiscard]] double rmse(std::span<const double> xs, double reference = 0.0);

/// Mean of absolute values — the "average offset magnitude" the paper
/// quotes when comparing MNTP to SNTP.
[[nodiscard]] double mean_abs(std::span<const double> xs);

/// Maximum of absolute values.
[[nodiscard]] double max_abs(std::span<const double> xs);

/// Empirical cumulative distribution function over a sample.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::span<const double> xs);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Fraction of samples <= x, in [0,1].
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF: the q-quantile, q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  /// Evaluate the CDF at `points` evenly spaced x values covering the
  /// sample range; returns (x, F(x)) pairs for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi); samples outside clamp to the
/// first/last bin. Used for offset distribution rendering.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Center x-value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mntp::core
