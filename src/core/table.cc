#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mntp::core {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string fmt_count(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string ascii_plot(std::span<const Series> series, std::size_t width,
                       std::size_t height, const std::string& title) {
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
      any = true;
    }
  }
  if (!any) {
    out << "(no data)\n";
    return out.str();
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      auto col = static_cast<std::size_t>(
          (x - xmin) / (xmax - xmin) * static_cast<double>(width - 1) + 0.5);
      auto row = static_cast<std::size_t>(
          (y - ymin) / (ymax - ymin) * static_cast<double>(height - 1) + 0.5);
      col = std::min(col, width - 1);
      row = std::min(row, height - 1);
      grid[height - 1 - row][col] = s.marker;
    }
  }

  char label[64];
  std::snprintf(label, sizeof label, "%.4g", ymax);
  out << label << '\n';
  for (const auto& line : grid) out << '|' << line << '\n';
  std::snprintf(label, sizeof label, "%.4g", ymin);
  out << label << ' ';
  out << std::string(width > 20 ? width - 20 : 1, '-');
  std::snprintf(label, sizeof label, " x:[%.4g, %.4g]", xmin, xmax);
  out << label << '\n';
  for (const auto& s : series) {
    out << "  (" << s.marker << ") " << s.label << '\n';
  }
  return out.str();
}

std::string ascii_plot(const Series& s, std::size_t width, std::size_t height,
                       const std::string& title) {
  return ascii_plot(std::span<const Series>{&s, 1}, width, height, title);
}

}  // namespace mntp::core
