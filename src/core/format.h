// Shared printf-style string formatting.
//
// Library code never prints to stdout/stderr directly: human-readable
// renderings are built as strings through this one helper (and structured
// data goes through obs::Telemetry), so output policy stays with the
// callers — benches print, tests assert, exporters serialize.
#pragma once

#include <string>

namespace mntp::core {

/// vsnprintf into a std::string. Formats of any length are handled (the
/// buffer grows to fit); invalid format/argument combinations are
/// programming errors, as with printf itself.
[[nodiscard]] std::string strformat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mntp::core
