#include "core/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace mntp::core {

namespace {

const std::string kEmptyString;
const std::vector<Json> kEmptyArray;
const std::map<std::string, Json> kEmptyObject;
const Json kNullJson;

/// Cursor over the input with one-token-lookahead helpers. Parse errors
/// surface as core::Error (expected failure: malformed input file).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse_document() {
    skip_ws();
    Result<Json> v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Error error(const std::string& msg) const {
    return Error::malformed("JSON parse error at offset " +
                            std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<Json> parse_value() {
    if (eof()) return error("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Result<std::string> s = parse_string();
        if (!s.ok()) return s.error();
        return Json::make_string(std::move(s).take());
      }
      case 't':
        if (consume_literal("true")) return Json::make_bool(true);
        return error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json::make_bool(false);
        return error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json::make_null();
        return error("invalid literal");
      default: return parse_number();
    }
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool is_integer = true;
    while (!eof()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    if (is_integer) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json::make_int(v);
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return error("malformed number '" + token + "'");
    }
    return Json::make_double(d);
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (eof()) return error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) return error("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("invalid \\u escape digit");
          }
          // Encode the code point as UTF-8. Surrogate pairs are rare in
          // our telemetry (ASCII names); a lone surrogate encodes as-is.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return error("unknown escape sequence");
      }
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // '['
    std::vector<Json> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Json::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      Result<Json> v = parse_value();
      if (!v.ok()) return v;
      items.push_back(std::move(v).take());
      skip_ws();
      if (eof()) return error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Json::make_array(std::move(items));
      if (c != ',') return error("expected ',' or ']' in array");
    }
  }

  Result<Json> parse_object() {
    ++pos_;  // '{'
    std::map<std::string, Json> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Json::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return error("expected object key string");
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || text_[pos_++] != ':') return error("expected ':' after key");
      skip_ws();
      Result<Json> v = parse_value();
      if (!v.ok()) return v;
      members.insert_or_assign(std::move(key).take(), std::move(v).take());
      skip_ws();
      if (eof()) return error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Json::make_object(std::move(members));
      if (c != ',') return error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::int64_t Json::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
  return 0;
}

double Json::as_double() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return 0.0;
}

const std::string& Json::as_string() const {
  return type_ == Type::kString && string_ ? *string_ : kEmptyString;
}

const std::vector<Json>& Json::as_array() const {
  return type_ == Type::kArray && array_ ? *array_ : kEmptyArray;
}

const std::map<std::string, Json>& Json::as_object() const {
  return type_ == Type::kObject && object_ ? *object_ : kEmptyObject;
}

const Json& Json::operator[](std::string_view key) const {
  if (type_ != Type::kObject || !object_) return kNullJson;
  const auto it = object_->find(std::string(key));
  return it == object_->end() ? kNullJson : it->second;
}

bool Json::has(std::string_view key) const {
  return type_ == Type::kObject && object_ &&
         object_->find(std::string(key)) != object_->end();
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray || !array_ || i >= array_->size()) {
    return kNullJson;
  }
  return (*array_)[i];
}

std::size_t Json::size() const {
  if (type_ == Type::kArray && array_) return array_->size();
  if (type_ == Type::kObject && object_) return object_->size();
  return 0;
}

Json Json::make_bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::make_int(std::int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::make_double(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = v;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::make_shared<const std::string>(std::move(s));
  return j;
}

Json Json::make_array(std::vector<Json> items) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::make_shared<const std::vector<Json>>(std::move(items));
  return j;
}

Json Json::make_object(std::map<std::string, Json> members) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ =
      std::make_shared<const std::map<std::string, Json>>(std::move(members));
  return j;
}

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mntp::core
