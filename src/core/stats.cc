#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mntp::core {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::sample_stddev() const { return std::sqrt(sample_variance()); }

std::string Summary::to_string() const {
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3f sd=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f "
                "p90=%.3f p99=%.3f max=%.3f",
                count, mean, stddev, min, p25, median, p75, p90, p99, max);
  return buf;
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 25);
  s.median = percentile_sorted(sorted, 50);
  s.p75 = percentile_sorted(sorted, 75);
  s.p90 = percentile_sorted(sorted, 90);
  s.p99 = percentile_sorted(sorted, 99);
  return s;
}

double rmse(std::span<const double> xs, double reference) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    const double e = x - reference;
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double mean_abs(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::fabs(x);
  return acc / static_cast<double>(xs.size());
}

double max_abs(std::span<const double> xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, std::fabs(x));
  return m;
}

Cdf::Cdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  return percentile_sorted(sorted_, std::clamp(q, 0.0, 1.0) * 100.0);
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  const double step = points > 1 ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins>0 and hi>lo");
  }
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bin) + 0.5);
}

}  // namespace mntp::core
