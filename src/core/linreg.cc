#include "core/linreg.h"

#include <algorithm>
#include <cmath>

namespace mntp::core {

std::optional<LinearFit> least_squares(std::span<const double> xs,
                                       std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  IncrementalLinReg acc;
  for (std::size_t i = 0; i < xs.size(); ++i) acc.add(xs[i], ys[i]);
  return acc.fit();
}

void IncrementalLinReg::add(double x, double y) {
  if (!have_origin_) {
    x0_ = x;
    have_origin_ = true;
  }
  const double cx = x - x0_;
  ++n_;
  sx_ += cx;
  sy_ += y;
  sxx_ += cx * cx;
  sxy_ += cx * y;
  syy_ += y * y;
}

void IncrementalLinReg::remove(double x, double y) {
  if (n_ == 0) return;
  const double cx = x - x0_;
  --n_;
  sx_ -= cx;
  sy_ -= y;
  sxx_ -= cx * cx;
  sxy_ -= cx * y;
  syy_ -= y * y;
  if (n_ == 0) reset();
}

void IncrementalLinReg::reset() {
  n_ = 0;
  have_origin_ = false;
  x0_ = sx_ = sy_ = sxx_ = sxy_ = syy_ = 0.0;
}

std::optional<LinearFit> IncrementalLinReg::fit() const {
  if (n_ < 2) return std::nullopt;
  const auto n = static_cast<double>(n_);
  const double denom = n * sxx_ - sx_ * sx_;
  // All x values coincide: the slope is undefined.
  if (std::fabs(denom) < 1e-12 * std::max(1.0, n * sxx_)) return std::nullopt;

  LinearFit f;
  f.count = n_;
  f.slope = (n * sxy_ - sx_ * sy_) / denom;
  // Intercept in centered coordinates, then shift back to absolute x.
  const double centered_intercept = (sy_ - f.slope * sx_) / n;
  f.intercept = centered_intercept - f.slope * x0_;

  const double ss_tot = syy_ - sy_ * sy_ / n;
  if (ss_tot <= 1e-12 * std::max(1.0, syy_)) {
    f.r_squared = 1.0;  // constant y: the fit is exact
  } else {
    const double ss_reg = f.slope * (sxy_ - sx_ * sy_ / n);
    f.r_squared = std::clamp(ss_reg / ss_tot, 0.0, 1.0);
  }
  return f;
}

std::optional<double> IncrementalLinReg::predict(double x) const {
  const auto f = fit();
  if (!f) return std::nullopt;
  return f->predict(x);
}

}  // namespace mntp::core
