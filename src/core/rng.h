// Deterministic random number generation facade.
//
// Every stochastic component in the library (channel fading, cross-traffic
// arrivals, oscillator wander, server jitter, log synthesis) draws from an
// explicitly seeded `Rng`. There is no global RNG and no entropy source:
// given the same seeds, every experiment reproduces bit-identically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>

namespace mntp::core {

/// splitmix64 finalizer (Vigna): a single avalanching mix step. Used to
/// derive statistically independent seeds from structured inputs like
/// (base_seed, replicate_index) — sequential indices land far apart.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child generator; used to give each subsystem
  /// its own stream so adding draws in one subsystem does not perturb
  /// another (important for experiment comparability across variants).
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Index uniform in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Gaussian with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Smallest uniform variate `pareto` will raise to a negative power.
  /// Inverse-transform sampling computes xm * u^(-1/alpha); without a
  /// floor, a pathological near-zero u yields astronomically large
  /// values that rely solely on downstream caps. 2^-53 is one ulp of
  /// canonical [0,1) doubles, so the clamp binds with probability
  /// ~2^-53 per draw while guaranteeing a hard tail bound.
  static constexpr double kParetoMinU = 0x1p-53;

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed delays).
  /// Bounds convention: results lie in [xm, xm * 2^(53/alpha)] — the
  /// underlying uniform is clamped to [kParetoMinU, 1.0), so the heavy
  /// tail is hard-capped independent of any downstream min().
  [[nodiscard]] double pareto(double xm, double alpha) {
    const double u = std::max(uniform(0.0, 1.0), kParetoMinU);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Raw 64-bit draw (for deriving sub-seeds).
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mntp::core
