// Deterministic random number generation facade.
//
// Every stochastic component in the library (channel fading, cross-traffic
// arrivals, oscillator wander, server jitter, log synthesis) draws from an
// explicitly seeded `Rng`. There is no global RNG and no entropy source:
// given the same seeds, every experiment reproduces bit-identically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>

namespace mntp::core {

/// splitmix64 finalizer (Vigna): a single avalanching mix step. Used to
/// derive statistically independent seeds from structured inputs like
/// (base_seed, replicate_index) — sequential indices land far apart.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The stream-derivation rule: seed for stream `stream` of a subsystem
/// rooted at `base`. Adjacent stream indices land in statistically
/// unrelated parts of seed space (golden-ratio stride through the
/// splitmix64 finalizer), so a component can mint any number of
/// independent child streams without coordinating with its siblings.
/// `sim::replicate_seed` is the special case replicate 0 ↦ base,
/// replicate r>0 ↦ derive_stream_seed(base, r-1).
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                                         std::uint64_t stream) {
  return splitmix64(base + stream * 0x9E3779B97F4A7C15ull);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child generator; used to give each subsystem
  /// its own stream so adding draws in one subsystem does not perturb
  /// another (important for experiment comparability across variants).
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Index uniform in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Gaussian with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Smallest uniform variate `pareto` will raise to a negative power.
  /// Inverse-transform sampling computes xm * u^(-1/alpha); without a
  /// floor, a pathological near-zero u yields astronomically large
  /// values that rely solely on downstream caps. 2^-53 is one ulp of
  /// canonical [0,1) doubles, so the clamp binds with probability
  /// ~2^-53 per draw while guaranteeing a hard tail bound.
  static constexpr double kParetoMinU = 0x1p-53;

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed delays).
  /// Bounds convention: results lie in [xm, xm * 2^(53/alpha)] — the
  /// underlying uniform is clamped to [kParetoMinU, 1.0), so the heavy
  /// tail is hard-capped independent of any downstream min().
  [[nodiscard]] double pareto(double xm, double alpha) {
    const double u = std::max(uniform(0.0, 1.0), kParetoMinU);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Raw 64-bit draw (for deriving sub-seeds).
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  // --- Fast inline paths -------------------------------------------------
  //
  // The std::*_distribution wrappers above construct a distribution
  // object per call and their draw sequences are libstdc++
  // implementation details. The `_fast` variants below are
  // self-contained, draw-count documented, and cheap to inline — but
  // they consume the engine differently, so they are NOT drop-in
  // replacements on an existing stream: switching a call site changes
  // every downstream result. Use them for new code and for opt-in
  // model variants.

  /// Canonical uniform in [0,1): top 53 bits of exactly one engine
  /// draw.
  [[nodiscard]] double canonical() {
    return static_cast<double>(engine_() >> 11) * 0x1p-53;
  }

  /// Exponential with the given mean by inverse transform; exactly one
  /// engine draw per call. log1p(-u) keeps precision for small u and is
  /// finite for all u in [0,1).
  [[nodiscard]] double exponential_fast(double mean) {
    return -mean * std::log1p(-canonical());
  }

  /// Gaussian via the Marsaglia polar method with the spare deviate
  /// cached: amortized ~1.27 engine-draw pairs per two results, no
  /// transcendental calls beyond one log+sqrt per pair.
  [[nodiscard]] double normal_fast(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * canonical() - 1.0;
      v = 2.0 * canonical() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return mean + stddev * u * m;
  }

  /// Batch-fill `out` with independent normal_fast draws — hot loops
  /// that consume deviates in blocks amortize the call overhead and the
  /// polar method's pair structure.
  void fill_normal(std::span<double> out, double mean, double stddev) {
    for (double& x : out) x = normal_fast(mean, stddev);
  }

 private:
  std::mt19937_64 engine_;
  double spare_ = 0.0;       // cached second polar deviate
  bool have_spare_ = false;  // normal_fast spare validity
};

/// Counter-based mini generator: the stream-derivation rule turned into
/// a sequence. Draw k is exactly `derive_stream_seed(seed, k)`, so a
/// SmallRng is pure state-free arithmetic — two 64-bit multiplies and a
/// mix per draw, no warm-up, trivially constructible per (entity, event)
/// pair. That is the property the fleet layer is built on: every
/// simulated query owns the stream `SmallRng(derive_stream_seed(
/// client_seed, query_key))`, which makes each query's randomness a pure
/// function of seeds — independent of shard partitioning, thread
/// scheduling, and every other client's activity. An mt19937_64 is the
/// wrong tool there (2.5 KB of state and a ~312-word init per query);
/// splitmix64 passes BigCrush and costs nothing to seed.
///
/// The distribution helpers mirror Rng's `_fast` family (same math, same
/// draw-count documentation); they are NOT stream-compatible with Rng —
/// different engine, different realizations, same distributions.
class SmallRng {
 public:
  explicit constexpr SmallRng(std::uint64_t seed) : seed_(seed) {}

  /// Draw k of the stream: derive_stream_seed(seed, k), k = 0, 1, ...
  [[nodiscard]] constexpr std::uint64_t next_u64() {
    return derive_stream_seed(seed_, counter_++);
  }

  /// Canonical uniform in [0,1): top 53 bits of one draw.
  [[nodiscard]] double canonical() {
    return static_cast<double>(next_u64() >> 11) * 0x1p-53;
  }

  /// Bernoulli trial via one canonical draw.
  [[nodiscard]] bool bernoulli(double p) { return canonical() < p; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * canonical();
  }

  /// Exponential with the given mean; one draw (cf. Rng::exponential_fast).
  [[nodiscard]] double exponential(double mean) {
    return -mean * std::log1p(-canonical());
  }

  /// Gaussian via the Marsaglia polar method with the spare cached
  /// (cf. Rng::normal_fast).
  [[nodiscard]] double normal(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * canonical() - 1.0;
      v = 2.0 * canonical() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return mean + stddev * u * m;
  }

  /// Pareto with the same tail clamp as Rng::pareto (kParetoMinU floor).
  [[nodiscard]] double pareto(double xm, double alpha) {
    const double u = std::max(canonical(), Rng::kParetoMinU);
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace mntp::core
