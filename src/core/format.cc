#include "core/format.h"

#include <cstdarg>
#include <cstdio>

namespace mntp::core {

std::string strformat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace mntp::core
