// Core time primitives for the mntp library.
//
// All simulated time in this codebase is expressed as signed 64-bit
// nanosecond counts. `Duration` is a span of time; `TimePoint` is an
// instant measured from the simulation epoch (t = 0 at simulation start).
// Wall-clock time is never consulted anywhere in the library: experiments
// are fully deterministic functions of their RNG seeds.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace mntp::core {

/// A span of time with nanosecond resolution. Value type; cheap to copy.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors. Prefer these over the raw-tick constructor.
  static constexpr Duration nanoseconds(std::int64_t ns) { return Duration{ns}; }
  static constexpr Duration microseconds(std::int64_t us) { return Duration{us * 1000}; }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  static constexpr Duration minutes(std::int64_t m) { return Duration{m * 60'000'000'000}; }
  static constexpr Duration hours(std::int64_t h) { return Duration{h * 3'600'000'000'000}; }

  /// Construct from a floating-point second count (rounds to nearest ns).
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  /// Construct from a floating-point millisecond count.
  static constexpr Duration from_millis(double ms) { return from_seconds(ms * 1e-3); }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_micros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

  /// Scale by a floating-point factor (rounds toward nearest).
  [[nodiscard]] constexpr Duration scaled(double f) const {
    const double v = static_cast<double>(ns_) * f;
    return Duration{static_cast<std::int64_t>(v + (v >= 0 ? 0.5 : -0.5))};
  }

  [[nodiscard]] constexpr Duration abs() const { return ns_ < 0 ? Duration{-ns_} : *this; }

  /// Human-readable rendering, e.g. "12.5ms", "3.2s", "250us".
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant on the simulation timeline, measured from the simulation epoch.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint epoch() { return TimePoint{}; }
  static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::nanoseconds(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  /// Render as seconds since epoch, e.g. "t=12.500s".
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace mntp::core
