#include "core/thread_pool.h"

#include <utility>

namespace mntp::core {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers <= 1) return;  // inline-only
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (threads_.empty() || count == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Shared dynamic cursor: each runner claims the next unclaimed index
  // until the range is exhausted. Slot determinism comes from fn(i)
  // writing only to position i, not from claim order.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto runner = [cursor, first_error, error, error_mutex, end, &fn] {
    for (;;) {
      const std::size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
  };

  // One runner per worker (capped at the index count); the caller also
  // participates so a pool of N workers applies N+1-way parallelism only
  // bounded by the range itself.
  const std::size_t runners = std::min(threads_.size(), count);
  for (std::size_t r = 1; r < runners; ++r) submit(runner);
  runner();
  wait_idle();

  if (first_error->load()) std::rethrow_exception(*error);
}

std::size_t ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace mntp::core
