// Plain-text table and series rendering for bench output.
//
// Every bench binary regenerates a table or figure from the paper; these
// helpers print aligned tables (Table 1, Table 2) and ASCII time-series /
// CDF plots (the figures) so the "shape" of a result is visible directly
// in terminal output.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace mntp::core {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with single-space-padded columns and a rule under the header.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Numeric formatting helpers used when filling tables.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_int(long long v);
/// Format with thousands separators, e.g. 9,988,576 (Table 1 style).
[[nodiscard]] std::string fmt_count(unsigned long long v);

/// A labeled series of (x, y) points for ASCII plotting.
struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;
  char marker = '*';
};

/// Render one or more series into a character grid: x mapped across
/// `width` columns, y across `height` rows, with axis annotations giving
/// the data ranges. Later series draw over earlier ones.
[[nodiscard]] std::string ascii_plot(std::span<const Series> series,
                                     std::size_t width = 78,
                                     std::size_t height = 20,
                                     const std::string& title = {});

/// Convenience single-series overload.
[[nodiscard]] std::string ascii_plot(const Series& s, std::size_t width = 78,
                                     std::size_t height = 20,
                                     const std::string& title = {});

}  // namespace mntp::core
