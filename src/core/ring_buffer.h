// Fixed-capacity ring buffer.
//
// NTP's per-peer clock filter is an 8-stage shift register of (offset,
// delay, dispersion) tuples; MNTP's warm-up keeps a bounded window of
// recorded offsets. Both sit on this container: O(1) push with oldest
// eviction, stable iteration from oldest to newest.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace mntp::core {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer: capacity 0");
  }

  /// Append, evicting the oldest element when full.
  void push(T value) {
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % buf_.size();
    }
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  /// Element i, where 0 is the oldest retained element.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    return buf_[(head_ + i) % buf_.size()];
  }

  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  /// Copy the retained elements, oldest first.
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mntp::core
