#include "core/time.h"

#include <cmath>
#include <cstdio>

namespace mntp::core {

std::string Duration::to_string() const {
  char buf[48];
  const double a = std::fabs(static_cast<double>(ns_));
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fus", static_cast<double>(ns_) * 1e-3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns_) * 1e-6);
  } else if (a < 60e9) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(ns_) * 1e-9);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fmin", static_cast<double>(ns_) / 60e9);
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.3fs", static_cast<double>(ns_) * 1e-9);
  return buf;
}

}  // namespace mntp::core
