// NTP on-the-wire time formats (RFC 5905 §6).
//
// NTP represents time in two fixed-point formats:
//  * the 64-bit *timestamp* format: 32 bits of seconds since the NTP era
//    epoch (1900-01-01) and 32 bits of fractional second (~232 ps units);
//  * the 32-bit *short* format: 16-bit seconds, 16-bit fraction (~15 us),
//    used for root delay / root dispersion.
//
// The simulation maps its internal `TimePoint` (ns since simulation epoch)
// onto the NTP era by adding a fixed epoch offset, so wire packets carry
// genuine NTP timestamps and all conversions are exercised end-to-end.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "core/time.h"

namespace mntp::core {

/// Seconds between the NTP epoch (1900-01-01) and the simulation epoch.
/// Chosen to place simulations mid-era (year ~2016, matching the paper).
inline constexpr std::uint64_t kSimEpochNtpSeconds = 3'673'000'000ULL;

/// 64-bit NTP timestamp format: 32.32 fixed point seconds since 1900.
class NtpTimestamp {
 public:
  constexpr NtpTimestamp() = default;

  /// Construct from the raw 64-bit wire representation
  /// (seconds in the high 32 bits, fraction in the low 32 bits).
  static constexpr NtpTimestamp from_raw(std::uint64_t raw) { return NtpTimestamp{raw}; }

  /// Construct from explicit seconds/fraction fields.
  static constexpr NtpTimestamp from_parts(std::uint32_t seconds, std::uint32_t fraction) {
    return NtpTimestamp{(static_cast<std::uint64_t>(seconds) << 32) | fraction};
  }

  /// Convert a simulation instant into an NTP timestamp.
  static NtpTimestamp from_time_point(TimePoint t);

  /// The zero timestamp, which RFC 5905 defines as "unknown/unsynchronized".
  static constexpr NtpTimestamp unset() { return NtpTimestamp{0}; }

  [[nodiscard]] constexpr bool is_unset() const { return raw_ == 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }
  [[nodiscard]] constexpr std::uint32_t seconds() const {
    return static_cast<std::uint32_t>(raw_ >> 32);
  }
  [[nodiscard]] constexpr std::uint32_t fraction() const {
    return static_cast<std::uint32_t>(raw_ & 0xFFFF'FFFFULL);
  }

  /// Convert back to a simulation instant. Assumes the timestamp falls in
  /// the simulation's NTP era window (no era ambiguity handling needed for
  /// experiment-scale spans).
  [[nodiscard]] TimePoint to_time_point() const;

  /// Difference as a signed duration, correct for sub-era spans.
  [[nodiscard]] Duration operator-(NtpTimestamp o) const;

  constexpr auto operator<=>(const NtpTimestamp&) const = default;

  /// Render as "sssssssss.ffffff" seconds since the NTP epoch.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr NtpTimestamp(std::uint64_t raw) : raw_(raw) {}
  std::uint64_t raw_ = 0;
};

/// 32-bit NTP short format: 16.16 fixed point, used for root delay and
/// root dispersion fields.
class NtpShort {
 public:
  constexpr NtpShort() = default;

  static constexpr NtpShort from_raw(std::uint32_t raw) { return NtpShort{raw}; }

  /// Convert a non-negative duration, saturating at the format maximum
  /// (~65536 s) and rounding to the nearest representable value.
  static NtpShort from_duration(Duration d);

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr std::uint16_t seconds() const {
    return static_cast<std::uint16_t>(raw_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t fraction() const {
    return static_cast<std::uint16_t>(raw_ & 0xFFFFU);
  }

  [[nodiscard]] Duration to_duration() const;

  constexpr auto operator<=>(const NtpShort&) const = default;

 private:
  explicit constexpr NtpShort(std::uint32_t raw) : raw_(raw) {}
  std::uint32_t raw_ = 0;
};

}  // namespace mntp::core
