// Strong types for radio-level quantities.
//
// MNTP's channel gate compares RSSI (dBm), noise floor (dBm) and the SNR
// margin (dB). Mixing those up is exactly the kind of bug a strong type
// prevents, so they are distinct value types rather than bare doubles.
#pragma once

#include <compare>
#include <string>

namespace mntp::core {

/// Relative power ratio in decibels (e.g. an SNR margin).
class Decibels {
 public:
  constexpr Decibels() = default;
  explicit constexpr Decibels(double db) : db_(db) {}

  [[nodiscard]] constexpr double value() const { return db_; }
  constexpr auto operator<=>(const Decibels&) const = default;

  constexpr Decibels operator+(Decibels o) const { return Decibels{db_ + o.db_}; }
  constexpr Decibels operator-(Decibels o) const { return Decibels{db_ - o.db_}; }

  [[nodiscard]] std::string to_string() const;

 private:
  double db_ = 0.0;
};

/// Absolute power level in dBm (decibels relative to one milliwatt), the
/// unit wireless adaptors report RSSI and noise in.
class Dbm {
 public:
  constexpr Dbm() = default;
  explicit constexpr Dbm(double dbm) : dbm_(dbm) {}

  [[nodiscard]] constexpr double value() const { return dbm_; }
  constexpr auto operator<=>(const Dbm&) const = default;

  /// A power difference between two absolute levels is a ratio in dB.
  constexpr Decibels operator-(Dbm o) const { return Decibels{dbm_ - o.dbm_}; }
  /// Shifting an absolute level by a ratio yields an absolute level.
  constexpr Dbm operator+(Decibels d) const { return Dbm{dbm_ + d.value()}; }
  constexpr Dbm operator-(Decibels d) const { return Dbm{dbm_ - d.value()}; }

  [[nodiscard]] std::string to_string() const;

 private:
  double dbm_ = 0.0;
};

inline constexpr Decibels operator""_dB(long double v) {
  return Decibels{static_cast<double>(v)};
}
inline constexpr Dbm operator""_dBm(long double v) {
  return Dbm{static_cast<double>(v)};
}
inline constexpr Decibels operator""_dB(unsigned long long v) {
  return Decibels{static_cast<double>(v)};
}
inline constexpr Dbm operator""_dBm(unsigned long long v) {
  return Dbm{static_cast<double>(v)};
}

}  // namespace mntp::core
