#include "core/allan.h"

#include <cmath>

namespace mntp::core {

double allan_deviation_at(std::span<const double> phase_s, double tau0_s,
                          std::size_t m) {
  const std::size_t n = phase_s.size();
  if (m < 1 || n <= 2 * m || tau0_s <= 0.0) return 0.0;
  const double tau = static_cast<double>(m) * tau0_s;
  double acc = 0.0;
  const std::size_t terms = n - 2 * m;
  for (std::size_t i = 0; i < terms; ++i) {
    const double d = phase_s[i + 2 * m] - 2.0 * phase_s[i + m] + phase_s[i];
    acc += d * d;
  }
  return std::sqrt(acc / (2.0 * tau * tau * static_cast<double>(terms)));
}

std::vector<std::pair<double, double>> allan_deviation(
    std::span<const double> phase_s, double tau0_s) {
  std::vector<std::pair<double, double>> curve;
  for (std::size_t m = 1; 2 * m < phase_s.size(); m *= 2) {
    curve.emplace_back(static_cast<double>(m) * tau0_s,
                       allan_deviation_at(phase_s, tau0_s, m));
  }
  return curve;
}

double sigma_tau_slope(const std::vector<std::pair<double, double>>& curve) {
  if (curve.size() < 2) return 0.0;
  const auto& [tau0, s0] = curve.front();
  const auto& [tau1, s1] = curve.back();
  if (s0 <= 0.0 || s1 <= 0.0 || tau1 <= tau0) return 0.0;
  return std::log(s1 / s0) / std::log(tau1 / tau0);
}

}  // namespace mntp::core
