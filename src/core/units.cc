#include "core/units.h"

#include <cstdio>

namespace mntp::core {

std::string Decibels::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fdB", db_);
  return buf;
}

std::string Dbm::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fdBm", dbm_);
  return buf;
}

}  // namespace mntp::core
