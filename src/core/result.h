// Lightweight expected/error types.
//
// Expected failures (malformed packet, lost response, empty trace) are
// values, not exceptions; exceptions are reserved for programming errors
// (precondition violations). `Result<T>` carries either a T or an Error.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace mntp::core {

/// Machine-comparable error category plus a human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kMalformedPacket,
    kTimeout,
    kPacketLost,
    kRejected,       // sample rejected by a filter
    kKissOfDeath,    // server demanded rate reduction (RFC 5905 KoD)
    kUnavailable,    // channel/service not in a usable state
    kNotFound,
    kIo,
  };

  Code code = Code::kInvalidArgument;
  std::string message;

  [[nodiscard]] static Error invalid_argument(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  [[nodiscard]] static Error malformed(std::string msg) {
    return {Code::kMalformedPacket, std::move(msg)};
  }
  [[nodiscard]] static Error timeout(std::string msg) {
    return {Code::kTimeout, std::move(msg)};
  }
  [[nodiscard]] static Error lost(std::string msg) {
    return {Code::kPacketLost, std::move(msg)};
  }
  [[nodiscard]] static Error rejected(std::string msg) {
    return {Code::kRejected, std::move(msg)};
  }
  [[nodiscard]] static Error kiss_of_death(std::string msg) {
    return {Code::kKissOfDeath, std::move(msg)};
  }
  [[nodiscard]] static Error unavailable(std::string msg) {
    return {Code::kUnavailable, std::move(msg)};
  }
  [[nodiscard]] static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  [[nodiscard]] static Error io(std::string msg) {
    return {Code::kIo, std::move(msg)};
  }

  [[nodiscard]] const char* code_name() const;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  /// Access the value; throws std::logic_error if this holds an error.
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().message);
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().message);
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::logic_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(v_));
  }

  /// Access the error; throws std::logic_error if this holds a value.
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<Error>(v_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result specialization for operations that return no value.
class [[nodiscard]] Status {
 public:
  Status() = default;                             // success
  Status(Error error) : err_(std::move(error)) {} // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Status::error on success");
    return *err_;
  }

 private:
  std::optional<Error> err_;
};

}  // namespace mntp::core
