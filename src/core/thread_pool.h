// Fixed-size worker pool with a task queue and a deterministic
// parallel_for.
//
// The simulation kernel stays single-threaded by design; the pool exists
// for embarrassingly parallel *offline* work — scoring independent tuner
// configurations, replaying traces, batch analysis — where each unit of
// work is a pure function of its inputs. Two properties the rest of the
// codebase relies on:
//
//   1. Deterministic result placement. `parallel_for(begin, end, fn)`
//      invokes `fn(i)` exactly once for every i in [begin, end); callers
//      write results into slot i of a pre-sized output vector, so the
//      *output* is bit-identical to a serial loop regardless of worker
//      count or scheduling order. Only side effects that go through
//      thread-safe channels (obs counters, mutexed sinks) may occur
//      inside fn.
//   2. Serial fallback. A pool constructed with 0 or 1 workers runs
//      parallel_for inline on the calling thread — no worker threads are
//      ever spawned — which makes "--threads 1" exactly the serial code
//      path, not a one-worker approximation of it.
//
// Work distribution is dynamic (workers pull the next index from a shared
// atomic cursor), so uneven per-index cost — common when emulating a
// parameter grid where some configs act far more often — load-balances
// without tuning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mntp::core {

class ThreadPool {
 public:
  /// Spawn `workers` threads; 0 or 1 means "run everything inline" and
  /// spawns none.
  explicit ThreadPool(std::size_t workers);

  /// Drains the queue (pending tasks still run), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when the pool is inline-only).
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Enqueue one task. Inline-only pools run it immediately on the
  /// calling thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Invoke `fn(i)` once for each i in [begin, end), distributed across
  /// the workers, and block until all indices are done. Exceptions thrown
  /// by fn are captured and the first one is rethrown here. Reentrant
  /// calls from inside fn are not supported.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// A sensible worker count for CPU-bound work on this host: the
  /// hardware concurrency, or 1 when it cannot be determined.
  [[nodiscard]] static std::size_t default_workers();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;  // queued + currently executing tasks
  bool stopping_ = false;
};

}  // namespace mntp::core
