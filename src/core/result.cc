#include "core/result.h"

namespace mntp::core {

const char* Error::code_name() const {
  switch (code) {
    case Code::kInvalidArgument: return "invalid_argument";
    case Code::kMalformedPacket: return "malformed_packet";
    case Code::kTimeout: return "timeout";
    case Code::kPacketLost: return "packet_lost";
    case Code::kRejected: return "rejected";
    case Code::kKissOfDeath: return "kiss_of_death";
    case Code::kUnavailable: return "unavailable";
    case Code::kNotFound: return "not_found";
    case Code::kIo: return "io";
  }
  return "unknown";
}

}  // namespace mntp::core
