#include "core/json_writer.h"

#include <cmath>
#include <cstdio>

namespace mntp::core {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

JsonWriter& JsonWriter::value_fixed(double v, int decimals) {
  element_prologue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  out_ += buf;
  return *this;
}

void JsonWriter::element_prologue() {
  if (levels_.empty()) return;
  Level& top = levels_.back();
  if (top.in_object && top.key_pending) {
    // This element is the value for the pending key; no separator.
    top.key_pending = false;
    return;
  }
  if (!top.first) out_ += ',';
  top.first = false;
  if (indent_ > 0) {
    out_ += '\n';
    out_.append(static_cast<size_t>(indent_) * levels_.size(), ' ');
  }
}

void JsonWriter::close_level() {
  const bool was_empty = levels_.back().first;
  levels_.pop_back();
  if (indent_ > 0 && !was_empty) {
    out_ += '\n';
    out_.append(static_cast<size_t>(indent_) * levels_.size(), ' ');
  }
}

}  // namespace mntp::core
