#include "core/ntp_timestamp.h"

#include <cmath>
#include <cstdio>

namespace mntp::core {

namespace {
constexpr double kFrac32 = 4294967296.0;  // 2^32
constexpr double kFrac16 = 65536.0;       // 2^16
}  // namespace

NtpTimestamp NtpTimestamp::from_time_point(TimePoint t) {
  // Split into whole seconds and a nanosecond remainder; supports negative
  // simulation times (pre-epoch instants used in a few tests).
  std::int64_t ns = t.ns();
  std::int64_t sec = ns / 1'000'000'000;
  std::int64_t rem = ns % 1'000'000'000;
  if (rem < 0) {
    sec -= 1;
    rem += 1'000'000'000;
  }
  const std::uint64_t ntp_sec =
      kSimEpochNtpSeconds + static_cast<std::uint64_t>(sec);
  const auto frac = static_cast<std::uint32_t>(
      (static_cast<double>(rem) * kFrac32) / 1e9 + 0.5);
  // frac can round up to 2^32 for rem just below a full second.
  if (frac == 0 && rem > 500'000'000) {
    return from_parts(static_cast<std::uint32_t>(ntp_sec + 1), 0);
  }
  return from_parts(static_cast<std::uint32_t>(ntp_sec), frac);
}

TimePoint NtpTimestamp::to_time_point() const {
  const auto sec =
      static_cast<std::int64_t>(seconds()) - static_cast<std::int64_t>(kSimEpochNtpSeconds);
  const auto frac_ns = static_cast<std::int64_t>(
      static_cast<double>(fraction()) * 1e9 / kFrac32 + 0.5);
  return TimePoint::from_ns(sec * 1'000'000'000 + frac_ns);
}

Duration NtpTimestamp::operator-(NtpTimestamp o) const {
  // Subtract in the 64-bit fixed-point domain; the signed reinterpretation
  // yields the correct result for spans shorter than half an era.
  const auto diff = static_cast<std::int64_t>(raw_ - o.raw_);
  const double seconds_diff = static_cast<double>(diff) / kFrac32;
  return Duration::from_seconds(seconds_diff);
}

std::string NtpTimestamp::to_string() const {
  char buf[40];
  const double frac_sec = static_cast<double>(fraction()) / kFrac32;
  std::snprintf(buf, sizeof buf, "%u.%06u", seconds(),
                static_cast<unsigned>(frac_sec * 1e6));
  return buf;
}

NtpShort NtpShort::from_duration(Duration d) {
  if (d < Duration::zero()) return NtpShort::from_raw(0);
  const double s = d.to_seconds();
  if (s >= 65535.999985) return NtpShort::from_raw(0xFFFF'FFFFU);
  return NtpShort::from_raw(static_cast<std::uint32_t>(s * kFrac16 + 0.5));
}

Duration NtpShort::to_duration() const {
  return Duration::from_seconds(static_cast<double>(raw_) / kFrac16);
}

}  // namespace mntp::core
