// Allan deviation: the standard characterization of oscillator stability.
//
// The clock models in this library claim specific noise types — white
// phase noise on readings, random-walk frequency modulation (wander), a
// constant skew. Allan deviation is how the timing community verifies
// such claims: each noise type produces a characteristic slope on the
// sigma-tau log-log plot (white PM ~ tau^-1, white FM ~ tau^-1/2,
// random-walk FM ~ tau^+1/2; a constant frequency offset contributes
// nothing because ADEV differentiates twice). The calibration example and
// the clock-model tests use this to show the oscillator produces the
// advertised noise mix.
//
// Implemented as the overlapping Allan deviation over a uniformly sampled
// phase (time-offset) series x_i taken every tau0 seconds:
//   sigma_y^2(m*tau0) = sum (x_{i+2m} - 2 x_{i+m} + x_i)^2
//                       / (2 (m*tau0)^2 (N - 2m))
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace mntp::core {

/// Overlapping Allan deviation at averaging factor m (tau = m * tau0).
/// Requires xs.size() > 2m and m >= 1; returns 0 otherwise.
[[nodiscard]] double allan_deviation_at(std::span<const double> phase_s,
                                        double tau0_s, std::size_t m);

/// The sigma-tau curve at octave-spaced averaging factors
/// m = 1, 2, 4, ... while 2m < N. Returns (tau seconds, ADEV) pairs.
[[nodiscard]] std::vector<std::pair<double, double>> allan_deviation(
    std::span<const double> phase_s, double tau0_s);

/// Log-log slope between the first and last points of a sigma-tau curve —
/// the quantity that identifies the dominant noise type over that range.
[[nodiscard]] double sigma_tau_slope(
    const std::vector<std::pair<double, double>>& curve);

}  // namespace mntp::core
