// Canonical metric, event-category and profiler-span name constants.
//
// A metric series is keyed by its name *string*: a typo at one call site
// does not fail to compile, it silently creates a second series that
// dashboards and the schema checker then miss. Every name shared between
// an emitter and a consumer (report schema checks, bench_compare
// tolerances, mntp-inspect tables, tests) therefore lives here, and call
// sites reference the constant.
//
// Naming convention: `<layer>.<component>.<quantity>` for metrics
// (layer prefixes sim./net./ntp./mntp./tuner. are what the CTest schema
// check asserts per-layer coverage against); bare layer tokens for event
// categories; `<layer>.<scope>` for profiler spans.
#pragma once

namespace mntp::obs {

/// Trace-event categories (TraceEvent::category).
namespace categories {
inline constexpr const char kSim[] = "sim";
inline constexpr const char kNet[] = "net";
inline constexpr const char kNtp[] = "ntp";
inline constexpr const char kMntp[] = "mntp";
inline constexpr const char kTuner[] = "tuner";
inline constexpr const char kFleet[] = "fleet";
}  // namespace categories

/// Metric (counter/gauge/histogram) names.
namespace metric_names {
// sim: event kernel
inline constexpr const char kSimEventsDispatched[] = "sim.events_dispatched";
inline constexpr const char kSimQueueDepth[] = "sim.queue_depth";

// net: wireless last hop, cross traffic, cellular
inline constexpr const char kNetWifiTx[] = "net.wifi.tx";
inline constexpr const char kNetWifiDrop[] = "net.wifi.drop";
inline constexpr const char kNetWifiDelayMs[] = "net.wifi.delay_ms";
inline constexpr const char kNetWifiBadStateTransitions[] =
    "net.wifi.bad_state_transitions";
inline constexpr const char kNetXtrafficDownloads[] = "net.xtraffic.downloads";
inline constexpr const char kNetXtrafficUtilization[] =
    "net.xtraffic.utilization";
inline constexpr const char kNetCellTx[] = "net.cell.tx";
inline constexpr const char kNetCellDrop[] = "net.cell.drop";
inline constexpr const char kNetCellDelayMs[] = "net.cell.delay_ms";
inline constexpr const char kNetCellCongestionEpisodes[] =
    "net.cell.congestion_episodes";

// ntp: query engine and clock filter
inline constexpr const char kNtpQueryOwdMs[] = "ntp.query.owd_ms";
inline constexpr const char kNtpServerRequests[] = "ntp.server.requests";
inline constexpr const char kNtpQuerySent[] = "ntp.query.sent";
inline constexpr const char kNtpQueryOk[] = "ntp.query.ok";
inline constexpr const char kNtpQueryTimeout[] = "ntp.query.timeout";
inline constexpr const char kNtpQueryError[] = "ntp.query.error";
inline constexpr const char kNtpQueryRttMs[] = "ntp.query.rtt_ms";
inline constexpr const char kNtpFilterSamples[] = "ntp.filter.samples";
inline constexpr const char kNtpFilterSuppressed[] = "ntp.filter.suppressed";

// mntp: engine and client
inline constexpr const char kMntpSample[] = "mntp.sample";
inline constexpr const char kMntpRounds[] = "mntp.rounds";
inline constexpr const char kMntpDeferrals[] = "mntp.deferrals";
inline constexpr const char kMntpResets[] = "mntp.resets";
inline constexpr const char kMntpClientRequests[] = "mntp.client.requests";
inline constexpr const char kMntpClientForcedEmissions[] =
    "mntp.client.forced_emissions";
inline constexpr const char kMntpClientClockSteps[] =
    "mntp.client.clock_steps";

// tuner
inline constexpr const char kTunerConfigsScored[] = "tuner.configs_scored";

// fleet: the SoA client-population simulator (src/fleet/). Counters are
// ShardedCounters bumped from worker threads; the OWD families are
// ShardedHdrHistograms labelled by (speaker, population) and by provider
// category respectively — the aggregates behind the §3.1-style tables
// fleet_qps prints and the mntp_fleet_report artifact embeds.
inline constexpr const char kFleetClientQueries[] = "fleet.client.queries";
inline constexpr const char kFleetClientDropped[] = "fleet.client.dropped";
inline constexpr const char kFleetServerRequests[] = "fleet.server.requests";
inline constexpr const char kFleetServerKod[] = "fleet.server.kod";
inline constexpr const char kFleetServerBatches[] = "fleet.server.batches";
inline constexpr const char kFleetServerCacheHits[] =
    "fleet.server.cache_hits";
inline constexpr const char kFleetServerCacheMisses[] =
    "fleet.server.cache_misses";
inline constexpr const char kFleetOwdInvalid[] = "fleet.owd.invalid";
inline constexpr const char kFleetOwdMs[] = "fleet.owd_ms";
inline constexpr const char kFleetCategoryOwdMs[] = "fleet.category_owd_ms";

// obs: the observability layer metering itself. The query-trace family
// reconciles the exported trace artifact against what was minted
// (kept + sampled_out + dropped == minted); the self family answers
// "what does telemetry cost" — artifact bytes on disk, streaming-sink
// flush count, and the wall time of the registry merge at snapshot.
// Exported by BenchTelemetry::finalize under --obs-self (opt-in so
// default artifacts stay byte-stable across releases).
inline constexpr const char kObsQueryTraceKept[] = "obs.query_trace.kept";
inline constexpr const char kObsQueryTraceSampledOut[] =
    "obs.query_trace.sampled_out";
inline constexpr const char kObsQueryTraceDropped[] =
    "obs.query_trace.dropped";
inline constexpr const char kObsSelfBytesWritten[] = "obs.self.bytes_written";
inline constexpr const char kObsSelfStreamFlushes[] =
    "obs.self.stream_flushes";
inline constexpr const char kObsSelfMergeWallUs[] = "obs.self.merge_wall_us";

// timeline-only series (obs/timeseries.h probes; these appear in the
// --timeline-out artifact, not the run report)
inline constexpr const char kTsMntpOffsetMs[] = "mntp.offset_ms";
inline constexpr const char kTsMntpDriftPpm[] = "mntp.drift_ppm";
inline constexpr const char kTsMntpGateState[] = "mntp.gate_state";
inline constexpr const char kTsMntpDeferrals[] = "mntp.deferrals";
inline constexpr const char kTsNtpOwdMs[] = "ntp.owd_ms";
inline constexpr const char kTsSimQueueDepth[] = "sim.queue_depth";
inline constexpr const char kTsNetDelayMs[] = "net.delay_ms";
inline constexpr const char kTsNetUtilization[] = "net.utilization";
inline constexpr const char kTsDeviceEnergyMj[] = "device.energy_mj";
inline constexpr const char kTsDeviceRadioOnS[] = "device.radio_on_s";
inline constexpr const char kTsNtpServerRequests[] = "ntp.server.requests";
}  // namespace metric_names

/// Profiler span names (obs/profiler.h). The sim.run/run_until names
/// deliberately match the SpanTimer histogram prefixes so wall-time
/// histograms and span profiles line up by name.
namespace spans {
inline constexpr const char kSimRun[] = "sim.run";
inline constexpr const char kSimRunUntil[] = "sim.run_until";
inline constexpr const char kEngineRound[] = "mntp.engine.round";
inline constexpr const char kTunerSearch[] = "tuner.search";
inline constexpr const char kTunerScoreConfig[] = "tuner.score_config";
inline constexpr const char kLogsGenerate[] = "logs.generate";
inline constexpr const char kLogsClassify[] = "logs.classify";
}  // namespace spans

}  // namespace mntp::obs
