#include "obs/timeseries.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/json_writer.h"

namespace mntp::obs {

namespace {

thread_local int suppress_depth = 0;

}  // namespace

// --- TimeSeries -----------------------------------------------------------

TimeSeries::TimeSeries(std::string name, Labels labels, std::string probe_kind,
                       std::size_t capacity)
    : name_(std::move(name)),
      labels_(std::move(labels)),
      probe_kind_(std::move(probe_kind)),
      capacity_(std::max<std::size_t>(capacity, 2)) {}

void TimeSeries::append(std::int64_t t_ns, double value) {
  ++samples_;
  // The trailing point is "open" while it holds fewer than stride_ raw
  // samples; fold into it, otherwise start a new point (compacting 2:1
  // first when the buffer is full).
  if (!points_.empty() && points_.back().count < stride_) {
    TimeSeriesPoint& p = points_.back();
    p.t_ns = t_ns;
    p.min = std::min(p.min, value);
    p.max = std::max(p.max, value);
    p.sum += value;
    p.last = value;
    ++p.count;
    return;
  }
  if (points_.size() == capacity_) compact();
  points_.push_back(TimeSeriesPoint{
      .t_ns = t_ns, .min = value, .max = value, .sum = value, .last = value,
      .count = 1});
}

void TimeSeries::compact() {
  // Merge adjacent pairs in place: point i absorbs point i+1, halving the
  // buffer; each surviving point now spans twice as many raw samples.
  std::size_t w = 0;
  for (std::size_t r = 0; r < points_.size(); r += 2) {
    TimeSeriesPoint merged = points_[r];
    if (r + 1 < points_.size()) {
      const TimeSeriesPoint& b = points_[r + 1];
      merged.t_ns = b.t_ns;
      merged.min = std::min(merged.min, b.min);
      merged.max = std::max(merged.max, b.max);
      merged.sum += b.sum;
      merged.last = b.last;
      merged.count += b.count;
    }
    points_[w++] = merged;
  }
  points_.resize(w);
  stride_ *= 2;
}

// --- ProbeHandle ----------------------------------------------------------

ProbeHandle::ProbeHandle(ProbeHandle&& other) noexcept
    : recorder_(std::exchange(other.recorder_, nullptr)),
      id_(std::exchange(other.id_, 0)) {}

ProbeHandle& ProbeHandle::operator=(ProbeHandle&& other) noexcept {
  if (this != &other) {
    reset();
    recorder_ = std::exchange(other.recorder_, nullptr);
    id_ = std::exchange(other.id_, 0);
  }
  return *this;
}

ProbeHandle::~ProbeHandle() { reset(); }

void ProbeHandle::reset() {
  if (recorder_ != nullptr) {
    recorder_->unregister(id_);
    recorder_ = nullptr;
    id_ = 0;
  }
}

// --- TimeSeriesRecorder ---------------------------------------------------

TimeSeriesRecorder::TimeSeriesRecorder() : TimeSeriesRecorder(Options{}) {}

TimeSeriesRecorder::TimeSeriesRecorder(Options options) : options_(options) {}

void TimeSeriesRecorder::set_cadence(core::Duration cadence) {
  if (cadence <= core::Duration::zero()) {
    throw std::invalid_argument("TimeSeriesRecorder: cadence must be > 0");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  cadence_ = cadence;
}

core::Duration TimeSeriesRecorder::cadence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cadence_;
}

TimeSeriesRecorder::SuppressScope::SuppressScope(bool engage)
    : engaged_(engage) {
  if (engaged_) ++suppress_depth;
}

TimeSeriesRecorder::SuppressScope::~SuppressScope() {
  if (engaged_) --suppress_depth;
}

bool TimeSeriesRecorder::suppressed() { return suppress_depth > 0; }

ProbeHandle TimeSeriesRecorder::register_probe(std::string_view name,
                                               Labels labels,
                                               std::string probe_kind, Probe fn,
                                               std::uint64_t initial_counter) {
  if (!capturing()) return {};
  std::lock_guard<std::mutex> lock(mutex_);
  // Always a fresh series: a second registration under the same
  // name+labels (another testbed, another client) gets a disambiguating
  // suffix instead of splicing into the first one's timeline.
  std::string unique_name(name);
  std::size_t duplicates = 0;
  for (const auto& s : series_) {
    if (s->name() == name || (s->name().rfind(std::string(name) + "#", 0) == 0)) {
      if (s->labels() == labels) ++duplicates;
    }
  }
  if (duplicates > 0) {
    unique_name += "#" + std::to_string(duplicates + 1);
  }
  series_.push_back(std::make_unique<TimeSeries>(
      std::move(unique_name), std::move(labels), std::move(probe_kind),
      options_.series_capacity));
  Registration reg;
  reg.id = next_id_++;
  reg.fn = std::move(fn);
  reg.series = series_.back().get();
  reg.last_counter = initial_counter;
  probes_.push_back(std::move(reg));
  return ProbeHandle(this, probes_.back().id);
}

ProbeHandle TimeSeriesRecorder::probe(std::string_view name, Labels labels,
                                      Probe fn) {
  return register_probe(name, std::move(labels), "callback", std::move(fn),
                        0);
}

ProbeHandle TimeSeriesRecorder::counter_probe(std::string_view name,
                                              Labels labels,
                                              const Counter* counter) {
  // The delta computation needs per-registration state; stash the counter
  // pointer in the closure and the previous reading in the registration
  // (updated by sample()). The closure returns the RAW value; sample()
  // differences it.
  return register_probe(
      name, std::move(labels), "counter",
      [counter](core::TimePoint) -> std::optional<double> {
        return static_cast<double>(counter->value());
      },
      counter->value());
}

ProbeHandle TimeSeriesRecorder::counter_probe(std::string_view name,
                                              Labels labels,
                                              const ShardedCounter* counter) {
  return register_probe(
      name, std::move(labels), "counter",
      [counter](core::TimePoint) -> std::optional<double> {
        return static_cast<double>(counter->value());
      },
      counter->value());
}

ProbeHandle TimeSeriesRecorder::gauge_probe(std::string_view name,
                                            Labels labels,
                                            const Gauge* gauge) {
  return register_probe(
      name, std::move(labels), "gauge",
      [gauge](core::TimePoint) -> std::optional<double> {
        return gauge->value();
      },
      0);
}

void TimeSeriesRecorder::unregister(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(probes_,
                [id](const Registration& r) { return r.id == id; });
}

void TimeSeriesRecorder::sample(core::TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Registration& reg : probes_) {
    const std::optional<double> v = reg.fn(now);
    if (!v.has_value()) continue;
    double value = *v;
    if (reg.series->probe_kind() == "counter") {
      // Per-interval delta; counters are monotonic so this is >= 0.
      const auto raw = static_cast<std::uint64_t>(value);
      value = static_cast<double>(raw - reg.last_counter);
      reg.last_counter = raw;
    }
    reg.series->append(now.ns(), value);
    ++samples_taken_;
  }
}

std::size_t TimeSeriesRecorder::series_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::uint64_t TimeSeriesRecorder::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_taken_;
}

std::vector<const TimeSeries*> TimeSeriesRecorder::series() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const TimeSeries*> out;
  out.reserve(series_.size());
  for (const auto& s : series_) out.push_back(s.get());
  return out;
}

// --- Timeline JSONL -------------------------------------------------------

void append_timeline_meta_json(std::string& out, std::string_view run_name,
                               core::TimePoint sim_end,
                               core::Duration cadence,
                               std::size_t series_count) {
  core::JsonWriter w(out);
  w.begin_object()
      .kv("type", "meta")
      .kv("schema_version", 1)
      .kv("kind", "mntp_timeline")
      .kv("run", run_name)
      .kv("sim_end_ns", sim_end.ns())
      .kv("cadence_ns", cadence.ns())
      .kv("series_count", static_cast<std::uint64_t>(series_count))
      .end_object();
}

void append_timeline_series_json(std::string& out, const TimeSeries& s) {
  core::JsonWriter w(out);
  w.begin_object()
      .kv("type", "series")
      .kv("name", s.name())
      .kv("probe", s.probe_kind());
  w.key("labels").begin_object();
  for (const auto& [k, v] : s.labels()) w.kv(k, v);
  w.end_object();
  w.kv("samples", s.samples());
  w.kv("stride", s.stride());
  w.key("points").begin_array();
  for (const TimeSeriesPoint& p : s.points()) {
    w.begin_array()
        .value(p.t_ns)
        .value(p.min)
        .value(p.mean())
        .value(p.max)
        .value(p.last)
        .value(p.count)
        .end_array();
  }
  w.end_array().end_object();
}

void write_timeline(std::ostream& out, const TimeSeriesRecorder& recorder,
                    std::string_view run_name, core::TimePoint sim_end) {
  std::vector<const TimeSeries*> all = recorder.series();
  // Probes registered but never sampled (e.g. tuner-emulator engines that
  // never ran inside a simulation) would export as empty series; skip
  // them and keep series_count honest.
  std::vector<const TimeSeries*> series;
  for (const TimeSeries* s : all) {
    if (!s->points().empty()) series.push_back(s);
  }
  std::string line;
  append_timeline_meta_json(line, run_name, sim_end, recorder.cadence(),
                            series.size());
  out << line << '\n';
  for (const TimeSeries* s : series) {
    line.clear();
    append_timeline_series_json(line, *s);
    out << line << '\n';
  }
}

core::Status write_timeline_file(const std::string& path,
                                 const TimeSeriesRecorder& recorder,
                                 std::string_view run_name,
                                 core::TimePoint sim_end) {
  std::ofstream out(path);
  if (!out) {
    return core::Error::io("cannot open timeline path: " + path);
  }
  write_timeline(out, recorder, run_name, sim_end);
  out.flush();
  if (!out) {
    return core::Error::io("failed writing timeline: " + path);
  }
  return {};
}

}  // namespace mntp::obs
