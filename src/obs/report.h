// Per-run telemetry reports: a machine-readable JSONL dump of the metrics
// snapshot plus the captured trace, written by every bench binary when
// `--telemetry-out <path>` is passed (see bench/common.h).
//
// Schema (version 1; validated by scripts/check_telemetry_schema.py and
// documented in DESIGN.md §Observability). One JSON object per line:
//
//   line 1   {"type":"meta","schema_version":1,"run":"<name>",
//             "sim_end_ns":<int>,"metric_count":<int>,"event_count":<int>}
//   metrics  {"type":"metric","kind":"counter","name":"..","labels":{..},
//             "value":<num>}
//            {"type":"metric","kind":"gauge",...,"value":<num>}
//            {"type":"metric","kind":"histogram","name":"..","labels":{..},
//             "count":<int>,"sum":<num>,"min":<num>,"max":<num>,
//             "p50":<num>,"p90":<num>,"p99":<num>,
//             "buckets":[{"le":<num-or-"inf">,"count":<int>},...]}
//   events   {"type":"event","t_ns":<int>,"category":"..","name":"..",
//             "fields":{..}}   (sim-time order, ascending t_ns)
#pragma once

#include <ostream>
#include <string>

#include "core/result.h"
#include "core/time.h"
#include "obs/telemetry.h"

namespace mntp::obs {

struct ReportOptions {
  /// Identifies the producing run in the meta line (e.g. the bench name).
  std::string run_name = "unnamed";
  /// Simulated end-of-run instant, recorded in the meta line.
  core::TimePoint sim_end;
};

/// Serialize one metric snapshot as its JSONL line.
[[nodiscard]] std::string to_jsonl_line(const MetricSnapshot& snapshot);

/// Write the full report: meta line, metric lines (name-sorted), then
/// event lines (sim-time order) from `trace` when provided.
void write_run_report(std::ostream& out, const Telemetry& telemetry,
                      const RingBufferSink* trace, const ReportOptions& options);

/// File variant; fails on unwritable paths.
core::Status write_run_report_file(const std::string& path,
                                   const Telemetry& telemetry,
                                   const RingBufferSink* trace,
                                   const ReportOptions& options);

}  // namespace mntp::obs
