// Query-scoped causal tracing ("flight recorder").
//
// Metrics say HOW MANY samples were rejected; spans say HOW LONG a round
// took; this layer answers WHY a particular exchange ended the way it
// did. Every sync query (an MNTP/NTP round, or one client↔server
// exchange within it) is assigned a monotonically increasing `QueryId`
// minted at the client, and every hop and accept/defer/reject decision
// along its path appends a stage record — simulation timestamp, stage
// name, typed reason code (obs/reason_codes.h), and numeric payload
// fields — to a bounded per-query store owned by the Telemetry context.
//
// Lifecycle of a trace:
//
//   id = tracer.begin(t, "round")            // mint; 0 when disabled
//   tracer.stage(id, t, "gate", kChannelDefer, {{"rssi", -78.0}, ...})
//   ...
//   tracer.finish(id, t, kTrendOutlier, {{"residual_ms", ...}})
//
// finish() appends a terminal "verdict" stage and latches the trace:
// later stage() calls for that id are dropped. That makes straggler
// events harmless — a reply arriving after its exchange already timed
// out records nothing, matching what a real client could observe.
//
// Threading the id: call sites that hold the id pass it explicitly
// (transport lambdas capture it). Decision emitters buried under stable
// APIs (clock_filter, false_ticker, drift_filter, selection, channel
// models) instead read the *ambient* query — a thread_local (tracer,
// id) pair installed by the owner via ActiveScope around the code that
// runs on the query's behalf. With no ambient set and the tracer
// disabled, an instrumented decision point costs one thread-local read
// and a branch.
//
// Determinism & overhead: the tracer only OBSERVES — it never consumes
// RNG draws, never schedules events, and is off by default behind the
// same cached-atomic guard discipline as the profiler, so untraced runs
// are bit-identical to a build without the instrumentation (pinned by
// mntp_engine_test and BM_QueryTraceDisabled). The store is bounded
// (max_queries / max_stages_per_query); overflow increments dropped
// counters instead of growing without bound. All mutation serializes on
// one mutex — safe under the parallel tuner, where each worker's rounds
// interleave arbitrarily but each stage append is atomic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/time.h"
#include "obs/reason_codes.h"
#include "obs/trace_event.h"

namespace mntp::obs {

class MetricsRegistry;

/// Monotonic per-tracer query identifier; 0 is "no query" (disabled).
using QueryId = std::uint64_t;

/// One hop or decision in the life of a query.
struct QueryStage {
  core::TimePoint t;        ///< simulation time of the record
  std::string stage;        ///< "request", "hop", "gate", "verdict", ...
  Reason reason = Reason::kNone;
  std::vector<Field> fields;
};

/// The full recorded life of one query.
struct QueryTrace {
  QueryId id = 0;
  QueryId parent = 0;  ///< round id for exchanges; 0 for roots
  std::string kind;    ///< "round" or "exchange"
  core::TimePoint started;
  std::vector<QueryStage> stages;
  bool finished = false;

  /// The terminal reason (from the "verdict" stage), or kNone.
  [[nodiscard]] Reason verdict() const {
    return finished && !stages.empty() ? stages.back().reason : Reason::kNone;
  }
};

class StreamingQueryTraceSink;

/// Append one {"type":"query",...} JSONL line body (no trailing newline)
/// for `trace` — the per-trace serialization shared by the batch
/// exporter (to_jsonl) and the streaming sink (obs/streaming.h).
void append_query_trace_json(std::string& out, const QueryTrace& trace);

class QueryTracer {
 public:
  struct Limits {
    std::size_t max_queries = 1 << 16;
    std::size_t max_stages_per_query = 128;
  };

  /// Deterministic trace sampling. First-N-wins (the pre-sampling
  /// behaviour, and still the backstop via Limits) keeps whatever
  /// happened to be minted early — at fleet scale that is the warm-up
  /// transient, not a representative sample. The gate instead hashes the
  /// query id: a trace is a KEEP candidate iff
  ///
  ///   splitmix64(gate_seed + id) % sample_one_in_n == 0,
  ///
  /// with gate_seed = core::derive_stream_seed(seed, 0). The kept id set
  /// is a pure function of (seed, n, ids minted) — bit-identical across
  /// thread counts, schedulings and re-runs, which is what the
  /// determinism tests pin. `reservoir` additionally caps the kept set
  /// at a fixed size using a bottom-k rank sketch: every candidate gets
  /// rank (splitmix64(rank_seed + id), id) and the reservoir keeps the k
  /// smallest ranks — also order-independent, unlike classic Algorithm R
  /// whose result depends on arrival order. Evicted candidates count as
  /// sampled_out, so kept + sampled_out + dropped == minted always.
  struct Sampling {
    /// Keep one in n by id hash; 1 keeps everything (the default —
    /// artifacts are byte-identical to a tracer without sampling).
    std::uint64_t sample_one_in_n = 1;
    /// Base seed for the gate/rank streams (core::derive_stream_seed).
    std::uint64_t seed = 0;
    /// Fixed-size bottom-k reservoir over gate survivors; 0 = off.
    std::size_t reservoir = 0;
  };

  QueryTracer() = default;
  explicit QueryTracer(Limits limits) : limits_(limits) {}
  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Off by default; instrumentation guards on this before building any
  /// stage payload. Lock-free read.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Mint a new query. Returns 0 when disabled — every other call
  /// treats id 0 as "not traced", so callers never need their own guard
  /// beyond skipping payload construction. Ids stay monotonic even when
  /// the store is full (the trace body is then dropped and counted).
  QueryId begin(core::TimePoint t, std::string_view kind,
                QueryId parent = 0);

  /// Append a stage to a live query. No-ops for id 0, unknown ids
  /// (evicted/overflowed), or already-finished queries.
  void stage(QueryId id, core::TimePoint t, std::string_view stage,
             Reason reason, std::vector<Field> fields = {});

  /// Append the terminal "verdict" stage and latch the trace. Later
  /// stage()/finish() calls for this id are dropped.
  void finish(QueryId id, core::TimePoint t, Reason reason,
              std::vector<Field> fields = {});

  /// Configure sampling. Call before the run fans out (the same
  /// configure-then-record rule Telemetry documents for sinks); changing
  /// the gate mid-run would split the kept set across two rules.
  void set_sampling(const Sampling& sampling);
  [[nodiscard]] Sampling sampling() const;

  /// Attach a streaming sink: finished traces are serialized and handed
  /// to `sink` immediately (then freed — memory stays bounded by the
  /// open-query count, not the run length), and to_jsonl()'s store stays
  /// empty. Incompatible with reservoir mode (a reservoir must retain
  /// candidates to evict them; it is already bounded by construction):
  /// reservoir is ignored while a stream is attached. Configure before
  /// fanning out; pass nullptr to detach.
  void set_stream(StreamingQueryTraceSink* sink);

  /// Snapshot of all stored traces, in mint order.
  [[nodiscard]] std::vector<QueryTrace> snapshot() const;
  /// Queries minted while enabled (including dropped ones).
  [[nodiscard]] std::uint64_t minted() const;
  /// Traces dropped because the store was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Traces kept (stored, or already streamed out).
  [[nodiscard]] std::uint64_t kept() const;
  /// Traces the sampling gate or the reservoir rejected.
  [[nodiscard]] std::uint64_t sampled_out() const;
  /// Forget all stored traces (keeps the id counter monotonic).
  void clear();

  /// Export the accounting into `registry` as obs.query_trace.kept /
  /// .sampled_out / .dropped counters, so `mntp-inspect` reconciliation
  /// can tell "sampled away on purpose" from "lost". Call at finalize.
  void export_counters(MetricsRegistry& registry) const;

  /// Streaming finalize: push every still-stored trace (finished or not)
  /// to the attached sink in id order and drain it. No-op without a
  /// stream. Returns false on sink I/O failure.
  bool finish_stream(std::string_view run, core::TimePoint sim_end);

  /// Serialize the store as query-trace JSONL (schema v1): a meta line
  /// {"type":"meta","kind":"mntp_query_trace",...} then one
  /// {"type":"query",...} line per trace in mint order. `run` names the
  /// producing bench; `sim_end` stamps the end of the simulated run.
  [[nodiscard]] std::string to_jsonl(std::string_view run,
                                     core::TimePoint sim_end) const;
  /// to_jsonl straight to a file; returns false on I/O failure.
  bool write_jsonl_file(const std::string& path, std::string_view run,
                        core::TimePoint sim_end) const;

 private:
  /// True when the gate keeps this id (pure function of sampling_ and id).
  [[nodiscard]] bool gate_keeps(QueryId id) const;
  /// Store a freshly minted trace, honouring the reservoir / capacity
  /// rules. Caller holds mutex_.
  void store_locked(QueryTrace trace);
  /// Append the sampling meta block to a JsonWriter-owned string; caller
  /// holds mutex_.
  [[nodiscard]] bool sampling_active() const {
    return sampling_.sample_one_in_n > 1 || sampling_.reservoir > 0;
  }

  Limits limits_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::atomic<std::uint64_t> next_id_{1};
  Sampling sampling_;
  std::uint64_t gate_seed_ = 0;  // derive_stream_seed(sampling_.seed, 0)
  std::uint64_t rank_seed_ = 0;  // derive_stream_seed(sampling_.seed, 1)
  StreamingQueryTraceSink* stream_ = nullptr;
  std::vector<QueryTrace> traces_;
  std::vector<std::size_t> free_slots_;  // recycled by stream/reservoir
  std::unordered_map<QueryId, std::size_t> index_;
  /// Bottom-k reservoir: max-heap of (rank hash, id) over stored
  /// candidates; the top is the first to evict.
  std::vector<std::pair<std::uint64_t, QueryId>> reservoir_heap_;
  std::uint64_t kept_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t dropped_queries_ = 0;
  std::uint64_t dropped_stages_ = 0;
};

/// The ambient query: (tracer, id) for the query the current thread is
/// working on behalf of. Null tracer / id 0 when none.
struct AmbientQuery {
  QueryTracer* tracer = nullptr;
  QueryId id = 0;
};

/// Read the current thread's ambient query. Decision emitters use this
/// to attach stages without any API changes along the call path:
///
///   if (auto q = obs::ambient_query(); q.tracer) {
///     q.tracer->stage(q.id, now, "popcorn", Reason::kPopcornSuppressed,
///                     {{"deviation_ms", dev * 1e3}});
///   }
[[nodiscard]] AmbientQuery ambient_query();

/// Installs (tracer, id) as the thread's ambient query for this scope;
/// restores the previous ambient on destruction. Nestable. Passing
/// id 0 installs "no ambient" (emitters see a null tracer), so callers
/// can wrap unconditionally with the id they hold.
class ActiveQueryScope {
 public:
  ActiveQueryScope(QueryTracer& tracer, QueryId id);
  ~ActiveQueryScope();
  ActiveQueryScope(const ActiveQueryScope&) = delete;
  ActiveQueryScope& operator=(const ActiveQueryScope&) = delete;

 private:
  AmbientQuery previous_;
};

}  // namespace mntp::obs
