// Query-scoped causal tracing ("flight recorder").
//
// Metrics say HOW MANY samples were rejected; spans say HOW LONG a round
// took; this layer answers WHY a particular exchange ended the way it
// did. Every sync query (an MNTP/NTP round, or one client↔server
// exchange within it) is assigned a monotonically increasing `QueryId`
// minted at the client, and every hop and accept/defer/reject decision
// along its path appends a stage record — simulation timestamp, stage
// name, typed reason code (obs/reason_codes.h), and numeric payload
// fields — to a bounded per-query store owned by the Telemetry context.
//
// Lifecycle of a trace:
//
//   id = tracer.begin(t, "round")            // mint; 0 when disabled
//   tracer.stage(id, t, "gate", kChannelDefer, {{"rssi", -78.0}, ...})
//   ...
//   tracer.finish(id, t, kTrendOutlier, {{"residual_ms", ...}})
//
// finish() appends a terminal "verdict" stage and latches the trace:
// later stage() calls for that id are dropped. That makes straggler
// events harmless — a reply arriving after its exchange already timed
// out records nothing, matching what a real client could observe.
//
// Threading the id: call sites that hold the id pass it explicitly
// (transport lambdas capture it). Decision emitters buried under stable
// APIs (clock_filter, false_ticker, drift_filter, selection, channel
// models) instead read the *ambient* query — a thread_local (tracer,
// id) pair installed by the owner via ActiveScope around the code that
// runs on the query's behalf. With no ambient set and the tracer
// disabled, an instrumented decision point costs one thread-local read
// and a branch.
//
// Determinism & overhead: the tracer only OBSERVES — it never consumes
// RNG draws, never schedules events, and is off by default behind the
// same cached-atomic guard discipline as the profiler, so untraced runs
// are bit-identical to a build without the instrumentation (pinned by
// mntp_engine_test and BM_QueryTraceDisabled). The store is bounded
// (max_queries / max_stages_per_query); overflow increments dropped
// counters instead of growing without bound. All mutation serializes on
// one mutex — safe under the parallel tuner, where each worker's rounds
// interleave arbitrarily but each stage append is atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/time.h"
#include "obs/reason_codes.h"
#include "obs/trace_event.h"

namespace mntp::obs {

/// Monotonic per-tracer query identifier; 0 is "no query" (disabled).
using QueryId = std::uint64_t;

/// One hop or decision in the life of a query.
struct QueryStage {
  core::TimePoint t;        ///< simulation time of the record
  std::string stage;        ///< "request", "hop", "gate", "verdict", ...
  Reason reason = Reason::kNone;
  std::vector<Field> fields;
};

/// The full recorded life of one query.
struct QueryTrace {
  QueryId id = 0;
  QueryId parent = 0;  ///< round id for exchanges; 0 for roots
  std::string kind;    ///< "round" or "exchange"
  core::TimePoint started;
  std::vector<QueryStage> stages;
  bool finished = false;

  /// The terminal reason (from the "verdict" stage), or kNone.
  [[nodiscard]] Reason verdict() const {
    return finished && !stages.empty() ? stages.back().reason : Reason::kNone;
  }
};

class QueryTracer {
 public:
  struct Limits {
    std::size_t max_queries = 1 << 16;
    std::size_t max_stages_per_query = 128;
  };

  QueryTracer() = default;
  explicit QueryTracer(Limits limits) : limits_(limits) {}
  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Off by default; instrumentation guards on this before building any
  /// stage payload. Lock-free read.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Mint a new query. Returns 0 when disabled — every other call
  /// treats id 0 as "not traced", so callers never need their own guard
  /// beyond skipping payload construction. Ids stay monotonic even when
  /// the store is full (the trace body is then dropped and counted).
  QueryId begin(core::TimePoint t, std::string_view kind,
                QueryId parent = 0);

  /// Append a stage to a live query. No-ops for id 0, unknown ids
  /// (evicted/overflowed), or already-finished queries.
  void stage(QueryId id, core::TimePoint t, std::string_view stage,
             Reason reason, std::vector<Field> fields = {});

  /// Append the terminal "verdict" stage and latch the trace. Later
  /// stage()/finish() calls for this id are dropped.
  void finish(QueryId id, core::TimePoint t, Reason reason,
              std::vector<Field> fields = {});

  /// Snapshot of all stored traces, in mint order.
  [[nodiscard]] std::vector<QueryTrace> snapshot() const;
  /// Queries minted while enabled (including dropped ones).
  [[nodiscard]] std::uint64_t minted() const;
  /// Traces dropped because the store was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Forget all stored traces (keeps the id counter monotonic).
  void clear();

  /// Serialize the store as query-trace JSONL (schema v1): a meta line
  /// {"type":"meta","kind":"mntp_query_trace",...} then one
  /// {"type":"query",...} line per trace in mint order. `run` names the
  /// producing bench; `sim_end` stamps the end of the simulated run.
  [[nodiscard]] std::string to_jsonl(std::string_view run,
                                     core::TimePoint sim_end) const;
  /// to_jsonl straight to a file; returns false on I/O failure.
  bool write_jsonl_file(const std::string& path, std::string_view run,
                        core::TimePoint sim_end) const;

 private:
  Limits limits_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::atomic<std::uint64_t> next_id_{1};
  std::vector<QueryTrace> traces_;
  std::unordered_map<QueryId, std::size_t> index_;
  std::uint64_t dropped_queries_ = 0;
  std::uint64_t dropped_stages_ = 0;
};

/// The ambient query: (tracer, id) for the query the current thread is
/// working on behalf of. Null tracer / id 0 when none.
struct AmbientQuery {
  QueryTracer* tracer = nullptr;
  QueryId id = 0;
};

/// Read the current thread's ambient query. Decision emitters use this
/// to attach stages without any API changes along the call path:
///
///   if (auto q = obs::ambient_query(); q.tracer) {
///     q.tracer->stage(q.id, now, "popcorn", Reason::kPopcornSuppressed,
///                     {{"deviation_ms", dev * 1e3}});
///   }
[[nodiscard]] AmbientQuery ambient_query();

/// Installs (tracer, id) as the thread's ambient query for this scope;
/// restores the previous ambient on destruction. Nestable. Passing
/// id 0 installs "no ambient" (emitters see a null tracer), so callers
/// can wrap unconditionally with the id they hold.
class ActiveQueryScope {
 public:
  ActiveQueryScope(QueryTracer& tracer, QueryId id);
  ~ActiveQueryScope();
  ActiveQueryScope(const ActiveQueryScope&) = delete;
  ActiveQueryScope& operator=(const ActiveQueryScope&) = delete;

 private:
  AmbientQuery previous_;
};

}  // namespace mntp::obs
