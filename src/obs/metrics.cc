#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mntp::obs {

// --- P2Quantile -----------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
  if (q <= 0.0 || q >= 1.0) {
    throw std::invalid_argument("P2Quantile: q must be in (0,1)");
  }
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  incr_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    height_[n_++] = x;
    if (n_ == 5) {
      std::sort(height_.begin(), height_.end());
      for (std::size_t i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // Locate the cell containing x; stretch the extreme markers if needed.
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = std::max(height_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += incr_[i];
  ++n_;

  // Adjust interior markers toward their desired positions using the
  // piecewise-parabolic (P²) height update, falling back to linear when
  // the parabolic step would cross a neighbour.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    const bool right = d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0;
    const bool left = d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0;
    if (!right && !left) continue;
    const double s = right ? 1.0 : -1.0;

    const double qip = height_[i + 1];
    const double qi = height_[i];
    const double qim = height_[i - 1];
    const double nip = pos_[i + 1];
    const double ni = pos_[i];
    const double nim = pos_[i - 1];
    double candidate =
        qi + s / (nip - nim) *
                 ((ni - nim + s) * (qip - qi) / (nip - ni) +
                  (nip - ni - s) * (qi - qim) / (ni - nim));
    if (candidate <= qim || candidate >= qip) {
      // Parabolic prediction left the bracket: linear update.
      candidate = s > 0 ? qi + (qip - qi) / (nip - ni)
                        : qi - (qim - qi) / (nim - ni);
    }
    height_[i] = candidate;
    pos_[i] += s;
  }
}

double P2Quantile::estimate() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact: interpolated order statistic over the sorted prefix.
    std::array<double, 5> sorted = height_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_));
    const double rank = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return height_[2];
}

// --- Histogram ------------------------------------------------------------

HistogramOptions HistogramOptions::exponential(double start, double factor,
                                               std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("HistogramOptions::exponential: need start > 0, factor > 1");
  }
  HistogramOptions o;
  o.bucket_bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    o.bucket_bounds.push_back(b);
    b *= factor;
  }
  return o;
}

HistogramOptions HistogramOptions::latency_ms() {
  return exponential(0.25, 2.0, 15);  // 0.25 ms .. 4096 ms, then overflow
}

Histogram::Histogram(HistogramOptions options, const std::atomic<bool>* enabled)
    : enabled_(enabled), bounds_(std::move(options.bucket_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must ascend");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // le semantics: a value equal to a bound belongs to that bound's bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  p50_.add(v);
  p90_.add(v);
  p99_.add(v);
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ ? min_ : 0.0;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ ? max_ : 0.0;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::p50() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return p50_.estimate();
}

double Histogram::p90() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return p90_.estimate();
}

double Histogram::p99() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return p99_.estimate();
}

std::size_t Histogram::bucket_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_.size();
}

std::uint64_t Histogram::bucket_value(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_.at(i);
}

double Histogram::bucket_bound(std::size_t i) const {
  // bounds_ is immutable after construction; no lock needed.
  if (i < bounds_.size()) return bounds_[i];
  if (i == bounds_.size()) return std::numeric_limits<double>::infinity();
  throw std::out_of_range("Histogram::bucket_bound");
}

// --- MetricShardSlabs -----------------------------------------------------

MetricShardSlabs::MetricShardSlabs() {
  static std::atomic<std::uint64_t> next_id{1};
  instance_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

MetricShardSlabs::Slab& MetricShardSlabs::slab_for_this_thread() {
  struct CacheEntry {
    const MetricShardSlabs* owner;
    std::uint64_t instance_id;
    Slab* slab;
  };
  // Per-thread map from slab set to this thread's slab. A linear scan:
  // one registry (one Telemetry) is live per run, so the common case is
  // a single entry hit on the first compare.
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.owner == this && e.instance_id == instance_id_) return *e.slab;
  }
  // Miss — drop any entry for a destroyed instance that shared this
  // address, then create this thread's slab under the lock.
  std::erase_if(cache, [this](const CacheEntry& e) { return e.owner == this; });
  std::lock_guard<std::mutex> lock(mutex_);
  auto slab = std::make_unique<Slab>();
  slab->counters.assign(counter_count_, 0);
  slab->gauges.assign(gauge_count_, 0.0);
  slabs_.push_back(std::move(slab));
  Slab* raw = slabs_.back().get();
  cache.push_back({this, instance_id_, raw});
  return *raw;
}

void MetricShardSlabs::grow(Slab& slab) {
  std::lock_guard<std::mutex> lock(mutex_);
  slab.counters.resize(counter_count_, 0);
  slab.gauges.resize(gauge_count_, 0.0);
}

std::uint64_t MetricShardSlabs::merged_counter(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& slab : slabs_) {
    if (index < slab->counters.size()) total += slab->counters[index];
  }
  return total;
}

double MetricShardSlabs::merged_gauge(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Sum in ascending value order: for a fixed multiset of per-thread
  // partials the result does not depend on which thread recorded first.
  std::vector<double> partials;
  partials.reserve(slabs_.size());
  for (const auto& slab : slabs_) {
    if (index < slab->gauges.size() && slab->gauges[index] != 0.0) {
      partials.push_back(slab->gauges[index]);
    }
  }
  std::sort(partials.begin(), partials.end());
  double total = 0.0;
  for (const double p : partials) total += p;
  return total;
}

std::size_t MetricShardSlabs::allocate_counter() {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_count_++;
}

std::size_t MetricShardSlabs::allocate_gauge() {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauge_count_++;
}

// --- MetricsRegistry ------------------------------------------------------

Labels MetricsRegistry::normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter* MetricsRegistry::counter(std::string_view name, Labels labels) {
  Key key{std::string(name), normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::move(key),
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, Labels labels) {
  Key key{std::string(name), normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::move(key), std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      HistogramOptions options, Labels labels) {
  Key key{std::string(name), normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::move(key), std::unique_ptr<Histogram>(new Histogram(
                                          std::move(options), &enabled_)))
             .first;
  }
  return it->second.get();
}

ShardedHdrHistogram* MetricsRegistry::hdr_histogram(std::string_view name,
                                                    HdrHistogramOptions options,
                                                    Labels labels) {
  Key key{std::string(name), normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = hdr_histograms_.find(key);
  if (it == hdr_histograms_.end()) {
    it = hdr_histograms_
             .emplace(std::move(key),
                      std::unique_ptr<ShardedHdrHistogram>(
                          new ShardedHdrHistogram(options, &enabled_)))
             .first;
  }
  return it->second.get();
}

ShardedCounter* MetricsRegistry::sharded_counter(std::string_view name,
                                                 Labels labels) {
  Key key{std::string(name), normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sharded_counters_.find(key);
  if (it == sharded_counters_.end()) {
    it = sharded_counters_
             .emplace(std::move(key),
                      std::unique_ptr<ShardedCounter>(new ShardedCounter(
                          &enabled_, &slabs_, slabs_.allocate_counter())))
             .first;
  }
  return it->second.get();
}

ShardedGauge* MetricsRegistry::sharded_gauge(std::string_view name,
                                             Labels labels) {
  Key key{std::string(name), normalize(std::move(labels))};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sharded_gauges_.find(key);
  if (it == sharded_gauges_.end()) {
    it = sharded_gauges_
             .emplace(std::move(key),
                      std::unique_ptr<ShardedGauge>(new ShardedGauge(
                          &enabled_, &slabs_, slabs_.allocate_gauge())))
             .first;
  }
  return it->second.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         hdr_histograms_.size() + sharded_counters_.size() +
         sharded_gauges_.size();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = key.name;
    s.labels = key.labels;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = key.name;
    s.labels = key.labels;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  // Sharded series merge here, at snapshot time (the same rule as the
  // hdr histograms below), and export as plain counter/gauge snapshots:
  // the report shape carries no trace of the sharding.
  for (const auto& [key, c] : sharded_counters_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = key.name;
    s.labels = key.labels;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, g] : sharded_gauges_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = key.name;
    s.labels = key.labels;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = key.name;
    s.labels = key.labels;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->p50();
    s.p90 = h->p90();
    s.p99 = h->p99();
    s.buckets.reserve(h->bucket_count());
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      s.buckets.emplace_back(h->bucket_bound(i), h->bucket_value(i));
    }
    out.push_back(std::move(s));
  }
  for (const auto& [key, h] : hdr_histograms_) {
    // Shards merge here, at snapshot time; the merged result is identical
    // for every thread count because HdrHistogram::merge is
    // order-insensitive. Exported in the same histogram shape the report
    // schema expects: non-empty buckets ascending, then the +inf bucket.
    const HdrHistogram merged = h->merged();
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = key.name;
    s.labels = key.labels;
    s.count = merged.count();
    s.sum = merged.sum();
    s.min = merged.min();
    s.max = merged.max();
    s.p50 = merged.quantile(0.50);
    s.p90 = merged.quantile(0.90);
    s.p99 = merged.quantile(0.99);
    s.buckets = merged.buckets();
    s.buckets.emplace_back(std::numeric_limits<double>::infinity(), 0);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

}  // namespace mntp::obs
