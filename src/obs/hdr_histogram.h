// Mergeable log-linear histogram ("HDR-style"), the exact-count
// complement to the P² estimators in obs/metrics.h.
//
// P² tracks one quantile in O(1) memory but is order-sensitive and
// fundamentally non-mergeable: two P² marker sets cannot be combined
// into the marker set of the concatenated stream. That rules it out
// wherever distributions must be aggregated across independent recorders
// — sim::ReplicationRunner replicates, thread-pool shards, or future
// fleet shards (the server's-eye OWD distributions of TimeWeaver and the
// paper's §3.1 measurement study are exactly such aggregates).
//
// HdrHistogram instead buckets values on a log-linear grid: the magnitude
// axis is split into octaves (powers of two above `min_magnitude`), each
// octave into 2^sub_bucket_bits equal-width linear sub-buckets. Bucket
// counts are exact integers, so
//
//   * relative error of any reconstructed quantile is bounded by half a
//     sub-bucket width: <= 1 / 2^(sub_bucket_bits + 1) (~1.6% at the
//     default 5 bits);
//   * merge() is elementwise integer addition plus min/max — fully
//     commutative AND associative, bit for bit. Merging any permutation
//     of any partition of a sample stream yields an identical histogram
//     (asserted by tests). To keep that property there is deliberately
//     NO floating-point sum accumulator: mean() is derived from bucket
//     midpoints (deterministic, bounded error), not from an
//     order-sensitive IEEE summation.
//
// Negative values land in a mirrored bucket array; values with magnitude
// below `min_magnitude` land in a dedicated zero bucket; magnitudes at or
// above `max_magnitude` clamp into the top bucket (count exact, value
// error unbounded there — min()/max() stay exact regardless). NaN is
// counted separately and never pollutes min/max.
//
// HdrHistogram itself is a plain value type with no locking — copyable,
// movable, comparable. ShardedHdrHistogram wraps it for the registry hot
// path: record() writes to a per-thread shard resolved through a
// thread-local cache (no mutex after first touch per thread), and
// merged() combines the shards. Because merge order is irrelevant, the
// merged result is identical for every thread count and scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mntp::obs {

struct HdrHistogramOptions {
  /// Magnitudes below this are "zero" (dedicated bucket). Must be > 0.
  double min_magnitude = 1e-3;
  /// Magnitudes at or above this clamp into the top bucket. Must exceed
  /// min_magnitude.
  double max_magnitude = 1e9;
  /// Sub-buckets per octave = 2^sub_bucket_bits; relative quantile error
  /// is bounded by 2^-(sub_bucket_bits+1). Range [1, 12].
  unsigned sub_bucket_bits = 5;

  [[nodiscard]] bool operator==(const HdrHistogramOptions&) const = default;
};

class HdrHistogram {
 public:
  explicit HdrHistogram(HdrHistogramOptions options = {});

  void record(double v, std::uint64_t n = 1);

  /// Elementwise-add `other` into this. Throws std::invalid_argument when
  /// the layouts (options) differ. Commutative and associative bit for
  /// bit — see file comment.
  void merge(const HdrHistogram& other);

  /// Recorded finite samples (NaN excluded; see nan_count()).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t nan_count() const { return nan_count_; }
  /// Exact extrema of the recorded finite samples; 0 when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sum/mean reconstructed from bucket midpoints: deterministic under
  /// merge reordering, relative error bounded like the quantiles.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  /// Quantile reconstructed from bucket midpoints, clamped to the exact
  /// [min, max]. q in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const HdrHistogramOptions& options() const { return options_; }
  [[nodiscard]] bool same_layout(const HdrHistogram& other) const {
    return options_ == other.options_;
  }

  /// Non-empty buckets in ascending value order (negatives, then the
  /// zero bucket, then positives), as (inclusive upper bound, count).
  /// The bound of the zero bucket is +min_magnitude.
  [[nodiscard]] std::vector<std::pair<double, std::uint64_t>> buckets() const;

  /// Exact state equality (layout, every bucket count, extrema). Two
  /// histograms built from the same multiset of samples — in any order,
  /// merged along any tree — compare equal.
  [[nodiscard]] bool operator==(const HdrHistogram& other) const;

 private:
  [[nodiscard]] std::size_t bucket_index(double magnitude) const;
  /// Midpoint value represented by positive-side bucket i.
  [[nodiscard]] double bucket_mid(std::size_t i) const;
  /// Inclusive upper bound of positive-side bucket i.
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  HdrHistogramOptions options_;
  std::size_t sub_buckets_ = 0;  // 2^sub_bucket_bits
  std::size_t octaves_ = 0;
  std::vector<std::uint64_t> positive_;
  std::vector<std::uint64_t> negative_;
  std::uint64_t zero_ = 0;  // |v| < min_magnitude
  std::uint64_t count_ = 0;
  std::uint64_t nan_count_ = 0;
  double min_ = 0.0;  // valid iff count_ > 0
  double max_ = 0.0;
};

/// Registry-facing wrapper: per-thread HdrHistogram shards so the record
/// hot path takes no lock (after the first record on each thread), merged
/// on demand. Handles are created by MetricsRegistry::hdr_histogram() and
/// stay valid for the registry's lifetime.
class ShardedHdrHistogram {
 public:
  /// Record into this thread's shard. Lock-free after the shard exists
  /// (one mutex acquisition per thread per histogram, at first record).
  void record(double v);

  /// Merge every shard into one histogram. Identical result for every
  /// thread count / interleaving (merge is order-insensitive). Call after
  /// parallel sections have joined (core::ThreadPool::parallel_for joins
  /// before returning): shard writes are not synchronized with this read,
  /// the same rule Telemetry documents for sink reconfiguration.
  [[nodiscard]] HdrHistogram merged() const;

  [[nodiscard]] const HdrHistogramOptions& options() const {
    return options_;
  }

 private:
  friend class MetricsRegistry;
  ShardedHdrHistogram(HdrHistogramOptions options,
                      const std::atomic<bool>* enabled);
  HdrHistogram* shard_for_this_thread();

  HdrHistogramOptions options_;
  const std::atomic<bool>* enabled_;
  /// Distinguishes this instance from a destroyed one reusing the same
  /// address, so stale thread-local cache entries never resolve.
  std::uint64_t instance_id_;
  mutable std::mutex mutex_;  // guards shards_ growth and merged()
  std::vector<std::unique_ptr<HdrHistogram>> shards_;
};

}  // namespace mntp::obs
