// Metrics registry: counters, gauges and histograms keyed by name+labels.
//
// The registry is the quantitative half of the observability layer (the
// trace-event sink in obs/trace_event.h is the qualitative half). Design
// constraints, in order:
//
//   1. Hot-path cheapness. Instrumented code resolves a handle (Counter*,
//      Gauge*, Histogram*) ONCE at construction; recording through the
//      handle is O(1) with no map lookup, no locking (the simulation is
//      single-threaded by design) and no allocation. A disabled registry
//      reduces every record to one predictable branch.
//   2. Determinism. Metrics only observe; nothing in the library reads a
//      metric back to make a decision, so instrumentation can never
//      perturb an experiment's RNG streams or event order.
//   3. Self-description. The registry can snapshot itself into plain
//      structs that the report writer (obs/report.h) serializes without
//      knowing anything about individual metrics.
//
// Histograms record into fixed buckets (for distribution shape) AND into
// P-squared streaming quantile estimators (for accurate p50/p90/p99
// without retaining samples) — the two complement each other: buckets are
// mergeable and exact-boundary, P² is O(1)-memory and boundary-free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mntp::obs {

/// Metric labels: key/value pairs, e.g. {{"dir","up"}}. Stored sorted by
/// key so label order at the call site does not create distinct series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (*enabled_) value_ += n;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (*enabled_) value_ = v;
  }
  void add(double d) {
    if (*enabled_) value_ += d;
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0.0;
};

/// P-squared (P²) streaming quantile estimator (Jain & Chlamtac, 1985):
/// tracks one quantile of a stream in O(1) memory and O(1) per sample by
/// maintaining five markers whose heights follow a piecewise-parabolic
/// interpolation of the empirical CDF. Exact for the first five samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact order statistic while n <= 5.
  [[nodiscard]] double estimate() const;
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> height_{};    // marker heights (sample values)
  std::array<double, 5> pos_{};       // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> incr_{};      // desired-position increments
};

struct HistogramOptions {
  /// Ascending upper bounds of the finite buckets; an implicit +inf
  /// overflow bucket is always appended.
  std::vector<double> bucket_bounds;

  /// Geometric bucket ladder: {start, start*factor, ...} (count bounds).
  static HistogramOptions exponential(double start, double factor,
                                      std::size_t count);
  /// Default ladder for latency-style metrics in milliseconds:
  /// 0.25 ms .. ~4 s in x2 steps (15 finite buckets).
  static HistogramOptions latency_ms();
};

/// Fixed-bucket histogram + streaming p50/p90/p99 + running moments.
class Histogram {
 public:
  void record(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double p50() const { return p50_.estimate(); }
  [[nodiscard]] double p90() const { return p90_.estimate(); }
  [[nodiscard]] double p99() const { return p99_.estimate(); }

  /// Finite buckets plus the trailing overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  /// Upper bound of bucket i; +inf for the last (overflow) bucket.
  [[nodiscard]] double bucket_bound(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const {
    return counts_.at(i);
  }

 private:
  friend class MetricsRegistry;
  Histogram(HistogramOptions options, const bool* enabled);
  const bool* enabled_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p90_{0.90};
  P2Quantile p99_{0.99};
};

/// Point-in-time copy of one metric, for export (see obs/report.h).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;

  double value = 0.0;  ///< counter (cast) or gauge value

  // Histogram-only payload.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// (upper bound, count) per bucket; the final bound is +inf.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned pointers stay valid for the registry's
  /// lifetime; call once at setup and record through the handle.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  Histogram* histogram(std::string_view name,
                       HistogramOptions options = HistogramOptions::latency_ms(),
                       Labels labels = {});

  /// Disable/enable all recording (handles stay valid; records become a
  /// single branch). Used to measure instrumentation overhead.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] std::size_t size() const;

  /// Snapshot every metric, ordered by (name, labels).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  static Labels normalize(Labels labels);

  bool enabled_ = true;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mntp::obs
