// Metrics registry: counters, gauges and histograms keyed by name+labels.
//
// The registry is the quantitative half of the observability layer (the
// trace-event sink in obs/trace_event.h is the qualitative half). Design
// constraints, in order:
//
//   1. Hot-path cheapness. Instrumented code resolves a handle (Counter*,
//      Gauge*, Histogram*) ONCE at construction; recording through the
//      handle is O(1) with no map lookup and no allocation. A disabled
//      registry reduces every record to one predictable branch.
//   2. Determinism. Metrics only observe; nothing in the library reads a
//      metric back to make a decision, so instrumentation can never
//      perturb an experiment's RNG streams or event order.
//   3. Self-description. The registry can snapshot itself into plain
//      structs that the report writer (obs/report.h) serializes without
//      knowing anything about individual metrics.
//
// Histograms record into fixed buckets (for distribution shape) AND into
// P-squared streaming quantile estimators (for accurate p50/p90/p99
// without retaining samples) — the two complement each other: buckets are
// mergeable and exact-boundary, P² is O(1)-memory and boundary-free.
//
// Thread safety. The simulation kernel is single-threaded, but offline
// work (the parallel tuner searcher, core::ThreadPool::parallel_for
// callers) records from worker threads, so recording is safe under
// concurrent writers and loses no updates:
//
//   * Counter / Gauge — lock-free atomics (relaxed ordering; totals are
//     exact, cross-metric ordering is unspecified);
//   * ShardedCounter / ShardedGauge — per-thread slab cells (plain
//     stores, no atomics at all) merged at read; exact totals once the
//     writers have joined, following the ShardedHdrHistogram rule;
//   * Histogram — a per-histogram mutex around record() and the
//     accessors (the P² marker update is a read-modify-write over five
//     correlated arrays and cannot be usefully sharded);
//   * MetricsRegistry — a registry mutex around find-or-create and
//     snapshot(). Handle *resolution* may lock; recording through a
//     resolved Counter/Gauge handle never does.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/hdr_histogram.h"

namespace mntp::obs {

/// Metric labels: key/value pairs, e.g. {{"dir","up"}}. Stored sorted by
/// key so label order at the call site does not create distinct series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. Lock-free: concurrent inc() calls never lose
/// updates (relaxed atomics — exact totals, no ordering guarantee).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value. Lock-free; add() is a CAS loop so
/// concurrent deltas all land (set() racing add() keeps one
/// serialization, as for any last-writer-wins gauge).
class Gauge {
 public:
  void set(double v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void add(double d) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

class MetricShardSlabs;

/// Sharded monotonic counter: the fleet-scale complement to Counter.
/// Counter's single atomic is exact but CONTENDED — at 10⁵+ clients
/// spread over a thread pool every inc() bounces one cache line between
/// cores. ShardedCounter instead writes a per-thread slab cell (see
/// MetricShardSlabs): a plain uncontended store, no RMW, no sharing.
/// value() sums the cells; integer addition is commutative and
/// associative, so the merged total is bit-identical for any thread
/// count and any scheduling — the same merge rule ShardedHdrHistogram
/// relies on. Reads are only exact after parallel sections have joined
/// (cell writes are not synchronized with the merge, the rule
/// obs/hdr_histogram.h documents for merged()).
class ShardedCounter {
 public:
  void inc(std::uint64_t n = 1);
  /// Sum over every thread's cell. Exact once writers have joined.
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  ShardedCounter(const std::atomic<bool>* enabled, MetricShardSlabs* slabs,
                 std::size_t index)
      : enabled_(enabled), slabs_(slabs), index_(index) {}
  const std::atomic<bool>* enabled_;
  MetricShardSlabs* slabs_;
  std::size_t index_;
};

/// Sharded additive gauge: per-thread double cells summed at read. Unlike
/// Gauge there is no set() — last-writer-wins has no meaning when every
/// thread owns a private cell — so this is an accumulator exported with
/// gauge semantics (the registry snapshots it as Kind::kGauge). The
/// merge sums the per-thread partials in ascending value order, which
/// makes the result independent of thread arrival order for a given
/// partition; it is bit-identical across thread COUNTS when the deltas
/// are integral (or any sum where IEEE addition is exact), the same
/// restriction that led obs/hdr_histogram.h to ban FP accumulators.
class ShardedGauge {
 public:
  void add(double d);
  /// Sum of every thread's partial, ascending-value order.
  [[nodiscard]] double value() const;

 private:
  friend class MetricsRegistry;
  ShardedGauge(const std::atomic<bool>* enabled, MetricShardSlabs* slabs,
               std::size_t index)
      : enabled_(enabled), slabs_(slabs), index_(index) {}
  const std::atomic<bool>* enabled_;
  MetricShardSlabs* slabs_;
  std::size_t index_;
};

/// The per-thread slab backing every ShardedCounter/ShardedGauge of one
/// registry. Each thread that records gets ONE slab (two dense arrays,
/// uint64 counter cells and double gauge cells) shared by all that
/// registry's sharded metrics; a handle is just {slab set, cell index}.
/// The hot path resolves this thread's slab through a thread-local
/// cache (one owner/instance compare — the ShardedHdrHistogram idiom,
/// amortized O(1)), bounds-checks the cell and does a plain `+=`:
/// no atomics, no locks, no false sharing between threads. Slab
/// creation and growth (a handle registered after this thread's slab
/// was built) take the mutex; merged reads take it too and sum cells.
class MetricShardSlabs {
 public:
  MetricShardSlabs();
  MetricShardSlabs(const MetricShardSlabs&) = delete;
  MetricShardSlabs& operator=(const MetricShardSlabs&) = delete;

  void counter_add(std::size_t index, std::uint64_t n) {
    Slab& s = slab_for_this_thread();
    if (index >= s.counters.size()) grow(s);
    s.counters[index] += n;
  }
  void gauge_add(std::size_t index, double d) {
    Slab& s = slab_for_this_thread();
    if (index >= s.gauges.size()) grow(s);
    s.gauges[index] += d;
  }

  [[nodiscard]] std::uint64_t merged_counter(std::size_t index) const;
  [[nodiscard]] double merged_gauge(std::size_t index) const;

  /// Reserve the next cell index (registration path, rare).
  [[nodiscard]] std::size_t allocate_counter();
  [[nodiscard]] std::size_t allocate_gauge();

 private:
  struct Slab {
    std::vector<std::uint64_t> counters;
    std::vector<double> gauges;
  };

  Slab& slab_for_this_thread();
  /// Resize the calling thread's slab to the registered cell counts.
  /// Only the owning thread touches its cells, so the realloc cannot
  /// race the hot path; merged reads serialize on mutex_.
  void grow(Slab& slab);

  /// Distinguishes this instance from a destroyed one reusing the same
  /// address, so stale thread-local cache entries never resolve.
  std::uint64_t instance_id_;
  mutable std::mutex mutex_;
  std::size_t counter_count_ = 0;  // guarded by mutex_
  std::size_t gauge_count_ = 0;    // guarded by mutex_
  std::vector<std::unique_ptr<Slab>> slabs_;
};

inline void ShardedCounter::inc(std::uint64_t n) {
  if (enabled_->load(std::memory_order_relaxed)) {
    slabs_->counter_add(index_, n);
  }
}

inline std::uint64_t ShardedCounter::value() const {
  return slabs_->merged_counter(index_);
}

inline void ShardedGauge::add(double d) {
  if (enabled_->load(std::memory_order_relaxed)) {
    slabs_->gauge_add(index_, d);
  }
}

inline double ShardedGauge::value() const {
  return slabs_->merged_gauge(index_);
}

/// P-squared (P²) streaming quantile estimator (Jain & Chlamtac, 1985):
/// tracks one quantile of a stream in O(1) memory and O(1) per sample by
/// maintaining five markers whose heights follow a piecewise-parabolic
/// interpolation of the empirical CDF. Exact for the first five samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact order statistic while n <= 5.
  [[nodiscard]] double estimate() const;
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> height_{};    // marker heights (sample values)
  std::array<double, 5> pos_{};       // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> incr_{};      // desired-position increments
};

struct HistogramOptions {
  /// Ascending upper bounds of the finite buckets; an implicit +inf
  /// overflow bucket is always appended.
  std::vector<double> bucket_bounds;

  /// Geometric bucket ladder: {start, start*factor, ...} (count bounds).
  static HistogramOptions exponential(double start, double factor,
                                      std::size_t count);
  /// Default ladder for latency-style metrics in milliseconds:
  /// 0.25 ms .. ~4 s in x2 steps (15 finite buckets).
  static HistogramOptions latency_ms();
};

/// Fixed-bucket histogram + streaming p50/p90/p99 + running moments.
/// record() and the accessors serialize on a per-histogram mutex, so
/// concurrent recorders lose no samples and readers see consistent state.
class Histogram {
 public:
  void record(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double p50() const;
  [[nodiscard]] double p90() const;
  [[nodiscard]] double p99() const;

  /// Finite buckets plus the trailing overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const;
  /// Upper bound of bucket i; +inf for the last (overflow) bucket.
  [[nodiscard]] double bucket_bound(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const;

 private:
  friend class MetricsRegistry;
  Histogram(HistogramOptions options, const std::atomic<bool>* enabled);
  const std::atomic<bool>* enabled_;
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p90_{0.90};
  P2Quantile p99_{0.99};
};

/// Point-in-time copy of one metric, for export (see obs/report.h).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;

  double value = 0.0;  ///< counter (cast) or gauge value

  // Histogram-only payload.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// (upper bound, count) per bucket; the final bound is +inf.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned pointers stay valid for the registry's
  /// lifetime; call once at setup and record through the handle.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  Histogram* histogram(std::string_view name,
                       HistogramOptions options = HistogramOptions::latency_ms(),
                       Labels labels = {});
  /// Mergeable alternative to histogram() (see obs/hdr_histogram.h):
  /// exact log-linear bucket counts, per-thread shards merged at
  /// snapshot(), so the hot path never takes the per-histogram mutex the
  /// P² markers require. Choose this for distributions that must be
  /// aggregated across replicates/shards; choose histogram() when the
  /// named P² percentiles and hand-picked bucket bounds matter more.
  ShardedHdrHistogram* hdr_histogram(std::string_view name,
                                     HdrHistogramOptions options = {},
                                     Labels labels = {});
  /// Sharded alternatives to counter()/gauge() for series that hot loops
  /// increment from many threads: per-thread slab cells, merged at
  /// snapshot() (exported as plain counter/gauge snapshots, so the
  /// report schema does not change). Do NOT register the same
  /// name+labels through both counter() and sharded_counter() — they
  /// are distinct stores and would export duplicate series.
  ShardedCounter* sharded_counter(std::string_view name, Labels labels = {});
  ShardedGauge* sharded_gauge(std::string_view name, Labels labels = {});

  /// Disable/enable all recording (handles stay valid; records become a
  /// single branch). Used to measure instrumentation overhead.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const;

  /// Snapshot every metric, ordered by (name, labels).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  static Labels normalize(Labels labels);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  // guards the maps, not the metric values
  MetricShardSlabs slabs_;    // cells behind every sharded counter/gauge
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<Key, std::unique_ptr<ShardedHdrHistogram>> hdr_histograms_;
  std::map<Key, std::unique_ptr<ShardedCounter>> sharded_counters_;
  std::map<Key, std::unique_ptr<ShardedGauge>> sharded_gauges_;
};

}  // namespace mntp::obs
