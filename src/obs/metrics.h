// Metrics registry: counters, gauges and histograms keyed by name+labels.
//
// The registry is the quantitative half of the observability layer (the
// trace-event sink in obs/trace_event.h is the qualitative half). Design
// constraints, in order:
//
//   1. Hot-path cheapness. Instrumented code resolves a handle (Counter*,
//      Gauge*, Histogram*) ONCE at construction; recording through the
//      handle is O(1) with no map lookup and no allocation. A disabled
//      registry reduces every record to one predictable branch.
//   2. Determinism. Metrics only observe; nothing in the library reads a
//      metric back to make a decision, so instrumentation can never
//      perturb an experiment's RNG streams or event order.
//   3. Self-description. The registry can snapshot itself into plain
//      structs that the report writer (obs/report.h) serializes without
//      knowing anything about individual metrics.
//
// Histograms record into fixed buckets (for distribution shape) AND into
// P-squared streaming quantile estimators (for accurate p50/p90/p99
// without retaining samples) — the two complement each other: buckets are
// mergeable and exact-boundary, P² is O(1)-memory and boundary-free.
//
// Thread safety. The simulation kernel is single-threaded, but offline
// work (the parallel tuner searcher, core::ThreadPool::parallel_for
// callers) records from worker threads, so recording is safe under
// concurrent writers and loses no updates:
//
//   * Counter / Gauge — lock-free atomics (relaxed ordering; totals are
//     exact, cross-metric ordering is unspecified);
//   * Histogram — a per-histogram mutex around record() and the
//     accessors (the P² marker update is a read-modify-write over five
//     correlated arrays and cannot be usefully sharded);
//   * MetricsRegistry — a registry mutex around find-or-create and
//     snapshot(). Handle *resolution* may lock; recording through a
//     resolved Counter/Gauge handle never does.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/hdr_histogram.h"

namespace mntp::obs {

/// Metric labels: key/value pairs, e.g. {{"dir","up"}}. Stored sorted by
/// key so label order at the call site does not create distinct series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. Lock-free: concurrent inc() calls never lose
/// updates (relaxed atomics — exact totals, no ordering guarantee).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value. Lock-free; add() is a CAS loop so
/// concurrent deltas all land (set() racing add() keeps one
/// serialization, as for any last-writer-wins gauge).
class Gauge {
 public:
  void set(double v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void add(double d) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// P-squared (P²) streaming quantile estimator (Jain & Chlamtac, 1985):
/// tracks one quantile of a stream in O(1) memory and O(1) per sample by
/// maintaining five markers whose heights follow a piecewise-parabolic
/// interpolation of the empirical CDF. Exact for the first five samples.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);
  /// Current estimate; exact order statistic while n <= 5.
  [[nodiscard]] double estimate() const;
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> height_{};    // marker heights (sample values)
  std::array<double, 5> pos_{};       // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> incr_{};      // desired-position increments
};

struct HistogramOptions {
  /// Ascending upper bounds of the finite buckets; an implicit +inf
  /// overflow bucket is always appended.
  std::vector<double> bucket_bounds;

  /// Geometric bucket ladder: {start, start*factor, ...} (count bounds).
  static HistogramOptions exponential(double start, double factor,
                                      std::size_t count);
  /// Default ladder for latency-style metrics in milliseconds:
  /// 0.25 ms .. ~4 s in x2 steps (15 finite buckets).
  static HistogramOptions latency_ms();
};

/// Fixed-bucket histogram + streaming p50/p90/p99 + running moments.
/// record() and the accessors serialize on a per-histogram mutex, so
/// concurrent recorders lose no samples and readers see consistent state.
class Histogram {
 public:
  void record(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double p50() const;
  [[nodiscard]] double p90() const;
  [[nodiscard]] double p99() const;

  /// Finite buckets plus the trailing overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const;
  /// Upper bound of bucket i; +inf for the last (overflow) bucket.
  [[nodiscard]] double bucket_bound(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const;

 private:
  friend class MetricsRegistry;
  Histogram(HistogramOptions options, const std::atomic<bool>* enabled);
  const std::atomic<bool>* enabled_;
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p90_{0.90};
  P2Quantile p99_{0.99};
};

/// Point-in-time copy of one metric, for export (see obs/report.h).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;

  double value = 0.0;  ///< counter (cast) or gauge value

  // Histogram-only payload.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// (upper bound, count) per bucket; the final bound is +inf.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned pointers stay valid for the registry's
  /// lifetime; call once at setup and record through the handle.
  Counter* counter(std::string_view name, Labels labels = {});
  Gauge* gauge(std::string_view name, Labels labels = {});
  Histogram* histogram(std::string_view name,
                       HistogramOptions options = HistogramOptions::latency_ms(),
                       Labels labels = {});
  /// Mergeable alternative to histogram() (see obs/hdr_histogram.h):
  /// exact log-linear bucket counts, per-thread shards merged at
  /// snapshot(), so the hot path never takes the per-histogram mutex the
  /// P² markers require. Choose this for distributions that must be
  /// aggregated across replicates/shards; choose histogram() when the
  /// named P² percentiles and hand-picked bucket bounds matter more.
  ShardedHdrHistogram* hdr_histogram(std::string_view name,
                                     HdrHistogramOptions options = {},
                                     Labels labels = {});

  /// Disable/enable all recording (handles stay valid; records become a
  /// single branch). Used to measure instrumentation overhead.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const;

  /// Snapshot every metric, ordered by (name, labels).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  static Labels normalize(Labels labels);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  // guards the maps, not the metric values
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<Key, std::unique_ptr<ShardedHdrHistogram>> hdr_histograms_;
};

}  // namespace mntp::obs
