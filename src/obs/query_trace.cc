#include "obs/query_trace.h"

#include <algorithm>

#include <fstream>
#include <utility>

#include "core/json_writer.h"
#include "core/rng.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/streaming.h"

namespace mntp::obs {

namespace {

thread_local AmbientQuery t_ambient;

void write_field(core::JsonWriter& w, const Field& f) {
  w.key(f.key);
  std::visit([&](const auto& v) { w.value(v); }, f.value);
}

}  // namespace

void append_query_trace_json(std::string& out, const QueryTrace& trace) {
  core::JsonWriter w(out);
  w.begin_object()
      .kv("type", "query")
      .kv("id", trace.id)
      .kv("parent", trace.parent)
      .kv("kind", trace.kind)
      .kv("start_ns", trace.started.ns())
      .key("stages")
      .begin_array();
  for (const QueryStage& s : trace.stages) {
    w.begin_object()
        .kv("t_ns", s.t.ns())
        .kv("stage", s.stage)
        .kv("reason", to_string(s.reason))
        .key("fields")
        .begin_object();
    for (const Field& f : s.fields) write_field(w, f);
    w.end_object().end_object();
  }
  w.end_array().end_object();
}

bool QueryTracer::gate_keeps(QueryId id) const {
  if (sampling_.sample_one_in_n <= 1) return true;
  return core::splitmix64(gate_seed_ + id) % sampling_.sample_one_in_n == 0;
}

void QueryTracer::set_sampling(const Sampling& sampling) {
  std::lock_guard lock(mutex_);
  sampling_ = sampling;
  if (sampling_.sample_one_in_n == 0) sampling_.sample_one_in_n = 1;
  gate_seed_ = core::derive_stream_seed(sampling_.seed, 0);
  rank_seed_ = core::derive_stream_seed(sampling_.seed, 1);
}

QueryTracer::Sampling QueryTracer::sampling() const {
  std::lock_guard lock(mutex_);
  return sampling_;
}

void QueryTracer::set_stream(StreamingQueryTraceSink* sink) {
  std::lock_guard lock(mutex_);
  stream_ = sink;
}

void QueryTracer::store_locked(QueryTrace trace) {
  const QueryId id = trace.id;
  // Reservoir needs retention to evict; it is inert while streaming.
  const std::size_t reservoir =
      stream_ != nullptr ? 0 : sampling_.reservoir;
  if (reservoir > 0 && index_.size() >= reservoir) {
    // Bottom-k rank sketch: keep the k smallest (hash, id) ranks seen.
    // Order-independent — the final kept set is the k smallest ranks of
    // the whole candidate stream, whatever the arrival interleaving.
    const std::pair<std::uint64_t, QueryId> rank{
        core::splitmix64(rank_seed_ + id), id};
    if (rank >= reservoir_heap_.front()) {
      ++sampled_out_;  // newcomer ranks worse than everything stored
      return;
    }
    std::pop_heap(reservoir_heap_.begin(), reservoir_heap_.end());
    const QueryId evicted = reservoir_heap_.back().second;
    reservoir_heap_.pop_back();
    const auto it = index_.find(evicted);
    traces_[it->second] = QueryTrace{};  // release stage memory
    free_slots_.push_back(it->second);
    index_.erase(it);
    --kept_;
    ++sampled_out_;  // the evictee was provisional; it ends sampled out
  } else if (reservoir == 0 && index_.size() >= limits_.max_queries) {
    ++dropped_queries_;
    if (stream_ != nullptr) stream_->account(id);
    return;
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    traces_[slot] = std::move(trace);
  } else {
    slot = traces_.size();
    traces_.push_back(std::move(trace));
  }
  index_.emplace(id, slot);
  ++kept_;
  if (reservoir > 0) {
    reservoir_heap_.emplace_back(core::splitmix64(rank_seed_ + id), id);
    std::push_heap(reservoir_heap_.begin(), reservoir_heap_.end());
  }
}

QueryId QueryTracer::begin(core::TimePoint t, std::string_view kind,
                           QueryId parent) {
  if (!enabled()) return 0;
  const QueryId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (!gate_keeps(id)) {
    // Sampled away; id stays monotonic and stages for it will no-op.
    ++sampled_out_;
    if (stream_ != nullptr) stream_->account(id);
    return id;
  }
  QueryTrace trace;
  trace.id = id;
  trace.parent = parent;
  trace.kind = std::string(kind);
  trace.started = t;
  store_locked(std::move(trace));
  return id;
}

void QueryTracer::stage(QueryId id, core::TimePoint t,
                        std::string_view stage, Reason reason,
                        std::vector<Field> fields) {
  if (id == 0 || !enabled()) return;
  std::lock_guard lock(mutex_);
  auto it = index_.find(id);
  if (it == index_.end()) return;
  QueryTrace& trace = traces_[it->second];
  if (trace.finished) return;  // straggler after the verdict
  if (trace.stages.size() >= limits_.max_stages_per_query) {
    ++dropped_stages_;
    return;
  }
  trace.stages.push_back(
      QueryStage{t, std::string(stage), reason, std::move(fields)});
}

void QueryTracer::finish(QueryId id, core::TimePoint t, Reason reason,
                         std::vector<Field> fields) {
  if (id == 0 || !enabled()) return;
  std::lock_guard lock(mutex_);
  auto it = index_.find(id);
  if (it == index_.end()) return;
  QueryTrace& trace = traces_[it->second];
  if (trace.finished) return;
  // The verdict always lands, even at the stage cap — a trace without a
  // terminal reason is useless to `mntp-inspect explain`.
  trace.stages.push_back(
      QueryStage{t, "verdict", reason, std::move(fields)});
  trace.finished = true;
  if (stream_ != nullptr) {
    // Hand the complete trace to the sink and recycle the slot: the
    // store only ever holds OPEN queries while streaming.
    stream_->emit(trace);
    traces_[it->second] = QueryTrace{};
    free_slots_.push_back(it->second);
    index_.erase(it);
  }
}

std::vector<QueryTrace> QueryTracer::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<QueryTrace> out;
  out.reserve(index_.size());
  for (const auto& [id, slot] : index_) out.push_back(traces_[slot]);
  std::sort(out.begin(), out.end(),
            [](const QueryTrace& a, const QueryTrace& b) {
              return a.id < b.id;
            });
  return out;
}

std::uint64_t QueryTracer::minted() const {
  return next_id_.load(std::memory_order_relaxed) - 1;
}

std::uint64_t QueryTracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_queries_;
}

std::uint64_t QueryTracer::kept() const {
  std::lock_guard lock(mutex_);
  return kept_;
}

std::uint64_t QueryTracer::sampled_out() const {
  std::lock_guard lock(mutex_);
  return sampled_out_;
}

void QueryTracer::clear() {
  std::lock_guard lock(mutex_);
  traces_.clear();
  index_.clear();
  free_slots_.clear();
  reservoir_heap_.clear();
  kept_ = 0;
  sampled_out_ = 0;
  dropped_queries_ = 0;
  dropped_stages_ = 0;
}

void QueryTracer::export_counters(MetricsRegistry& registry) const {
  std::uint64_t kept, sampled_out, dropped;
  {
    std::lock_guard lock(mutex_);
    kept = kept_;
    sampled_out = sampled_out_;
    dropped = dropped_queries_;
  }
  registry.counter(metric_names::kObsQueryTraceKept)->inc(kept);
  registry.counter(metric_names::kObsQueryTraceSampledOut)->inc(sampled_out);
  registry.counter(metric_names::kObsQueryTraceDropped)->inc(dropped);
}

std::string QueryTracer::to_jsonl(std::string_view run,
                                  core::TimePoint sim_end) const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(256 + index_.size() * 256);
  {
    core::JsonWriter w(out);
    w.begin_object()
        .kv("type", "meta")
        .kv("schema_version", std::int64_t{1})
        .kv("kind", "mntp_query_trace")
        .kv("run", run)
        .kv("sim_end_ns", sim_end.ns())
        .kv("query_count", static_cast<std::int64_t>(index_.size()))
        .kv("dropped", static_cast<std::int64_t>(dropped_queries_))
        .kv("dropped_stages", static_cast<std::int64_t>(dropped_stages_));
    if (sampling_active()) {
      // Only present when a gate/reservoir is configured: unsampled
      // artifacts stay byte-identical to the pre-sampling schema.
      w.key("sampling")
          .begin_object()
          .kv("sample_one_in_n",
              static_cast<std::int64_t>(sampling_.sample_one_in_n))
          .kv("seed", sampling_.seed)
          .kv("reservoir", static_cast<std::int64_t>(sampling_.reservoir))
          .kv("minted",
              next_id_.load(std::memory_order_relaxed) - 1)
          .kv("kept", kept_)
          .kv("sampled_out", sampled_out_)
          .end_object();
    }
    w.end_object();
  }
  out += '\n';
  // Emit in id order. Queries are *stored* in insertion order, and
  // concurrent minters (parallel replicates, tuner workers) can insert
  // in a different order than they minted — the artifact contract is
  // strictly increasing ids regardless of producer interleaving.
  std::vector<const QueryTrace*> ordered;
  ordered.reserve(index_.size());
  for (const auto& [id, slot] : index_) ordered.push_back(&traces_[slot]);
  std::sort(ordered.begin(), ordered.end(),
            [](const QueryTrace* a, const QueryTrace* b) {
              return a->id < b->id;
            });
  for (const QueryTrace* trace_ptr : ordered) {
    append_query_trace_json(out, *trace_ptr);
    out += '\n';
  }
  return out;
}

bool QueryTracer::write_jsonl_file(const std::string& path,
                                   std::string_view run,
                                   core::TimePoint sim_end) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl(run, sim_end);
  return static_cast<bool>(out);
}

bool QueryTracer::finish_stream(std::string_view run,
                                core::TimePoint sim_end) {
  std::lock_guard lock(mutex_);
  if (stream_ == nullptr) return true;
  // Queries still open at end of run are exported unfinished, matching
  // the batch exporter's behaviour.
  std::vector<const QueryTrace*> open;
  open.reserve(index_.size());
  for (const auto& [id, slot] : index_) open.push_back(&traces_[slot]);
  std::sort(open.begin(), open.end(),
            [](const QueryTrace* a, const QueryTrace* b) {
              return a->id < b->id;
            });
  for (const QueryTrace* trace : open) stream_->emit(*trace);
  traces_.clear();
  index_.clear();
  free_slots_.clear();
  return stream_->close(run, sim_end, sampling_,
                        next_id_.load(std::memory_order_relaxed) - 1, kept_,
                        sampled_out_, dropped_queries_, dropped_stages_);
}

AmbientQuery ambient_query() { return t_ambient; }

ActiveQueryScope::ActiveQueryScope(QueryTracer& tracer, QueryId id)
    : previous_(t_ambient) {
  t_ambient = id != 0 ? AmbientQuery{&tracer, id} : AmbientQuery{};
}

ActiveQueryScope::~ActiveQueryScope() { t_ambient = previous_; }

}  // namespace mntp::obs
