#include "obs/query_trace.h"

#include <algorithm>

#include <fstream>
#include <utility>

#include "core/json_writer.h"

namespace mntp::obs {

namespace {

thread_local AmbientQuery t_ambient;

void write_field(core::JsonWriter& w, const Field& f) {
  w.key(f.key);
  std::visit([&](const auto& v) { w.value(v); }, f.value);
}

}  // namespace

QueryId QueryTracer::begin(core::TimePoint t, std::string_view kind,
                           QueryId parent) {
  if (!enabled()) return 0;
  const QueryId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (traces_.size() >= limits_.max_queries) {
    ++dropped_queries_;
    return id;  // id stays monotonic; stages for it will no-op
  }
  QueryTrace trace;
  trace.id = id;
  trace.parent = parent;
  trace.kind = std::string(kind);
  trace.started = t;
  index_.emplace(id, traces_.size());
  traces_.push_back(std::move(trace));
  return id;
}

void QueryTracer::stage(QueryId id, core::TimePoint t,
                        std::string_view stage, Reason reason,
                        std::vector<Field> fields) {
  if (id == 0 || !enabled()) return;
  std::lock_guard lock(mutex_);
  auto it = index_.find(id);
  if (it == index_.end()) return;
  QueryTrace& trace = traces_[it->second];
  if (trace.finished) return;  // straggler after the verdict
  if (trace.stages.size() >= limits_.max_stages_per_query) {
    ++dropped_stages_;
    return;
  }
  trace.stages.push_back(
      QueryStage{t, std::string(stage), reason, std::move(fields)});
}

void QueryTracer::finish(QueryId id, core::TimePoint t, Reason reason,
                         std::vector<Field> fields) {
  if (id == 0 || !enabled()) return;
  std::lock_guard lock(mutex_);
  auto it = index_.find(id);
  if (it == index_.end()) return;
  QueryTrace& trace = traces_[it->second];
  if (trace.finished) return;
  // The verdict always lands, even at the stage cap — a trace without a
  // terminal reason is useless to `mntp-inspect explain`.
  trace.stages.push_back(
      QueryStage{t, "verdict", reason, std::move(fields)});
  trace.finished = true;
}

std::vector<QueryTrace> QueryTracer::snapshot() const {
  std::lock_guard lock(mutex_);
  return traces_;
}

std::uint64_t QueryTracer::minted() const {
  return next_id_.load(std::memory_order_relaxed) - 1;
}

std::uint64_t QueryTracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_queries_;
}

void QueryTracer::clear() {
  std::lock_guard lock(mutex_);
  traces_.clear();
  index_.clear();
  dropped_queries_ = 0;
  dropped_stages_ = 0;
}

std::string QueryTracer::to_jsonl(std::string_view run,
                                  core::TimePoint sim_end) const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(256 + traces_.size() * 256);
  {
    core::JsonWriter w(out);
    w.begin_object()
        .kv("type", "meta")
        .kv("schema_version", std::int64_t{1})
        .kv("kind", "mntp_query_trace")
        .kv("run", run)
        .kv("sim_end_ns", sim_end.ns())
        .kv("query_count", static_cast<std::int64_t>(traces_.size()))
        .kv("dropped", static_cast<std::int64_t>(dropped_queries_))
        .kv("dropped_stages", static_cast<std::int64_t>(dropped_stages_))
        .end_object();
  }
  out += '\n';
  // Emit in id order. Queries are *stored* in insertion order, and
  // concurrent minters (parallel replicates, tuner workers) can insert
  // in a different order than they minted — the artifact contract is
  // strictly increasing ids regardless of producer interleaving.
  std::vector<const QueryTrace*> ordered;
  ordered.reserve(traces_.size());
  for (const QueryTrace& trace : traces_) ordered.push_back(&trace);
  std::sort(ordered.begin(), ordered.end(),
            [](const QueryTrace* a, const QueryTrace* b) {
              return a->id < b->id;
            });
  for (const QueryTrace* trace_ptr : ordered) {
    const QueryTrace& trace = *trace_ptr;
    core::JsonWriter w(out);
    w.begin_object()
        .kv("type", "query")
        .kv("id", trace.id)
        .kv("parent", trace.parent)
        .kv("kind", trace.kind)
        .kv("start_ns", trace.started.ns())
        .key("stages")
        .begin_array();
    for (const QueryStage& s : trace.stages) {
      w.begin_object()
          .kv("t_ns", s.t.ns())
          .kv("stage", s.stage)
          .kv("reason", to_string(s.reason))
          .key("fields")
          .begin_object();
      for (const Field& f : s.fields) write_field(w, f);
      w.end_object().end_object();
    }
    w.end_array().end_object();
    out += '\n';
  }
  return out;
}

bool QueryTracer::write_jsonl_file(const std::string& path,
                                   std::string_view run,
                                   core::TimePoint sim_end) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl(run, sim_end);
  return static_cast<bool>(out);
}

AmbientQuery ambient_query() { return t_ambient; }

ActiveQueryScope::ActiveQueryScope(QueryTracer& tracer, QueryId id)
    : previous_(t_ambient) {
  t_ambient = id != 0 ? AmbientQuery{&tracer, id} : AmbientQuery{};
}

ActiveQueryScope::~ActiveQueryScope() { t_ambient = previous_; }

}  // namespace mntp::obs
