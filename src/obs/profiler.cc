#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "core/json_writer.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"

namespace mntp::obs {

namespace {

/// Open-span frame on the per-thread stack. The frame pins the profiler
/// that was current at open, so a span closing after a ScopedTelemetry
/// switch still records where it started; child-time accumulation walks
/// the stack irrespective of which profiler each frame belongs to.
struct Frame {
  Profiler* profiler;
  const char* name;
  std::int64_t start_ns;
  std::int64_t child_ns;
  std::int64_t sim_t_ns;
  bool has_sim;
};

thread_local std::vector<Frame> t_span_stack;

std::uint32_t this_thread_profile_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Profiler::Profiler(Options options)
    : epoch_(std::chrono::steady_clock::now()), options_(options) {}

std::int64_t Profiler::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Profiler::record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  Aggregate& agg = aggregates_[span.name];
  if (agg.count == 0) {
    agg.min_ns = span.dur_ns;
    agg.max_ns = span.dur_ns;
  } else {
    agg.min_ns = std::min(agg.min_ns, span.dur_ns);
    agg.max_ns = std::max(agg.max_ns, span.dur_ns);
  }
  ++agg.count;
  agg.total_ns += span.dur_ns;
  agg.self_ns += span.self_ns;
  agg.p50.add(static_cast<double>(span.dur_ns));

  if (records_.size() < options_.max_records) {
    records_.push_back(span);
  } else {
    ++dropped_;
  }
}

std::vector<Profiler::SpanRecord> Profiler::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::vector<Profiler::SpanStats> Profiler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanStats> out;
  out.reserve(aggregates_.size());
  for (const auto& [name, agg] : aggregates_) {
    out.push_back(SpanStats{.name = name,
                            .count = agg.count,
                            .total_ns = agg.total_ns,
                            .self_ns = agg.self_ns,
                            .min_ns = agg.min_ns,
                            .max_ns = agg.max_ns,
                            .p50_ns = agg.p50.estimate()});
  }
  return out;  // std::map iteration is already name-sorted
}

std::uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t Profiler::total_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size() + dropped_;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  aggregates_.clear();
  dropped_ = 0;
}

void Profiler::export_to_metrics(MetricsRegistry& registry) const {
  const std::vector<SpanStats> all = stats();
  const auto us = [](std::int64_t ns) {
    return static_cast<double>(ns) / 1e3;
  };
  for (const SpanStats& s : all) {
    const Labels labels{{"span", s.name}};
    registry.gauge("profile.span.count", labels)
        ->set(static_cast<double>(s.count));
    registry.gauge("profile.span.total_wall_us", labels)->set(us(s.total_ns));
    registry.gauge("profile.span.self_wall_us", labels)->set(us(s.self_ns));
    registry.gauge("profile.span.min_us", labels)->set(us(s.min_ns));
    registry.gauge("profile.span.p50_us", labels)->set(s.p50_ns / 1e3);
    registry.gauge("profile.span.max_us", labels)->set(us(s.max_ns));
  }
  if (const std::uint64_t n = dropped(); n > 0) {
    registry.gauge("profile.spans_dropped")->set(static_cast<double>(n));
  }
}

Profiler& current_profiler() noexcept { return Telemetry::global().profiler(); }

void ProfileScope::open(const char* name, bool has_sim,
                        core::TimePoint sim_t) {
  Profiler& profiler = current_profiler();
  t_span_stack.push_back(Frame{.profiler = &profiler,
                               .name = name,
                               .start_ns = profiler.now_ns(),
                               .child_ns = 0,
                               .sim_t_ns = sim_t.ns(),
                               .has_sim = has_sim});
}

void ProfileScope::close() {
  Frame frame = t_span_stack.back();
  t_span_stack.pop_back();
  const std::int64_t dur_ns = frame.profiler->now_ns() - frame.start_ns;
  if (!t_span_stack.empty()) t_span_stack.back().child_ns += dur_ns;
  frame.profiler->record(
      Profiler::SpanRecord{.name = frame.name,
                           .tid = this_thread_profile_id(),
                           .depth = static_cast<std::uint32_t>(
                               t_span_stack.size()),
                           .start_ns = frame.start_ns,
                           .dur_ns = dur_ns,
                           .self_ns = dur_ns - frame.child_ns,
                           .sim_t_ns = frame.sim_t_ns,
                           .has_sim = frame.has_sim});
}

void write_chrome_trace(std::ostream& out, const Profiler& profiler,
                        std::string_view run_name) {
  std::vector<Profiler::SpanRecord> spans = profiler.records();
  // chrome://tracing accepts any order, but a time-sorted file diffs and
  // reads better.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Profiler::SpanRecord& a,
                      const Profiler::SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });

  // Chrome trace ts/dur are fractional microseconds, rendered "%.3f".
  const auto us = [](std::int64_t ns) {
    return static_cast<double>(ns) / 1e3;
  };
  std::string line;
  {
    core::JsonWriter w(line);
    w.begin_object()
        .kv("displayTimeUnit", "ms")
        .key("otherData")
        .begin_object()
        .kv("run", run_name)
        .kv("span_count", static_cast<std::int64_t>(spans.size()))
        .kv("dropped_spans", static_cast<std::int64_t>(profiler.dropped()))
        .end_object();
  }
  line += ",\"traceEvents\":[";
  {
    core::JsonWriter w(line);
    w.begin_object()
        .kv("ph", "M")
        .kv("pid", 0)
        .kv("tid", 0)
        .kv("name", "process_name")
        .key("args")
        .begin_object()
        .kv("name", run_name)
        .end_object()
        .end_object();
  }
  out << line;
  // Spans stream one event at a time through a reused buffer — a trace
  // can hold hundreds of thousands of records.
  for (const Profiler::SpanRecord& s : spans) {
    line.assign(",\n");
    core::JsonWriter w(line);
    w.begin_object()
        .kv("name", s.name)
        .kv("cat", "span")
        .kv("ph", "X")
        .kv("pid", 0)
        .kv("tid", static_cast<std::int64_t>(s.tid))
        .key("ts")
        .value_fixed(us(s.start_ns), 3)
        .key("dur")
        .value_fixed(us(s.dur_ns), 3)
        .key("args")
        .begin_object()
        .key("self_us")
        .value_fixed(us(s.self_ns), 3)
        .kv("depth", static_cast<std::int64_t>(s.depth));
    if (s.has_sim) w.kv("sim_t_ns", s.sim_t_ns);
    w.end_object().end_object();
    out << line;
  }
  out << "]}\n";
}

core::Status write_chrome_trace_file(const std::string& path,
                                     const Profiler& profiler,
                                     std::string_view run_name) {
  std::ofstream out(path);
  if (!out) {
    return core::Error::io("cannot open profile output path: " + path);
  }
  write_chrome_trace(out, profiler, run_name);
  out.flush();
  if (!out) {
    return core::Error::io("failed writing profile output: " + path);
  }
  return {};
}

}  // namespace mntp::obs
