#include "obs/diff.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "core/format.h"
#include "core/json.h"
#include "core/json_writer.h"
#include "core/stats.h"
#include "core/table.h"

namespace mntp::obs {
namespace {

using core::Error;
using core::Json;
using core::Result;

// Class vocabulary (see diff.h).
constexpr const char* kEqual = "equal";
constexpr const char* kChanged = "changed";
constexpr const char* kExact = "exact";
constexpr const char* kShifted = "shifted";
constexpr const char* kAdded = "added";
constexpr const char* kRemoved = "removed";

/// A loaded artifact: the kind plus whichever representation that kind
/// parses into. Only one of the per-kind members is populated.
struct Artifact {
  DiffKind kind = DiffKind::kBench;
  std::string run;

  // bench: workload name -> (median, mad)
  struct Workload {
    double median_us = 0.0;
    double mad_us = 0.0;
  };
  std::map<std::string, Workload> workloads;

  // profile: span name -> aggregate
  struct SpanAgg {
    double count = 0.0;
    double total_us = 0.0;
    double self_us = 0.0;
  };
  std::map<std::string, SpanAgg> spans;

  // report: "name{labels}" -> scalar; histograms; event counts
  struct Scalar {
    double value = 0.0;
    bool accounting = false;  // mntp.* / obs.* counter: exact class
  };
  struct HistRow {
    double count = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0;
  };
  std::map<std::string, Scalar> scalars;
  std::map<std::string, HistRow> histograms;
  std::map<std::string, double> event_counts;  // "category/name"

  // query-trace: "kind/reason" verdict buckets
  std::map<std::string, double> verdicts;
  double query_total = 0.0;

  // timeline: series name{labels} -> mean points
  std::map<std::string, std::vector<double>> series;
};

std::string labels_suffix(const Json& labels) {
  if (!labels.is_object() || labels.as_object().empty()) return "";
  std::string out = "{";
  for (const auto& [key, value] : labels.as_object()) {
    if (out.size() > 1) out += ",";
    out += key + "=" + value.as_string();
  }
  return out + "}";
}

/// The accounting families whose counters must reconcile exactly
/// between runs of the same scenario (ids conserved by construction:
/// minted == kept + sampled_out + dropped and friends).
bool is_accounting_counter(const std::string& name) {
  return name.rfind("mntp.", 0) == 0 || name.rfind("obs.", 0) == 0;
}

// ------------------------------------------------------------- loading

Result<Artifact> load_bench(const Json& doc) {
  Artifact art;
  art.kind = DiffKind::kBench;
  if (!doc["workloads"].is_array()) {
    return Error::malformed("bench artifact has no workloads array");
  }
  for (const Json& w : doc["workloads"].as_array()) {
    const std::string& name = w["name"].as_string();
    if (name.empty()) return Error::malformed("bench workload without name");
    art.workloads[name] = {w["median_us"].as_double(),
                           w["mad_us"].as_double()};
  }
  return art;
}

Result<Artifact> load_profile(const Json& doc) {
  Artifact art;
  art.kind = DiffKind::kProfile;
  if (!doc["traceEvents"].is_array()) {
    return Error::malformed("profile artifact has no traceEvents array");
  }
  for (const Json& e : doc["traceEvents"].as_array()) {
    const std::string& ph = e["ph"].as_string();
    if (ph == "M") {
      if (e["name"].as_string() == "process_name") {
        art.run = e["args"]["name"].as_string();
      }
      continue;
    }
    if (ph != "X") continue;
    Artifact::SpanAgg& agg = art.spans[e["name"].as_string()];
    agg.count += 1.0;
    agg.total_us += e["dur"].as_double();
    agg.self_us += e["args"]["self_us"].as_double();
  }
  return art;
}

Result<Artifact> load_report(const std::vector<std::string>& lines) {
  Artifact art;
  art.kind = DiffKind::kReport;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      return Error::malformed(core::strformat(
          "line %zu: %s", i + 1, parsed.error().message.c_str()));
    }
    const Json line = parsed.value();
    const std::string& type = line["type"].as_string();
    if (type == "meta") {
      art.run = line["run"].as_string();
    } else if (type == "metric") {
      const std::string& name = line["name"].as_string();
      const std::string key = name + labels_suffix(line["labels"]);
      const std::string& kind = line["kind"].as_string();
      if (kind == "histogram") {
        art.histograms[key] = {static_cast<double>(line["count"].as_int()),
                               line["p50"].as_double(),
                               line["p90"].as_double(),
                               line["p99"].as_double()};
      } else {
        art.scalars[key] = {line["value"].as_double(),
                            kind == "counter" && is_accounting_counter(name)};
      }
    } else if (type == "event") {
      art.event_counts[line["category"].as_string() + "/" +
                       line["name"].as_string()] += 1.0;
    }
  }
  return art;
}

Result<Artifact> load_query_trace(const std::vector<std::string>& lines) {
  Artifact art;
  art.kind = DiffKind::kQueryTrace;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      return Error::malformed(core::strformat(
          "line %zu: %s", i + 1, parsed.error().message.c_str()));
    }
    const Json line = parsed.value();
    const std::string& type = line["type"].as_string();
    if (type == "meta") {
      art.run = line["run"].as_string();
      continue;
    }
    if (type != "query") continue;
    // The verdict is the last stage named "verdict" (the tracer
    // guarantees at most one, and last); queries that never finished
    // bucket as "unfinished" exactly like the inspector's table.
    std::string reason = "unfinished";
    const auto& stages = line["stages"].as_array();
    for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
      if ((*it)["stage"].as_string() == "verdict") {
        reason = (*it)["reason"].as_string();
        break;
      }
    }
    art.verdicts[line["kind"].as_string() + "/" + reason] += 1.0;
    art.query_total += 1.0;
  }
  return art;
}

Result<Artifact> load_timeline(const std::vector<std::string>& lines) {
  Artifact art;
  art.kind = DiffKind::kTimeline;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      return Error::malformed(core::strformat(
          "line %zu: %s", i + 1, parsed.error().message.c_str()));
    }
    const Json line = parsed.value();
    const std::string& type = line["type"].as_string();
    if (type == "meta") {
      art.run = line["run"].as_string();
      continue;
    }
    if (type != "series") continue;
    std::vector<double> means;
    for (const Json& p : line["points"].as_array()) {
      means.push_back(p.at(2).as_double());  // [t_ns,min,mean,max,last,count]
    }
    art.series[line["name"].as_string() + labels_suffix(line["labels"])] =
        std::move(means);
  }
  return art;
}

/// Read a file and classify + parse it, mirroring the kind auto-detect
/// of mntp-inspect / check_telemetry_schema.py: whole-file JSON first
/// (profile / bench / zero-body JSONL metas), then JSONL by meta kind.
Result<Artifact> load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error::io("cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (content.find_first_not_of(" \t\r\n") == std::string::npos) {
    return Error::malformed(path + ": empty artifact file");
  }

  auto annotate = [&path](Result<Artifact> r) -> Result<Artifact> {
    if (r.ok()) return r;
    return Error{r.error().code, path + ": " + r.error().message};
  };

  if (auto doc = Json::parse(content); doc.ok()) {
    const Json& json = doc.value();
    if (json.has("traceEvents")) return annotate(load_profile(json));
    const std::string& kind = json["kind"].as_string();
    if (kind == "mntp_perf_suite") return annotate(load_bench(json));
    // Zero-body JSONL artifacts are a single meta line, i.e. valid
    // whole-file JSON; route them through the line-oriented loaders.
    if (kind == "mntp_query_trace") {
      return annotate(load_query_trace({content}));
    }
    if (kind == "mntp_timeline") return annotate(load_timeline({content}));
    if (kind == "mntp_trace_events") {
      return Error::invalid_argument(
          path + ": trace-event streams are not diffable (diff the run "
                 "report or query trace of the same run instead)");
    }
    if (!kind.empty()) {
      return Error::invalid_argument(path + ": unsupported artifact kind '" +
                                     kind + "'");
    }
    return Error::malformed(path + ": unrecognized JSON document");
  }

  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(content);
  while (std::getline(stream, line)) lines.push_back(line);
  if (lines.empty()) return Error::malformed(path + ": empty artifact");
  auto first = Json::parse(lines.front());
  if (!first.ok() || first.value()["type"].as_string() != "meta") {
    return Error::malformed(
        path + ": not a bench, profile, report, query-trace or timeline "
               "artifact");
  }
  const std::string& kind = first.value()["kind"].as_string();
  if (kind == "mntp_query_trace") return annotate(load_query_trace(lines));
  if (kind == "mntp_timeline") return annotate(load_timeline(lines));
  if (kind == "mntp_trace_events") {
    return Error::invalid_argument(
        path + ": trace-event streams are not diffable (diff the run "
               "report or query trace of the same run instead)");
  }
  return annotate(load_report(lines));
}

// ------------------------------------------------------------- diffing

/// Sort a section most-significant first: regressions, then other
/// significant entries, by descending score; insignificant entries by
/// descending |delta|. Stable name tiebreak keeps output deterministic.
void rank(DiffSection& section) {
  std::stable_sort(section.entries.begin(), section.entries.end(),
                   [](const DiffEntry& a, const DiffEntry& b) {
                     if (a.regression != b.regression) return a.regression;
                     if (a.significant != b.significant) return a.significant;
                     if (a.score != b.score) return a.score > b.score;
                     const double da = std::fabs(a.delta);
                     const double db = std::fabs(b.delta);
                     if (da != db) return da > db;
                     return a.name < b.name;
                   });
}

void tally(DiffResult& result, const DiffSection& section) {
  for (const DiffEntry& e : section.entries) {
    if (e.significant) ++result.significant;
    if (e.regression) ++result.regressions;
  }
}

/// The bench_compare.py gate, verbatim: candidate passes iff
///   cand <= base * (1 + tolerance) + max(abs_floor, 4 * base_mad).
double bench_allowance(double base_median, double base_mad,
                       const DiffOptions& opt) {
  return base_median * opt.tolerance +
         std::max(opt.abs_floor_us, 4.0 * base_mad);
}

DiffResult diff_bench(const Artifact& a, const Artifact& b,
                      const DiffOptions& opt) {
  DiffResult result;
  result.kind = DiffKind::kBench;
  DiffSection section{"workloads", {}};
  for (const auto& [name, base] : a.workloads) {
    DiffEntry e;
    e.name = name;
    e.has_before = true;
    e.before = base.median_us;
    auto it = b.workloads.find(name);
    if (it == b.workloads.end()) {
      e.cls = kRemoved;
      e.significant = e.regression = true;  // bench_compare: FAIL missing
      e.note = "missing from candidate";
      section.entries.push_back(std::move(e));
      continue;
    }
    e.has_after = true;
    e.after = it->second.median_us;
    e.delta = e.after - e.before;
    const double allowance = bench_allowance(base.median_us, base.mad_us, opt);
    // Score: how far past (or inside) the allowance the delta landed,
    // in allowance units — >1 means the gate trips.
    e.score = allowance > 0.0 ? e.delta / allowance
                              : (e.delta > 0.0 ? 2.0 : 0.0);
    e.regression = e.after > e.before + allowance;
    e.significant = e.regression || e.before - e.after > allowance;
    e.cls = e.significant ? kChanged : kEqual;
    if (e.significant && !e.regression) e.note = "improvement";
    section.entries.push_back(std::move(e));
  }
  for (const auto& [name, cand] : b.workloads) {
    if (a.workloads.count(name)) continue;
    DiffEntry e;
    e.name = name;
    e.has_after = true;
    e.after = cand.median_us;
    e.cls = kAdded;
    e.note = "new workload, no baseline";
    section.entries.push_back(std::move(e));
  }
  rank(section);
  tally(result, section);
  result.sections.push_back(std::move(section));
  return result;
}

DiffResult diff_profile(const Artifact& a, const Artifact& b,
                        const DiffOptions& opt) {
  DiffResult result;
  result.kind = DiffKind::kProfile;
  DiffSection section{"spans", {}};
  // Contribution denominator: total self-time movement across every
  // span present on both sides (self sums to wall, so self deltas are
  // the additive attribution of the end-to-end change).
  double abs_self_delta_sum = 0.0;
  for (const auto& [name, base] : a.spans) {
    auto it = b.spans.find(name);
    if (it != b.spans.end()) {
      abs_self_delta_sum += std::fabs(it->second.self_us - base.self_us);
    }
  }
  for (const auto& [name, base] : a.spans) {
    DiffEntry e;
    e.name = name;
    e.has_before = true;
    e.before = base.self_us;
    auto it = b.spans.find(name);
    if (it == b.spans.end()) {
      e.cls = kRemoved;
      e.note = core::strformat("span gone (was total %.1f us)",
                               base.total_us);
      section.entries.push_back(std::move(e));
      continue;
    }
    e.has_after = true;
    e.after = it->second.self_us;
    e.delta = e.after - e.before;
    e.score = abs_self_delta_sum > 0.0
                  ? std::fabs(e.delta) / abs_self_delta_sum
                  : 0.0;
    const double allowance =
        std::max(opt.abs_floor_us, e.before * opt.tolerance);
    e.significant = std::fabs(e.delta) > allowance;
    e.regression = e.significant && e.delta > 0.0;
    e.cls = e.significant ? kChanged : kEqual;
    e.note = core::strformat(
        "total %.1f -> %.1f us, count %.0f -> %.0f%s", base.total_us,
        it->second.total_us, base.count, it->second.count,
        e.significant && !e.regression ? ", improvement" : "");
    section.entries.push_back(std::move(e));
  }
  for (const auto& [name, cand] : b.spans) {
    if (a.spans.count(name)) continue;
    DiffEntry e;
    e.name = name;
    e.has_after = true;
    e.after = cand.self_us;
    e.cls = kAdded;
    const double allowance = opt.abs_floor_us;
    e.significant = cand.self_us > allowance;
    e.regression = e.significant;  // new span burning real time
    e.note = core::strformat("new span (total %.1f us)", cand.total_us);
    section.entries.push_back(std::move(e));
  }
  rank(section);
  tally(result, section);
  result.sections.push_back(std::move(section));
  return result;
}

/// Generic map diff over named doubles with a relative-tolerance rule;
/// used for report scalars, histogram fields and event counts.
template <typename Significance>
DiffSection diff_named_values(const std::string& title,
                              const std::map<std::string, double>& a,
                              const std::map<std::string, double>& b,
                              Significance significant_fn) {
  DiffSection section{title, {}};
  for (const auto& [name, before] : a) {
    DiffEntry e;
    e.name = name;
    e.has_before = true;
    e.before = before;
    auto it = b.find(name);
    if (it == b.end()) {
      e.cls = kRemoved;
      e.significant = true;
      e.regression = true;
      section.entries.push_back(std::move(e));
      continue;
    }
    e.has_after = true;
    e.after = it->second;
    e.delta = e.after - e.before;
    e.score = e.before != 0.0 ? std::fabs(e.delta / e.before)
                              : (e.delta != 0.0 ? 1.0 : 0.0);
    e.significant = significant_fn(name, e);
    e.regression = e.significant;
    e.cls = e.significant ? kChanged : kEqual;
    section.entries.push_back(std::move(e));
  }
  for (const auto& [name, after] : b) {
    if (a.count(name)) continue;
    DiffEntry e;
    e.name = name;
    e.has_after = true;
    e.after = after;
    e.cls = kAdded;
    e.significant = true;
    e.regression = true;
    section.entries.push_back(std::move(e));
  }
  rank(section);
  return section;
}

DiffResult diff_report(const Artifact& a, const Artifact& b,
                       const DiffOptions& opt) {
  DiffResult result;
  result.kind = DiffKind::kReport;

  // Scalars: accounting counters reconcile exactly (class exact /
  // shifted); everything else uses the relative tolerance.
  DiffSection scalars{"metrics", {}};
  for (const auto& [name, base] : a.scalars) {
    DiffEntry e;
    e.name = name;
    e.has_before = true;
    e.before = base.value;
    auto it = b.scalars.find(name);
    if (it == b.scalars.end()) {
      e.cls = kRemoved;
      e.significant = e.regression = true;
      scalars.entries.push_back(std::move(e));
      continue;
    }
    e.has_after = true;
    e.after = it->second.value;
    e.delta = e.after - e.before;
    if (base.accounting) {
      const bool exact = e.before == e.after;
      e.cls = exact ? kExact : kShifted;
      e.significant = e.regression = !exact;
      e.score = e.before != 0.0 ? std::fabs(e.delta / e.before)
                                : (exact ? 0.0 : 1.0);
      if (!exact) e.note = "accounting counter shifted";
    } else {
      e.score = e.before != 0.0 ? std::fabs(e.delta / e.before)
                                : (e.delta != 0.0 ? 1.0 : 0.0);
      e.significant = e.score > opt.tolerance;
      e.regression = e.significant;
      e.cls = e.significant ? kChanged : kEqual;
    }
    scalars.entries.push_back(std::move(e));
  }
  for (const auto& [name, cand] : b.scalars) {
    if (a.scalars.count(name)) continue;
    DiffEntry e;
    e.name = name;
    e.has_after = true;
    e.after = cand.value;
    e.cls = kAdded;
    e.significant = e.regression = true;
    scalars.entries.push_back(std::move(e));
  }
  rank(scalars);
  tally(result, scalars);
  result.sections.push_back(std::move(scalars));

  // Histograms: count plus the quantile triple, flattened to named
  // values so they rank alongside each other.
  std::map<std::string, double> ha, hb;
  for (const auto& [key, h] : a.histograms) {
    ha[key + ".count"] = h.count;
    ha[key + ".p50"] = h.p50;
    ha[key + ".p90"] = h.p90;
    ha[key + ".p99"] = h.p99;
  }
  for (const auto& [key, h] : b.histograms) {
    hb[key + ".count"] = h.count;
    hb[key + ".p50"] = h.p50;
    hb[key + ".p90"] = h.p90;
    hb[key + ".p99"] = h.p99;
  }
  auto rel_rule = [&opt](const std::string&, const DiffEntry& e) {
    return e.score > opt.tolerance;
  };
  if (!ha.empty() || !hb.empty()) {
    DiffSection hsec = diff_named_values("histograms", ha, hb, rel_rule);
    tally(result, hsec);
    result.sections.push_back(std::move(hsec));
  }
  if (!a.event_counts.empty() || !b.event_counts.empty()) {
    DiffSection esec =
        diff_named_values("events", a.event_counts, b.event_counts, rel_rule);
    tally(result, esec);
    result.sections.push_back(std::move(esec));
  }
  return result;
}

DiffResult diff_query_trace(const Artifact& a, const Artifact& b,
                            const DiffOptions& opt) {
  DiffResult result;
  result.kind = DiffKind::kQueryTrace;
  DiffSection section{"verdicts", {}};
  const double na = a.query_total, nb = b.query_total;
  std::map<std::string, std::pair<double, double>> buckets;
  for (const auto& [key, n] : a.verdicts) buckets[key].first = n;
  for (const auto& [key, n] : b.verdicts) buckets[key].second = n;
  for (const auto& [key, counts] : buckets) {
    DiffEntry e;
    e.name = key;
    e.has_before = counts.first > 0.0 || a.verdicts.count(key) > 0;
    e.has_after = counts.second > 0.0 || b.verdicts.count(key) > 0;
    e.before = counts.first;
    e.after = counts.second;
    e.delta = e.after - e.before;
    // Two-proportion z on the bucket's share of all queries: the
    // magnitude-aware "did this reason's share really move" test.
    const double pa = na > 0.0 ? counts.first / na : 0.0;
    const double pb = nb > 0.0 ? counts.second / nb : 0.0;
    if (na > 0.0 && nb > 0.0) {
      const double pooled = (counts.first + counts.second) / (na + nb);
      const double var = pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb);
      e.score = var > 0.0 ? std::fabs(pb - pa) / std::sqrt(var) : 0.0;
    } else {
      e.score = pa != pb ? opt.sigma + 1.0 : 0.0;
    }
    e.significant = e.score > opt.sigma;
    e.regression = e.significant;
    if (!a.verdicts.count(key)) {
      e.cls = kAdded;
    } else if (!b.verdicts.count(key)) {
      e.cls = kRemoved;
    } else {
      e.cls = e.significant ? kShifted : kEqual;
    }
    e.note = core::strformat("share %.2f%% -> %.2f%%", pa * 100.0,
                             pb * 100.0);
    section.entries.push_back(std::move(e));
  }
  rank(section);
  tally(result, section);
  result.sections.push_back(std::move(section));
  return result;
}

DiffResult diff_timeline(const Artifact& a, const Artifact& b,
                         const DiffOptions& opt) {
  DiffResult result;
  result.kind = DiffKind::kTimeline;
  DiffSection section{"series", {}};
  for (const auto& [name, base] : a.series) {
    DiffEntry e;
    e.name = name;
    e.has_before = true;
    auto it = b.series.find(name);
    if (it == b.series.end()) {
      e.cls = kRemoved;
      e.significant = e.regression = true;
      e.note = "series gone";
      section.entries.push_back(std::move(e));
      continue;
    }
    e.has_after = true;
    const std::vector<double>& va = base;
    const std::vector<double>& vb = it->second;
    // Resample both mean-series onto a common grid (the shorter
    // length) by bucket-averaging, then score the pointwise residual
    // RMS against A's own spread — a unitless divergence that reads
    // the same for offsets in ms and queue depths in events.
    const std::size_t grid = std::min(va.size(), vb.size());
    auto resample = [grid](const std::vector<double>& v, std::size_t i) {
      const std::size_t begin = i * v.size() / grid;
      const std::size_t end = std::max(begin + 1, (i + 1) * v.size() / grid);
      double acc = 0.0;
      for (std::size_t k = begin; k < end; ++k) acc += v[k];
      return acc / static_cast<double>(end - begin);
    };
    double rss = 0.0;
    core::RunningStats spread_a;
    double mean_a = 0.0, mean_b = 0.0;
    for (std::size_t i = 0; i < grid; ++i) {
      const double xa = resample(va, i);
      const double xb = resample(vb, i);
      rss += (xb - xa) * (xb - xa);
      spread_a.add(xa);
      mean_a += xa;
      mean_b += xb;
    }
    if (grid > 0) {
      mean_a /= static_cast<double>(grid);
      mean_b /= static_cast<double>(grid);
      const double rms = std::sqrt(rss / static_cast<double>(grid));
      // Normalizer: A's stddev when it varies, |mean| as the fallback
      // for (near-)constant series, 1.0 for all-zero series.
      double norm = spread_a.stddev();
      if (norm <= 0.0) norm = std::fabs(mean_a);
      if (norm <= 0.0) norm = 1.0;
      e.score = rms / norm;
    }
    e.before = mean_a;
    e.after = mean_b;
    e.delta = mean_b - mean_a;
    e.significant = e.score > opt.divergence;
    e.regression = e.significant;
    e.cls = e.significant ? kChanged : kEqual;
    e.note = core::strformat("%zu/%zu points on a %zu-point grid",
                             va.size(), vb.size(), grid);
    section.entries.push_back(std::move(e));
  }
  for (const auto& [name, cand] : b.series) {
    if (a.series.count(name)) continue;
    DiffEntry e;
    e.name = name;
    e.has_after = true;
    e.cls = kAdded;
    e.significant = e.regression = true;
    e.note = "new series";
    section.entries.push_back(std::move(e));
  }
  rank(section);
  tally(result, section);
  result.sections.push_back(std::move(section));
  return result;
}

std::string fmt_opt(bool present, double v) {
  return present ? core::fmt_double(v) : std::string("-");
}

}  // namespace

const char* diff_kind_name(DiffKind kind) {
  switch (kind) {
    case DiffKind::kBench: return "bench";
    case DiffKind::kProfile: return "profile";
    case DiffKind::kReport: return "report";
    case DiffKind::kQueryTrace: return "query-trace";
    case DiffKind::kTimeline: return "timeline";
  }
  return "unknown";
}

core::Result<DiffResult> diff_files(const std::string& a_path,
                                    const std::string& b_path,
                                    const DiffOptions& options) {
  auto a = load_artifact(a_path);
  if (!a.ok()) return a.error();
  auto b = load_artifact(b_path);
  if (!b.ok()) return b.error();
  if (a.value().kind != b.value().kind) {
    return Error::invalid_argument(core::strformat(
        "artifact kinds differ: %s is %s, %s is %s", a_path.c_str(),
        diff_kind_name(a.value().kind), b_path.c_str(),
        diff_kind_name(b.value().kind)));
  }
  DiffResult result;
  switch (a.value().kind) {
    case DiffKind::kBench:
      result = diff_bench(a.value(), b.value(), options);
      break;
    case DiffKind::kProfile:
      result = diff_profile(a.value(), b.value(), options);
      break;
    case DiffKind::kReport:
      result = diff_report(a.value(), b.value(), options);
      break;
    case DiffKind::kQueryTrace:
      result = diff_query_trace(a.value(), b.value(), options);
      break;
    case DiffKind::kTimeline:
      result = diff_timeline(a.value(), b.value(), options);
      break;
  }
  result.a_path = a_path;
  result.b_path = b_path;
  result.a_run = a.value().run;
  result.b_run = b.value().run;
  return result;
}

std::string render_diff_text(const DiffResult& result,
                             const DiffOptions& options) {
  std::string out = core::strformat(
      "diff (%s): %s -> %s\n", diff_kind_name(result.kind),
      result.a_path.c_str(), result.b_path.c_str());
  if (!result.a_run.empty() || !result.b_run.empty()) {
    out += core::strformat("  runs: %s -> %s\n", result.a_run.c_str(),
                           result.b_run.c_str());
  }
  for (const DiffSection& section : result.sections) {
    core::TextTable table(
        {section.title, "before", "after", "delta", "score", "class", "note"});
    std::size_t shown = 0;
    for (const DiffEntry& e : section.entries) {
      if (shown >= options.top) break;
      ++shown;
      table.add_row({e.name, fmt_opt(e.has_before, e.before),
                     fmt_opt(e.has_after, e.after),
                     core::fmt_double(e.delta),
                     core::fmt_double(e.score, 3),
                     std::string(e.cls) + (e.regression ? " !" : ""),
                     e.note});
    }
    out += core::strformat("\n%s", table.render().c_str());
    if (section.entries.size() > shown) {
      out += core::strformat("  ... %zu more (raise --top)\n",
                             section.entries.size() - shown);
    }
  }
  out += core::strformat(
      "\nverdict: %zu significant delta(s), %zu regression(s) -> exit %d\n",
      result.significant, result.regressions, result.exit_code());
  return out;
}

std::string render_diff_json(const DiffResult& result,
                             const DiffOptions& options) {
  std::string out;
  core::JsonWriter w(out, 2);
  w.begin_object()
      .kv("schema_version", 1)
      .kv("kind", "mntp_diff")
      .kv("artifact_kind", diff_kind_name(result.kind));
  w.key("a").begin_object().kv("path", result.a_path)
      .kv("run", result.a_run).end_object();
  w.key("b").begin_object().kv("path", result.b_path)
      .kv("run", result.b_run).end_object();
  w.key("options").begin_object()
      .kv("tolerance", options.tolerance)
      .kv("abs_floor_us", options.abs_floor_us)
      .kv("sigma", options.sigma)
      .kv("divergence", options.divergence)
      .end_object();
  w.kv("significant", static_cast<std::int64_t>(result.significant))
      .kv("regressions", static_cast<std::int64_t>(result.regressions))
      .kv("exit_hint", result.exit_code());
  w.key("sections").begin_array();
  for (const DiffSection& section : result.sections) {
    w.begin_object().kv("title", section.title);
    w.key("entries").begin_array();
    for (const DiffEntry& e : section.entries) {
      w.begin_object().kv("name", e.name);
      if (e.has_before) w.kv("before", e.before); else w.key("before").null();
      if (e.has_after) w.kv("after", e.after); else w.key("after").null();
      w.kv("delta", e.delta)
          .kv("score", e.score)
          .kv("significant", e.significant)
          .kv("regression", e.regression)
          .kv("class", e.cls)
          .kv("note", e.note)
          .end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  out += "\n";
  return out;
}

}  // namespace mntp::obs
