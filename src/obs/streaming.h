// Streaming JSONL sinks: bounded-memory artifact writers.
//
// The batch exporters (QueryTracer::to_jsonl, write_run_report,
// write_timeline) build the whole artifact in memory and write it once —
// fine for a figure bench, hopeless for a fleet-scale soak where the
// trace artifact outgrows RAM long before the run ends. The writers here
// stream instead: lines accumulate in a fixed-size chunk buffer that is
// flushed when full, so peak memory is O(chunk + open state), not O(run).
//
// Artifact-shape contract: streamed files parse under the SAME schema as
// their batch counterparts (scripts/check_telemetry_schema.py and
// mntp-inspect read both without caring which writer produced them). Two
// mechanics make that work:
//
//   * Meta patching. JSONL puts the meta line FIRST, but its totals
//     (query_count, event_count) are only known at the end. The writer
//     reserves a fixed-width, space-padded meta slot at offset 0 and
//     rewrites it at close. Trailing spaces before the newline are
//     insignificant to every JSON parser we ship against (core::Json
//     tolerates trailing whitespace; Python json.loads likewise).
//
//   * Reorder buffering. The query-trace artifact promises strictly
//     increasing ids, but queries FINISH out of id order (exchange 7 can
//     complete before round 3 times out). StreamingQueryTraceSink holds
//     finished traces in a bounded reorder window keyed by id and emits
//     id k only once every id < k is accounted for — finished, sampled
//     out, or dropped (the tracer reports non-emitting ids via
//     account()). If the window overflows max_pending, the sink force-
//     advances past the oldest gap; a straggler for a skipped id is then
//     counted in reorder_dropped rather than breaking the id order.
//
// Every writer meters itself (bytes_written, flushes) — the raw feed for
// the obs.self.* metric family (see obs/metric_names.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/result.h"
#include "core/time.h"
#include "obs/query_trace.h"
#include "obs/trace_event.h"

namespace mntp::obs {

class TimeSeriesRecorder;

/// Chunk-buffered JSONL file writer with an optional patchable meta slot.
/// Not thread-safe; callers (the sinks below) serialize access.
class ChunkedJsonlWriter {
 public:
  struct Options {
    /// Flush the line buffer once it reaches this many bytes.
    std::size_t chunk_bytes = 1 << 16;
    /// Width (including trailing '\n') reserved at offset 0 for a meta
    /// line patched in at close; 0 reserves nothing (the caller writes
    /// the meta eagerly as its first line()).
    std::size_t meta_width = 512;
  };

  ChunkedJsonlWriter() = default;
  ChunkedJsonlWriter(const ChunkedJsonlWriter&) = delete;
  ChunkedJsonlWriter& operator=(const ChunkedJsonlWriter&) = delete;
  ~ChunkedJsonlWriter() { if (is_open()) close(); }

  /// Create/truncate `path`; reserves the meta slot when configured.
  [[nodiscard]] bool open(const std::string& path, Options options);
  [[nodiscard]] bool open(const std::string& path) {
    return open(path, Options{});
  }
  [[nodiscard]] bool is_open() const { return file_.is_open(); }

  /// Queue one line (`body` carries no trailing newline); flushes the
  /// chunk buffer when it crosses chunk_bytes.
  void line(std::string_view body);
  /// Force the chunk buffer to disk. Returns false on I/O failure.
  bool flush();

  /// Flush and close without touching the meta slot (for files whose
  /// meta was written eagerly via line()).
  bool close();
  /// Flush, rewrite the reserved meta slot with `meta` (space-padded to
  /// the reserved width), and close. Fails if no slot was reserved or
  /// `meta` does not fit in it.
  bool close_with_meta(std::string_view meta);

  /// Bytes handed to the OS so far (chunk flushes + the meta slot).
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  /// Physical chunk flushes so far (the meta slot does not count).
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }

 private:
  Options options_;
  std::fstream file_;
  std::string buffer_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flushes_ = 0;
};

/// Streaming writer for the query-trace artifact (kind
/// "mntp_query_trace"): attach via QueryTracer::set_stream, then
/// finalize with QueryTracer::finish_stream, which drains still-open
/// traces and calls close() with the final accounting. Thread-safe; in
/// practice the owning tracer already serializes emit/account under its
/// own mutex (the sink never calls back into the tracer).
class StreamingQueryTraceSink {
 public:
  struct Options {
    /// Reorder-window bound: maximum ids held waiting for a smaller id
    /// to resolve before the sink force-advances past the gap.
    std::size_t max_pending = 1 << 12;
    ChunkedJsonlWriter::Options writer;
  };

  StreamingQueryTraceSink() = default;
  StreamingQueryTraceSink(const StreamingQueryTraceSink&) = delete;
  StreamingQueryTraceSink& operator=(const StreamingQueryTraceSink&) = delete;

  [[nodiscard]] bool open(const std::string& path, Options options);
  [[nodiscard]] bool open(const std::string& path) {
    return open(path, Options{});
  }
  [[nodiscard]] bool is_open() const;

  /// Declare that `id` will never produce a line (sampled out, dropped):
  /// resolves its slot in the reorder window so larger ids can emit.
  void account(QueryId id);
  /// Hand over a complete trace; it is serialized now and written once
  /// every smaller id is accounted for.
  void emit(const QueryTrace& trace);

  /// Drain the reorder window, patch the meta line with the final
  /// accounting, and close the file. Called by finish_stream.
  bool close(std::string_view run, core::TimePoint sim_end,
             const QueryTracer::Sampling& sampling, std::uint64_t minted,
             std::uint64_t kept, std::uint64_t sampled_out,
             std::uint64_t dropped, std::uint64_t dropped_stages);

  /// Trace lines actually written.
  [[nodiscard]] std::uint64_t emitted() const;
  /// Finished traces lost because their id was force-advanced past.
  [[nodiscard]] std::uint64_t reorder_dropped() const;
  [[nodiscard]] std::uint64_t bytes_written() const;
  [[nodiscard]] std::uint64_t flushes() const;

 private:
  /// Resolve `id` with a serialized line (or a gap marker when nullopt),
  /// then emit every now-contiguous id. Caller holds mutex_.
  void resolve_locked(QueryId id, std::optional<std::string> line);
  void drain_locked();

  mutable std::mutex mutex_;
  Options options_;
  ChunkedJsonlWriter writer_;
  QueryId next_emit_ = 1;  ///< smallest id not yet written or skipped
  /// Reorder window: id -> serialized line, or nullopt for an accounted
  /// gap (sampled out / dropped) still blocking on smaller ids.
  std::map<QueryId, std::optional<std::string>> pending_;
  std::uint64_t emitted_ = 0;
  std::uint64_t reorder_dropped_ = 0;
};

/// Streaming TraceSink for trace events (kind "mntp_trace_events"): one
/// {"type":"event",...} line per event in emission order, meta patched
/// at close with the final event_count. Needs no internal locking —
/// Telemetry::emit serializes sink fan-out (see obs/telemetry.h).
class StreamingTraceEventSink final : public TraceSink {
 public:
  StreamingTraceEventSink() = default;

  [[nodiscard]] bool open(const std::string& path,
                          ChunkedJsonlWriter::Options options = {});
  [[nodiscard]] bool is_open() const { return writer_.is_open(); }

  void on_event(const TraceEvent& event) override;
  void flush() override { writer_.flush(); }

  /// Patch the meta line and close the file.
  bool close(std::string_view run, core::TimePoint sim_end);

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return writer_.bytes_written();
  }
  [[nodiscard]] std::uint64_t flushes() const { return writer_.flushes(); }

 private:
  ChunkedJsonlWriter writer_;
  std::uint64_t events_ = 0;
};

/// Timeline export through the chunked writer: byte-identical to
/// write_timeline_file (the series set is known up front, so the meta
/// line is exact and needs no reserved slot) while flushing in bounded
/// chunks and metering bytes/flushes for obs.self.*.
core::Status write_timeline_chunked(const std::string& path,
                                    const TimeSeriesRecorder& recorder,
                                    std::string_view run_name,
                                    core::TimePoint sim_end,
                                    std::uint64_t* bytes_written = nullptr,
                                    std::uint64_t* flushes = nullptr);

}  // namespace mntp::obs
