// Telemetry context: one object bundling the metrics registry and the
// trace-event sinks, global by default but injectable per run.
//
// Instrumented components resolve their metric handles from the telemetry
// that is *current at their construction time*. The process-wide default
// (`Telemetry::global()`) always exists, so instrumentation never needs a
// null check; a bench or test that wants an isolated view installs its
// own context with `ScopedTelemetry` BEFORE building the components it
// wants to observe:
//
//     obs::Telemetry tel;
//     obs::RingBufferSink ring;
//     tel.add_sink(&ring);
//     obs::ScopedTelemetry scope(tel);   // global() now returns tel
//     ntp::Testbed bed(config);          // components bind to tel
//     ...run...                           // tel.metrics(), ring.events()
//
// Tracing discipline: event *construction* is the expensive part (field
// vectors, strings), so emitters must guard with `tracing()` — with no
// sinks attached (the default), an instrumented hot path pays only its
// counter increments.
//
// Thread safety: metric recording is thread-safe (see obs/metrics.h) and
// event emission serializes on an internal mutex, so concurrent writers
// (e.g. tuner-search workers on a core::ThreadPool) never interleave
// *within* a sink and sinks themselves need no locking as long as all
// emission flows through one Telemetry. Cross-thread event ORDER is
// whatever the mutex hands out — deterministic event streams must be
// emitted from a single thread (the parallel searcher scores on workers
// but emits its per-config events afterwards, in enumeration order, from
// the caller). Sink attach/detach is also serialized, but reconfiguring
// sinks while another thread emits is still a logic error — configure
// before fanning work out.
//
// Wall-clock caveat: `SpanTimer` reads the host's steady clock for
// profiling. That never feeds back into simulation behaviour — simulated
// experiments stay bit-deterministic; only the telemetry *output* carries
// host-dependent wall durations.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/time.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/query_trace.h"
#include "obs/timeseries.h"
#include "obs/trace_event.h"

namespace mntp::obs {

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Span profiler bound to this context (see obs/profiler.h). Off by
  /// default; enable with profiler().set_enabled(true), read results via
  /// profiler().stats() / export_to_metrics / write_chrome_trace.
  [[nodiscard]] Profiler& profiler() { return profiler_; }
  [[nodiscard]] const Profiler& profiler() const { return profiler_; }

  /// Per-query causal tracer bound to this context (see
  /// obs/query_trace.h). Off by default; enable with
  /// query_tracer().set_enabled(true), export via
  /// query_tracer().to_jsonl / write_jsonl_file.
  [[nodiscard]] QueryTracer& query_tracer() { return query_tracer_; }
  [[nodiscard]] const QueryTracer& query_tracer() const {
    return query_tracer_;
  }

  /// Sim-time series recorder bound to this context (see
  /// obs/timeseries.h). Off by default; enable with
  /// timeseries().set_enabled(true) BEFORE constructing simulations and
  /// instrumented components, export via write_timeline_file.
  [[nodiscard]] TimeSeriesRecorder& timeseries() { return timeseries_; }
  [[nodiscard]] const TimeSeriesRecorder& timeseries() const {
    return timeseries_;
  }

  /// Attach a non-owning sink; the sink must outlive this context (or be
  /// removed first).
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);
  void clear_sinks();

  /// True when at least one sink is attached — emitters use this to skip
  /// event construction entirely on untraced runs. Lock-free (reads a
  /// cached atomic), so hot paths on any thread can poll it freely.
  [[nodiscard]] bool tracing() const {
    return has_sinks_.load(std::memory_order_relaxed);
  }

  /// Fan an event out to every sink. Cheap no-op without sinks, but
  /// callers should still guard construction with tracing().
  void emit(const TraceEvent& event);

  /// Convenience emitter.
  void event(core::TimePoint t, std::string_view category,
             std::string_view name, std::vector<Field> fields = {});

  void flush();

  /// Master switch: disables metric recording AND event emission. Metric
  /// handles stay valid; every record degrades to one branch. Used to
  /// quantify instrumentation overhead.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The current process-wide context (the installed scoped context, or
  /// the built-in default).
  [[nodiscard]] static Telemetry& global();

 private:
  friend class ScopedTelemetry;
  static Telemetry*& global_slot();

  MetricsRegistry metrics_;
  Profiler profiler_;
  QueryTracer query_tracer_;
  TimeSeriesRecorder timeseries_;
  std::mutex sink_mutex_;  // serializes emit/flush and sink attach/detach
  std::vector<TraceSink*> sinks_;
  std::atomic<bool> has_sinks_{false};
  std::atomic<bool> enabled_{true};
};

/// Installs `telemetry` as the global context for this scope; restores
/// the previous context on destruction. Nestable.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(Telemetry& telemetry)
      : previous_(Telemetry::global_slot()) {
    Telemetry::global_slot() = &telemetry;
  }
  ~ScopedTelemetry() { Telemetry::global_slot() = previous_; }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Telemetry* previous_;
};

/// Scoped timing span recording BOTH wall-clock (host performance) and
/// simulated-time duration into histograms `<name>.wall_us` and
/// `<name>.sim_ms`. Wall time is recorded on destruction; sim time only
/// if finish() supplied the end instant (the span cannot read the
/// simulation clock itself).
/// The two histograms a SpanTimer records into, pre-resolved. Hot loops
/// (the simulation dispatch path) resolve once and construct SpanTimers
/// from the handles, skipping the per-call name concatenation + registry
/// lookup (two string allocations per span otherwise).
struct SpanHistograms {
  Histogram* wall_us = nullptr;
  Histogram* sim_ms = nullptr;
};

/// Resolve `<name>.wall_us` / `<name>.sim_ms` in `telemetry`'s registry
/// with SpanTimer's standard buckets.
[[nodiscard]] SpanHistograms resolve_span_histograms(Telemetry& telemetry,
                                                     std::string_view name);

class SpanTimer {
 public:
  SpanTimer(Telemetry& telemetry, std::string_view name,
            core::TimePoint sim_start);
  /// Allocation-free: record into already-resolved histograms.
  SpanTimer(const SpanHistograms& histograms, core::TimePoint sim_start);
  ~SpanTimer();
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Record the simulated-time duration [sim_start, sim_end].
  void finish(core::TimePoint sim_end);

 private:
  Histogram* wall_us_;
  Histogram* sim_ms_;
  core::TimePoint sim_start_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace mntp::obs
