#include "obs/hdr_histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mntp::obs {

namespace {

std::size_t octave_count(const HdrHistogramOptions& o) {
  // Enough octaves that max_magnitude falls inside (or just past) the
  // top one: ceil(log2(max / min)).
  const double ratio = o.max_magnitude / o.min_magnitude;
  const auto octaves = static_cast<std::size_t>(std::ceil(std::log2(ratio)));
  return std::max<std::size_t>(octaves, 1);
}

}  // namespace

HdrHistogram::HdrHistogram(HdrHistogramOptions options) : options_(options) {
  if (!(options_.min_magnitude > 0.0) ||
      !(options_.max_magnitude > options_.min_magnitude)) {
    throw std::invalid_argument(
        "HdrHistogram: need 0 < min_magnitude < max_magnitude");
  }
  if (options_.sub_bucket_bits < 1 || options_.sub_bucket_bits > 12) {
    throw std::invalid_argument("HdrHistogram: sub_bucket_bits out of [1,12]");
  }
  sub_buckets_ = std::size_t{1} << options_.sub_bucket_bits;
  octaves_ = octave_count(options_);
  positive_.assign(octaves_ * sub_buckets_, 0);
  negative_.assign(octaves_ * sub_buckets_, 0);
}

std::size_t HdrHistogram::bucket_index(double magnitude) const {
  // magnitude is in [min_magnitude, inf); clamp to the top bucket.
  const double x = magnitude / options_.min_magnitude;  // >= 1
  int exp = 0;
  const double mantissa = std::frexp(x, &exp);  // x = mantissa * 2^exp
  // x >= 1 so exp >= 1 and mantissa in [0.5, 1).
  const auto octave = static_cast<std::size_t>(exp - 1);
  if (octave >= octaves_) return octaves_ * sub_buckets_ - 1;
  const auto sub = std::min(
      static_cast<std::size_t>((mantissa * 2.0 - 1.0) *
                               static_cast<double>(sub_buckets_)),
      sub_buckets_ - 1);
  return octave * sub_buckets_ + sub;
}

double HdrHistogram::bucket_upper(std::size_t i) const {
  const std::size_t octave = i / sub_buckets_;
  const std::size_t sub = i % sub_buckets_;
  return options_.min_magnitude * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 + static_cast<double>(sub + 1) / static_cast<double>(sub_buckets_));
}

double HdrHistogram::bucket_mid(std::size_t i) const {
  const std::size_t octave = i / sub_buckets_;
  const std::size_t sub = i % sub_buckets_;
  return options_.min_magnitude * std::ldexp(1.0, static_cast<int>(octave)) *
         (1.0 +
          (static_cast<double>(sub) + 0.5) / static_cast<double>(sub_buckets_));
}

void HdrHistogram::record(double v, std::uint64_t n) {
  if (n == 0) return;
  if (std::isnan(v)) {
    nan_count_ += n;
    return;
  }
  // +-inf clamps into the outermost bucket via the magnitude clamp below,
  // keeping the count exact; extrema track the (infinite) value itself.
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  const double magnitude = std::abs(v);
  if (magnitude < options_.min_magnitude) {
    zero_ += n;
  } else if (v > 0.0) {
    positive_[bucket_index(magnitude)] += n;
  } else {
    negative_[bucket_index(magnitude)] += n;
  }
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (!same_layout(other)) {
    throw std::invalid_argument(
        "HdrHistogram::merge: incompatible layouts (min/max magnitude or "
        "sub_bucket_bits differ)");
  }
  for (std::size_t i = 0; i < positive_.size(); ++i) {
    positive_[i] += other.positive_[i];
    negative_[i] += other.negative_[i];
  }
  zero_ += other.zero_;
  nan_count_ += other.nan_count_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
}

double HdrHistogram::min() const { return count_ > 0 ? min_ : 0.0; }
double HdrHistogram::max() const { return count_ > 0 ? max_ : 0.0; }

double HdrHistogram::sum() const {
  // Deterministic reconstruction: iterate buckets in one fixed order and
  // accumulate count * midpoint. Identical for any merge history because
  // the bucket counts themselves are.
  double total = 0.0;
  for (std::size_t i = 0; i < negative_.size(); ++i) {
    if (negative_[i] != 0) {
      total -= static_cast<double>(negative_[i]) * bucket_mid(i);
    }
  }
  for (std::size_t i = 0; i < positive_.size(); ++i) {
    if (positive_[i] != 0) {
      total += static_cast<double>(positive_[i]) * bucket_mid(i);
    }
  }
  return total;  // zero bucket contributes 0 by definition
}

double HdrHistogram::mean() const {
  return count_ > 0 ? sum() / static_cast<double>(count_) : 0.0;
}

double HdrHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the bucketed CDF: the target sample is the ceil(q*n)-th
  // smallest (1-based), walked from the most-negative bucket upward.
  const auto target = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  double result = 0.0;
  bool found = false;
  for (std::size_t i = negative_.size(); i-- > 0 && !found;) {
    if (negative_[i] == 0) continue;
    seen += negative_[i];
    if (seen >= target) {
      result = -bucket_mid(i);
      found = true;
    }
  }
  if (!found && zero_ > 0) {
    seen += zero_;
    if (seen >= target) {
      result = 0.0;
      found = true;
    }
  }
  if (!found) {
    for (std::size_t i = 0; i < positive_.size(); ++i) {
      if (positive_[i] == 0) continue;
      seen += positive_[i];
      if (seen >= target) {
        result = bucket_mid(i);
        break;
      }
    }
  }
  // Bucket midpoints can poke past the true extrema; clamp to the exact
  // recorded range so quantile(0)/quantile(1) are honest.
  return std::clamp(result, min_, max_);
}

std::vector<std::pair<double, std::uint64_t>> HdrHistogram::buckets() const {
  std::vector<std::pair<double, std::uint64_t>> out;
  for (std::size_t i = negative_.size(); i-- > 0;) {
    if (negative_[i] != 0) {
      // Upper (least-negative) bound of a mirrored bucket is the negated
      // LOWER magnitude bound, i.e. the previous bucket's upper bound (or
      // -min_magnitude for the innermost one).
      const double upper =
          i == 0 ? -options_.min_magnitude : -bucket_upper(i - 1);
      out.emplace_back(upper, negative_[i]);
    }
  }
  if (zero_ != 0) out.emplace_back(options_.min_magnitude, zero_);
  for (std::size_t i = 0; i < positive_.size(); ++i) {
    if (positive_[i] != 0) out.emplace_back(bucket_upper(i), positive_[i]);
  }
  return out;
}

bool HdrHistogram::operator==(const HdrHistogram& other) const {
  if (!same_layout(other)) return false;
  if (count_ != other.count_ || zero_ != other.zero_ ||
      nan_count_ != other.nan_count_) {
    return false;
  }
  if (count_ > 0 && (min_ != other.min_ || max_ != other.max_)) return false;
  return positive_ == other.positive_ && negative_ == other.negative_;
}

ShardedHdrHistogram::ShardedHdrHistogram(HdrHistogramOptions options,
                                         const std::atomic<bool>* enabled)
    : options_(options), enabled_(enabled) {
  static std::atomic<std::uint64_t> next_id{1};
  instance_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  // Validate eagerly so a bad layout fails at registration, not first use.
  (void)HdrHistogram(options_);
}

HdrHistogram* ShardedHdrHistogram::shard_for_this_thread() {
  struct CacheEntry {
    const ShardedHdrHistogram* owner;
    std::uint64_t instance_id;
    HdrHistogram* shard;
  };
  // Per-thread map from histogram instance to its shard. A linear scan:
  // a process has a handful of HDR metrics, not thousands.
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.owner == this && e.instance_id == instance_id_) return e.shard;
  }
  // Miss — drop any entry for a destroyed instance that shared this
  // address, then create this thread's shard under the lock.
  std::erase_if(cache, [this](const CacheEntry& e) { return e.owner == this; });
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<HdrHistogram>(options_));
  HdrHistogram* shard = shards_.back().get();
  cache.push_back({this, instance_id_, shard});
  return shard;
}

void ShardedHdrHistogram::record(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  shard_for_this_thread()->record(v);
}

HdrHistogram ShardedHdrHistogram::merged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HdrHistogram out(options_);
  for (const auto& shard : shards_) out.merge(*shard);
  return out;
}

}  // namespace mntp::obs
