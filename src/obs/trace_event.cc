#include "obs/trace_event.h"

#include <cstdio>

#include "core/json_writer.h"

namespace mntp::obs {

std::string json_escape(std::string_view s) {
  return core::json_escape(s);
}

namespace {

void append_plain_value(std::string& out, const FieldValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", *d);
    out += buf;
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    out += *s;
  } else {
    out += std::get<bool>(v) ? "true" : "false";
  }
}

}  // namespace

std::string to_jsonl_line(const TraceEvent& e) {
  std::string out;
  out.reserve(96 + 32 * e.fields.size());
  core::JsonWriter w(out);
  w.begin_object()
      .kv("type", "event")
      .kv("t_ns", e.t.ns())
      .kv("category", e.category)
      .kv("name", e.name)
      .key("fields")
      .begin_object();
  for (const Field& f : e.fields) {
    w.key(f.key);
    std::visit([&](const auto& v) { w.value(v); }, f.value);
  }
  w.end_object().end_object();
  return out;
}

std::string to_csv_line(const TraceEvent& e) {
  std::string out;
  out += std::to_string(e.t.ns());
  out += ',';
  out += e.category;
  out += ',';
  out += e.name;
  out += ",\"";
  bool first = true;
  for (const Field& f : e.fields) {
    if (!first) out += ';';
    first = false;
    out += f.key;
    out += '=';
    append_plain_value(out, f.value);
  }
  out += '"';
  return out;
}

}  // namespace mntp::obs
