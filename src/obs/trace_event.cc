#include "obs/trace_event.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mntp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON number rendering: finite doubles via %.17g (round-trippable),
/// non-finite mapped to null (JSON has no inf/nan).
void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_json_value(std::string& out, const FieldValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    append_json_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    out += '"';
    out += json_escape(*s);
    out += '"';
  } else {
    out += std::get<bool>(v) ? "true" : "false";
  }
}

void append_plain_value(std::string& out, const FieldValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", *d);
    out += buf;
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    out += *s;
  } else {
    out += std::get<bool>(v) ? "true" : "false";
  }
}

}  // namespace

std::string to_jsonl_line(const TraceEvent& e) {
  std::string out;
  out.reserve(96 + 32 * e.fields.size());
  out += "{\"type\":\"event\",\"t_ns\":";
  out += std::to_string(e.t.ns());
  out += ",\"category\":\"";
  out += json_escape(e.category);
  out += "\",\"name\":\"";
  out += json_escape(e.name);
  out += "\",\"fields\":{";
  bool first = true;
  for (const Field& f : e.fields) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(f.key);
    out += "\":";
    append_json_value(out, f.value);
  }
  out += "}}";
  return out;
}

std::string to_csv_line(const TraceEvent& e) {
  std::string out;
  out += std::to_string(e.t.ns());
  out += ',';
  out += e.category;
  out += ',';
  out += e.name;
  out += ",\"";
  bool first = true;
  for (const Field& f : e.fields) {
    if (!first) out += ';';
    first = false;
    out += f.key;
    out += '=';
    append_plain_value(out, f.value);
  }
  out += '"';
  return out;
}

}  // namespace mntp::obs
