#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

namespace mntp::obs {

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_labels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string to_jsonl_line(const MetricSnapshot& s) {
  std::string out;
  out.reserve(128);
  out += "{\"type\":\"metric\",\"kind\":\"";
  switch (s.kind) {
    case MetricSnapshot::Kind::kCounter: out += "counter"; break;
    case MetricSnapshot::Kind::kGauge: out += "gauge"; break;
    case MetricSnapshot::Kind::kHistogram: out += "histogram"; break;
  }
  out += "\",\"name\":\"";
  out += json_escape(s.name);
  out += "\",";
  append_labels(out, s.labels);
  if (s.kind != MetricSnapshot::Kind::kHistogram) {
    out += ",\"value\":";
    append_number(out, s.value);
    out += '}';
    return out;
  }
  out += ",\"count\":";
  out += std::to_string(s.count);
  out += ",\"sum\":";
  append_number(out, s.sum);
  out += ",\"min\":";
  append_number(out, s.min);
  out += ",\"max\":";
  append_number(out, s.max);
  out += ",\"p50\":";
  append_number(out, s.p50);
  out += ",\"p90\":";
  append_number(out, s.p90);
  out += ",\"p99\":";
  append_number(out, s.p99);
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [le, count] : s.buckets) {
    if (!first) out += ',';
    first = false;
    out += "{\"le\":";
    if (std::isinf(le)) {
      out += "\"inf\"";
    } else {
      append_number(out, le);
    }
    out += ",\"count\":";
    out += std::to_string(count);
    out += '}';
  }
  out += "]}";
  return out;
}

void write_run_report(std::ostream& out, const Telemetry& telemetry,
                      const RingBufferSink* trace,
                      const ReportOptions& options) {
  const std::vector<MetricSnapshot> metrics = telemetry.metrics().snapshot();
  const std::size_t event_count = trace ? trace->events().size() : 0;

  out << "{\"type\":\"meta\",\"schema_version\":1,\"run\":\""
      << json_escape(options.run_name)
      << "\",\"sim_end_ns\":" << options.sim_end.ns()
      << ",\"metric_count\":" << metrics.size()
      << ",\"event_count\":" << event_count << "}\n";

  for (const MetricSnapshot& s : metrics) out << to_jsonl_line(s) << '\n';
  if (trace) {
    // Emission order is already sim-time order within one simulation run,
    // but a bench that runs several sub-experiments restarts sim time at
    // the epoch for each; stable-sort so the schema's "events in
    // sim-time order" promise holds regardless (ties keep emission order).
    std::vector<TraceEvent> events;
    events.reserve(trace->events().size());
    for (std::size_t i = 0; i < trace->events().size(); ++i) {
      events.push_back(trace->events()[i]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t.ns() < b.t.ns();
                     });
    for (const TraceEvent& e : events) out << to_jsonl_line(e) << '\n';
  }
}

core::Status write_run_report_file(const std::string& path,
                                   const Telemetry& telemetry,
                                   const RingBufferSink* trace,
                                   const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return core::Error::io("cannot open telemetry report path: " + path);
  }
  write_run_report(out, telemetry, trace, options);
  out.flush();
  if (!out) {
    return core::Error::io("failed writing telemetry report: " + path);
  }
  return {};
}

}  // namespace mntp::obs
