#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "core/json_writer.h"

namespace mntp::obs {

namespace {

void append_labels(core::JsonWriter& w, const Labels& labels) {
  w.key("labels").begin_object();
  for (const auto& [k, v] : labels) w.kv(k, v);
  w.end_object();
}

}  // namespace

std::string to_jsonl_line(const MetricSnapshot& s) {
  std::string out;
  out.reserve(128);
  core::JsonWriter w(out);
  w.begin_object().kv("type", "metric").key("kind");
  switch (s.kind) {
    case MetricSnapshot::Kind::kCounter:
      w.value("counter");
      break;
    case MetricSnapshot::Kind::kGauge:
      w.value("gauge");
      break;
    case MetricSnapshot::Kind::kHistogram:
      w.value("histogram");
      break;
  }
  w.kv("name", s.name);
  append_labels(w, s.labels);
  if (s.kind != MetricSnapshot::Kind::kHistogram) {
    w.kv("value", s.value).end_object();
    return out;
  }
  w.kv("count", static_cast<std::int64_t>(s.count))
      .kv("sum", s.sum)
      .kv("min", s.min)
      .kv("max", s.max)
      .kv("p50", s.p50)
      .kv("p90", s.p90)
      .kv("p99", s.p99)
      .key("buckets")
      .begin_array();
  for (const auto& [le, count] : s.buckets) {
    w.begin_object().key("le");
    if (std::isinf(le)) {
      w.value("inf");
    } else {
      w.value(le);
    }
    w.kv("count", static_cast<std::int64_t>(count)).end_object();
  }
  w.end_array().end_object();
  return out;
}

void write_run_report(std::ostream& out, const Telemetry& telemetry,
                      const RingBufferSink* trace,
                      const ReportOptions& options) {
  const std::vector<MetricSnapshot> metrics = telemetry.metrics().snapshot();
  const std::size_t event_count = trace ? trace->events().size() : 0;

  std::string meta;
  {
    core::JsonWriter w(meta);
    w.begin_object()
        .kv("type", "meta")
        .kv("schema_version", std::int64_t{1})
        .kv("run", options.run_name)
        .kv("sim_end_ns", options.sim_end.ns())
        .kv("metric_count", static_cast<std::int64_t>(metrics.size()))
        .kv("event_count", static_cast<std::int64_t>(event_count))
        .end_object();
  }
  out << meta << '\n';

  for (const MetricSnapshot& s : metrics) out << to_jsonl_line(s) << '\n';
  if (trace) {
    // Emission order is already sim-time order within one simulation run,
    // but a bench that runs several sub-experiments restarts sim time at
    // the epoch for each; stable-sort so the schema's "events in
    // sim-time order" promise holds regardless (ties keep emission order).
    std::vector<TraceEvent> events;
    events.reserve(trace->events().size());
    for (std::size_t i = 0; i < trace->events().size(); ++i) {
      events.push_back(trace->events()[i]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t.ns() < b.t.ns();
                     });
    for (const TraceEvent& e : events) out << to_jsonl_line(e) << '\n';
  }
}

core::Status write_run_report_file(const std::string& path,
                                   const Telemetry& telemetry,
                                   const RingBufferSink* trace,
                                   const ReportOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return core::Error::io("cannot open telemetry report path: " + path);
  }
  write_run_report(out, telemetry, trace, options);
  out.flush();
  if (!out) {
    return core::Error::io("failed writing telemetry report: " + path);
  }
  return {};
}

}  // namespace mntp::obs
