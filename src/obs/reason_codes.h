// Typed reason codes for per-query causal tracing.
//
// Every accept/defer/reject decision along a sync exchange or an MNTP
// round is recorded as a query-trace stage carrying one of these codes
// (see obs/query_trace.h). The taxonomy mirrors the decision points in
// the paper's Algorithm 1 and the NTP reference pipeline:
//
//   channel_defer       MNTP channel gate deferred the round (rssi/snr)
//   forced_emission     max-deferral cap overrode the channel gate
//   loss                datagram dropped at a link hop (non-terminal;
//                       the client still observes only the timeout)
//   timeout             exchange gave up waiting for the reply
//   server_error        server replied kiss-of-death / unsynchronized
//   validation_error    reply failed RFC 4330 sanity checks
//   popcorn_suppressed  clock_filter popcorn gate swallowed the sample
//   false_ticker        mean±1sd vote rejected the source this round
//   trend_outlier       drift trend filter residual exceeded its gate
//   accepted_warmup     round accepted during the warm-up phase
//   accepted_regular    round accepted during the regular phase
//   no_samples          round ended with zero usable samples
//   no_survivors        selection left no truechimers/survivors
//
// `kOk` marks successful non-terminal stages (request sent, reply
// parsed, ...); `kNone` marks purely informational stages (hop records,
// airtime detail). String forms are the wire format in the JSONL
// export — scripts/check_telemetry_schema.py validates against the
// exact list, so additions must update kAllReasons and the checker.
#pragma once

#include <cstdint>
#include <string_view>

namespace mntp::obs {

enum class Reason : std::uint8_t {
  kNone = 0,
  kOk,
  kChannelDefer,
  kForcedEmission,
  kLoss,
  kTimeout,
  kServerError,
  kValidationError,
  kPopcornSuppressed,
  kFalseTicker,
  kTrendOutlier,
  kAcceptedWarmup,
  kAcceptedRegular,
  kNoSamples,
  kNoSurvivors,
};

[[nodiscard]] constexpr std::string_view to_string(Reason r) {
  switch (r) {
    case Reason::kNone:
      return "none";
    case Reason::kOk:
      return "ok";
    case Reason::kChannelDefer:
      return "channel_defer";
    case Reason::kForcedEmission:
      return "forced_emission";
    case Reason::kLoss:
      return "loss";
    case Reason::kTimeout:
      return "timeout";
    case Reason::kServerError:
      return "server_error";
    case Reason::kValidationError:
      return "validation_error";
    case Reason::kPopcornSuppressed:
      return "popcorn_suppressed";
    case Reason::kFalseTicker:
      return "false_ticker";
    case Reason::kTrendOutlier:
      return "trend_outlier";
    case Reason::kAcceptedWarmup:
      return "accepted_warmup";
    case Reason::kAcceptedRegular:
      return "accepted_regular";
    case Reason::kNoSamples:
      return "no_samples";
    case Reason::kNoSurvivors:
      return "no_survivors";
  }
  return "none";
}

inline constexpr Reason kAllReasons[] = {
    Reason::kNone,           Reason::kOk,
    Reason::kChannelDefer,   Reason::kForcedEmission,
    Reason::kLoss,           Reason::kTimeout,
    Reason::kServerError,    Reason::kValidationError,
    Reason::kPopcornSuppressed, Reason::kFalseTicker,
    Reason::kTrendOutlier,   Reason::kAcceptedWarmup,
    Reason::kAcceptedRegular, Reason::kNoSamples,
    Reason::kNoSurvivors,
};

}  // namespace mntp::obs
