#include "obs/telemetry.h"

#include <algorithm>

namespace mntp::obs {

void Telemetry::add_sink(TraceSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
}

void Telemetry::remove_sink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Telemetry::clear_sinks() { sinks_.clear(); }

void Telemetry::emit(const TraceEvent& event) {
  if (!enabled_) return;
  for (TraceSink* sink : sinks_) sink->on_event(event);
}

void Telemetry::event(core::TimePoint t, std::string_view category,
                      std::string_view name, std::vector<Field> fields) {
  if (!enabled_ || sinks_.empty()) return;
  emit(TraceEvent{.t = t,
                  .category = std::string(category),
                  .name = std::string(name),
                  .fields = std::move(fields)});
}

void Telemetry::flush() {
  for (TraceSink* sink : sinks_) sink->flush();
}

void Telemetry::set_enabled(bool enabled) {
  enabled_ = enabled;
  metrics_.set_enabled(enabled);
}

Telemetry*& Telemetry::global_slot() {
  static Telemetry default_instance;
  static Telemetry* current = &default_instance;
  return current;
}

Telemetry& Telemetry::global() { return *global_slot(); }

SpanTimer::SpanTimer(Telemetry& telemetry, std::string_view name,
                     core::TimePoint sim_start)
    : wall_us_(telemetry.metrics().histogram(
          std::string(name) + ".wall_us",
          HistogramOptions::exponential(1.0, 4.0, 12))),
      sim_ms_(telemetry.metrics().histogram(
          std::string(name) + ".sim_ms",
          HistogramOptions::exponential(1.0, 4.0, 14))),
      sim_start_(sim_start),
      wall_start_(std::chrono::steady_clock::now()) {}

SpanTimer::~SpanTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
  wall_us_->record(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          elapsed)
          .count());
}

void SpanTimer::finish(core::TimePoint sim_end) {
  sim_ms_->record((sim_end - sim_start_).to_millis());
}

}  // namespace mntp::obs
