#include "obs/telemetry.h"

#include <algorithm>

namespace mntp::obs {

void Telemetry::add_sink(TraceSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
  has_sinks_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void Telemetry::remove_sink(TraceSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  has_sinks_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void Telemetry::clear_sinks() {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sinks_.clear();
  has_sinks_.store(false, std::memory_order_relaxed);
}

void Telemetry::emit(const TraceEvent& event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(sink_mutex_);
  for (TraceSink* sink : sinks_) sink->on_event(event);
}

void Telemetry::event(core::TimePoint t, std::string_view category,
                      std::string_view name, std::vector<Field> fields) {
  if (!enabled() || !tracing()) return;
  emit(TraceEvent{.t = t,
                  .category = std::string(category),
                  .name = std::string(name),
                  .fields = std::move(fields)});
}

void Telemetry::flush() {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  for (TraceSink* sink : sinks_) sink->flush();
}

void Telemetry::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
  metrics_.set_enabled(enabled);
}

Telemetry*& Telemetry::global_slot() {
  static Telemetry default_instance;
  static Telemetry* current = &default_instance;
  return current;
}

Telemetry& Telemetry::global() { return *global_slot(); }

SpanHistograms resolve_span_histograms(Telemetry& telemetry,
                                       std::string_view name) {
  return SpanHistograms{
      .wall_us = telemetry.metrics().histogram(
          std::string(name) + ".wall_us",
          HistogramOptions::exponential(1.0, 4.0, 12)),
      .sim_ms = telemetry.metrics().histogram(
          std::string(name) + ".sim_ms",
          HistogramOptions::exponential(1.0, 4.0, 14)),
  };
}

SpanTimer::SpanTimer(Telemetry& telemetry, std::string_view name,
                     core::TimePoint sim_start)
    : SpanTimer(resolve_span_histograms(telemetry, name), sim_start) {}

SpanTimer::SpanTimer(const SpanHistograms& histograms,
                     core::TimePoint sim_start)
    : wall_us_(histograms.wall_us),
      sim_ms_(histograms.sim_ms),
      sim_start_(sim_start),
      wall_start_(std::chrono::steady_clock::now()) {}

SpanTimer::~SpanTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
  wall_us_->record(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          elapsed)
          .count());
}

void SpanTimer::finish(core::TimePoint sim_end) {
  sim_ms_->record((sim_end - sim_start_).to_millis());
}

}  // namespace mntp::obs
