// Sim-time series recorder: how metrics evolve over *simulated* time.
//
// The registry (obs/metrics.h) and the report (obs/report.h) are
// end-of-run summaries; the profiler and query tracer are per-span /
// per-query. None of them answers "what did the offset estimate, the OWD,
// the queue depth, the battery draw look like minute by minute" — the
// view the paper's Figures 7–8 plot and the roadmap's fleet-scale and
// mobility items need. The TimeSeriesRecorder fills that gap:
//
//   * Components register PROBES — callbacks returning an optional scalar
//     at a given sim time, or counter/gauge handles the recorder reads
//     itself (counters are differenced into per-interval deltas).
//   * The recorder itself never schedules anything (obs depends only on
//     core, never on sim). sim::Simulation drives it: when the recorder
//     is capturing, run_until() arms a self-rescheduling EventQueue event
//     that calls sample(now) on the configured sim-time cadence. When the
//     recorder is off — the default — no event is ever scheduled, so
//     runs without --timeline-out are bit-identical to a build without
//     this file.
//   * Samples land in fixed-capacity per-series buffers. On overflow the
//     buffer halves itself by merging adjacent points and doubles the
//     number of samples per point, so a series degrades into bucketed
//     min/mean/max/last at 2x coarser resolution instead of dropping
//     data. Memory stays bounded for arbitrarily long runs.
//
// Probe lifetime: registration returns a move-only ProbeHandle that
// unregisters on destruction — instrumented components hold one member,
// so a component that dies mid-run (or a bench that builds several
// testbeds in sequence) stops being sampled without dangling callbacks.
// The sampled DATA outlives the probe: series stay in the recorder until
// export. Registration always creates a fresh series (a "#2" suffix on
// name collision) — two components constructed in sequence never
// interleave their samples into one series.
//
// Replicated runs: exactly one replicate should capture the timeline
// (replicate 0, whose seed IS the single-run experiment). Workers running
// other replicates install a thread-local SuppressScope; components they
// construct get inert probe handles and their simulations never arm the
// sampler.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "core/time.h"
#include "obs/metrics.h"

namespace mntp::obs {

/// One downsampled point: `count` raw samples collapsed into
/// min/mean/max/last, stamped with the time of the last raw sample.
struct TimeSeriesPoint {
  std::int64_t t_ns = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// One named series: metadata plus the (possibly downsampled) points.
class TimeSeries {
 public:
  TimeSeries(std::string name, Labels labels, std::string probe_kind,
             std::size_t capacity);

  /// Fold one raw sample in, compacting 2:1 on overflow.
  void append(std::int64_t t_ns, double value);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Labels& labels() const { return labels_; }
  /// "callback", "counter" or "gauge" — how the value was obtained.
  [[nodiscard]] const std::string& probe_kind() const { return probe_kind_; }
  [[nodiscard]] const std::vector<TimeSeriesPoint>& points() const {
    return points_;
  }
  /// Raw samples folded in so far (>= points().size()).
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  /// Raw samples currently merged per point (doubles on each compaction).
  [[nodiscard]] std::uint64_t stride() const { return stride_; }

 private:
  void compact();

  std::string name_;
  Labels labels_;
  std::string probe_kind_;
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t samples_ = 0;
  std::vector<TimeSeriesPoint> points_;
};

class TimeSeriesRecorder;

/// Move-only registration handle; unregisters the probe on destruction.
/// A default-constructed (or suppressed-registration) handle is inert.
class ProbeHandle {
 public:
  ProbeHandle() = default;
  ProbeHandle(ProbeHandle&& other) noexcept;
  ProbeHandle& operator=(ProbeHandle&& other) noexcept;
  ~ProbeHandle();
  ProbeHandle(const ProbeHandle&) = delete;
  ProbeHandle& operator=(const ProbeHandle&) = delete;

  [[nodiscard]] bool active() const { return recorder_ != nullptr; }
  void reset();

 private:
  friend class TimeSeriesRecorder;
  ProbeHandle(TimeSeriesRecorder* recorder, std::uint64_t id)
      : recorder_(recorder), id_(id) {}
  TimeSeriesRecorder* recorder_ = nullptr;
  std::uint64_t id_ = 0;
};

class TimeSeriesRecorder {
 public:
  /// A probe reads one scalar at sim time `now`; nullopt = "no value
  /// yet", and the sample is skipped (e.g. offset before the first
  /// accepted round).
  using Probe = std::function<std::optional<double>(core::TimePoint now)>;

  struct Options {
    /// Max stored points per series before 2:1 compaction kicks in.
    std::size_t series_capacity = 4096;
  };

  TimeSeriesRecorder();
  explicit TimeSeriesRecorder(Options options);
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Sampling cadence in sim time; the simulation reads this when arming
  /// its sampler event. Must be > 0.
  void set_cadence(core::Duration cadence);
  [[nodiscard]] core::Duration cadence() const;

  /// Master switch, off by default. Enabling never retro-samples; it only
  /// makes future registrations and simulations take effect.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Thread-local suppression for replicate workers: while a SuppressScope
  /// is active on this thread, capturing() is false here regardless of
  /// enabled().
  class SuppressScope {
   public:
    explicit SuppressScope(bool engage = true);
    ~SuppressScope();
    SuppressScope(const SuppressScope&) = delete;
    SuppressScope& operator=(const SuppressScope&) = delete;

   private:
    bool engaged_;
  };
  [[nodiscard]] static bool suppressed();

  /// True when this thread should register probes / arm samplers:
  /// enabled and not thread-locally suppressed.
  [[nodiscard]] bool capturing() const { return enabled() && !suppressed(); }

  /// Register a probe; returns an inert handle when not capturing().
  /// Always creates a new series (name collisions get a "#2", "#3", ...
  /// suffix).
  ProbeHandle probe(std::string_view name, Labels labels, Probe fn);
  /// Samples the counter's per-interval DELTA (0 on the first sample).
  ProbeHandle counter_probe(std::string_view name, Labels labels,
                            const Counter* counter);
  /// Same, over a sharded counter (reads the merged total; the sampler
  /// runs on the simulation thread, which owns all writes in a
  /// single-threaded sim, so the delta is exact there).
  ProbeHandle counter_probe(std::string_view name, Labels labels,
                            const ShardedCounter* counter);
  /// Samples the gauge's current value.
  ProbeHandle gauge_probe(std::string_view name, Labels labels,
                          const Gauge* gauge);

  /// Evaluate every live probe at sim time `now` and fold the values into
  /// their series. Called by sim::Simulation's sampler event.
  void sample(core::TimePoint now);

  [[nodiscard]] std::size_t series_count() const;
  /// Total raw samples folded across all series.
  [[nodiscard]] std::uint64_t samples_taken() const;
  /// Stable pointers into the recorder; valid until destruction.
  [[nodiscard]] std::vector<const TimeSeries*> series() const;

 private:
  friend class ProbeHandle;
  struct Registration {
    std::uint64_t id = 0;
    Probe fn;
    TimeSeries* series = nullptr;
    std::uint64_t last_counter = 0;  // counter probes: previous reading
  };

  void unregister(std::uint64_t id);
  ProbeHandle register_probe(std::string_view name, Labels labels,
                             std::string probe_kind, Probe fn,
                             std::uint64_t initial_counter);

  Options options_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  core::Duration cadence_ = core::Duration::seconds(1);
  std::uint64_t next_id_ = 1;
  std::uint64_t samples_taken_ = 0;
  std::vector<Registration> probes_;
  std::vector<std::unique_ptr<TimeSeries>> series_;
};

/// Per-line serializers shared by write_timeline and the chunked
/// streaming export (obs/streaming.h) — one implementation, so both
/// writers produce byte-identical lines.
void append_timeline_meta_json(std::string& out, std::string_view run_name,
                               core::TimePoint sim_end,
                               core::Duration cadence,
                               std::size_t series_count);
void append_timeline_series_json(std::string& out, const TimeSeries& series);

/// Serialize as timeline JSONL (schema_version 1, kind "mntp_timeline"):
/// a meta line, then one line per non-empty series with points as
/// [t_ns, min, mean, max, last, count] arrays. Validated by
/// scripts/check_telemetry_schema.py --kind timeline; rendered by
/// `mntp-inspect timeline`.
void write_timeline(std::ostream& out, const TimeSeriesRecorder& recorder,
                    std::string_view run_name, core::TimePoint sim_end);

/// write_timeline to a file; fails on I/O error.
core::Status write_timeline_file(const std::string& path,
                                 const TimeSeriesRecorder& recorder,
                                 std::string_view run_name,
                                 core::TimePoint sim_end);

}  // namespace mntp::obs
