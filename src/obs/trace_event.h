// Structured trace events and pluggable sinks.
//
// A trace event is a simulation-time-stamped record — (t, category, name,
// key/value fields) — the qualitative complement of the metrics registry:
// metrics answer "how many / how long", events answer "what happened at
// t=...". Categories group related emitters ("sim", "net", "ntp",
// "mntp", "tuner"); names identify the event within the category
// ("round", "deferral", "timeout").
//
// Sinks are pluggable and non-owning: the Telemetry context fans each
// event out to every attached sink. Provided sinks:
//
//   * RingBufferSink — bounded in-memory capture, oldest-evicted; the
//     default for tests and for bench run reports;
//   * JsonlTraceSink — one JSON object per line on an ostream (the run
//     report interchange format, see obs/report.h for the schema);
//   * CsvTraceSink   — flat CSV for spreadsheet-style inspection;
//   * NullSink       — discards everything (overhead measurement).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/ring_buffer.h"
#include "core/time.h"

namespace mntp::obs {

/// Field values keep JSON's scalar types; int64 covers counts and ns.
using FieldValue = std::variant<std::int64_t, double, std::string, bool>;

struct Field {
  std::string key;
  FieldValue value;
};

struct TraceEvent {
  core::TimePoint t;  ///< simulation time of the occurrence
  std::string category;
  std::string name;
  std::vector<Field> fields;
};

/// JSON string escaping for the exporters (quotes, backslashes, control
/// characters; non-ASCII passes through as UTF-8).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Render one event as a single-line JSON object:
/// {"type":"event","t_ns":...,"category":"..","name":"..","fields":{..}}
[[nodiscard]] std::string to_jsonl_line(const TraceEvent& e);

/// Render one event as a CSV row: t_ns,category,name,"k=v;k=v".
[[nodiscard]] std::string to_csv_line(const TraceEvent& e);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Bounded in-memory capture; evicts oldest when full.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16) : events_(capacity) {}

  void on_event(const TraceEvent& event) override {
    events_.push(event);
    ++total_;
  }

  /// Retained events, oldest first.
  [[nodiscard]] const core::RingBuffer<TraceEvent>& events() const {
    return events_;
  }
  /// Events ever offered, including evicted ones.
  [[nodiscard]] std::uint64_t total_events() const { return total_; }
  [[nodiscard]] std::uint64_t evicted() const {
    return total_ - events_.size();
  }
  void clear() {
    events_.clear();
    total_ = 0;
  }

 private:
  core::RingBuffer<TraceEvent> events_;
  std::uint64_t total_ = 0;
};

/// One JSON object per line; the stream must outlive the sink.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}
  void on_event(const TraceEvent& event) override {
    out_ << to_jsonl_line(event) << '\n';
  }
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
};

/// Header + one row per event; the stream must outlive the sink.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& out) : out_(out) {
    out_ << "t_ns,category,name,fields\n";
  }
  void on_event(const TraceEvent& event) override {
    out_ << to_csv_line(event) << '\n';
  }
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
};

/// Discards every event; used to measure pure emission overhead.
class NullSink final : public TraceSink {
 public:
  void on_event(const TraceEvent&) override {}
};

}  // namespace mntp::obs
