// Cross-run diff & regression-triage engine.
//
// Every artifact the observability stack writes — perf-suite baselines
// (BENCH_*.json), Chrome span profiles (--profile-out), JSONL run
// reports (--telemetry-out), causal query traces (--query-trace-out)
// and sim-time timelines (--timeline-out) — describes ONE run. The
// paper's whole evaluation is comparative, and so is every perf PR:
// the question is never "what did this run do" but "what moved between
// these two runs, and which span / counter / reason / series moved it".
//
// diff_files() loads two artifacts of the same kind (kind auto-detected
// from content, exactly like tools/mntp_inspect and
// check_telemetry_schema.py) and computes statistically-aware deltas:
//
//   * bench       — per-workload median gate with the SAME math as
//                   scripts/bench_compare.py (candidate_median <=
//                   baseline_median * (1+tolerance) + max(abs_floor,
//                   4 * baseline_mad)); missing workloads fail, new
//                   ones are noted. Cross-checked against the Python
//                   gate by the diff_gate_agreement CTest entry so the
//                   two can never drift apart.
//   * profile     — spans aggregated by name (count / total_us /
//                   self_us summed over complete events), deltas
//                   attributed per span and ranked by self-time
//                   contribution: |delta_self| / sum |delta_self|.
//                   Only *increases* beyond the allowance gate; a
//                   speedup is significant but not a regression.
//   * report      — scalar metric deltas keyed by name{labels}. The
//                   mntp.* / obs.* accounting counters (integer-valued
//                   by construction) get exact-reconciliation classes:
//                   `exact` when bit-equal, `shifted` otherwise —
//                   these counters are the ledgers the causation
//                   tables reconcile against, so any shift is
//                   significant regardless of magnitude. Other scalars
//                   use the relative-tolerance rule; histograms diff
//                   on count and p50/p90/p99; event counts by
//                   category/name diff like counters.
//   * query-trace — verdict/reason distribution shift: queries
//                   bucketed by kind/reason (the causation table of
//                   `mntp-inspect`), compared as proportions with a
//                   two-proportion z score; |z| > sigma is
//                   significant.
//   * timeline    — per-series divergence: both mean-series resampled
//                   onto a common grid, score = RMS(B - A) normalized
//                   by A's own spread; score > divergence threshold is
//                   significant.
//
// Direction ("regression") is kind-specific: bench/profile regress on
// slowdowns only; report / query-trace / timeline are behavioural
// drift detectors, so every significant divergence counts as a
// regression for the exit-code contract. The CLI maps the result to
// exit 0 (identical within tolerance), 1 (significant regression) and
// 2 (error: unreadable, malformed, or mixed artifact kinds).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/result.h"

namespace mntp::obs {

/// Artifact kinds the diff engine understands. Streamed trace-event
/// files (kind mntp_trace_events) are deliberately absent: they are an
/// unordered transport format, not a summary — diff the run report or
/// query trace of the same run instead.
enum class DiffKind { kBench, kProfile, kReport, kQueryTrace, kTimeline };

/// Stable lowercase name used in JSON output and error messages.
[[nodiscard]] const char* diff_kind_name(DiffKind kind);

struct DiffOptions {
  /// Relative tolerance for bench medians, profile span times and
  /// report scalars (same default as bench_compare.py).
  double tolerance = 0.5;
  /// Absolute allowance floor in microseconds for bench/profile time
  /// deltas (same default as bench_compare.py --abs-floor-us).
  double abs_floor_us = 200.0;
  /// Two-proportion z threshold for query-trace distribution shifts.
  double sigma = 4.0;
  /// Normalized-RMS threshold for timeline series divergence.
  double divergence = 0.25;
  /// Rows rendered per section in the human tables (JSON always
  /// carries every entry; exit codes never depend on this cap).
  std::size_t top = 20;
};

/// Delta classes. `exact` / `shifted` are the exact-reconciliation
/// classes reserved for integer accounting counters (mntp.*, obs.*);
/// everything else compares within tolerance.
///   equal    — within tolerance (or bit-equal for non-accounting rows)
///   changed  — beyond tolerance
///   exact    — accounting counter, bit-equal
///   shifted  — accounting counter, differs (always significant)
///   added    — present only in B
///   removed  — present only in A
struct DiffEntry {
  std::string name;
  bool has_before = false;
  bool has_after = false;
  double before = 0.0;
  double after = 0.0;
  double delta = 0.0;  // after - before (0 when one side is absent)
  /// Kind-specific significance score: allowance headroom ratio for
  /// bench/profile, contribution share for profile ranking, |z| for
  /// query-trace, normalized RMS for timeline, relative change for
  /// report scalars.
  double score = 0.0;
  bool significant = false;
  bool regression = false;  // counts toward the exit-1 verdict
  std::string cls;          // see class vocabulary above
  std::string note;         // free-form context ("new workload", ...)
};

struct DiffSection {
  std::string title;               // "workloads", "spans", "counters", ...
  std::vector<DiffEntry> entries;  // ranked most significant first
};

struct DiffResult {
  DiffKind kind = DiffKind::kBench;
  std::string a_path, b_path;
  std::string a_run, b_run;        // run names when the artifact has one
  std::size_t significant = 0;     // entries flagged significant
  std::size_t regressions = 0;     // entries counting toward exit 1
  std::vector<DiffSection> sections;

  /// The 0/1 half of the exit-code contract (2 is "diff_files returned
  /// an error" and never appears in a DiffResult).
  [[nodiscard]] int exit_code() const { return regressions > 0 ? 1 : 0; }
};

/// Load, kind-detect and diff two artifact files. Errors (unreadable
/// file, malformed artifact, unsupported or mismatched kinds) come back
/// as core::Result errors; the CLI maps them to exit 2.
[[nodiscard]] core::Result<DiffResult> diff_files(const std::string& a_path,
                                                  const std::string& b_path,
                                                  const DiffOptions& options);

/// Human rendering: one aligned table per section (rows capped at
/// options.top) plus a one-line verdict.
[[nodiscard]] std::string render_diff_text(const DiffResult& result,
                                           const DiffOptions& options);

/// Machine rendering: single JSON document, kind "mntp_diff",
/// schema_version 1, validated by check_telemetry_schema.py --kind
/// diff. Carries every entry (no top cap) so downstream triage never
/// loses attribution.
[[nodiscard]] std::string render_diff_json(const DiffResult& result,
                                           const DiffOptions& options);

}  // namespace mntp::obs
