#include "obs/streaming.h"

#include <utility>

#include "core/json_writer.h"
#include "obs/timeseries.h"

namespace mntp::obs {

// --- ChunkedJsonlWriter ---------------------------------------------------

bool ChunkedJsonlWriter::open(const std::string& path, Options options) {
  options_ = options;
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 1;
  // in|out so the meta slot can be rewritten in place at close.
  file_.open(path, std::ios::in | std::ios::out | std::ios::trunc |
                       std::ios::binary);
  if (!file_) return false;
  buffer_.clear();
  bytes_written_ = 0;
  flushes_ = 0;
  if (options_.meta_width > 0) {
    std::string slot(options_.meta_width - 1, ' ');
    slot += '\n';
    file_.write(slot.data(), static_cast<std::streamsize>(slot.size()));
    bytes_written_ += slot.size();
  }
  return static_cast<bool>(file_);
}

void ChunkedJsonlWriter::line(std::string_view body) {
  if (!is_open()) return;
  buffer_ += body;
  buffer_ += '\n';
  if (buffer_.size() >= options_.chunk_bytes) flush();
}

bool ChunkedJsonlWriter::flush() {
  if (!is_open()) return false;
  if (buffer_.empty()) return static_cast<bool>(file_);
  file_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  bytes_written_ += buffer_.size();
  ++flushes_;
  buffer_.clear();
  return static_cast<bool>(file_);
}

bool ChunkedJsonlWriter::close() {
  if (!is_open()) return false;
  const bool ok = flush();
  file_.close();
  return ok && !file_.fail();
}

bool ChunkedJsonlWriter::close_with_meta(std::string_view meta) {
  if (!is_open()) return false;
  if (options_.meta_width == 0 || meta.size() > options_.meta_width - 1) {
    file_.close();
    return false;
  }
  bool ok = flush();
  std::string slot(meta);
  slot.resize(options_.meta_width - 1, ' ');
  slot += '\n';
  file_.seekp(0);
  file_.write(slot.data(), static_cast<std::streamsize>(slot.size()));
  ok = ok && static_cast<bool>(file_);
  file_.close();
  return ok && !file_.fail();
}

// --- StreamingQueryTraceSink ----------------------------------------------

bool StreamingQueryTraceSink::open(const std::string& path, Options options) {
  std::lock_guard lock(mutex_);
  options_ = options;
  if (options_.max_pending == 0) options_.max_pending = 1;
  next_emit_ = 1;
  pending_.clear();
  emitted_ = 0;
  reorder_dropped_ = 0;
  return writer_.open(path, options_.writer);
}

bool StreamingQueryTraceSink::is_open() const {
  std::lock_guard lock(mutex_);
  return writer_.is_open();
}

void StreamingQueryTraceSink::account(QueryId id) {
  std::lock_guard lock(mutex_);
  resolve_locked(id, std::nullopt);
}

void StreamingQueryTraceSink::emit(const QueryTrace& trace) {
  std::string line;
  append_query_trace_json(line, trace);
  std::lock_guard lock(mutex_);
  resolve_locked(trace.id, std::move(line));
}

void StreamingQueryTraceSink::resolve_locked(
    QueryId id, std::optional<std::string> line) {
  if (id < next_emit_) {
    // Straggler for an id the window already force-advanced past. A gap
    // marker is harmless; a real line is lost — count it rather than
    // violate the strictly-increasing-id contract.
    if (line.has_value()) ++reorder_dropped_;
    return;
  }
  pending_[id] = std::move(line);
  drain_locked();
  // Overflow: pop the window's front entries in id order — skipping the
  // unresolved gaps below them — until it fits again. Ids skipped here
  // that resolve later land in the straggler branch above.
  while (pending_.size() > options_.max_pending) {
    auto it = pending_.begin();
    next_emit_ = it->first + 1;
    if (it->second.has_value()) {
      writer_.line(*it->second);
      ++emitted_;
    }
    pending_.erase(it);
    drain_locked();
  }
}

void StreamingQueryTraceSink::drain_locked() {
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_emit_;
       it = pending_.erase(it), ++next_emit_) {
    if (it->second.has_value()) {
      writer_.line(*it->second);
      ++emitted_;
    }
  }
}

bool StreamingQueryTraceSink::close(std::string_view run,
                                    core::TimePoint sim_end,
                                    const QueryTracer::Sampling& sampling,
                                    std::uint64_t minted, std::uint64_t kept,
                                    std::uint64_t sampled_out,
                                    std::uint64_t dropped,
                                    std::uint64_t dropped_stages) {
  std::lock_guard lock(mutex_);
  if (!writer_.is_open()) return false;
  // By finalize every minted id has been emitted or accounted, so the
  // window normally drains empty; flush defensively in id order anyway.
  while (!pending_.empty()) {
    auto it = pending_.begin();
    next_emit_ = it->first + 1;
    if (it->second.has_value()) {
      writer_.line(*it->second);
      ++emitted_;
    }
    pending_.erase(it);
  }
  std::string meta;
  core::JsonWriter w(meta);
  w.begin_object()
      .kv("type", "meta")
      .kv("schema_version", std::int64_t{1})
      .kv("kind", "mntp_query_trace")
      .kv("run", run)
      .kv("sim_end_ns", sim_end.ns())
      .kv("query_count", emitted_)
      .kv("dropped", dropped)
      .kv("dropped_stages", dropped_stages)
      .kv("streamed", true)
      .kv("reorder_dropped", reorder_dropped_);
  if (sampling.sample_one_in_n > 1 || sampling.reservoir > 0) {
    w.key("sampling")
        .begin_object()
        .kv("sample_one_in_n", sampling.sample_one_in_n)
        .kv("seed", sampling.seed)
        .kv("reservoir", static_cast<std::uint64_t>(sampling.reservoir))
        .kv("minted", minted)
        .kv("kept", kept)
        .kv("sampled_out", sampled_out)
        .end_object();
  }
  w.end_object();
  return writer_.close_with_meta(meta);
}

std::uint64_t StreamingQueryTraceSink::emitted() const {
  std::lock_guard lock(mutex_);
  return emitted_;
}

std::uint64_t StreamingQueryTraceSink::reorder_dropped() const {
  std::lock_guard lock(mutex_);
  return reorder_dropped_;
}

std::uint64_t StreamingQueryTraceSink::bytes_written() const {
  std::lock_guard lock(mutex_);
  return writer_.bytes_written();
}

std::uint64_t StreamingQueryTraceSink::flushes() const {
  std::lock_guard lock(mutex_);
  return writer_.flushes();
}

// --- StreamingTraceEventSink ----------------------------------------------

bool StreamingTraceEventSink::open(const std::string& path,
                                   ChunkedJsonlWriter::Options options) {
  events_ = 0;
  return writer_.open(path, options);
}

void StreamingTraceEventSink::on_event(const TraceEvent& event) {
  writer_.line(to_jsonl_line(event));
  ++events_;
}

bool StreamingTraceEventSink::close(std::string_view run,
                                    core::TimePoint sim_end) {
  std::string meta;
  core::JsonWriter w(meta);
  w.begin_object()
      .kv("type", "meta")
      .kv("schema_version", std::int64_t{1})
      .kv("kind", "mntp_trace_events")
      .kv("run", run)
      .kv("sim_end_ns", sim_end.ns())
      .kv("event_count", events_)
      .end_object();
  return writer_.close_with_meta(meta);
}

// --- Timeline through the chunked writer ----------------------------------

core::Status write_timeline_chunked(const std::string& path,
                                    const TimeSeriesRecorder& recorder,
                                    std::string_view run_name,
                                    core::TimePoint sim_end,
                                    std::uint64_t* bytes_written,
                                    std::uint64_t* flushes) {
  std::vector<const TimeSeries*> series;
  for (const TimeSeries* s : recorder.series()) {
    if (!s->points().empty()) series.push_back(s);
  }
  ChunkedJsonlWriter writer;
  ChunkedJsonlWriter::Options options;
  options.meta_width = 0;  // series set known up front; meta is exact
  if (!writer.open(path, options)) {
    return core::Error::io("cannot open timeline path: " + path);
  }
  std::string line;
  append_timeline_meta_json(line, run_name, sim_end, recorder.cadence(),
                            series.size());
  writer.line(line);
  for (const TimeSeries* s : series) {
    line.clear();
    append_timeline_series_json(line, *s);
    writer.line(line);
  }
  const bool ok = writer.close();
  if (bytes_written != nullptr) *bytes_written = writer.bytes_written();
  if (flushes != nullptr) *flushes = writer.flushes();
  if (!ok) return core::Error::io("failed writing timeline: " + path);
  return {};
}

}  // namespace mntp::obs
