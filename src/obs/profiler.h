// Hierarchical, thread-aware span profiler.
//
// Answers "where does a run spend its wall time?" — the question the
// metrics registry's flat histograms cannot: spans nest (engine round
// inside run_until inside a bench), and the profiler attributes to each
// span both its *total* duration and its *self* time (total minus the
// time spent in nested spans), per thread.
//
// Usage: wrap a scope in a RAII `ProfileScope`:
//
//     void Simulation::run_until(core::TimePoint deadline) {
//       obs::ProfileScope span(obs::spans::kSimRunUntil, now_);
//       ...
//     }
//
// Span names must be string literals (static storage): the hot path
// stores the pointer, never copies the string.
//
// The profiler hangs off the `Telemetry` context (obs/telemetry.h), so
// `ScopedTelemetry` injection isolates profiles per run exactly like it
// isolates metrics. Profiling is OFF by default; `ProfileScope` guards on
// a cached atomic flag (the same discipline as `Telemetry::tracing()`),
// so an instrumented hot path in a non-profiled run pays one function
// call, one relaxed load and one branch — nothing else. Nothing ever
// reads profiler state back into simulation logic, so enabling profiling
// cannot change any simulated result.
//
// Two exporters:
//   * `export_to_metrics` — per-span-name aggregates (count, total/self
//     wall, min/p50/max) as `profile.span.*` gauges labelled
//     {span=<name>}, which the run-report writer (obs/report.h) then
//     serializes like any other metric;
//   * `write_chrome_trace[_file]` — the full span list as a Chrome
//     trace-event JSON object (open in chrome://tracing or Perfetto),
//     one complete ("ph":"X") event per span with self time, nesting
//     depth and the simulation timestamp in "args".
//
// Thread safety: spans may open and close concurrently on any thread
// (each thread keeps its own span stack; completed spans serialize on
// one mutex into the record buffer and aggregates). A span crossing a
// `ScopedTelemetry` boundary records into the profiler that was current
// at its *open*; nesting accounting (self time) spans such boundaries
// transparently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "core/time.h"
#include "obs/metrics.h"

namespace mntp::obs {

class Profiler {
 public:
  /// One completed span. Wall times are nanoseconds on the host steady
  /// clock, relative to the profiler's construction instant.
  struct SpanRecord {
    const char* name = "";     ///< static-storage span name
    std::uint32_t tid = 0;     ///< small per-thread id (1-based)
    std::uint32_t depth = 0;   ///< nesting depth at open (0 = root)
    std::int64_t start_ns = 0;
    std::int64_t dur_ns = 0;   ///< total wall duration
    std::int64_t self_ns = 0;  ///< dur minus nested spans' durations
    std::int64_t sim_t_ns = 0; ///< simulation timestamp, when supplied
    bool has_sim = false;
  };

  /// Per-span-name aggregate over every recorded span (kept complete
  /// even when the raw record buffer overflows).
  struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t self_ns = 0;
    std::int64_t min_ns = 0;
    std::int64_t max_ns = 0;
    double p50_ns = 0.0;  ///< streaming (P²) median of span durations
  };

  struct Options {
    /// Raw-record buffer cap; spans past it still aggregate but are not
    /// exported to the Chrome trace (counted in dropped()).
    std::size_t max_records = 1 << 20;
  };

  Profiler() : Profiler(Options{}) {}
  explicit Profiler(Options options);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Master switch, off by default. Cached atomic — `ProfileScope` polls
  /// it on every construction, from any thread, lock-free.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append a completed span (normally called by ProfileScope, public
  /// for tests and custom instrumentation).
  void record(const SpanRecord& span);

  /// Copy of the retained raw spans, in completion order.
  [[nodiscard]] std::vector<SpanRecord> records() const;
  /// Aggregates per span name, name-sorted.
  [[nodiscard]] std::vector<SpanStats> stats() const;
  /// Spans aggregated but not retained (record-buffer overflow).
  [[nodiscard]] std::uint64_t dropped() const;
  /// Total spans ever recorded (retained + dropped).
  [[nodiscard]] std::uint64_t total_spans() const;

  /// Drop all records and aggregates (the enabled flag is untouched).
  void clear();

  /// Publish the per-span aggregates into `registry` as `profile.span.*`
  /// gauges labelled {span=<name>}, in microseconds. Idempotent: gauges
  /// are set, not accumulated.
  void export_to_metrics(MetricsRegistry& registry) const;

  /// Nanoseconds on the host steady clock since this profiler was
  /// constructed (the time base of every SpanRecord).
  [[nodiscard]] std::int64_t now_ns() const;

 private:
  struct Aggregate {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t self_ns = 0;
    std::int64_t min_ns = 0;
    std::int64_t max_ns = 0;
    P2Quantile p50{0.5};
  };

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  Options options_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::uint64_t dropped_ = 0;
  std::map<std::string, Aggregate> aggregates_;
};

/// The profiler of the current `Telemetry::global()` context.
[[nodiscard]] Profiler& current_profiler() noexcept;

/// RAII span. Opens against the *current* profiler (captured at
/// construction); when profiling is disabled the constructor returns
/// after one flag check and the destructor is a single branch.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name)
      : active_(current_profiler().enabled()) {
    if (active_) open(name, false, core::TimePoint::epoch());
  }
  /// Span carrying the simulation timestamp of its occurrence (exported
  /// into the Chrome trace args for sim/wall correlation).
  ProfileScope(const char* name, core::TimePoint sim_t)
      : active_(current_profiler().enabled()) {
    if (active_) open(name, true, sim_t);
  }
  ~ProfileScope() {
    if (active_) close();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  static void open(const char* name, bool has_sim, core::TimePoint sim_t);
  static void close();

  bool active_;
};

/// Render the retained spans as a Chrome trace-event JSON object
/// (chrome://tracing / Perfetto "JSON" format): {"traceEvents":[...]},
/// one "ph":"X" complete event per span, ts/dur in microseconds.
void write_chrome_trace(std::ostream& out, const Profiler& profiler,
                        std::string_view run_name = "mntp");

/// File variant; fails on unwritable paths.
core::Status write_chrome_trace_file(const std::string& path,
                                     const Profiler& profiler,
                                     std::string_view run_name = "mntp");

}  // namespace mntp::obs
