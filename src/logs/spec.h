// Published facts from the paper's NTP-server log study (§3.1) used to
// calibrate the synthetic log generator: the 19 servers of Table 1 and
// the service-provider structure behind Figures 1–2.
//
// Server and provider names in the paper are anonymized (AG1, SP 22, …);
// we reuse those labels. Client/measurement counts are Table 1's, used
// as generation targets under a configurable downscale factor.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mntp::logs {

enum class ProviderCategory : std::uint8_t {
  kCloud,      // cloud & hosting (SP 1-3): median min-OWD ~40 ms
  kIsp,        // Internet service providers (SP 4-9): ~50 ms
  kBroadband,  // broadband providers (SP 10-21): ~250 ms
  kMobile,     // mobile providers (SP 22-25): ~550 ms, high IQR
};

[[nodiscard]] constexpr std::string_view category_name(ProviderCategory c) {
  switch (c) {
    case ProviderCategory::kCloud: return "cloud";
    case ProviderCategory::kIsp: return "isp";
    case ProviderCategory::kBroadband: return "broadband";
    case ProviderCategory::kMobile: return "mobile";
  }
  return "?";
}

struct ServerSpec {
  std::string_view id;
  std::uint32_t unique_clients;  // Table 1
  std::uint8_t stratum;
  bool ipv6;                     // server supports v4/v6
  std::uint64_t total_measurements;  // Table 1
  /// ISP-internal servers (CI*, EN*) serve mostly full-NTP clients
  /// (routers, infrastructure); public servers serve mostly SNTP.
  bool isp_internal;
};

/// Table 1, verbatim.
inline constexpr std::array<ServerSpec, 19> kPaperServers{{
    {"AG1", 639'704, 2, false, 9'988'576, false},
    {"CI1", 606, 2, true, 1'480'571, true},
    {"CI2", 359, 2, true, 1'268'928, true},
    {"CI3", 335, 2, true, 812'104, true},
    {"CI4", 262, 2, true, 763'847, true},
    {"EN1", 228, 2, true, 411'253, true},
    {"EN2", 232, 2, true, 437'440, true},
    {"JW1", 12'769, 1, false, 354'530, false},
    {"JW2", 35'548, 1, false, 869'721, false},
    {"MW1", 2'746, 1, false, 197'900, false},
    {"MW2", 9'482'918, 2, false, 46'232'069, false},
    {"MW3", 1'141'163, 2, false, 10'948'402, false},
    {"MW4", 2'525'072, 2, false, 11'126'121, false},
    {"MI1", 1'078'308, 1, false, 63'907'095, false},
    {"SU1", 21'101, 1, true, 16'404'882, false},
    {"UI1", 36'559, 2, false, 18'426'282, false},
    {"UI2", 18'925, 2, false, 14'194'081, false},
    {"UI3", 177'957, 2, false, 9'254'843, false},
    {"PP1", 128'644, 2, true, 2'369'277, false},
}};

struct ProviderSpec {
  std::string_view name;     // anonymized label, "SP 1" … "SP 25"
  std::string_view keyword;  // hostname keyword the classifier keys on
  ProviderCategory category;
  /// Median of per-client minimum OWD, milliseconds.
  double min_owd_median_ms;
  /// Lognormal sigma of per-client minimum OWD around the median. Mobile
  /// providers instead use a wide uniform component (linear CDF).
  double min_owd_sigma;
  /// Fraction of this provider's clients speaking SNTP.
  double sntp_fraction;
  /// Relative share of a public server's client population.
  double client_weight;
};

/// The top-25 provider structure of Figures 1–2: categories, latency
/// medians (40/50/250/550 ms) and the ≥95% SNTP share of mobile
/// providers are the paper's; per-provider spreads interpolate within a
/// category.
inline constexpr std::array<ProviderSpec, 25> kPaperProviders{{
    // Cloud & hosting (SP 1-3).
    {"SP 1", "cloud", ProviderCategory::kCloud, 36.0, 0.45, 0.35, 4.0},
    {"SP 2", "amazon", ProviderCategory::kCloud, 40.0, 0.45, 0.35, 3.5},
    {"SP 3", "hosting", ProviderCategory::kCloud, 44.0, 0.50, 0.40, 3.0},
    // ISPs (SP 4-9).
    {"SP 4", "isp", ProviderCategory::kIsp, 46.0, 0.50, 0.60, 3.0},
    {"SP 5", "telecom", ProviderCategory::kIsp, 48.0, 0.50, 0.60, 2.8},
    {"SP 6", "net", ProviderCategory::kIsp, 50.0, 0.55, 0.65, 2.6},
    {"SP 7", "fiber", ProviderCategory::kIsp, 52.0, 0.55, 0.65, 2.4},
    {"SP 8", "comm", ProviderCategory::kIsp, 54.0, 0.55, 0.70, 2.2},
    {"SP 9", "online", ProviderCategory::kIsp, 56.0, 0.60, 0.70, 2.0},
    // Broadband (SP 10-21).
    {"SP 10", "dsl", ProviderCategory::kBroadband, 200.0, 0.55, 0.80, 2.0},
    {"SP 11", "cable", ProviderCategory::kBroadband, 215.0, 0.55, 0.80, 2.0},
    {"SP 12", "broadband", ProviderCategory::kBroadband, 230.0, 0.55, 0.82, 1.9},
    {"SP 13", "home", ProviderCategory::kBroadband, 240.0, 0.60, 0.82, 1.9},
    {"SP 14", "res", ProviderCategory::kBroadband, 250.0, 0.60, 0.84, 1.8},
    {"SP 15", "dyn", ProviderCategory::kBroadband, 255.0, 0.60, 0.84, 1.8},
    {"SP 16", "pool", ProviderCategory::kBroadband, 260.0, 0.60, 0.86, 1.7},
    {"SP 17", "cust", ProviderCategory::kBroadband, 270.0, 0.65, 0.86, 1.7},
    {"SP 18", "user", ProviderCategory::kBroadband, 280.0, 0.65, 0.88, 1.6},
    {"SP 19", "retail", ProviderCategory::kBroadband, 290.0, 0.65, 0.88, 1.6},
    {"SP 20", "wave", ProviderCategory::kBroadband, 300.0, 0.70, 0.90, 1.5},
    {"SP 21", "link", ProviderCategory::kBroadband, 310.0, 0.70, 0.90, 1.5},
    // Mobile (SP 22-25).
    {"SP 22", "mobile", ProviderCategory::kMobile, 530.0, 0.0, 0.97, 3.5},
    {"SP 23", "wireless", ProviderCategory::kMobile, 550.0, 0.0, 0.97, 3.2},
    {"SP 24", "cell", ProviderCategory::kMobile, 565.0, 0.0, 0.96, 2.9},
    {"SP 25", "lte", ProviderCategory::kMobile, 580.0, 0.0, 0.96, 2.6},
}};

}  // namespace mntp::logs
