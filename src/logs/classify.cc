#include "logs/classify.h"

#include <algorithm>
#include <cctype>
#include <string>

namespace mntp::logs {

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::optional<std::size_t> provider_from_hostname(std::string_view hostname) {
  const std::string h = lowercase(hostname);
  // Longest-keyword-first so "broadband" wins over "net"-style substrings.
  std::optional<std::size_t> best;
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < kPaperProviders.size(); ++i) {
    const std::string kw = lowercase(kPaperProviders[i].keyword);
    if (kw.size() > best_len && h.find(kw) != std::string::npos) {
      best = i;
      best_len = kw.size();
    }
  }
  return best;
}

std::optional<ProviderCategory> category_from_hostname(
    std::string_view hostname) {
  const auto idx = provider_from_hostname(hostname);
  if (!idx) return std::nullopt;
  return kPaperProviders[*idx].category;
}

Protocol classify_protocol(const ntp::NtpPacket& request) {
  return request.looks_like_sntp_request() ? Protocol::kSntp : Protocol::kNtp;
}

bool owd_measurement_valid(const ntp::NtpPacket& request) {
  // The OWD heuristic needs the client's transmit timestamp; an unset
  // transmit (or an unsynchronized leap indicator) invalidates it.
  return !request.transmit_ts.is_unset() &&
         request.leap != ntp::LeapIndicator::kUnsynchronized;
}

}  // namespace mntp::logs
