// Synthetic NTP server log generation.
//
// Substitution for the paper's private tcpdump traces: per-server client
// populations are generated against the Table 1 counts (downscaled by a
// configurable factor so a bench finishes in seconds), with provider
// membership, hostname, a representative request packet (as a real
// 48-byte wire capture), per-request OWD samples, and a synchronized/
// unsynchronized flag per request — everything the §3.1 analysis
// pipeline consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "logs/spec.h"
#include "ntp/packet.h"

namespace mntp::logs {

/// One client observed at one server over the capture day.
struct ClientRecord {
  std::uint64_t client_id = 0;
  std::string hostname;
  std::size_t provider_index = 0;  // into kPaperProviders
  /// Representative request packet as captured on the wire.
  std::array<std::uint8_t, ntp::NtpPacket::kWireSize> request_wire{};
  /// Total requests this client issued over the day.
  std::uint32_t request_count = 0;
  /// Per-request OWD samples (ms), capped at a sampling bound; the
  /// analyzer extracts the minimum. Invalid (unsynchronized) probes are
  /// recorded as negative placeholders and must be filtered out.
  std::vector<float> owd_samples_ms;
};

struct ServerLog {
  ServerSpec spec;
  std::vector<ClientRecord> clients;

  [[nodiscard]] std::uint64_t total_requests() const {
    std::uint64_t n = 0;
    for (const ClientRecord& c : clients) n += c.request_count;
    return n;
  }
};

struct GeneratorParams {
  /// Client-count downscale: generated clients = Table-1 clients * scale
  /// (at least 1 per server).
  double scale = 1.0 / 2000.0;
  /// Cap on stored OWD samples per client (requests beyond the cap are
  /// counted but not sampled).
  std::size_t max_owd_samples = 24;
  /// Fraction of requests arriving with an unsynchronized client clock
  /// (filtered by the Durairajan heuristic).
  double unsynchronized_fraction = 0.06;
};

class LogGenerator {
 public:
  LogGenerator(GeneratorParams params, core::Rng rng);

  /// Generate the log of one paper server (index into kPaperServers).
  [[nodiscard]] ServerLog generate(std::size_t server_index);

  /// Generate all 19 servers.
  [[nodiscard]] std::vector<ServerLog> generate_all();

 private:
  [[nodiscard]] ClientRecord make_client(const ServerSpec& server,
                                         std::uint64_t id,
                                         double requests_per_client);
  [[nodiscard]] std::size_t pick_provider(const ServerSpec& server);

  GeneratorParams params_;
  core::Rng rng_;
};

}  // namespace mntp::logs
