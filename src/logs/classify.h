// Client classification heuristics from §3.1.
//
// Two classifiers operate on a captured client:
//  * provider/category from the reverse-DNS hostname — "a simple process
//    that leverages keywords and provider names (e.g., mobile, cloud,
//    Amazon, Sprint, etc.) present in hostnames";
//  * protocol (SNTP vs NTP) from the request packet — SNTP requests set
//    every field to zero except the first octet (and transmit time),
//    while ntpd populates poll, precision and (after the first exchange)
//    the origin timestamp.
#pragma once

#include <optional>
#include <string_view>

#include "logs/spec.h"
#include "ntp/packet.h"

namespace mntp::logs {

/// Category inferred from hostname keywords; nullopt when no keyword
/// matches (unclassified clients are excluded from the provider plots,
/// as in the paper).
[[nodiscard]] std::optional<ProviderCategory> category_from_hostname(
    std::string_view hostname);

/// Provider index (into kPaperProviders) whose keyword appears in the
/// hostname; nullopt when none matches.
[[nodiscard]] std::optional<std::size_t> provider_from_hostname(
    std::string_view hostname);

/// Protocol classification of a client request packet.
enum class Protocol { kSntp, kNtp };

[[nodiscard]] Protocol classify_protocol(const ntp::NtpPacket& request);

/// Synchronization-state filter (Durairajan et al. heuristic): an OWD
/// computed from a request whose origin timestamp is unset is invalid —
/// the client's clock was not yet set, so the apparent delay is
/// meaningless and the measurement must be discarded.
[[nodiscard]] bool owd_measurement_valid(const ntp::NtpPacket& request);

}  // namespace mntp::logs
