// NTP server log analysis (§3.1): the pipeline that produced Table 1 and
// Figures 1–2, operating on ServerLog records through the classifiers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/stats.h"
#include "logs/classify.h"
#include "logs/generate.h"

namespace mntp::logs {

/// Table 1 row (counts are of the generated, downscaled population; the
/// bench scales back for display).
struct ServerStats {
  std::string server_id;
  std::uint8_t stratum = 0;
  bool ipv6 = false;
  std::size_t unique_clients = 0;
  std::uint64_t total_measurements = 0;
  std::size_t sntp_clients = 0;
  std::size_t ntp_clients = 0;

  [[nodiscard]] double sntp_share() const {
    const std::size_t n = sntp_clients + ntp_clients;
    return n ? static_cast<double>(sntp_clients) / static_cast<double>(n) : 0.0;
  }
};

/// Per-provider min-OWD statistics at one server (a Figure 1 box/CDF).
struct ProviderOwdStats {
  std::size_t provider_index = 0;
  std::string provider_name;
  ProviderCategory category{};
  std::size_t clients = 0;
  core::Summary min_owd_ms;          // distribution of per-client min OWD
  std::vector<double> min_owds_ms;   // raw values (for CDF curves)
  double sntp_share = 0.0;           // Figure 2 (right)
};

class LogAnalyzer {
 public:
  /// Table 1 statistics for one server log.
  [[nodiscard]] static ServerStats server_stats(const ServerLog& log);

  /// Per-client minimum valid OWD; nullopt when the client has no valid
  /// (synchronized) measurement. Applies the §3.1 filtering heuristic.
  [[nodiscard]] static std::optional<double> client_min_owd_ms(
      const ClientRecord& client);

  /// Figure 1: per-provider min-OWD stats at one server, providers with
  /// at least `min_clients` classified clients, ordered SP 1..SP 25.
  [[nodiscard]] static std::vector<ProviderOwdStats> provider_owd_stats(
      const ServerLog& log, std::size_t min_clients = 3);

  /// Figure 1 ordering key: average of per-provider median min-OWDs
  /// across several server analyses (the paper sorts providers by the
  /// "average of minimum OWDs").
  [[nodiscard]] static std::vector<std::size_t> order_by_median_owd(
      const std::vector<std::vector<ProviderOwdStats>>& per_server);

  /// Category medians across a set of logs, indexed by ProviderCategory —
  /// the headline 40/50/250/550 ms numbers.
  [[nodiscard]] static std::array<double, 4> category_median_owd_ms(
      const std::vector<ServerLog>& logs);
};

}  // namespace mntp::logs
