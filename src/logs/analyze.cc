#include "logs/analyze.h"

#include <algorithm>
#include <map>

#include "obs/metric_names.h"
#include "obs/profiler.h"

namespace mntp::logs {

ServerStats LogAnalyzer::server_stats(const ServerLog& log) {
  obs::ProfileScope profile(obs::spans::kLogsClassify);
  ServerStats s;
  s.server_id = std::string(log.spec.id);
  s.stratum = log.spec.stratum;
  s.ipv6 = log.spec.ipv6;
  s.unique_clients = log.clients.size();
  for (const ClientRecord& c : log.clients) {
    s.total_measurements += c.request_count;
    const auto packet = ntp::NtpPacket::parse(c.request_wire);
    if (!packet.ok()) continue;  // corrupt capture: unclassifiable
    if (classify_protocol(packet.value()) == Protocol::kSntp) {
      ++s.sntp_clients;
    } else {
      ++s.ntp_clients;
    }
  }
  return s;
}

std::optional<double> LogAnalyzer::client_min_owd_ms(const ClientRecord& client) {
  std::optional<double> best;
  for (const float owd : client.owd_samples_ms) {
    if (owd < 0.0F) continue;  // unsynchronized probe, filtered
    const double v = static_cast<double>(owd);
    if (!best || v < *best) best = v;
  }
  return best;
}

std::vector<ProviderOwdStats> LogAnalyzer::provider_owd_stats(
    const ServerLog& log, std::size_t min_clients) {
  obs::ProfileScope profile(obs::spans::kLogsClassify);
  std::map<std::size_t, ProviderOwdStats> by_provider;
  std::map<std::size_t, std::size_t> sntp_count;

  for (const ClientRecord& c : log.clients) {
    // Classification is from the hostname, as in the paper — not from
    // the generator's ground truth.
    const auto provider = provider_from_hostname(c.hostname);
    if (!provider) continue;
    const auto min_owd = client_min_owd_ms(c);
    if (!min_owd) continue;

    ProviderOwdStats& ps = by_provider[*provider];
    if (ps.clients == 0) {
      ps.provider_index = *provider;
      ps.provider_name = std::string(kPaperProviders[*provider].name);
      ps.category = kPaperProviders[*provider].category;
    }
    ++ps.clients;
    ps.min_owds_ms.push_back(*min_owd);

    const auto packet = ntp::NtpPacket::parse(c.request_wire);
    if (packet.ok() &&
        classify_protocol(packet.value()) == Protocol::kSntp) {
      ++sntp_count[*provider];
    }
  }

  std::vector<ProviderOwdStats> out;
  for (auto& [idx, ps] : by_provider) {
    if (ps.clients < min_clients) continue;
    ps.min_owd_ms = core::summarize(ps.min_owds_ms);
    ps.sntp_share =
        static_cast<double>(sntp_count[idx]) / static_cast<double>(ps.clients);
    out.push_back(std::move(ps));
  }
  std::sort(out.begin(), out.end(),
            [](const ProviderOwdStats& a, const ProviderOwdStats& b) {
              return a.provider_index < b.provider_index;
            });
  return out;
}

std::vector<std::size_t> LogAnalyzer::order_by_median_owd(
    const std::vector<std::vector<ProviderOwdStats>>& per_server) {
  std::map<std::size_t, std::pair<double, std::size_t>> acc;  // sum, n
  for (const auto& stats : per_server) {
    for (const ProviderOwdStats& ps : stats) {
      auto& [sum, n] = acc[ps.provider_index];
      sum += ps.min_owd_ms.median;
      ++n;
    }
  }
  std::vector<std::size_t> order;
  order.reserve(acc.size());
  for (const auto& [idx, _] : acc) order.push_back(idx);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& [sa, na] = acc[a];
    const auto& [sb, nb] = acc[b];
    return sa / static_cast<double>(na) < sb / static_cast<double>(nb);
  });
  return order;
}

std::array<double, 4> LogAnalyzer::category_median_owd_ms(
    const std::vector<ServerLog>& logs) {
  std::array<std::vector<double>, 4> values;
  for (const ServerLog& log : logs) {
    for (const ClientRecord& c : log.clients) {
      const auto category = category_from_hostname(c.hostname);
      if (!category) continue;
      const auto min_owd = client_min_owd_ms(c);
      if (!min_owd) continue;
      values[static_cast<std::size_t>(*category)].push_back(*min_owd);
    }
  }
  std::array<double, 4> medians{};
  for (std::size_t i = 0; i < values.size(); ++i) {
    medians[i] = values[i].empty() ? 0.0 : core::percentile(values[i], 50.0);
  }
  return medians;
}

}  // namespace mntp::logs
