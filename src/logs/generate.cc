#include "logs/generate.h"

#include <algorithm>
#include <cmath>

#include "core/ntp_timestamp.h"
#include "obs/metric_names.h"
#include "obs/profiler.h"

namespace mntp::logs {

LogGenerator::LogGenerator(GeneratorParams params, core::Rng rng)
    : params_(params), rng_(std::move(rng)) {}

std::size_t LogGenerator::pick_provider(const ServerSpec& server) {
  // ISP-internal servers serve their own infrastructure: bias towards
  // ISP-category providers. Public servers draw from the full weighted
  // provider mix.
  double total = 0.0;
  for (const ProviderSpec& p : kPaperProviders) {
    total += server.isp_internal && p.category != ProviderCategory::kIsp
                 ? p.client_weight * 0.05
                 : p.client_weight;
  }
  double draw = rng_.uniform(0.0, total);
  for (std::size_t i = 0; i < kPaperProviders.size(); ++i) {
    const ProviderSpec& p = kPaperProviders[i];
    const double w = server.isp_internal && p.category != ProviderCategory::kIsp
                         ? p.client_weight * 0.05
                         : p.client_weight;
    if (draw < w) return i;
    draw -= w;
  }
  return kPaperProviders.size() - 1;
}

ClientRecord LogGenerator::make_client(const ServerSpec& server,
                                       std::uint64_t id,
                                       double requests_per_client) {
  ClientRecord c;
  c.client_id = id;
  c.provider_index = pick_provider(server);
  const ProviderSpec& provider = kPaperProviders[c.provider_index];
  c.hostname = "host" + std::to_string(id) + "." +
               std::string(provider.keyword) + ".example.org";

  // Protocol: a client is SNTP with the provider's probability. The
  // *packet* carries the classification: SNTP requests zero everything
  // but the first octet + transmit time; NTP requests populate poll,
  // precision and origin.
  // ISP-internal servers mostly serve the operator's own infrastructure
  // (routers running ntpd), so their protocol mix is NTP-heavy regardless
  // of the provider's consumer-population SNTP share.
  const double sntp_fraction =
      server.isp_internal ? provider.sntp_fraction * 0.25 : provider.sntp_fraction;
  const bool sntp = rng_.bernoulli(sntp_fraction);
  const auto xmt = core::NtpTimestamp::from_parts(
      static_cast<std::uint32_t>(core::kSimEpochNtpSeconds +
                                 rng_.uniform_int(0, 86'400)),
      static_cast<std::uint32_t>(rng_.next_u64()));
  ntp::NtpPacket req =
      sntp ? ntp::NtpPacket::make_sntp_request(xmt)
           : ntp::NtpPacket::make_ntp_request(
                 xmt, static_cast<std::int8_t>(rng_.uniform_int(6, 10)),
                 core::NtpTimestamp::from_parts(1, 1));
  req.serialize(c.request_wire);

  // Request volume: heavy-tailed around the server's requests/client
  // ratio (a few chatty ntpd instances dominate measurement counts).
  const double lam = std::max(1.0, requests_per_client);
  c.request_count = static_cast<std::uint32_t>(
      std::max(1.0, rng_.lognormal(std::log(lam) - 0.5, 1.0)));

  // Per-client minimum OWD structure (Fig 1): lognormal around the
  // provider median for fixed-line categories; wide near-uniform spread
  // for mobile providers (their CDF is the paper's "linear trend").
  double base_ms;
  if (provider.category == ProviderCategory::kMobile) {
    base_ms = rng_.uniform(0.35 * provider.min_owd_median_ms,
                           1.75 * provider.min_owd_median_ms);
  } else {
    base_ms = rng_.lognormal(std::log(provider.min_owd_median_ms),
                             provider.min_owd_sigma);
  }
  base_ms = std::clamp(base_ms, 1.0, 997.0);  // observed OWD range (§1)

  const std::size_t samples = std::min<std::size_t>(
      params_.max_owd_samples, std::max<std::uint32_t>(1, c.request_count));
  c.owd_samples_ms.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    if (rng_.bernoulli(params_.unsynchronized_fraction)) {
      // Unsynchronized probe: OWD meaningless; mark invalid.
      c.owd_samples_ms.push_back(-1.0F);
      continue;
    }
    const double jitter_factor =
        provider.category == ProviderCategory::kMobile
            ? rng_.pareto(1.0, 2.2)   // bursty cellular queueing
            : rng_.pareto(1.0, 4.0);  // light wireline inflation
    c.owd_samples_ms.push_back(
        static_cast<float>(std::min(base_ms * jitter_factor, 3000.0)));
  }
  return c;
}

ServerLog LogGenerator::generate(std::size_t server_index) {
  obs::ProfileScope profile(obs::spans::kLogsGenerate);
  const ServerSpec& spec = kPaperServers.at(server_index);
  ServerLog log{.spec = spec, .clients = {}};
  const auto n_clients = static_cast<std::size_t>(std::max(
      1.0, std::round(static_cast<double>(spec.unique_clients) * params_.scale)));
  const double requests_per_client =
      static_cast<double>(spec.total_measurements) /
      static_cast<double>(spec.unique_clients);
  log.clients.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    log.clients.push_back(make_client(
        spec, (static_cast<std::uint64_t>(server_index) << 32) | i,
        requests_per_client));
  }
  return log;
}

std::vector<ServerLog> LogGenerator::generate_all() {
  std::vector<ServerLog> out;
  out.reserve(kPaperServers.size());
  for (std::size_t i = 0; i < kPaperServers.size(); ++i) {
    out.push_back(generate(i));
  }
  return out;
}

}  // namespace mntp::logs
