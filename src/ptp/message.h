// PTP (IEEE 1588-2008) message subset.
//
// The paper's background (§2) places PTP alongside NTP and SNTP as the
// third synchronization protocol in deployment; it targets LANs where
// hardware or near-hardware timestamping makes sub-microsecond sync
// feasible. We implement the two-step, end-to-end delay mechanism —
// Sync / Follow_Up / Delay_Req / Delay_Resp — over the simulated LAN so
// the comparison benches can place all three protocol families side by
// side.
//
// Wire format (the subset of the 34-byte common header we need, plus the
// 10-byte PTP timestamp body):
//   0  messageType (4 bits) | transportSpecific (4 bits)
//   1  versionPTP
//   2  messageLength (16 bits, big endian)
//   4  domainNumber
//   5..19  flags/correction/reserved (zeroed here)
//   20..27 sourcePortIdentity (clockIdentity, 8 bytes)
//   28..29 sourcePortIdentity (portNumber)
//   30..31 sequenceId
//   32  controlField
//   33  logMessageInterval
//   34..43 timestamp: 48-bit seconds + 32-bit nanoseconds
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "core/result.h"
#include "core/time.h"

namespace mntp::ptp {

enum class MessageType : std::uint8_t {
  kSync = 0x0,
  kDelayReq = 0x1,
  kFollowUp = 0x8,
  kDelayResp = 0x9,
};

/// PTP timestamp: 48-bit seconds since the PTP epoch, 32-bit nanoseconds.
struct PtpTimestamp {
  std::uint64_t seconds = 0;  // only low 48 bits are representable
  std::uint32_t nanoseconds = 0;

  static PtpTimestamp from_time_point(core::TimePoint t);
  [[nodiscard]] core::TimePoint to_time_point() const;
  [[nodiscard]] core::Duration operator-(const PtpTimestamp& o) const;
  bool operator==(const PtpTimestamp&) const = default;
};

/// Seconds offset placing the simulation epoch into the PTP timescale.
inline constexpr std::uint64_t kSimEpochPtpSeconds = 1'200'000'000ULL;

struct PtpMessage {
  static constexpr std::size_t kWireSize = 44;
  static constexpr std::uint8_t kVersion = 2;

  MessageType type = MessageType::kSync;
  std::uint8_t domain = 0;
  std::uint64_t clock_identity = 0;
  std::uint16_t port_number = 1;
  std::uint16_t sequence_id = 0;
  std::int8_t log_message_interval = 0;
  PtpTimestamp timestamp;  // meaning depends on type

  void serialize(std::span<std::uint8_t, kWireSize> out) const;
  [[nodiscard]] std::array<std::uint8_t, kWireSize> to_bytes() const;
  static core::Result<PtpMessage> parse(std::span<const std::uint8_t> in);
};

/// The two-step E2E offset/delay computation:
///   t1 master Sync departure (from Follow_Up), t2 slave Sync arrival,
///   t3 slave Delay_Req departure, t4 master Delay_Req arrival
///   (from Delay_Resp).
/// offset(slave - master) = ((t2 - t1) - (t4 - t3)) / 2
/// meanPathDelay          = ((t2 - t1) + (t4 - t3)) / 2
struct PtpExchange {
  PtpTimestamp t1, t2, t3, t4;

  [[nodiscard]] core::Duration offset_from_master() const;
  [[nodiscard]] core::Duration mean_path_delay() const;
};

}  // namespace mntp::ptp
