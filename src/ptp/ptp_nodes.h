// PTP master and slave ports (two-step, end-to-end delay mechanism).
//
// The master broadcasts Sync/Follow_Up on a fixed cadence and answers
// Delay_Req with Delay_Resp; the slave assembles (t1,t2,t3,t4) exchanges
// and drives its clock servo. Timestamping precision is explicit: each
// captured timestamp carries configurable jitter, letting experiments
// span hardware-grade (~100 ns) to software-grade (~10 µs) timestamping —
// the knob that separates PTP-class from NTP-class accuracy on a LAN.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <map>

#include "core/rng.h"
#include "core/time.h"
#include "net/link.h"
#include "ptp/clock_servo.h"
#include "ptp/message.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::ptp {

struct PtpMasterParams {
  std::uint64_t clock_identity = 0x001A2B3C4D5E6F00ULL;
  core::Duration sync_interval = core::Duration::seconds(1);
  /// Master clock error relative to true time (a grandmaster is
  /// GPS-disciplined: effectively zero).
  double clock_offset_s = 0.0;
  double clock_skew_ppm = 0.0;
  /// Stddev of timestamp capture jitter (hardware PHY timestamping).
  double timestamp_noise_s = 100e-9;
};

struct PtpSlaveParams {
  std::uint64_t clock_identity = 0x00F0E0D0C0B0A000ULL;
  double timestamp_noise_s = 100e-9;
  /// Delay_Req is issued after each completed Sync/Follow_Up pair.
  ServoParams servo;
};

class PtpSlave;

class PtpMaster {
 public:
  PtpMaster(sim::Simulation& sim, PtpMasterParams params, core::Rng rng);

  /// Connect the (single) slave and the duplex paths between the ports.
  void attach(PtpSlave& slave, net::LinkPath to_slave, net::LinkPath from_slave);

  void start();
  void stop();

  /// Master clock reading at true time t, with timestamp capture noise.
  [[nodiscard]] PtpTimestamp capture_timestamp(core::TimePoint t);

  /// Ingress from the slave (Delay_Req).
  void deliver(std::array<std::uint8_t, PtpMessage::kWireSize> wire,
               core::TimePoint arrival);

  [[nodiscard]] std::uint16_t syncs_sent() const { return seq_; }

 private:
  void send_sync();

  sim::Simulation& sim_;
  PtpMasterParams params_;
  core::Rng rng_;
  sim::PeriodicProcess sync_process_;
  PtpSlave* slave_ = nullptr;
  net::LinkPath to_slave_;
  net::LinkPath from_slave_;
  std::uint16_t seq_ = 0;
};

class PtpSlave {
 public:
  PtpSlave(sim::Simulation& sim, sim::DisciplinedClock& clock,
           PtpSlaveParams params, core::Rng rng);

  void attach_master(PtpMaster& master, net::LinkPath to_master);

  /// Slave clock reading at true time t, with timestamp capture noise.
  [[nodiscard]] PtpTimestamp capture_timestamp(core::TimePoint t);

  /// Ingress from the master (Sync / Follow_Up / Delay_Resp).
  void deliver(std::array<std::uint8_t, PtpMessage::kWireSize> wire,
               core::TimePoint arrival);

  /// Completed exchanges and the offsets they measured (ms).
  [[nodiscard]] const std::vector<double>& measured_offsets_ms() const {
    return offsets_ms_;
  }
  [[nodiscard]] std::size_t exchanges_completed() const {
    return offsets_ms_.size();
  }
  [[nodiscard]] const ClockServo& servo() const { return servo_; }
  [[nodiscard]] std::size_t malformed_dropped() const { return malformed_; }

 private:
  void on_sync(const PtpMessage& m, core::TimePoint arrival);
  void on_follow_up(const PtpMessage& m);
  void on_delay_resp(const PtpMessage& m);
  void issue_delay_req(std::uint16_t seq);
  void complete(std::uint16_t seq);

  struct Pending {
    std::optional<PtpTimestamp> t1, t2, t3, t4;
  };

  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  PtpSlaveParams params_;
  core::Rng rng_;
  ClockServo servo_;
  PtpMaster* master_ = nullptr;
  net::LinkPath to_master_;
  std::map<std::uint16_t, Pending> pending_;
  std::vector<double> offsets_ms_;
  core::TimePoint last_update_;
  bool have_last_update_ = false;
  std::size_t malformed_ = 0;
};

}  // namespace mntp::ptp
