// PTP slave clock servo: the PI controller that turns measured offsets
// into phase/frequency corrections (the ptp4l-style servo).
//
// Standalone and purely numeric so it is unit-testable without the
// protocol machinery: feed (offset, interval) observations, get back the
// step/slew decisions applied to a DisciplinedClock.
#pragma once

#include "core/time.h"
#include "sim/clock_model.h"

namespace mntp::ptp {

struct ServoParams {
  /// Offsets above this magnitude step the clock instead of slewing.
  core::Duration step_threshold = core::Duration::milliseconds(20);
  /// Proportional gain on the phase error.
  double kp = 0.7;
  /// Integral gain feeding the frequency estimate, per update.
  double ki = 0.3;
  /// Frequency adjustment clamp, ppm.
  double max_frequency_ppm = 500.0;
};

class ClockServo {
 public:
  ClockServo(sim::DisciplinedClock& clock, ServoParams params = {});

  /// Apply one measured offset (slave - master, so a positive offset
  /// means the slave is ahead and must slow down) observed at true time
  /// t with `interval` since the previous sample.
  void update(core::TimePoint t, core::Duration offset, core::Duration interval);

  [[nodiscard]] std::size_t steps() const { return steps_; }
  [[nodiscard]] std::size_t updates() const { return updates_; }
  [[nodiscard]] double frequency_ppm() const { return freq_ppm_; }

 private:
  sim::DisciplinedClock& clock_;
  ServoParams params_;
  double freq_ppm_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t updates_ = 0;
};

}  // namespace mntp::ptp
