#include "ptp/clock_servo.h"

#include <algorithm>

namespace mntp::ptp {

ClockServo::ClockServo(sim::DisciplinedClock& clock, ServoParams params)
    : clock_(clock), params_(params) {}

void ClockServo::update(core::TimePoint t, core::Duration offset,
                        core::Duration interval) {
  ++updates_;
  // offset = slave - master: correct by subtracting.
  if (offset.abs() >= params_.step_threshold) {
    clock_.step(-offset);
    ++steps_;
    return;
  }
  clock_.step(-offset.scaled(params_.kp));
  const double interval_s = std::max(interval.to_seconds(), 1e-3);
  freq_ppm_ += -params_.ki * offset.to_seconds() / interval_s * 1e6;
  freq_ppm_ = std::clamp(freq_ppm_, -params_.max_frequency_ppm,
                         params_.max_frequency_ppm);
  clock_.set_frequency_compensation(t, freq_ppm_);
}

}  // namespace mntp::ptp
