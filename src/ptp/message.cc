#include "ptp/message.h"

namespace mntp::ptp {

namespace {

void put_u16(std::span<std::uint8_t> out, std::size_t at, std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 8);
  out[at + 1] = static_cast<std::uint8_t>(v);
}

void put_u32(std::span<std::uint8_t> out, std::size_t at, std::uint32_t v) {
  put_u16(out, at, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, at + 2, static_cast<std::uint16_t>(v));
}

void put_u48(std::span<std::uint8_t> out, std::size_t at, std::uint64_t v) {
  put_u16(out, at, static_cast<std::uint16_t>(v >> 32));
  put_u32(out, at + 2, static_cast<std::uint32_t>(v));
}

void put_u64(std::span<std::uint8_t> out, std::size_t at, std::uint64_t v) {
  put_u32(out, at, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, at + 4, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(in, at)) << 16) | get_u16(in, at + 2);
}

std::uint64_t get_u48(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u16(in, at)) << 32) | get_u32(in, at + 2);
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(in, at)) << 32) | get_u32(in, at + 4);
}

}  // namespace

PtpTimestamp PtpTimestamp::from_time_point(core::TimePoint t) {
  std::int64_t ns = t.ns();
  std::int64_t sec = ns / 1'000'000'000;
  std::int64_t rem = ns % 1'000'000'000;
  if (rem < 0) {
    sec -= 1;
    rem += 1'000'000'000;
  }
  return PtpTimestamp{
      .seconds = kSimEpochPtpSeconds + static_cast<std::uint64_t>(sec),
      .nanoseconds = static_cast<std::uint32_t>(rem)};
}

core::TimePoint PtpTimestamp::to_time_point() const {
  const auto sec = static_cast<std::int64_t>(seconds) -
                   static_cast<std::int64_t>(kSimEpochPtpSeconds);
  return core::TimePoint::from_ns(sec * 1'000'000'000 +
                                  static_cast<std::int64_t>(nanoseconds));
}

core::Duration PtpTimestamp::operator-(const PtpTimestamp& o) const {
  const auto ds = static_cast<std::int64_t>(seconds) -
                  static_cast<std::int64_t>(o.seconds);
  const auto dn = static_cast<std::int64_t>(nanoseconds) -
                  static_cast<std::int64_t>(o.nanoseconds);
  return core::Duration::nanoseconds(ds * 1'000'000'000 + dn);
}

void PtpMessage::serialize(std::span<std::uint8_t, kWireSize> out) const {
  for (auto& b : out) b = 0;
  out[0] = static_cast<std::uint8_t>(static_cast<unsigned>(type) & 0x0FU);
  out[1] = kVersion;
  put_u16(out, 2, kWireSize);
  out[4] = domain;
  put_u64(out, 20, clock_identity);
  put_u16(out, 28, port_number);
  put_u16(out, 30, sequence_id);
  // controlField mirrors the message type for the legacy field.
  out[32] = static_cast<std::uint8_t>(static_cast<unsigned>(type) & 0x0FU);
  out[33] = static_cast<std::uint8_t>(log_message_interval);
  put_u48(out, 34, timestamp.seconds);
  put_u32(out, 40, timestamp.nanoseconds);
}

std::array<std::uint8_t, PtpMessage::kWireSize> PtpMessage::to_bytes() const {
  std::array<std::uint8_t, kWireSize> buf{};
  serialize(buf);
  return buf;
}

core::Result<PtpMessage> PtpMessage::parse(std::span<const std::uint8_t> in) {
  if (in.size() < kWireSize) {
    return core::Error::malformed("PTP message shorter than 44 bytes");
  }
  PtpMessage m;
  const auto raw_type = static_cast<std::uint8_t>(in[0] & 0x0FU);
  switch (raw_type) {
    case 0x0: m.type = MessageType::kSync; break;
    case 0x1: m.type = MessageType::kDelayReq; break;
    case 0x8: m.type = MessageType::kFollowUp; break;
    case 0x9: m.type = MessageType::kDelayResp; break;
    default:
      return core::Error::malformed("unsupported PTP message type");
  }
  if (in[1] != kVersion) {
    return core::Error::malformed("unsupported PTP version");
  }
  if (get_u16(in, 2) < kWireSize) {
    return core::Error::malformed("inconsistent PTP messageLength");
  }
  m.domain = in[4];
  m.clock_identity = get_u64(in, 20);
  m.port_number = get_u16(in, 28);
  m.sequence_id = get_u16(in, 30);
  m.log_message_interval = static_cast<std::int8_t>(in[33]);
  m.timestamp.seconds = get_u48(in, 34);
  m.timestamp.nanoseconds = get_u32(in, 40);
  if (m.timestamp.nanoseconds >= 1'000'000'000U) {
    return core::Error::malformed("PTP timestamp nanoseconds out of range");
  }
  return m;
}

core::Duration PtpExchange::offset_from_master() const {
  return ((t2 - t1) - (t4 - t3)) / 2;
}

core::Duration PtpExchange::mean_path_delay() const {
  return ((t2 - t1) + (t4 - t3)) / 2;
}

}  // namespace mntp::ptp
