#include "ptp/ptp_nodes.h"

namespace mntp::ptp {

namespace {

/// Apply capture jitter to a clock reading.
PtpTimestamp noisy(core::TimePoint local, double noise_s, core::Rng& rng) {
  return PtpTimestamp::from_time_point(
      local + core::Duration::from_seconds(rng.normal(0.0, noise_s)));
}

}  // namespace

PtpMaster::PtpMaster(sim::Simulation& sim, PtpMasterParams params,
                     core::Rng rng)
    : sim_(sim),
      params_(params),
      rng_(std::move(rng)),
      sync_process_(sim, params.sync_interval, [this] { send_sync(); }) {}

void PtpMaster::attach(PtpSlave& slave, net::LinkPath to_slave,
                       net::LinkPath from_slave) {
  slave_ = &slave;
  to_slave_ = std::move(to_slave);
  from_slave_ = std::move(from_slave);
  slave.attach_master(*this, from_slave_);
}

void PtpMaster::start() { sync_process_.start(); }
void PtpMaster::stop() { sync_process_.stop(); }

PtpTimestamp PtpMaster::capture_timestamp(core::TimePoint t) {
  const core::TimePoint master_local =
      t + core::Duration::from_seconds(params_.clock_offset_s +
                                       params_.clock_skew_ppm * 1e-6 *
                                           t.to_seconds());
  return noisy(master_local, params_.timestamp_noise_s, rng_);
}

void PtpMaster::send_sync() {
  if (slave_ == nullptr) return;
  const std::uint16_t seq = ++seq_;

  // Two-step: Sync carries no timestamp; the PHY captures the precise
  // departure time t1, which Follow_Up then conveys.
  PtpMessage sync;
  sync.type = MessageType::kSync;
  sync.clock_identity = params_.clock_identity;
  sync.sequence_id = seq;
  const PtpTimestamp t1 = capture_timestamp(sim_.now());
  net::send_datagram(sim_, to_slave_, PtpMessage::kWireSize,
                     [this, wire = sync.to_bytes()](core::TimePoint arrival) {
                       slave_->deliver(wire, arrival);
                     });

  PtpMessage follow_up;
  follow_up.type = MessageType::kFollowUp;
  follow_up.clock_identity = params_.clock_identity;
  follow_up.sequence_id = seq;
  follow_up.timestamp = t1;
  net::send_datagram(sim_, to_slave_, PtpMessage::kWireSize,
                     [this, wire = follow_up.to_bytes()](core::TimePoint arrival) {
                       slave_->deliver(wire, arrival);
                     });
}

void PtpMaster::deliver(std::array<std::uint8_t, PtpMessage::kWireSize> wire,
                        core::TimePoint arrival) {
  const auto parsed = PtpMessage::parse(wire);
  if (!parsed.ok() || parsed.value().type != MessageType::kDelayReq) return;
  if (slave_ == nullptr) return;

  PtpMessage resp;
  resp.type = MessageType::kDelayResp;
  resp.clock_identity = params_.clock_identity;
  resp.sequence_id = parsed.value().sequence_id;
  resp.timestamp = capture_timestamp(arrival);  // t4
  net::send_datagram(sim_, to_slave_, PtpMessage::kWireSize,
                     [this, wire2 = resp.to_bytes()](core::TimePoint at) {
                       slave_->deliver(wire2, at);
                     });
}

PtpSlave::PtpSlave(sim::Simulation& sim, sim::DisciplinedClock& clock,
                   PtpSlaveParams params, core::Rng rng)
    : sim_(sim),
      clock_(clock),
      params_(params),
      rng_(std::move(rng)),
      servo_(clock, params.servo) {}

void PtpSlave::attach_master(PtpMaster& master, net::LinkPath to_master) {
  master_ = &master;
  to_master_ = std::move(to_master);
}

PtpTimestamp PtpSlave::capture_timestamp(core::TimePoint t) {
  return noisy(clock_.local_time(t), params_.timestamp_noise_s, rng_);
}

void PtpSlave::deliver(std::array<std::uint8_t, PtpMessage::kWireSize> wire,
                       core::TimePoint arrival) {
  const auto parsed = PtpMessage::parse(wire);
  if (!parsed.ok()) {
    ++malformed_;
    return;
  }
  const PtpMessage& m = parsed.value();
  switch (m.type) {
    case MessageType::kSync: on_sync(m, arrival); break;
    case MessageType::kFollowUp: on_follow_up(m); break;
    case MessageType::kDelayResp: on_delay_resp(m); break;
    case MessageType::kDelayReq: break;  // not ours to answer
  }
}

void PtpSlave::on_sync(const PtpMessage& m, core::TimePoint arrival) {
  Pending& p = pending_[m.sequence_id];
  p.t2 = capture_timestamp(arrival);
  // Follow_Up may have overtaken the Sync (independent queueing on the
  // path); proceed as soon as both halves are in hand.
  if (p.t1.has_value()) issue_delay_req(m.sequence_id);
  // Bound the pending map (lost Follow_Ups / Delay_Resps leak otherwise).
  while (pending_.size() > 16) pending_.erase(pending_.begin());
}

void PtpSlave::on_follow_up(const PtpMessage& m) {
  Pending& p = pending_[m.sequence_id];
  p.t1 = m.timestamp;
  if (p.t2.has_value()) issue_delay_req(m.sequence_id);
}

void PtpSlave::issue_delay_req(std::uint16_t seq) {
  if (master_ == nullptr) return;
  PtpMessage req;
  req.type = MessageType::kDelayReq;
  req.clock_identity = params_.clock_identity;
  req.sequence_id = seq;
  pending_[seq].t3 = capture_timestamp(sim_.now());
  net::send_datagram(sim_, to_master_, PtpMessage::kWireSize,
                     [this, wire = req.to_bytes()](core::TimePoint arrival) {
                       master_->deliver(wire, arrival);
                     });
}

void PtpSlave::on_delay_resp(const PtpMessage& m) {
  auto it = pending_.find(m.sequence_id);
  if (it == pending_.end()) return;
  it->second.t4 = m.timestamp;
  complete(m.sequence_id);
}

void PtpSlave::complete(std::uint16_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  const Pending& p = it->second;
  if (!(p.t1 && p.t2 && p.t3 && p.t4)) return;

  const PtpExchange xchg{.t1 = *p.t1, .t2 = *p.t2, .t3 = *p.t3, .t4 = *p.t4};
  const core::Duration offset = xchg.offset_from_master();
  offsets_ms_.push_back(offset.to_millis());
  const core::Duration interval =
      have_last_update_ ? sim_.now() - last_update_ : core::Duration::seconds(1);
  servo_.update(sim_.now(), offset, interval);
  last_update_ = sim_.now();
  have_last_update_ = true;
  pending_.erase(it);
}

}  // namespace mntp::ptp
