// MNTP tuner (§5.3): logger, emulator, searcher.
//
// "At the core of the MNTP tuner tool is the ability to perform
// trace-driven analysis on the recorded clock offset values":
//   * the Logger runs on the target node, emits SNTP requests to
//     multiple reference clocks every five seconds, and records the
//     responses and the wireless hints as a Trace;
//   * the Emulator replays Algorithm 1 (the same MntpEngine the live
//     client uses) over a Trace under a given parameter setting;
//   * the Searcher enumerates the cartesian product of candidate
//     parameter values, invokes the Emulator on each combination, and
//     scores it by the RMSE of the reported offsets against a perfectly
//     synchronized clock (offset 0), together with the number of
//     requests the configuration generates — reproducing Table 2 and
//     Figure 11.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "mntp/engine.h"
#include "mntp/trace.h"
#include "net/wireless_channel.h"
#include "ntp/pool.h"
#include "ntp/transport.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::protocol::tuner {

struct LoggerParams {
  core::Duration interval = core::Duration::seconds(5);
  std::size_t sources = 3;
  ntp::QueryOptions query_options{};
};

/// Records a Trace from a live (simulated) testbed. Start it, run the
/// simulation for the capture span, then take the trace.
///
/// Failed rounds stay in the trace: a record whose queries all timed out
/// has an empty `offsets_s` but keeps its wireless hints — the emulator
/// replays it as a round the client would have attempted (requests are
/// billed, no offset lands), which is exactly what the live client
/// experiences on a lossy channel.
class Logger {
 public:
  Logger(sim::Simulation& sim, sim::DisciplinedClock& clock,
         ntp::ServerPool& pool, net::WirelessChannel& channel,
         LoggerParams params, core::Rng rng);

  /// Cancels the capture like stop(): queries still in flight fire into
  /// the simulation but no longer touch this object.
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void start();

  /// Stop capturing. The periodic process is cancelled AND any query
  /// still in flight is disarmed — its completion callback becomes a
  /// no-op instead of mutating a stopped (or destroyed) logger. A
  /// stopped logger can be start()ed again; records from rounds that
  /// were in flight across the stop are dropped, not resurrected.
  void stop();

  [[nodiscard]] bool started() const { return started_; }

  /// The captured trace so far (records land when their round completes).
  [[nodiscard]] const Trace& trace() const { return trace_; }

 private:
  void capture_once();

  sim::Simulation& sim_;
  ntp::ServerPool& pool_;
  net::WirelessChannel& channel_;
  LoggerParams params_;
  core::Rng rng_;
  ntp::QueryEngine engine_;
  sim::PeriodicProcess process_;
  Trace trace_;
  core::TimePoint start_;
  bool started_ = false;
  /// Shared liveness flag captured by in-flight query callbacks; flipped
  /// false on stop()/destruction so late completions cannot re-enter.
  std::shared_ptr<bool> alive_;
};

/// Result of replaying Algorithm 1 over a trace.
struct EmulationResult {
  /// Offsets MNTP reported (accepted), milliseconds.
  std::vector<double> reported_offsets_ms;
  /// RMSE of the reported offsets against a perfect clock (0 ms).
  double rmse_ms = 0.0;
  /// Requests the configuration emitted (each queried source counts,
  /// matching the paper's "Number of request" column).
  std::size_t requests = 0;
  std::size_t deferrals = 0;
  std::size_t rejections = 0;
  std::size_t resets = 0;
};

/// Replay Algorithm 1 over `trace` under `params`. Pure function of its
/// inputs — no network, no randomness.
[[nodiscard]] EmulationResult emulate(const Trace& trace, const MntpParams& params);

/// One searcher configuration and its score (a Table 2 row).
struct SearchEntry {
  MntpParams params;
  double rmse_ms = 0.0;
  std::size_t requests = 0;

  [[nodiscard]] std::string to_string() const;
};

struct SearchSpace {
  std::vector<core::Duration> warmup_periods;
  std::vector<core::Duration> warmup_wait_times;
  std::vector<core::Duration> regular_wait_times;
  std::vector<core::Duration> reset_periods;
  /// Everything not swept is copied from this base configuration.
  MntpParams base;
};

struct SearchOptions {
  /// Worker threads scoring configurations. <= 1 scores serially on the
  /// calling thread (no pool is created); N > 1 fans the grid out over a
  /// core::ThreadPool. Output is bit-identical either way.
  std::size_t threads = 1;
};

/// Enumerate the cartesian product and score each combination. Entries
/// come back in enumeration order (warmup_period outermost, reset_period
/// innermost — the order of the SearchSpace fields); callers sort as
/// needed.
///
/// Determinism guarantee: emulate() is a pure function of (trace,
/// params), each worker writes only its own entry's slot, and per-config
/// trace events are emitted after scoring completes, in enumeration
/// order, from the calling thread — so the returned entries AND the
/// "tuner"-category event stream are bit-identical for any `threads`
/// value. (Engine-internal events emitted by the replays themselves are
/// mutex-serialized but land in scheduler order when threads > 1;
/// metric totals stay exact either way.)
[[nodiscard]] std::vector<SearchEntry> search(const Trace& trace,
                                              const SearchSpace& space,
                                              const SearchOptions& options);

/// Serial convenience overload (SearchOptions defaults).
[[nodiscard]] std::vector<SearchEntry> search(const Trace& trace,
                                              const SearchSpace& space);

}  // namespace mntp::protocol::tuner
