// Live MNTP client: drives the MntpEngine against the simulated testbed.
//
// The client is the deployable artifact the paper describes — "a
// lightweight, simple and easy-to-deploy modification of SNTP": it
// samples wireless hints from the adaptor (here, the channel model),
// defers acquisitions while the channel is unfavorable, fans warm-up
// rounds out to multiple pool servers, feeds results to the engine, and
// (optionally) applies accepted corrections to the system clock.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "mntp/engine.h"
#include "net/wireless_channel.h"
#include "ntp/pool.h"
#include "ntp/transport.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::protocol {

/// One hint observation taken at an acquisition opportunity, plus what
/// the client did with it — the raw material of the paper's Figure 7
/// "signals and selection" plot.
struct HintRecord {
  net::WirelessHints hints;
  bool favorable = false;
  bool emitted = false;  ///< favorable AND a request round was sent
};

class MntpClient {
 public:
  MntpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
             ntp::ServerPool& pool, net::WirelessChannel& channel,
             MntpParams params, core::Rng rng,
             ntp::QueryOptions query_options = {});

  void start();
  void stop();

  [[nodiscard]] const MntpEngine& engine() const { return *engine_; }
  /// Mutable engine access for runtime adaptation (self-tuning). Only
  /// valid after start().
  [[nodiscard]] MntpEngine& mutable_engine() { return *engine_; }
  /// Emissions forced by the max_deferral fallback.
  [[nodiscard]] std::size_t forced_emissions() const { return forced_emissions_; }
  [[nodiscard]] const std::vector<HintRecord>& hint_log() const {
    return hint_log_;
  }
  [[nodiscard]] std::size_t requests_sent() const { return requests_sent_; }
  [[nodiscard]] std::size_t query_failures() const { return query_failures_; }

 private:
  void attempt();
  void run_round();
  void finish_round(std::vector<double> offsets_s);

  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  ntp::ServerPool& pool_;
  net::WirelessChannel& channel_;
  MntpParams params_;
  core::Rng rng_;
  ntp::QueryOptions query_options_;
  ntp::QueryEngine query_engine_;
  std::unique_ptr<MntpEngine> engine_;
  sim::EventHandle pending_;
  bool running_ = false;
  std::vector<HintRecord> hint_log_;
  std::size_t requests_sent_ = 0;
  std::size_t query_failures_ = 0;
  std::size_t forced_emissions_ = 0;
  core::TimePoint last_emission_;
  /// Round trace minted at emission time (attempt()) so the gate
  /// decision, every exchange of the round, and the engine verdict all
  /// land under one query id. Zero while no round is in flight.
  obs::QueryId round_trace_ = 0;
  obs::Counter* requests_counter_ = nullptr;
  obs::Counter* forced_counter_ = nullptr;
  obs::Counter* clock_steps_counter_ = nullptr;
  /// Timeline probe: deferral-gate state at the latest acquisition
  /// opportunity (0 = deferred, 1 = emitted favorably, 2 = forced by the
  /// max_deferral fallback). Inert unless the recorder captures.
  obs::ProbeHandle gate_probe_;
};

}  // namespace mntp::protocol
