#include "mntp/drift_filter.h"

#include <algorithm>
#include <cmath>

#include "obs/query_trace.h"

namespace mntp::protocol {

namespace {

/// Trace this offer's verdict against the ambient query, if any. The
/// threshold is reported in the offset domain (sqrt of the squared-
/// residual gate) so it reads in the same unit as the residual.
void trace_decision(core::TimePoint t, bool accepted, bool bootstrap,
                    double residual_s, double gate_sq) {
  auto q = mntp::obs::ambient_query();
  if (!q.tracer) return;
  q.tracer->stage(
      q.id, t, "drift_filter",
      accepted ? mntp::obs::Reason::kOk : mntp::obs::Reason::kTrendOutlier,
      {{"residual_ms", residual_s * 1e3},
       {"threshold_ms", gate_sq > 0.0 ? std::sqrt(gate_sq) * 1e3 : 0.0},
       {"bootstrap", bootstrap}});
}

}  // namespace

DriftFilter::DriftFilter(DriftFilterConfig config) : config_(config) {
  if (config_.bootstrap_samples < 2) config_.bootstrap_samples = 2;
}

void DriftFilter::reset() {
  samples_.clear();
  acc_.reset();
  fit_.reset();
  rejected_ = 0;
  consecutive_rejections_ = 0;
  bootstrap_done_ = false;
}

void DriftFilter::rebuild_fit() {
  acc_.reset();
  for (const Sample& s : samples_) acc_.add(s.t_s, s.offset_s);
  fit_ = acc_.fit();
}

FilterDecision DriftFilter::offer(core::TimePoint t, double offset_s) {
  FilterDecision d;
  const double ts = time_axis(t);

  if (bootstrapping()) {
    d.accepted = true;
    d.bootstrap = true;
    if (fit_) {
      d.has_prediction = true;
      d.predicted_s = fit_->predict(ts);
      d.residual_s = offset_s - d.predicted_s;
    }
    samples_.push_back({ts, offset_s});
    acc_.add(ts, offset_s);
    fit_ = acc_.fit();
    if (samples_.size() >= config_.bootstrap_samples) {
      bootstrap_done_ = true;
      // Bootstrap complete: drop the outliers that slipped in unguarded
      // before they poison the trend the regular gate judges against.
      prune_and_refit();
    }
    trace_decision(t, /*accepted=*/true, /*bootstrap=*/true, d.residual_s,
                   0.0);
    return d;
  }

  // Squared error of the new sample against the extrapolated trend,
  // judged against the distribution of the accepted samples' squared
  // residuals (mean + 1 sd gate, per the paper).
  if (!fit_) rebuild_fit();
  if (fit_) {
    d.has_prediction = true;
    d.predicted_s = fit_->predict(ts);
    d.residual_s = offset_s - d.predicted_s;
    // Mean + sd of squared residuals over the recent window only. One
    // prediction per sample, squared residuals cached in the scratch
    // buffer for the variance pass.
    const std::size_t begin =
        config_.stats_window > 0 && samples_.size() > config_.stats_window
            ? samples_.size() - config_.stats_window
            : 0;
    const auto window_n = static_cast<double>(samples_.size() - begin);
    scratch_sq_.clear();
    double mean_sq = 0.0;
    for (std::size_t i = begin; i < samples_.size(); ++i) {
      const double r = samples_[i].offset_s - fit_->predict(samples_[i].t_s);
      scratch_sq_.push_back(r * r);
      mean_sq += r * r;
    }
    mean_sq /= window_n;
    double var_sq = 0.0;
    for (const double sq : scratch_sq_) {
      const double dev = sq - mean_sq;
      var_sq += dev * dev;
    }
    var_sq /= window_n;
    const double gate =
        std::max(mean_sq + std::sqrt(var_sq),
                 config_.min_accept_band_s * config_.min_accept_band_s);
    const double err_sq = d.residual_s * d.residual_s;
    if (err_sq > gate) {
      const bool escape =
          config_.max_consecutive_rejections > 0 &&
          consecutive_rejections_ >= config_.max_consecutive_rejections;
      if (!escape) {
        ++rejected_;
        ++consecutive_rejections_;
        d.accepted = false;
        trace_decision(t, /*accepted=*/false, /*bootstrap=*/false,
                       d.residual_s, gate);
        return d;
      }
      // Rejection-starvation escape: the gate has rejected every sample
      // for a while, which means the trend itself is the likelier
      // culprit. Admit this one so the fit and the gate statistics can
      // re-converge on reality.
      d.forced = true;
    }
    consecutive_rejections_ = 0;
    trace_decision(t, /*accepted=*/true, /*bootstrap=*/false, d.residual_s,
                   gate);
  }

  d.accepted = true;
  samples_.push_back({ts, offset_s});
  if (config_.max_samples > 0 && samples_.size() > config_.max_samples) {
    // Window eviction changes the first sample: rebuild so the
    // accumulator re-centers, exactly as a from-scratch refit would.
    samples_.erase(samples_.begin());
    if (config_.reestimate_each_sample) rebuild_fit();
  } else if (config_.reestimate_each_sample) {
    // Append-only: extend the running sums in O(1). Identical to the
    // old refit-over-everything because the add sequence (and thus
    // every intermediate rounding) is the same.
    acc_.add(ts, offset_s);
    fit_ = acc_.fit();
  }
  return d;
}

void DriftFilter::prune_and_refit() {
  if (samples_.size() < 3) return;
  if (!fit_) rebuild_fit();
  if (!fit_) return;
  double mean_sq = 0.0;
  scratch_sq_.clear();
  for (const Sample& s : samples_) {
    const double r = s.offset_s - fit_->predict(s.t_s);
    scratch_sq_.push_back(r * r);
    mean_sq += r * r;
  }
  mean_sq /= static_cast<double>(samples_.size());
  double var = 0.0;
  for (double s : scratch_sq_) var += (s - mean_sq) * (s - mean_sq);
  var /= static_cast<double>(samples_.size());
  const double gate = mean_sq + std::sqrt(var);

  std::size_t keep_n = 0;
  for (const double sq : scratch_sq_) {
    if (sq <= gate) ++keep_n;
  }
  if (keep_n < 2) return;
  // Compact the survivors in place (order preserved), then rebuild the
  // re-centered fit over them.
  std::size_t out = 0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (scratch_sq_[i] <= gate) samples_[out++] = samples_[i];
  }
  samples_.resize(keep_n);
  rebuild_fit();
}

std::optional<double> DriftFilter::drift_s_per_s() const {
  if (!fit_) return std::nullopt;
  return fit_->slope;
}

std::optional<double> DriftFilter::predict_s(core::TimePoint t) const {
  if (!fit_) return std::nullopt;
  return fit_->predict(time_axis(t));
}

}  // namespace mntp::protocol
