// MNTP trend-line drift filter (paper §4.2, Algorithm 1 steps 11–14 and
// the estimateDrift function; §5.3 re-estimation refinement).
//
// The filter fits a first-degree least-squares polynomial (offset vs
// time) through accepted offsets — clock skew's constant component
// dominates its variable component, so a line is the right model — then
// judges each new offset against the extrapolated trend: compute the
// squared error of the new sample versus the prediction and reject it if
// that squared error exceeds the mean plus one standard deviation of the
// accepted samples' squared errors. Accepted samples extend the trend;
// per the §5.3 fix the drift estimate is re-fitted on every acceptance
// (optionally disabled for the ablation study).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/linreg.h"
#include "core/time.h"

namespace mntp::protocol {

struct DriftFilterConfig {
  /// Samples accepted unconditionally while the trend bootstraps.
  std::size_t bootstrap_samples = 10;
  /// Re-fit the trend after every accepted sample (§5.3). When false the
  /// fit is frozen once bootstrap completes.
  bool reestimate_each_sample = true;
  /// Retain at most this many samples in the fit (0 = unbounded). A
  /// bounded window lets the trend follow slowly-varying skew.
  std::size_t max_samples = 0;
  /// Residual statistics (the mean + sd gate) are computed over the most
  /// recent this-many accepted samples, so one early outlier cannot
  /// permanently widen the gate (variance avalanche).
  std::size_t stats_window = 40;
  /// Floor on the acceptance band (seconds): a sample within this
  /// distance of the trend is always accepted even when the residual
  /// history is degenerate (e.g. a bootstrap window whose points the
  /// line fits exactly, which would otherwise collapse the mean+sd gate
  /// to zero and reject everything — the §5.3 pathology).
  double min_accept_band_s = 0.015;
  /// After this many consecutive gate rejections the next out-of-gate
  /// sample is admitted anyway (0 disables the hatch, the default). The
  /// gate's statistics are computed over *accepted* samples only, so a
  /// trend mis-fitted from a short noisy bootstrap can reject every
  /// later sample forever — nothing ever widens the gate or corrects
  /// the fit. Admitting one sample both pulls the fit toward reality
  /// and widens the gate, after which normal acceptance resumes.
  /// Disabled by default because Algorithm 1's reset_period already
  /// re-learns the trend in normal deployments (and a coherent
  /// timescale step, e.g. a leap second, *should* stay rejected until
  /// that reset); enable it in configurations that never reset.
  std::size_t max_consecutive_rejections = 0;
};

/// Decision record for one offered sample.
struct FilterDecision {
  bool accepted = false;
  /// True when a trend existed at offer time, i.e. `predicted_s` and
  /// `residual_s` are real extrapolations. Callers must branch on this,
  /// not on `predicted_s != 0.0`: a legitimate trend crossing zero
  /// predicts exactly 0.0.
  bool has_prediction = false;
  /// Trend prediction at the sample time (seconds); 0 when no trend yet.
  double predicted_s = 0.0;
  /// Sample minus prediction (the residual), seconds.
  double residual_s = 0.0;
  /// True while the filter was still bootstrapping.
  bool bootstrap = false;
  /// True when the sample was out of gate but admitted by the
  /// consecutive-rejection escape hatch.
  bool forced = false;
};

class DriftFilter {
 public:
  explicit DriftFilter(DriftFilterConfig config = {});

  /// Offer a sample: measured offset (seconds) observed at time t.
  FilterDecision offer(core::TimePoint t, double offset_s);

  /// Prune bootstrap outliers and re-fit: drops accepted samples whose
  /// squared residual against the current fit exceeds mean + 1 sd, then
  /// refits on the survivors. Called when the warm-up phase completes.
  void prune_and_refit();

  /// Estimated drift (slope), seconds of offset per second of time —
  /// multiply by 1e6 for ppm. nullopt until a trend exists.
  [[nodiscard]] std::optional<double> drift_s_per_s() const;

  /// Trend prediction at time t; nullopt until a trend exists.
  [[nodiscard]] std::optional<double> predict_s(core::TimePoint t) const;

  [[nodiscard]] std::size_t accepted_count() const { return samples_.size(); }
  [[nodiscard]] std::size_t rejected_count() const { return rejected_; }
  /// True until `bootstrap_samples` samples have been accepted once.
  /// Completion is latched: pruning outliers afterwards does not re-open
  /// the unconditional-accept window.
  [[nodiscard]] bool bootstrapping() const { return !bootstrap_done_; }

  void reset();

 private:
  struct Sample {
    double t_s;
    double offset_s;
  };

  /// Rebuild the running accumulator from `samples_` and refresh `fit_`.
  /// Needed whenever the sample set shrinks (prune, window eviction):
  /// the accumulator centers on the first sample's x, so a new first
  /// sample means a new origin. Append-only growth never calls this —
  /// `offer` extends the accumulator in O(1), which is bit-identical to
  /// a from-scratch refit because `core::least_squares` is itself just
  /// sequential `IncrementalLinReg::add` calls over the same sequence.
  void rebuild_fit();
  [[nodiscard]] double time_axis(core::TimePoint t) const {
    return t.to_seconds();
  }

  DriftFilterConfig config_;
  std::vector<Sample> samples_;
  core::IncrementalLinReg acc_;
  std::optional<core::LinearFit> fit_;
  /// Scratch for squared residuals (gate stats, pruning); reused across
  /// calls so the steady-state offer path never heap-allocates.
  std::vector<double> scratch_sq_;
  std::size_t rejected_ = 0;
  std::size_t consecutive_rejections_ = 0;
  bool bootstrap_done_ = false;
};

}  // namespace mntp::protocol
