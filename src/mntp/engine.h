// MNTP protocol engine: Algorithm 1 as a pure, driver-agnostic state
// machine.
//
// The engine owns phase bookkeeping (warm-up → regular → reset), the
// channel gate, false-ticker rejection of multi-source rounds, and the
// drift trend filter. It is deliberately free of any simulation or
// network dependency so the *same* logic runs in two drivers:
//
//   * MntpClient   — live, event-driven against the simulated testbed;
//   * tuner::Emulator — trace-driven replay over recorded logs (§5.3).
//
// The paper's MNTP tuner exists precisely because the algorithm is
// replayable over traces; factoring the engine this way is what makes
// that possible without code duplication.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/time.h"
#include "mntp/drift_filter.h"
#include "mntp/false_ticker.h"
#include "mntp/params.h"
#include "net/hints.h"
#include "obs/telemetry.h"

namespace mntp::protocol {

enum class Phase { kWarmup, kRegular };

/// What happened to one acquisition opportunity, for telemetry/plots.
enum class SampleOutcome {
  kAcceptedWarmup,
  kAcceptedRegular,
  kRejectedFalseTicker,  // entire round discarded by the warm-up vote
  kRejectedFilter,       // trend filter rejected the combined offset
};

[[nodiscard]] const char* to_string(SampleOutcome outcome);
[[nodiscard]] const char* to_string(Phase phase);

/// The query-trace verdict reason corresponding to a round outcome
/// (obs/reason_codes.h). The mapping is 1:1 so the causation table in
/// `mntp-inspect explain` reconciles exactly against the mntp.sample
/// outcome counters.
[[nodiscard]] obs::Reason to_reason(SampleOutcome outcome);

struct OffsetRecord {
  core::TimePoint t;
  double offset_s = 0.0;     ///< combined measured offset
  double corrected_s = 0.0;  ///< residual against the drift trend
  SampleOutcome outcome = SampleOutcome::kAcceptedRegular;
  Phase phase = Phase::kWarmup;
  /// Accepted while the filter was still bootstrapping its trend; the
  /// residual is not yet meaningful for such records.
  bool bootstrap = false;
};

class MntpEngine {
 public:
  MntpEngine(MntpParams params, core::TimePoint start);

  [[nodiscard]] Phase phase() const { return phase_; }

  /// favorableSNRCondition(): may a request be emitted under these hints?
  [[nodiscard]] bool gate(const net::WirelessHints& hints) const {
    return params_.thresholds.favorable(hints);
  }

  /// Record a deferral (gate closed at an acquisition opportunity).
  void note_deferral(core::TimePoint t);

  /// Sources the driver should query for the next round: `warmup_sources`
  /// in warm-up, one in the regular phase.
  [[nodiscard]] std::size_t sources_to_query() const;

  /// Wait before the next acquisition opportunity in the current phase.
  [[nodiscard]] core::Duration next_wait() const;

  struct RoundResult {
    bool accepted = false;
    double offset_s = 0.0;
    double corrected_s = 0.0;
    SampleOutcome outcome = SampleOutcome::kRejectedFilter;
    /// Set when this round completed the warm-up phase.
    bool warmup_completed = false;
    /// Set when the reset period elapsed and the engine restarted.
    bool reset_occurred = false;
  };

  /// Feed the measured offsets (seconds) of one acquisition round taken
  /// at time t. Zero, one, or `sources_to_query()` entries may be present
  /// (failed queries simply do not contribute). Handles phase
  /// transitions and the reset period.
  RoundResult on_round(core::TimePoint t, const std::vector<double>& offsets_s);

  /// Driver notification that it stepped the system clock by `step_s`
  /// (positive = clock advanced). The engine keeps fitting the trend in
  /// the *uncorrected* offset domain so the line stays linear across
  /// steps.
  void note_clock_step(double step_s);

  /// Driver notification that it changed the clock's frequency
  /// compensation to `ppm` at time t (correctSystemClockDrift). The
  /// engine integrates the compensation so the uncorrected trend domain
  /// stays linear across frequency trims as well.
  void note_frequency_compensation(core::TimePoint t, double ppm);

  /// Current drift estimate, seconds per second.
  [[nodiscard]] std::optional<double> drift_s_per_s() const {
    return filter_.drift_s_per_s();
  }

  /// Trend prediction of the *measured* offset at time t (uncorrected
  /// trend minus the accumulated steps).
  [[nodiscard]] std::optional<double> predict_offset_s(core::TimePoint t) const;

  // --- Telemetry ---
  [[nodiscard]] const std::vector<OffsetRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t deferrals() const { return deferrals_; }
  [[nodiscard]] std::size_t resets() const { return resets_; }
  [[nodiscard]] std::size_t rounds() const { return rounds_; }
  [[nodiscard]] const MntpParams& params() const { return params_; }

  /// Runtime parameter adjustment (self-tuning, the paper's future work):
  /// changes take effect at the next wait computation.
  void set_regular_wait_time(core::Duration wait) {
    params_.regular_wait_time = wait;
  }
  void set_warmup_wait_time(core::Duration wait) {
    params_.warmup_wait_time = wait;
  }

  /// Accepted measured offsets in ms (for RMSE/summary computations).
  [[nodiscard]] std::vector<double> accepted_offsets_ms() const;
  /// Residuals-vs-trend of accepted offsets in ms ("clock corrected
  /// drift" series of Fig 12).
  [[nodiscard]] std::vector<double> corrected_offsets_ms() const;
  /// Offsets the filter rejected, in ms.
  [[nodiscard]] std::vector<double> rejected_offsets_ms() const;

 private:
  void restart(core::TimePoint t);
  void enter_regular();

  // Telemetry handles, resolved once at construction from the ambient
  // obs::Telemetry::global() so the hot path stays a pointer increment.
  // The engine stays simulation-free: obs depends only on core.
  obs::Telemetry* telemetry_ = nullptr;
  obs::ShardedCounter* outcome_counters_[4] = {};  // indexed by SampleOutcome
  obs::ShardedCounter* rounds_counter_ = nullptr;
  obs::ShardedCounter* deferrals_counter_ = nullptr;
  obs::ShardedCounter* resets_counter_ = nullptr;
  // Timeline probes (obs/timeseries.h): inert unless the recorder is
  // capturing at construction. Unregister with the engine, so a bench
  // running several experiments in sequence gets one series per engine.
  obs::ProbeHandle offset_probe_;
  obs::ProbeHandle drift_probe_;
  obs::ProbeHandle deferral_probe_;
  std::optional<double> last_accepted_offset_s_;

  MntpParams params_;
  Phase phase_ = Phase::kWarmup;
  core::TimePoint cycle_start_;
  DriftFilter filter_;
  /// Reused by the per-round false-ticker vote so steady-state rounds
  /// don't allocate a survivors vector.
  std::vector<std::size_t> survivors_scratch_;
  double cum_step_s_ = 0.0;
  double cum_freq_s_ = 0.0;        // integrated frequency compensation
  double comp_ppm_ = 0.0;          // active compensation
  core::TimePoint comp_since_;     // last integration point
  bool comp_active_ = false;

  /// Total applied correction (steps + integrated compensation) at t.
  [[nodiscard]] double applied_correction_s(core::TimePoint t) const;
  std::vector<OffsetRecord> records_;
  std::size_t deferrals_ = 0;
  std::size_t resets_ = 0;
  std::size_t rounds_ = 0;
  std::size_t accepted_in_cycle_ = 0;
};

}  // namespace mntp::protocol
