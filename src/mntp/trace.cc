#include "mntp/trace.h"

#include <charconv>
#include <sstream>

#include "core/format.h"

namespace mntp::protocol {

std::string Trace::to_csv() const {
  std::ostringstream out;
  out << "t_s,rssi_dbm,noise_dbm,offsets_s...\n";
  for (const TraceRecord& r : records) {
    out << core::strformat("%.6f,%.2f,%.2f", r.t_s, r.rssi_dbm, r.noise_dbm);
    for (double o : r.offsets_s) {
      out << core::strformat(",%.9f", o);
    }
    out << '\n';
  }
  return out.str();
}

namespace {

core::Result<double> parse_double(const std::string& field) {
  double v = 0.0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    return core::Error::io("bad numeric field: '" + field + "'");
  }
  return v;
}

}  // namespace

core::Result<Trace> Trace::from_csv(const std::string& csv) {
  Trace trace;
  std::istringstream in(csv);
  std::string line;
  bool first = true;
  double last_t = -1.0;
  while (std::getline(in, line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    std::vector<double> values;
    while (std::getline(row, field, ',')) {
      auto v = parse_double(field);
      if (!v.ok()) return v.error();
      values.push_back(v.value());
    }
    if (values.size() < 3) {
      return core::Error::io("trace row needs t,rssi,noise at minimum");
    }
    TraceRecord r;
    r.t_s = values[0];
    r.rssi_dbm = values[1];
    r.noise_dbm = values[2];
    r.offsets_s.assign(values.begin() + 3, values.end());
    if (r.t_s <= last_t) {
      return core::Error::io("trace timestamps must be strictly increasing");
    }
    last_t = r.t_s;
    trace.records.push_back(std::move(r));
  }
  return trace;
}

}  // namespace mntp::protocol
