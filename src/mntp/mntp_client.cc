#include "mntp/mntp_client.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "obs/metric_names.h"
#include "obs/query_trace.h"

namespace mntp::protocol {

MntpClient::MntpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
                       ntp::ServerPool& pool, net::WirelessChannel& channel,
                       MntpParams params, core::Rng rng,
                       ntp::QueryOptions query_options)
    : sim_(sim),
      clock_(clock),
      pool_(pool),
      channel_(channel),
      params_(params),
      rng_(std::move(rng)),
      query_options_(query_options),
      query_engine_(sim, clock) {
  obs::MetricsRegistry& m = sim_.telemetry().metrics();
  requests_counter_ = m.counter(obs::metric_names::kMntpClientRequests);
  forced_counter_ = m.counter(obs::metric_names::kMntpClientForcedEmissions);
  clock_steps_counter_ = m.counter(obs::metric_names::kMntpClientClockSteps);
  gate_probe_ = sim_.telemetry().timeseries().probe(
      obs::metric_names::kTsMntpGateState, {},
      [this](core::TimePoint) -> std::optional<double> {
        if (hint_log_.empty()) return std::nullopt;
        const HintRecord& h = hint_log_.back();
        if (!h.emitted) return 0.0;
        return h.favorable ? 1.0 : 2.0;
      });
}

void MntpClient::start() {
  running_ = true;
  last_emission_ = sim_.now();
  engine_ = std::make_unique<MntpEngine>(params_, sim_.now());
  pending_ = sim_.after(core::Duration::zero(), [this] { attempt(); });
}

void MntpClient::stop() {
  running_ = false;
  pending_.cancel();
}

void MntpClient::attempt() {
  if (!running_) return;
  // Acquire offset only when channel is stable (Algorithm 1 steps 5/17).
  const net::WirelessHints hints = channel_.observe_hints(sim_.now());
  const bool favorable = engine_->gate(hints);
  // Perpetually-unstable-channel fallback: after max_deferral without an
  // emission, proceed regardless and let the filter judge the sample.
  const auto& params = engine_->params();
  const bool forced =
      !favorable && params.max_deferral > core::Duration::zero() &&
      sim_.now() - last_emission_ > params.max_deferral;
  hint_log_.push_back(HintRecord{
      .hints = hints, .favorable = favorable, .emitted = favorable || forced});
  obs::QueryTracer& qt = sim_.telemetry().query_tracer();
  if (!favorable && !forced) {
    // Deferral: the opportunity is a complete (one-decision) query of
    // its own — mint, record the gate readings, let the engine attach
    // its deferral bookkeeping, and close with the defer verdict.
    if (qt.enabled()) {
      const obs::QueryId id = qt.begin(sim_.now(), "round");
      qt.stage(id, sim_.now(), "gate", obs::Reason::kChannelDefer,
               {{"rssi_dbm", hints.rssi.value()},
                {"noise_dbm", hints.noise.value()},
                {"snr_margin_db", hints.snr_margin().value()}});
      obs::ActiveQueryScope scope(qt, id);
      engine_->note_deferral(sim_.now());
      qt.finish(id, sim_.now(), obs::Reason::kChannelDefer,
                {{"phase", std::string(to_string(engine_->phase()))}});
    } else {
      engine_->note_deferral(sim_.now());
    }
    pending_ = sim_.after(params.hint_recheck_interval, [this] { attempt(); });
    return;
  }
  if (qt.enabled()) {
    round_trace_ = qt.begin(sim_.now(), "round");
    qt.stage(round_trace_, sim_.now(), "gate",
             forced ? obs::Reason::kForcedEmission : obs::Reason::kOk,
             {{"rssi_dbm", hints.rssi.value()},
              {"noise_dbm", hints.noise.value()},
              {"snr_margin_db", hints.snr_margin().value()}});
  }
  if (forced) {
    ++forced_emissions_;
    forced_counter_->inc();
    if (sim_.telemetry().tracing()) {
      sim_.telemetry().event(
          sim_.now(), obs::categories::kMntp, "forced_emission",
          {{"rssi_dbm", hints.rssi.value()}, {"noise_dbm", hints.noise.value()}});
    }
  }
  last_emission_ = sim_.now();
  run_round();
}

void MntpClient::run_round() {
  // Pick distinct pool members: getOffsetUsingMultipleSources() in warm-up
  // (the paper queries 0/1/3.pool.ntp.org in parallel), a single source in
  // the regular phase.
  const std::size_t want =
      std::min(engine_->sources_to_query(), pool_.size());
  std::vector<std::size_t> chosen;
  while (chosen.size() < want) {
    const std::size_t idx = pool_.pick_index();
    if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end()) {
      chosen.push_back(idx);
    }
  }

  auto offsets = std::make_shared<std::vector<double>>();
  auto outstanding = std::make_shared<std::size_t>(chosen.size());
  // Exchanges minted inside query() parent themselves on the ambient
  // query at call time — install the round so the per-server traces
  // link back to it.
  obs::ActiveQueryScope scope(sim_.telemetry().query_tracer(), round_trace_);
  for (const std::size_t idx : chosen) {
    ++requests_sent_;
    requests_counter_->inc();
    const ntp::ServerEndpoint ep =
        pool_.endpoint(idx, &channel_.uplink(), &channel_.downlink());
    query_engine_.query(
        ep, query_options_,
        [this, offsets, outstanding](core::Result<ntp::SntpSample> result) {
          if (result.ok()) {
            offsets->push_back(result.value().offset.to_seconds());
          } else {
            ++query_failures_;
          }
          if (--*outstanding == 0) finish_round(std::move(*offsets));
        });
  }
}

void MntpClient::finish_round(std::vector<double> offsets_s) {
  if (!running_) return;
  const core::TimePoint now = sim_.now();
  obs::QueryTracer& qt = sim_.telemetry().query_tracer();
  const obs::QueryId round_id = round_trace_;
  round_trace_ = 0;
  // The decision phase for the verdict: on_round may advance the phase
  // (warm-up completion) before returning, so read it afterwards via
  // rr.warmup_completed.
  MntpEngine::RoundResult rr;
  {
    // Install the round so the engine's vote/filter stages attach to it
    // (the engine then leaves the verdict to us — see on_round).
    obs::ActiveQueryScope scope(qt, round_id);
    rr = engine_->on_round(now, offsets_s);
  }

  if (rr.accepted && params_.apply_corrections_to_clock &&
      engine_->phase() == Phase::kRegular) {
    // correctSystemClock(offset): step by the measured offset.
    clock_.step(core::Duration::from_seconds(rr.offset_s));
    engine_->note_clock_step(rr.offset_s);
    clock_steps_counter_->inc();
    if (sim_.telemetry().tracing()) {
      sim_.telemetry().event(now, obs::categories::kMntp, "clock_step",
                             {{"step_ms", rr.offset_s * 1e3}});
    }
    qt.stage(round_id, now, "clock_step", obs::Reason::kNone,
             {{"step_ms", rr.offset_s * 1e3}});
  }
  if (round_id != 0) {
    const Phase decision_phase =
        rr.warmup_completed ? Phase::kWarmup : engine_->phase();
    qt.finish(round_id, now,
              offsets_s.empty() ? obs::Reason::kNoSamples
                                : to_reason(rr.outcome),
              {{"phase", std::string(to_string(decision_phase))},
               {"offset_ms", rr.offset_s * 1e3},
               {"residual_ms", rr.corrected_s * 1e3},
               {"sources", static_cast<std::int64_t>(offsets_s.size())}});
  }
  if (rr.warmup_completed && params_.correct_drift &&
      params_.apply_corrections_to_clock) {
    // correctSystemClockDrift(driftEst): trim the clock frequency by the
    // estimated drift (positive drift = client losing time = speed up).
    if (const auto drift = engine_->drift_s_per_s()) {
      const double comp_ppm =
          clock_.frequency_compensation_ppm() + *drift * 1e6;
      clock_.set_frequency_compensation(now, comp_ppm);
      engine_->note_frequency_compensation(now, comp_ppm);
    }
  }
  pending_ = sim_.after(engine_->next_wait(), [this] { attempt(); });
}

}  // namespace mntp::protocol
