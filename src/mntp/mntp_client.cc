#include "mntp/mntp_client.h"

#include <algorithm>

#include "obs/metric_names.h"

namespace mntp::protocol {

MntpClient::MntpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
                       ntp::ServerPool& pool, net::WirelessChannel& channel,
                       MntpParams params, core::Rng rng,
                       ntp::QueryOptions query_options)
    : sim_(sim),
      clock_(clock),
      pool_(pool),
      channel_(channel),
      params_(params),
      rng_(std::move(rng)),
      query_options_(query_options),
      query_engine_(sim, clock) {
  obs::MetricsRegistry& m = sim_.telemetry().metrics();
  requests_counter_ = m.counter(obs::metric_names::kMntpClientRequests);
  forced_counter_ = m.counter(obs::metric_names::kMntpClientForcedEmissions);
  clock_steps_counter_ = m.counter(obs::metric_names::kMntpClientClockSteps);
}

void MntpClient::start() {
  running_ = true;
  last_emission_ = sim_.now();
  engine_ = std::make_unique<MntpEngine>(params_, sim_.now());
  pending_ = sim_.after(core::Duration::zero(), [this] { attempt(); });
}

void MntpClient::stop() {
  running_ = false;
  pending_.cancel();
}

void MntpClient::attempt() {
  if (!running_) return;
  // Acquire offset only when channel is stable (Algorithm 1 steps 5/17).
  const net::WirelessHints hints = channel_.observe_hints(sim_.now());
  const bool favorable = engine_->gate(hints);
  // Perpetually-unstable-channel fallback: after max_deferral without an
  // emission, proceed regardless and let the filter judge the sample.
  const auto& params = engine_->params();
  const bool forced =
      !favorable && params.max_deferral > core::Duration::zero() &&
      sim_.now() - last_emission_ > params.max_deferral;
  hint_log_.push_back(HintRecord{
      .hints = hints, .favorable = favorable, .emitted = favorable || forced});
  if (!favorable && !forced) {
    engine_->note_deferral(sim_.now());
    pending_ = sim_.after(params.hint_recheck_interval, [this] { attempt(); });
    return;
  }
  if (forced) {
    ++forced_emissions_;
    forced_counter_->inc();
    if (sim_.telemetry().tracing()) {
      sim_.telemetry().event(
          sim_.now(), obs::categories::kMntp, "forced_emission",
          {{"rssi_dbm", hints.rssi.value()}, {"noise_dbm", hints.noise.value()}});
    }
  }
  last_emission_ = sim_.now();
  run_round();
}

void MntpClient::run_round() {
  // Pick distinct pool members: getOffsetUsingMultipleSources() in warm-up
  // (the paper queries 0/1/3.pool.ntp.org in parallel), a single source in
  // the regular phase.
  const std::size_t want =
      std::min(engine_->sources_to_query(), pool_.size());
  std::vector<std::size_t> chosen;
  while (chosen.size() < want) {
    const std::size_t idx = pool_.pick_index();
    if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end()) {
      chosen.push_back(idx);
    }
  }

  auto offsets = std::make_shared<std::vector<double>>();
  auto outstanding = std::make_shared<std::size_t>(chosen.size());
  for (const std::size_t idx : chosen) {
    ++requests_sent_;
    requests_counter_->inc();
    const ntp::ServerEndpoint ep =
        pool_.endpoint(idx, &channel_.uplink(), &channel_.downlink());
    query_engine_.query(
        ep, query_options_,
        [this, offsets, outstanding](core::Result<ntp::SntpSample> result) {
          if (result.ok()) {
            offsets->push_back(result.value().offset.to_seconds());
          } else {
            ++query_failures_;
          }
          if (--*outstanding == 0) finish_round(std::move(*offsets));
        });
  }
}

void MntpClient::finish_round(std::vector<double> offsets_s) {
  if (!running_) return;
  const core::TimePoint now = sim_.now();
  const MntpEngine::RoundResult rr = engine_->on_round(now, offsets_s);

  if (rr.accepted && params_.apply_corrections_to_clock &&
      engine_->phase() == Phase::kRegular) {
    // correctSystemClock(offset): step by the measured offset.
    clock_.step(core::Duration::from_seconds(rr.offset_s));
    engine_->note_clock_step(rr.offset_s);
    clock_steps_counter_->inc();
    if (sim_.telemetry().tracing()) {
      sim_.telemetry().event(now, obs::categories::kMntp, "clock_step",
                             {{"step_ms", rr.offset_s * 1e3}});
    }
  }
  if (rr.warmup_completed && params_.correct_drift &&
      params_.apply_corrections_to_clock) {
    // correctSystemClockDrift(driftEst): trim the clock frequency by the
    // estimated drift (positive drift = client losing time = speed up).
    if (const auto drift = engine_->drift_s_per_s()) {
      const double comp_ppm =
          clock_.frequency_compensation_ppm() + *drift * 1e6;
      clock_.set_frequency_compensation(now, comp_ppm);
      engine_->note_frequency_compensation(now, comp_ppm);
    }
  }
  pending_ = sim_.after(engine_->next_wait(), [this] { attempt(); });
}

}  // namespace mntp::protocol
