// MNTP protocol parameters (paper §4, Algorithm 1 inputs, and the
// baseline wireless-hint thresholds of §4.2).
#pragma once

#include <cstddef>

#include "core/time.h"
#include "core/units.h"
#include "net/hints.h"

namespace mntp::protocol {

/// Baseline thresholds for the wireless hints. The paper: "RSSI value
/// should be greater than -75 dB, noise level should be lesser than
/// -70 dB and the SNR margin should be greater than or equal to 20 dB."
struct HintThresholds {
  core::Dbm min_rssi{-75.0};
  core::Dbm max_noise{-70.0};
  core::Decibels min_snr_margin{20.0};

  /// True when a hint reading satisfies all three conditions — the
  /// favorableSNRCondition() of Algorithm 1.
  [[nodiscard]] bool favorable(const net::WirelessHints& h) const {
    return h.rssi > min_rssi && h.noise < max_noise &&
           h.snr_margin() >= min_snr_margin;
  }
};

/// The four user-tunable inputs of Algorithm 1 plus implementation knobs.
struct MntpParams {
  // --- Algorithm 1 inputs ---
  /// Time spent estimating clock offsets before the regular phase.
  core::Duration warmup_period = core::Duration::minutes(30);
  /// Interval between acquisitions during warm-up.
  core::Duration warmup_wait_time = core::Duration::seconds(15);
  /// Interval between acquisitions during the regular phase.
  core::Duration regular_wait_time = core::Duration::minutes(15);
  /// Duration of warm-up plus regular periods; afterwards the algorithm
  /// restarts from warm-up (goto Step 1).
  core::Duration reset_period = core::Duration::hours(4);

  HintThresholds thresholds;

  // --- Implementation knobs ---
  /// Reference clocks queried in parallel during warm-up (the paper uses
  /// 0/1/3.pool.ntp.org — three sources).
  std::size_t warmup_sources = 3;
  /// Minimum accepted warm-up samples before a drift trend is fitted
  /// (the paper records 10).
  std::size_t min_warmup_samples = 10;
  /// How often the channel is re-checked while unfavorable (a deferral
  /// does not emit any request).
  core::Duration hint_recheck_interval = core::Duration::seconds(1);
  /// Perpetually-unstable-channel fallback (the paper defers this case to
  /// future work): when the gate has been closed for longer than this
  /// since the last emission, emit anyway and let the trend filter judge
  /// the degraded sample. Zero disables the fallback (paper behaviour:
  /// wait indefinitely).
  core::Duration max_deferral = core::Duration::zero();
  /// Re-estimate the drift trend with every accepted sample (the §5.3
  /// refinement). Disabling reproduces the "filter rejects everything"
  /// failure mode the tuner uncovered — kept as an ablation switch.
  bool reestimate_drift_each_sample = true;
  /// Drift-filter rejection-starvation escape hatch: after this many
  /// consecutive gate rejections the next sample is admitted so the
  /// trend can re-converge (0 = disabled, the paper behaviour — rely on
  /// reset_period to re-learn a broken trend). See DriftFilterConfig.
  std::size_t filter_max_consecutive_rejections = 0;
  /// Apply accepted offsets to the system clock (vendor-specific in the
  /// paper; benches that only compare reported offsets leave this off).
  bool apply_corrections_to_clock = false;
  /// Compensate the clock frequency by the estimated drift when entering
  /// the regular phase (correctSystemClockDrift of Algorithm 1).
  bool correct_drift = true;
};

/// Head-to-head configuration used by the §5.1 baseline experiments:
/// "we do not consider warmup and regular periods, and we switched off
/// the drift correction feature" — a fixed 5-second cadence with gating
/// and filtering active.
[[nodiscard]] inline MntpParams head_to_head_params() {
  MntpParams p;
  p.warmup_period = core::Duration::zero();  // skip straight to regular
  p.warmup_wait_time = core::Duration::seconds(5);
  p.regular_wait_time = core::Duration::seconds(5);
  p.reset_period = core::Duration::hours(24 * 365);  // effectively never
  p.warmup_sources = 1;
  // The paper still records 10 offsets to create the trend line before
  // the filter starts judging, even in the head-to-head runs.
  p.min_warmup_samples = 10;
  // With reset_period effectively never, the escape hatch is the only
  // recovery path when a noisy 10-sample bootstrap mis-pins the slope
  // (10 points over 50 s leave ~100 ppm of slope noise; one deferral
  // gap later the prediction can sit outside the gate forever).
  p.filter_max_consecutive_rejections = 8;
  p.correct_drift = false;
  p.apply_corrections_to_clock = false;
  return p;
}

}  // namespace mntp::protocol
