// Self-tuning of MNTP parameters (paper §7 future work: "we also plan to
// investigate self-tuning of parameter settings ... and to evaluate the
// trade-offs between MNTP's performance and the tuning of its
// parameters").
//
// The controller closes a simple loop over the live engine's telemetry:
// every adaptation interval it looks at the recent filter rejection rate.
// Many rejections mean the trend is stale or the channel is rough —
// sample more often (shorten the regular wait) so the trend stays fresh.
// A long clean streak means the clock model is stable — back off (lengthen
// the wait) and save requests/energy. The wait is clamped to a configured
// band, mirroring the accuracy/request-budget trade-off the offline tuner
// (tuner.h) explores exhaustively.
#pragma once

#include <cstddef>

#include "core/time.h"
#include "mntp/mntp_client.h"
#include "sim/simulation.h"

namespace mntp::protocol {

struct SelfTunerParams {
  core::Duration adapt_interval = core::Duration::minutes(10);
  core::Duration min_regular_wait = core::Duration::seconds(15);
  core::Duration max_regular_wait = core::Duration::minutes(30);
  /// Recent rejection rate above which sampling speeds up.
  double reject_rate_high = 0.25;
  /// Recent rejection rate below which sampling backs off (requires at
  /// least `min_observations` recent rounds).
  double reject_rate_low = 0.05;
  std::size_t min_observations = 4;
  /// Multiplicative wait adjustment per decision.
  double step_factor = 1.6;
};

class SelfTuner {
 public:
  SelfTuner(sim::Simulation& sim, MntpClient& client, SelfTunerParams params);

  /// Begin adapting; call after the client has started.
  void start();
  void stop();

  [[nodiscard]] std::size_t speedups() const { return speedups_; }
  [[nodiscard]] std::size_t backoffs() const { return backoffs_; }
  /// The regular wait currently in force.
  [[nodiscard]] core::Duration current_wait() const;

 private:
  void adapt();

  sim::Simulation& sim_;
  MntpClient& client_;
  SelfTunerParams params_;
  sim::PeriodicProcess process_;
  std::size_t seen_records_ = 0;
  std::size_t speedups_ = 0;
  std::size_t backoffs_ = 0;
};

}  // namespace mntp::protocol
