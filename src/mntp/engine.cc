#include "mntp/engine.h"

#include <cstdint>
#include <string>

#include "obs/metric_names.h"
#include "obs/profiler.h"

namespace mntp::protocol {

namespace {

DriftFilterConfig filter_config(const MntpParams& p) {
  return DriftFilterConfig{
      .bootstrap_samples = p.min_warmup_samples,
      .reestimate_each_sample = p.reestimate_drift_each_sample,
      .max_samples = 0,
      .max_consecutive_rejections = p.filter_max_consecutive_rejections,
  };
}

}  // namespace

const char* to_string(SampleOutcome outcome) {
  switch (outcome) {
    case SampleOutcome::kAcceptedWarmup: return "accepted_warmup";
    case SampleOutcome::kAcceptedRegular: return "accepted_regular";
    case SampleOutcome::kRejectedFalseTicker: return "rejected_false_ticker";
    case SampleOutcome::kRejectedFilter: return "rejected_filter";
  }
  return "unknown";
}

const char* to_string(Phase phase) {
  return phase == Phase::kWarmup ? "warmup" : "regular";
}

obs::Reason to_reason(SampleOutcome outcome) {
  switch (outcome) {
    case SampleOutcome::kAcceptedWarmup:
      return obs::Reason::kAcceptedWarmup;
    case SampleOutcome::kAcceptedRegular:
      return obs::Reason::kAcceptedRegular;
    case SampleOutcome::kRejectedFalseTicker:
      return obs::Reason::kFalseTicker;
    case SampleOutcome::kRejectedFilter:
      return obs::Reason::kTrendOutlier;
  }
  return obs::Reason::kNone;
}

MntpEngine::MntpEngine(MntpParams params, core::TimePoint start)
    : telemetry_(&obs::Telemetry::global()),
      params_(params),
      cycle_start_(start),
      filter_(filter_config(params)) {
  obs::MetricsRegistry& m = telemetry_->metrics();
  for (const SampleOutcome outcome :
       {SampleOutcome::kAcceptedWarmup, SampleOutcome::kAcceptedRegular,
        SampleOutcome::kRejectedFalseTicker, SampleOutcome::kRejectedFilter}) {
    // Sharded: every engine (one per replicate/tuner worker) increments
    // these from its own thread on the round hot path.
    outcome_counters_[static_cast<std::size_t>(outcome)] =
        m.sharded_counter(obs::metric_names::kMntpSample,
                          obs::Labels{{"outcome", to_string(outcome)}});
  }
  rounds_counter_ = m.sharded_counter(obs::metric_names::kMntpRounds);
  deferrals_counter_ = m.sharded_counter(obs::metric_names::kMntpDeferrals);
  resets_counter_ = m.sharded_counter(obs::metric_names::kMntpResets);
  obs::TimeSeriesRecorder& ts = telemetry_->timeseries();
  offset_probe_ = ts.probe(obs::metric_names::kTsMntpOffsetMs, {},
                           [this](core::TimePoint) -> std::optional<double> {
                             if (!last_accepted_offset_s_) return std::nullopt;
                             return *last_accepted_offset_s_ * 1e3;
                           });
  drift_probe_ = ts.probe(obs::metric_names::kTsMntpDriftPpm, {},
                          [this](core::TimePoint) -> std::optional<double> {
                            const std::optional<double> d = drift_s_per_s();
                            if (!d) return std::nullopt;
                            return *d * 1e6;
                          });
  deferral_probe_ =
      ts.counter_probe(obs::metric_names::kTsMntpDeferrals, {},
                       deferrals_counter_);
  if (params_.warmup_period == core::Duration::zero()) {
    // Head-to-head mode: no distinct warm-up; the filter still
    // bootstraps its first min_warmup_samples unconditionally.
    phase_ = Phase::kRegular;
  }
}

void MntpEngine::note_deferral(core::TimePoint t) {
  ++deferrals_;
  deferrals_counter_->inc();
  if (telemetry_->tracing()) {
    telemetry_->event(t, obs::categories::kMntp, "deferral",
                      {{"phase", std::string(to_string(phase_))}});
  }
  // Drivers that own a round trace (MntpClient) record the gate detail
  // and the verdict themselves — they install the round as ambient
  // before calling us. With no ambient (tuner emulate, direct engine
  // drivers), mint a one-stage round so deferral causes still land in
  // the per-query store and the causation table stays complete.
  obs::QueryTracer& qt = telemetry_->query_tracer();
  if (qt.enabled() && obs::ambient_query().id == 0) {
    const obs::QueryId id = qt.begin(t, "round");
    qt.finish(id, t, obs::Reason::kChannelDefer,
              {{"phase", std::string(to_string(phase_))}});
  }
}

std::size_t MntpEngine::sources_to_query() const {
  return phase_ == Phase::kWarmup ? params_.warmup_sources : 1;
}

core::Duration MntpEngine::next_wait() const {
  return phase_ == Phase::kWarmup ? params_.warmup_wait_time
                                  : params_.regular_wait_time;
}

void MntpEngine::restart(core::TimePoint t) {
  ++resets_;
  resets_counter_->inc();
  if (telemetry_->tracing()) {
    telemetry_->event(t, obs::categories::kMntp, "reset", {});
  }
  cycle_start_ = t;
  filter_.reset();
  accepted_in_cycle_ = 0;
  phase_ = params_.warmup_period == core::Duration::zero() ? Phase::kRegular
                                                           : Phase::kWarmup;
}

void MntpEngine::enter_regular() {
  filter_.prune_and_refit();
  phase_ = Phase::kRegular;
}

void MntpEngine::note_clock_step(double step_s) { cum_step_s_ += step_s; }

void MntpEngine::note_frequency_compensation(core::TimePoint t, double ppm) {
  if (comp_active_ && t > comp_since_) {
    cum_freq_s_ += comp_ppm_ * 1e-6 * (t - comp_since_).to_seconds();
  }
  comp_ppm_ = ppm;
  comp_since_ = t;
  comp_active_ = true;
}

double MntpEngine::applied_correction_s(core::TimePoint t) const {
  double total = cum_step_s_ + cum_freq_s_;
  if (comp_active_ && t > comp_since_) {
    total += comp_ppm_ * 1e-6 * (t - comp_since_).to_seconds();
  }
  return total;
}

std::optional<double> MntpEngine::predict_offset_s(core::TimePoint t) const {
  const auto p = filter_.predict_s(t);
  if (!p) return std::nullopt;
  return *p - applied_correction_s(t);
}

MntpEngine::RoundResult MntpEngine::on_round(
    core::TimePoint t, const std::vector<double>& offsets_s) {
  obs::ProfileScope profile(obs::spans::kEngineRound, t);
  ++rounds_;
  rounds_counter_->inc();
  RoundResult rr;

  // Query-trace ownership: a driver that minted a round trace (the
  // MntpClient) installs it as ambient and emits the verdict itself;
  // with no ambient and tracing on (tuner emulate, direct engine
  // drivers) mint our own round here so the vote/filter decision stages
  // still attach to a query and every round gets a verdict.
  obs::QueryTracer& qt = telemetry_->query_tracer();
  obs::QueryId round_id = obs::ambient_query().id;
  const bool owned = round_id == 0 && qt.enabled();
  if (owned) round_id = qt.begin(t, "round");
  std::optional<obs::ActiveQueryScope> trace_scope;
  if (owned) trace_scope.emplace(qt, round_id);

  // Reset period elapsed: goto Step 1 (Algorithm 1 steps 23-24).
  if (t - cycle_start_ >= params_.reset_period) {
    restart(t);
    rr.reset_occurred = true;
    if (round_id != 0) qt.stage(round_id, t, "reset", obs::Reason::kNone);
  }

  // The phase the sample is judged under; the warm-up completion check
  // below can advance phase_ before the verdict is emitted.
  const Phase decision_phase = phase_;
  if (!offsets_s.empty()) {
    // Multi-source false-ticker vote (warm-up; a single source passes
    // through untouched). The survivor buffer is reused round to round.
    reject_false_tickers(offsets_s, survivors_scratch_, t);
    const auto& survivors = survivors_scratch_;
    const bool any_rejected = survivors.size() != offsets_s.size();
    const double measured = combine_surviving_offsets(offsets_s, survivors);
    // Uncorrected domain: add back the corrections the driver applied so
    // the trend stays a single line across clock steps/frequency trims.
    const double uncorrected = measured + applied_correction_s(t);

    const FilterDecision fd = filter_.offer(t, uncorrected);
    rr.offset_s = measured;
    // Residual against the trend when one exists; raw measured offset
    // otherwise. `has_prediction`, not `predicted_s != 0.0` — a trend
    // crossing zero predicts exactly 0.0 and its residual is still the
    // right corrected value.
    rr.corrected_s = fd.accepted || fd.has_prediction
                         ? fd.residual_s
                         : measured;
    if (fd.accepted) {
      rr.accepted = true;
      ++accepted_in_cycle_;
      last_accepted_offset_s_ = measured;
      rr.outcome = phase_ == Phase::kWarmup ? SampleOutcome::kAcceptedWarmup
                                            : SampleOutcome::kAcceptedRegular;
    } else {
      rr.outcome = SampleOutcome::kRejectedFilter;
    }
    // A round whose every member was voted out never reaches the filter
    // in the paper's description; we surface the vote in telemetry when
    // it bit but the combined offset was still rejected downstream.
    if (any_rejected && !fd.accepted) {
      rr.outcome = SampleOutcome::kRejectedFalseTicker;
    }
    records_.push_back(OffsetRecord{.t = t,
                                    .offset_s = measured,
                                    .corrected_s = rr.corrected_s,
                                    .outcome = rr.outcome,
                                    .phase = phase_,
                                    .bootstrap = fd.bootstrap});
    outcome_counters_[static_cast<std::size_t>(rr.outcome)]->inc();
    if (telemetry_->tracing()) {
      telemetry_->event(t, obs::categories::kMntp, "round",
                        {{"outcome", std::string(to_string(rr.outcome))},
                         {"phase", std::string(to_string(phase_))},
                         {"offset_ms", measured * 1e3},
                         {"residual_ms", rr.corrected_s * 1e3},
                         {"sources", static_cast<std::int64_t>(offsets_s.size())}});
    }
  }

  // Warm-up completion check (Algorithm 1 steps 11-13): period elapsed
  // and enough recorded offsets for a trend.
  if (phase_ == Phase::kWarmup &&
      t - cycle_start_ >= params_.warmup_period &&
      filter_.accepted_count() >= params_.min_warmup_samples) {
    enter_regular();
    rr.warmup_completed = true;
    if (telemetry_->tracing()) {
      telemetry_->event(
          t, obs::categories::kMntp, "phase_transition",
          {{"from", std::string("warmup")}, {"to", std::string("regular")}});
    }
    if (round_id != 0) {
      qt.stage(round_id, t, "phase_transition", obs::Reason::kNone);
    }
  }
  if (owned) {
    qt.finish(round_id, t,
              offsets_s.empty() ? obs::Reason::kNoSamples
                                : to_reason(rr.outcome),
              {{"phase", std::string(to_string(decision_phase))},
               {"offset_ms", rr.offset_s * 1e3},
               {"residual_ms", rr.corrected_s * 1e3},
               {"sources", static_cast<std::int64_t>(offsets_s.size())}});
  }
  return rr;
}

std::vector<double> MntpEngine::accepted_offsets_ms() const {
  std::vector<double> out;
  for (const OffsetRecord& r : records_) {
    if (r.outcome == SampleOutcome::kAcceptedWarmup ||
        r.outcome == SampleOutcome::kAcceptedRegular) {
      out.push_back(r.offset_s * 1e3);
    }
  }
  return out;
}

std::vector<double> MntpEngine::corrected_offsets_ms() const {
  std::vector<double> out;
  for (const OffsetRecord& r : records_) {
    // Bootstrap acceptances have no meaningful trend residual yet.
    if (r.bootstrap) continue;
    if (r.outcome == SampleOutcome::kAcceptedWarmup ||
        r.outcome == SampleOutcome::kAcceptedRegular) {
      out.push_back(r.corrected_s * 1e3);
    }
  }
  return out;
}

std::vector<double> MntpEngine::rejected_offsets_ms() const {
  std::vector<double> out;
  for (const OffsetRecord& r : records_) {
    if (r.outcome == SampleOutcome::kRejectedFilter ||
        r.outcome == SampleOutcome::kRejectedFalseTicker) {
      out.push_back(r.offset_s * 1e3);
    }
  }
  return out;
}

}  // namespace mntp::protocol
