#include "mntp/false_ticker.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/query_trace.h"

namespace mntp::protocol {

std::vector<std::size_t> reject_false_tickers(std::span<const double> offsets_s,
                                              core::TimePoint now) {
  std::vector<std::size_t> survivors;
  reject_false_tickers(offsets_s, survivors, now);
  return survivors;
}

void reject_false_tickers(std::span<const double> offsets_s,
                          std::vector<std::size_t>& survivors,
                          core::TimePoint now) {
  survivors.clear();
  const std::size_t n = offsets_s.size();
  survivors.reserve(n);
  if (n < 3) {
    for (std::size_t i = 0; i < n; ++i) survivors.push_back(i);
    return;
  }
  double mean = 0.0;
  for (double o : offsets_s) mean += o;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double o : offsets_s) var += (o - mean) * (o - mean);
  var /= static_cast<double>(n);
  const double sd = std::sqrt(var);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(offsets_s[i] - mean) <= sd) survivors.push_back(i);
  }
  // Degenerate geometry (e.g. two tight clusters) can reject everything;
  // fall back to keeping all rather than stalling the warm-up.
  const bool degenerate = survivors.empty();
  if (degenerate) {
    survivors.clear();
    for (std::size_t i = 0; i < n; ++i) survivors.push_back(i);
  }
  if (auto q = mntp::obs::ambient_query(); q.tracer) {
    const std::size_t rejected = degenerate ? 0 : n - survivors.size();
    std::string voted_out;
    for (std::size_t i = 0, s = 0; i < n; ++i) {
      if (!degenerate && (s >= survivors.size() || survivors[s] != i)) {
        if (!voted_out.empty()) voted_out += ',';
        voted_out += std::to_string(i);
      } else if (s < survivors.size() && survivors[s] == i) {
        ++s;
      }
    }
    q.tracer->stage(q.id, now, "false_ticker",
                    rejected > 0 ? mntp::obs::Reason::kFalseTicker
                                 : mntp::obs::Reason::kOk,
                    {{"mean_ms", mean * 1e3},
                     {"sd_ms", sd * 1e3},
                     {"sources", static_cast<std::int64_t>(n)},
                     {"rejected", static_cast<std::int64_t>(rejected)},
                     {"voted_out", voted_out},
                     {"degenerate", degenerate}});
  }
}

double combine_surviving_offsets(std::span<const double> offsets_s,
                                 std::span<const std::size_t> survivors) {
  if (survivors.empty()) {
    throw std::invalid_argument("combine_surviving_offsets: no survivors");
  }
  double acc = 0.0;
  for (std::size_t i : survivors) acc += offsets_s[i];
  return acc / static_cast<double>(survivors.size());
}

}  // namespace mntp::protocol
