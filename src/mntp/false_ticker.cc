#include "mntp/false_ticker.h"

#include <cmath>
#include <stdexcept>

namespace mntp::protocol {

std::vector<std::size_t> reject_false_tickers(std::span<const double> offsets_s) {
  std::vector<std::size_t> survivors;
  const std::size_t n = offsets_s.size();
  survivors.reserve(n);
  if (n < 3) {
    for (std::size_t i = 0; i < n; ++i) survivors.push_back(i);
    return survivors;
  }
  double mean = 0.0;
  for (double o : offsets_s) mean += o;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double o : offsets_s) var += (o - mean) * (o - mean);
  var /= static_cast<double>(n);
  const double sd = std::sqrt(var);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(offsets_s[i] - mean) <= sd) survivors.push_back(i);
  }
  // Degenerate geometry (e.g. two tight clusters) can reject everything;
  // fall back to keeping all rather than stalling the warm-up.
  if (survivors.empty()) {
    for (std::size_t i = 0; i < n; ++i) survivors.push_back(i);
  }
  return survivors;
}

double combine_surviving_offsets(std::span<const double> offsets_s,
                                 std::span<const std::size_t> survivors) {
  if (survivors.empty()) {
    throw std::invalid_argument("combine_surviving_offsets: no survivors");
  }
  double acc = 0.0;
  for (std::size_t i : survivors) acc += offsets_s[i];
  return acc / static_cast<double>(survivors.size());
}

}  // namespace mntp::protocol
