// Offset/hint traces: the data the MNTP tuner operates on.
//
// The tuner's logger records, every five seconds, the wireless hints and
// the SNTP offsets obtained from multiple reference clocks (§5.3). A
// trace is replayable: the emulator re-runs Algorithm 1 over it under
// different parameter settings without touching the network. Traces
// round-trip through a simple CSV format so they can be inspected,
// stored, and fed back in.
#pragma once

#include <string>
#include <vector>

#include "core/result.h"
#include "core/time.h"

namespace mntp::protocol {

/// One acquisition opportunity in a trace.
struct TraceRecord {
  /// Seconds since trace start (true timeline).
  double t_s = 0.0;
  double rssi_dbm = 0.0;
  double noise_dbm = 0.0;
  /// Measured offsets (seconds) from the sources queried at this
  /// opportunity; empty when every query failed.
  std::vector<double> offsets_s;
};

struct Trace {
  std::vector<TraceRecord> records;

  [[nodiscard]] bool empty() const { return records.empty(); }
  [[nodiscard]] std::size_t size() const { return records.size(); }
  /// Trace span in seconds (last record time; 0 for an empty trace).
  [[nodiscard]] double span_s() const {
    return records.empty() ? 0.0 : records.back().t_s;
  }

  /// CSV rendering: header then `t_s,rssi_dbm,noise_dbm,offs0,offs1,...`
  /// with trailing offset columns ragged per record.
  [[nodiscard]] std::string to_csv() const;

  /// Parse a CSV produced by to_csv(). Fails on malformed rows or
  /// non-monotonic timestamps.
  static core::Result<Trace> from_csv(const std::string& csv);
};

}  // namespace mntp::protocol
