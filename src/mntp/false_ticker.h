// Warm-up multi-source false-ticker rejection (paper §4.2).
//
// "We calculate the mean and standard deviation of the offsets and
// classify the time sources whose offsets exceed the mean plus one
// standard deviation as false tickers. We reject the false tickers to
// ensure very tight clock synchronization." — the lightweight cousin of
// NTP's intersection algorithm, applied to the offsets returned by the
// parallel warm-up queries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/time.h"

namespace mntp::protocol {

/// Indices of offsets that survive the mean ± one-standard-deviation
/// gate (applied on the absolute deviation from the mean, so both fast
/// and slow false tickers are caught). With fewer than three offsets
/// there is nothing to vote with and all survive.
///
/// When the calling thread has an ambient traced query (see
/// obs/query_trace.h) and the vote actually ran, the verdict is
/// recorded as a "false_ticker" stage stamped `now`.
[[nodiscard]] std::vector<std::size_t> reject_false_tickers(
    std::span<const double> offsets_s,
    core::TimePoint now = core::TimePoint::epoch());

/// As above, but writes the surviving indices into `survivors` (cleared
/// first). Lets a per-round caller reuse one buffer instead of
/// allocating a fresh vector every vote.
void reject_false_tickers(std::span<const double> offsets_s,
                          std::vector<std::size_t>& survivors,
                          core::TimePoint now = core::TimePoint::epoch());

/// Mean of the surviving offsets — the combined round offset. Requires a
/// non-empty survivor list.
[[nodiscard]] double combine_surviving_offsets(
    std::span<const double> offsets_s, std::span<const std::size_t> survivors);

}  // namespace mntp::protocol
