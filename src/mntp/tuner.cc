#include "mntp/tuner.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>

#include "core/format.h"
#include "core/stats.h"
#include "core/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"

namespace mntp::protocol::tuner {

Logger::Logger(sim::Simulation& sim, sim::DisciplinedClock& clock,
               ntp::ServerPool& pool, net::WirelessChannel& channel,
               LoggerParams params, core::Rng rng)
    : sim_(sim),
      pool_(pool),
      channel_(channel),
      params_(params),
      rng_(std::move(rng)),
      engine_(sim, clock),
      process_(sim, params.interval, [this] { capture_once(); }) {}

Logger::~Logger() { stop(); }

void Logger::start() {
  start_ = sim_.now();
  started_ = true;
  alive_ = std::make_shared<bool>(true);
  process_.start();
}

void Logger::stop() {
  process_.stop();
  // Disarm in-flight query callbacks: they hold the flag (not the
  // logger), so a completion after stop() or destruction is a no-op
  // rather than a write into freed memory.
  if (alive_) *alive_ = false;
  started_ = false;
}

void Logger::capture_once() {
  const core::TimePoint now = sim_.now();
  const net::WirelessHints hints = channel_.observe_hints(now);

  // Query `sources` distinct pool members in parallel, unconditionally —
  // the logger captures everything; gating decisions belong to the
  // emulator replaying the trace. Distinct indices come from a partial
  // Fisher–Yates shuffle: exactly `want` draws, uniform without
  // replacement, no rejection-sampling spin on small pools.
  const std::size_t n = pool_.size();
  const std::size_t want = std::min(params_.sources, n);
  std::vector<std::size_t> chosen(n);
  std::iota(chosen.begin(), chosen.end(), std::size_t{0});
  for (std::size_t i = 0; i < want; ++i) {
    std::swap(chosen[i], chosen[i + rng_.index(n - i)]);
  }
  chosen.resize(want);

  auto record = std::make_shared<TraceRecord>();
  record->t_s = (now - start_).to_seconds();
  record->rssi_dbm = hints.rssi.value();
  record->noise_dbm = hints.noise.value();

  auto outstanding = std::make_shared<std::size_t>(chosen.size());
  for (const std::size_t idx : chosen) {
    const ntp::ServerEndpoint ep =
        pool_.endpoint(idx, &channel_.uplink(), &channel_.downlink());
    engine_.query(
        ep, params_.query_options,
        [this, record, outstanding,
         alive = alive_](core::Result<ntp::SntpSample> r) {
          if (!*alive) return;  // logger stopped or destroyed mid-flight
          if (r.ok()) {
            record->offsets_s.push_back(r.value().offset.to_seconds());
          }
          if (--*outstanding == 0) {
            // Rounds complete out of order when an exchange
            // outlives the capture interval; keep the trace
            // sorted by emission time (records are nearly
            // sorted, so this back-insertion is cheap).
            auto& recs = trace_.records;
            auto it = recs.end();
            while (it != recs.begin() && std::prev(it)->t_s > record->t_s) {
              --it;
            }
            recs.insert(it, std::move(*record));
          }
        });
  }
}

EmulationResult emulate(const Trace& trace, const MntpParams& params) {
  EmulationResult result;
  if (trace.empty()) return result;

  MntpEngine engine(params, core::TimePoint::epoch());
  // Next instant at which the algorithm wants to act; starts immediately.
  double next_action_s = 0.0;

  for (const TraceRecord& rec : trace.records) {
    if (rec.t_s < next_action_s) continue;  // still waiting

    const core::TimePoint t =
        core::TimePoint::epoch() + core::Duration::from_seconds(rec.t_s);
    const net::WirelessHints hints{
        .when = t,
        .rssi = core::Dbm{rec.rssi_dbm},
        .noise = core::Dbm{rec.noise_dbm},
    };
    if (!engine.gate(hints)) {
      engine.note_deferral(t);
      next_action_s = rec.t_s + params.hint_recheck_interval.to_seconds();
      continue;
    }

    // Emit: consume up to sources_to_query() offsets from the record.
    const std::size_t want = engine.sources_to_query();
    std::vector<double> offsets(
        rec.offsets_s.begin(),
        rec.offsets_s.begin() +
            static_cast<std::ptrdiff_t>(std::min(want, rec.offsets_s.size())));
    result.requests += want;
    const MntpEngine::RoundResult rr = engine.on_round(t, offsets);
    if (rr.reset_occurred) ++result.resets;
    next_action_s = rec.t_s + engine.next_wait().to_seconds();
  }

  result.reported_offsets_ms = engine.accepted_offsets_ms();
  result.rmse_ms = core::rmse(result.reported_offsets_ms, 0.0);
  result.deferrals = engine.deferrals();
  result.rejections = engine.rejected_offsets_ms().size();
  return result;
}

std::string SearchEntry::to_string() const {
  return core::strformat(
      "warmup=%.1fmin wwait=%.3fmin rwait=%.1fmin reset=%.0fmin "
      "rmse=%.2fms requests=%zu",
      params.warmup_period.to_seconds() / 60.0,
      params.warmup_wait_time.to_seconds() / 60.0,
      params.regular_wait_time.to_seconds() / 60.0,
      params.reset_period.to_seconds() / 60.0, rmse_ms, requests);
}

std::vector<SearchEntry> search(const Trace& trace, const SearchSpace& space,
                                const SearchOptions& options) {
  obs::Telemetry& telemetry = obs::Telemetry::global();
  obs::ProfileScope profile(obs::spans::kTunerSearch);
  obs::Counter* scored =
      telemetry.metrics().counter(obs::metric_names::kTunerConfigsScored);

  // Flatten the 4-deep cartesian product into an enumerated config
  // vector — warmup_period outermost, reset_period innermost, matching
  // the SearchSpace field order. Enumeration order IS the output order.
  std::vector<SearchEntry> out;
  out.reserve(space.warmup_periods.size() * space.warmup_wait_times.size() *
              space.regular_wait_times.size() * space.reset_periods.size());
  for (const core::Duration wp : space.warmup_periods) {
    for (const core::Duration wwt : space.warmup_wait_times) {
      for (const core::Duration rwt : space.regular_wait_times) {
        for (const core::Duration rp : space.reset_periods) {
          SearchEntry entry;
          entry.params = space.base;
          entry.params.warmup_period = wp;
          entry.params.warmup_wait_time = wwt;
          entry.params.regular_wait_time = rwt;
          entry.params.reset_period = rp;
          out.push_back(std::move(entry));
        }
      }
    }
  }

  // Score. emulate() is pure and each worker writes only slot i, so the
  // result is bit-identical to the serial loop for any thread count; the
  // counter increment is atomic (obs/metrics.h), so the total is exact.
  const auto score = [&](std::size_t i) {
    // Span emitted from whichever thread scores config i — the profiler
    // aggregates across threads; records carry the worker's thread id.
    obs::ProfileScope config_profile(obs::spans::kTunerScoreConfig);
    const EmulationResult r = emulate(trace, out[i].params);
    out[i].rmse_ms = r.rmse_ms;
    out[i].requests = r.requests;
    scored->inc();
  };
  if (options.threads <= 1) {
    for (std::size_t i = 0; i < out.size(); ++i) score(i);
  } else {
    core::ThreadPool pool(options.threads);
    pool.parallel_for(0, out.size(), score);
  }

  // Emit per-config events AFTER scoring, in enumeration order, from
  // this thread — the event stream stays deterministic under any thread
  // count instead of interleaving in scheduler order.
  if (telemetry.tracing()) {
    // Grid search is trace-driven and has no simulated clock of its own;
    // stamp with the trace's end time.
    const core::TimePoint t =
        core::TimePoint::epoch() +
        core::Duration::from_seconds(trace.empty() ? 0.0
                                                   : trace.records.back().t_s);
    for (const SearchEntry& entry : out) {
      telemetry.event(
          t, obs::categories::kTuner, "config_scored",
          {{"config", entry.to_string()},
           {"rmse_ms", entry.rmse_ms},
           {"requests", static_cast<std::int64_t>(entry.requests)}});
    }
  }
  return out;
}

std::vector<SearchEntry> search(const Trace& trace, const SearchSpace& space) {
  return search(trace, space, SearchOptions{});
}

}  // namespace mntp::protocol::tuner
