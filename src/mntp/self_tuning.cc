#include "mntp/self_tuning.h"

#include <algorithm>

namespace mntp::protocol {

SelfTuner::SelfTuner(sim::Simulation& sim, MntpClient& client,
                     SelfTunerParams params)
    : sim_(sim),
      client_(client),
      params_(params),
      process_(sim, params.adapt_interval, [this] { adapt(); }) {}

void SelfTuner::start() { process_.start(params_.adapt_interval); }
void SelfTuner::stop() { process_.stop(); }

core::Duration SelfTuner::current_wait() const {
  return client_.engine().params().regular_wait_time;
}

void SelfTuner::adapt() {
  const auto& records = client_.engine().records();
  // Only the rounds since the last adaptation vote.
  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = seen_records_; i < records.size(); ++i) {
    const bool ok = records[i].outcome == SampleOutcome::kAcceptedWarmup ||
                    records[i].outcome == SampleOutcome::kAcceptedRegular;
    (ok ? accepted : rejected) += 1;
  }
  seen_records_ = records.size();
  const std::size_t n = accepted + rejected;
  if (n < params_.min_observations) return;

  const double reject_rate =
      static_cast<double>(rejected) / static_cast<double>(n);
  const core::Duration wait = current_wait();
  MntpEngine& engine = client_.mutable_engine();
  if (reject_rate > params_.reject_rate_high) {
    // Trend going stale / channel rough: sample more often.
    const auto faster = std::max(params_.min_regular_wait,
                                 wait.scaled(1.0 / params_.step_factor));
    if (faster < wait) {
      engine.set_regular_wait_time(faster);
      ++speedups_;
    }
  } else if (reject_rate < params_.reject_rate_low) {
    // Stable: save requests.
    const auto slower =
        std::min(params_.max_regular_wait, wait.scaled(params_.step_factor));
    if (slower > wait) {
      engine.set_regular_wait_time(slower);
      ++backoffs_;
    }
  }
}

}  // namespace mntp::protocol
