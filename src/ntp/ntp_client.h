// Reference full-NTP client.
//
// The paper's experiments use ntpd as the "NTP clock correction" baseline
// and name a reference NTP implementation as future work; this class is
// that implementation, assembled from the standalone pieces: stable peer
// associations, per-peer clock filters (RFC 5905 §10), intersection
// selection + clustering + combining (§11.2), and a step/slew clock
// discipline (§11.3, simplified PLL). Unlike the SNTP client it never
// trusts a single sample.
#pragma once

#include <cstddef>
#include <vector>

#include "core/time.h"
#include "ntp/clock_filter.h"
#include "ntp/pool.h"
#include "ntp/selection.h"
#include "ntp/transport.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::ntp {

struct NtpClientParams {
  /// Indices of the pool members to peer with (stable associations).
  std::vector<std::size_t> peer_indices{0, 1, 2, 3};
  core::Duration poll_interval = core::Duration::seconds(16);
  /// ntpd-style poll adaptation: lengthen the poll interval while the
  /// clock is tracking well (small combined offsets), snap back to
  /// `poll_interval` when it degrades. Off by default so the paper's
  /// fixed-cadence baseline stays fixed.
  bool adaptive_poll = false;
  core::Duration max_poll_interval = core::Duration::seconds(1024);
  /// Consecutive in-band updates required before doubling the interval.
  std::size_t stable_updates_to_lengthen = 4;
  /// |combined offset| below this counts as "tracking well".
  core::Duration stable_offset_bound = core::Duration::milliseconds(5);
  /// Offsets above this magnitude step the clock; below it, slew.
  core::Duration step_threshold = core::Duration::milliseconds(128);
  /// Consecutive above-threshold rounds (same sign) required before a
  /// step is taken — ntpd's stepout guard. A lone wireless delay spike
  /// that slips past the clock filter must not step the clock; a genuine
  /// large phase error persists and does.
  std::size_t stepout_rounds = 3;
  /// Fraction of the combined offset applied as an immediate phase nudge
  /// per update when slewing.
  double phase_gain = 0.5;
  /// Integral gain feeding the frequency compensation (per update). Kept
  /// well below the phase gain so the integrator cannot outrun the phase
  /// loop (classic PI stability margin).
  double frequency_gain = 0.0008;
  /// Frequency compensation clamp, ppm.
  double max_frequency_ppm = 100.0;
  ClockFilterParams filter;
  ClusterParams cluster;
  QueryOptions query_options{.timeout = core::Duration::seconds(2),
                             .sntp_style = false,
                             .wire_bytes = 76};
};

class NtpClient {
 public:
  NtpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
            ServerPool& pool, net::Link* last_hop_up, net::Link* last_hop_down,
            NtpClientParams params);

  void start();
  void stop();

  /// Number of discipline updates applied (steps + slews).
  [[nodiscard]] std::size_t updates() const { return updates_; }
  [[nodiscard]] std::size_t steps() const { return steps_; }
  /// Most recent combined offset estimate.
  [[nodiscard]] core::Duration last_combined_offset() const { return last_offset_; }
  /// Peers surviving selection in the last round.
  [[nodiscard]] std::size_t last_survivor_count() const { return last_survivors_; }
  /// Current (possibly adapted) poll interval.
  [[nodiscard]] core::Duration current_poll_interval() const {
    return current_poll_;
  }

 private:
  void poll_round();
  void discipline(core::Duration offset);
  void adapt_poll(core::Duration offset);

  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  ServerPool& pool_;
  net::Link* last_hop_up_;
  net::Link* last_hop_down_;
  NtpClientParams params_;
  QueryEngine engine_;
  sim::PeriodicProcess process_;
  std::vector<ClockFilter> filters_;
  std::size_t updates_ = 0;
  std::size_t steps_ = 0;
  core::Duration last_offset_ = core::Duration::zero();
  std::size_t last_survivors_ = 0;
  double freq_integral_ppm_ = 0.0;
  std::size_t above_threshold_streak_ = 0;
  int streak_sign_ = 0;
  core::Duration current_poll_;
  std::size_t stable_streak_ = 0;
};

}  // namespace mntp::ntp
