#include "ntp/packet.h"

#include <cstdio>

namespace mntp::ntp {

namespace {

void put_u32(std::span<std::uint8_t> out, std::size_t at, std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v >> 24);
  out[at + 1] = static_cast<std::uint8_t>(v >> 16);
  out[at + 2] = static_cast<std::uint8_t>(v >> 8);
  out[at + 3] = static_cast<std::uint8_t>(v);
}

void put_u64(std::span<std::uint8_t> out, std::size_t at, std::uint64_t v) {
  put_u32(out, at, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, at + 4, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(in, at)) << 32) | get_u32(in, at + 4);
}

}  // namespace

void NtpPacket::serialize(std::span<std::uint8_t, kWireSize> out) const {
  out[0] = static_cast<std::uint8_t>((static_cast<unsigned>(leap) << 6) |
                                     ((version & 0x7U) << 3) |
                                     (static_cast<unsigned>(mode) & 0x7U));
  out[1] = stratum;
  out[2] = static_cast<std::uint8_t>(poll);
  out[3] = static_cast<std::uint8_t>(precision);
  put_u32(out, 4, root_delay.raw());
  put_u32(out, 8, root_dispersion.raw());
  put_u32(out, 12, reference_id);
  put_u64(out, 16, reference_ts.raw());
  put_u64(out, 24, origin_ts.raw());
  put_u64(out, 32, receive_ts.raw());
  put_u64(out, 40, transmit_ts.raw());
}

std::array<std::uint8_t, NtpPacket::kWireSize> NtpPacket::to_bytes() const {
  std::array<std::uint8_t, kWireSize> buf{};
  serialize(buf);
  return buf;
}

core::Result<NtpPacket> NtpPacket::parse(std::span<const std::uint8_t> in) {
  if (in.size() < kWireSize) {
    return core::Error::malformed("NTP packet shorter than 48 bytes");
  }
  NtpPacket p;
  const std::uint8_t b0 = in[0];
  p.leap = static_cast<LeapIndicator>((b0 >> 6) & 0x3U);
  p.version = static_cast<std::uint8_t>((b0 >> 3) & 0x7U);
  p.mode = static_cast<Mode>(b0 & 0x7U);
  if (p.version < 1 || p.version > 4) {
    return core::Error::malformed("unsupported NTP version");
  }
  if (p.mode == Mode::kReserved) {
    return core::Error::malformed("reserved NTP mode");
  }
  p.stratum = in[1];
  p.poll = static_cast<std::int8_t>(in[2]);
  p.precision = static_cast<std::int8_t>(in[3]);
  p.root_delay = core::NtpShort::from_raw(get_u32(in, 4));
  p.root_dispersion = core::NtpShort::from_raw(get_u32(in, 8));
  p.reference_id = get_u32(in, 12);
  p.reference_ts = core::NtpTimestamp::from_raw(get_u64(in, 16));
  p.origin_ts = core::NtpTimestamp::from_raw(get_u64(in, 24));
  p.receive_ts = core::NtpTimestamp::from_raw(get_u64(in, 32));
  p.transmit_ts = core::NtpTimestamp::from_raw(get_u64(in, 40));
  return p;
}

NtpPacket NtpPacket::make_sntp_request(core::NtpTimestamp transmit_time) {
  NtpPacket p;  // all fields zero/default except below
  p.leap = LeapIndicator::kNoWarning;
  p.version = kVersion;
  p.mode = Mode::kClient;
  p.stratum = 0;
  p.poll = 0;
  p.precision = 0;
  p.transmit_ts = transmit_time;
  return p;
}

NtpPacket NtpPacket::make_ntp_request(core::NtpTimestamp transmit_time,
                                      std::int8_t poll_exponent,
                                      core::NtpTimestamp previous_origin) {
  NtpPacket p;
  p.leap = LeapIndicator::kNoWarning;
  p.version = kVersion;
  p.mode = Mode::kClient;
  p.poll = poll_exponent;
  p.precision = -20;
  p.origin_ts = previous_origin;
  p.transmit_ts = transmit_time;
  return p;
}

bool NtpPacket::looks_like_sntp_request() const {
  if (mode != Mode::kClient) return false;
  return stratum == 0 && poll == 0 && precision == 0 &&
         root_delay.raw() == 0 && root_dispersion.raw() == 0 &&
         reference_id == 0 && reference_ts.is_unset() && origin_ts.is_unset() &&
         receive_ts.is_unset();
}

std::string NtpPacket::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "NtpPacket{li=%u v=%u mode=%u stratum=%u poll=%d prec=%d "
                "refid=0x%08x xmt=%s}",
                static_cast<unsigned>(leap), version,
                static_cast<unsigned>(mode), stratum, poll, precision,
                reference_id, transmit_ts.to_string().c_str());
  return buf;
}

std::uint32_t kiss_code(const char (&ascii)[5]) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(ascii[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(ascii[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(ascii[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(ascii[3]));
}

}  // namespace mntp::ntp
