#include "ntp/pool.h"

#include <stdexcept>
#include <string>

#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::ntp {

ServerPool::ServerPool(PoolParams params, core::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  if (params_.server_count == 0) {
    throw std::invalid_argument("ServerPool: need at least one server");
  }
  if (params_.false_ticker_count + params_.kiss_of_death_count >
      params_.server_count) {
    throw std::invalid_argument("ServerPool: more misbehaving members than servers");
  }

  const std::size_t honest = params_.server_count -
                             params_.false_ticker_count -
                             params_.kiss_of_death_count;
  const std::size_t kod_end = honest + params_.kiss_of_death_count;
  for (std::size_t i = 0; i < params_.server_count; ++i) {
    Member m;
    const bool kod = i >= honest && i < kod_end;
    const bool false_ticker = i >= kod_end;

    NtpServerParams sp;
    if (kod) {
      sp.kiss_of_death = true;
    } else if (false_ticker) {
      const double sign = (i % 2 == 0) ? 1.0 : -1.0;
      sp = NtpServer::false_ticker(sign * params_.false_ticker_offset_s,
                                   /*skew_ppm=*/rng_.uniform(-3.0, 3.0));
    } else {
      sp.stratum = rng_.bernoulli(params_.stratum1_fraction) ? 1 : 2;
      sp.reference_id = sp.stratum == 1 ? 0x47505300   // "GPS"
                                        : 0x4e495354;  // "NIST"
      sp.clock_offset_s = rng_.uniform(-params_.server_offset_bound_s,
                                       params_.server_offset_bound_s);
    }
    m.server = std::make_unique<NtpServer>(
        "pool-" + std::to_string(i) +
            (false_ticker ? "-false" : (kod ? "-kod" : "")),
        sp, rng_.fork());
    m.false_ticker = false_ticker;

    const double base_s = rng_.uniform(params_.min_base_owd.to_seconds(),
                                       params_.max_base_owd.to_seconds());
    const double asym = rng_.uniform(-params_.asymmetry / 2, params_.asymmetry / 2);
    m.wan_up = std::make_unique<net::WiredLink>(
        net::WiredLinkParams::wan(
            core::Duration::from_seconds(base_s * (1.0 + asym))),
        rng_.fork());
    m.wan_down = std::make_unique<net::WiredLink>(
        net::WiredLinkParams::wan(
            core::Duration::from_seconds(base_s * (1.0 - asym))),
        rng_.fork());
    members_.push_back(std::move(m));
  }

  // Per-member reachability probes: the timeline samples each server's
  // cumulative requests-served counter, so a member that goes dark (or a
  // client that deferred away from the pool) shows up as a flat series.
  obs::TimeSeriesRecorder& ts = obs::Telemetry::global().timeseries();
  request_probes_.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    NtpServer* server = members_[i].server.get();
    request_probes_.push_back(ts.probe(
        obs::metric_names::kTsNtpServerRequests,
        obs::Labels{{"server", std::to_string(i)}},
        [server](core::TimePoint) -> std::optional<double> {
          return static_cast<double>(server->requests_served());
        }));
  }
}

ServerEndpoint ServerPool::endpoint(std::size_t i, net::Link* last_hop_up,
                                    net::Link* last_hop_down) {
  Member& m = members_.at(i);
  ServerEndpoint ep;
  ep.server = m.server.get();
  if (last_hop_up != nullptr) ep.up.append(*last_hop_up);
  ep.up.append(*m.wan_up);
  ep.down.append(*m.wan_down);
  if (last_hop_down != nullptr) ep.down.append(*last_hop_down);
  return ep;
}

std::size_t ServerPool::pick_index() { return rng_.index(members_.size()); }

}  // namespace mntp::ntp
