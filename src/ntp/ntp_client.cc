#include "ntp/ntp_client.h"

#include <algorithm>
#include <cstdint>

#include "obs/query_trace.h"

namespace mntp::ntp {

NtpClient::NtpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
                     ServerPool& pool, net::Link* last_hop_up,
                     net::Link* last_hop_down, NtpClientParams params)
    : sim_(sim),
      clock_(clock),
      pool_(pool),
      last_hop_up_(last_hop_up),
      last_hop_down_(last_hop_down),
      params_(std::move(params)),
      engine_(sim, clock),
      process_(sim, params_.poll_interval, [this] { poll_round(); }),
      current_poll_(params_.poll_interval) {
  filters_.reserve(params_.peer_indices.size());
  for (std::size_t i = 0; i < params_.peer_indices.size(); ++i) {
    filters_.emplace_back(params_.filter);
  }
}

void NtpClient::start() { process_.start(); }
void NtpClient::stop() { process_.stop(); }

void NtpClient::poll_round() {
  // Query every peer this round; when the last reply (or failure) lands,
  // run the mitigation pipeline and discipline the clock.
  auto outstanding = std::make_shared<std::size_t>(params_.peer_indices.size());
  // One round trace spanning all peer exchanges and the mitigation
  // verdict; installed as ambient so query() parents the per-peer
  // exchange traces on it.
  obs::QueryTracer& tracer = sim_.telemetry().query_tracer();
  const obs::QueryId round_id =
      tracer.enabled() ? tracer.begin(sim_.now(), "round") : 0;
  obs::ActiveQueryScope scope(tracer, round_id);
  for (std::size_t peer = 0; peer < params_.peer_indices.size(); ++peer) {
    const ServerEndpoint ep = pool_.endpoint(params_.peer_indices[peer],
                                             last_hop_up_, last_hop_down_);
    engine_.query(
        ep, params_.query_options,
        [this, peer, outstanding, round_id](core::Result<SntpSample> result) {
          obs::QueryTracer& qt = sim_.telemetry().query_tracer();
          if (result.ok()) {
            const SntpSample& s = result.value();
            (void)filters_[peer].update(s.offset, s.delay, s.completed_at);
          }
          if (--*outstanding == 0) {
            // Mitigation over the current peer estimates.
            std::vector<PeerEstimate> estimates;
            for (std::size_t i = 0; i < filters_.size(); ++i) {
              if (const auto est = filters_[i].current()) {
                estimates.push_back(*est);
              }
            }
            if (estimates.empty()) {
              qt.finish(round_id, sim_.now(), obs::Reason::kNoSamples,
                        {{"peers", static_cast<std::int64_t>(filters_.size())}});
              return;
            }
            auto chimers = select_truechimers(estimates);
            if (chimers.empty()) {
              // Intersection found no majority clique: every estimate is
              // a potential false ticker; the round moves nothing.
              qt.stage(round_id, sim_.now(), "selection",
                       obs::Reason::kNoSurvivors,
                       {{"estimates",
                         static_cast<std::int64_t>(estimates.size())},
                        {"truechimers", static_cast<std::int64_t>(0)}});
              qt.finish(round_id, sim_.now(), obs::Reason::kNoSurvivors, {});
              return;
            }
            const std::size_t truechimers = chimers.size();
            chimers = cluster_survivors(estimates, std::move(chimers),
                                        params_.cluster);
            last_survivors_ = chimers.size();
            qt.stage(round_id, sim_.now(), "selection", obs::Reason::kOk,
                     {{"estimates", static_cast<std::int64_t>(estimates.size())},
                      {"truechimers", static_cast<std::int64_t>(truechimers)},
                      {"survivors",
                       static_cast<std::int64_t>(chimers.size())}});
            // Discipline only on rounds where a surviving peer
            // contributed a not-yet-consumed nomination; a round
            // of stale re-nominations must not move the clock
            // again (RFC 5905 uses each filter output once).
            std::vector<std::size_t> fresh_survivors;
            for (std::size_t idx : chimers) {
              if (estimates[idx].fresh) fresh_survivors.push_back(idx);
            }
            if (fresh_survivors.empty()) {
              qt.finish(round_id, sim_.now(), obs::Reason::kOk,
                        {{"disciplined", false}});
              return;
            }
            const core::Duration offset =
                combine_offsets(estimates, fresh_survivors);
            discipline(offset);
            qt.finish(round_id, sim_.now(), obs::Reason::kOk,
                      {{"disciplined", true},
                       {"offset_ms", offset.to_millis()}});
          }
        });
  }
}

void NtpClient::discipline(core::Duration offset) {
  ++updates_;
  last_offset_ = offset;
  if (offset.abs() >= params_.step_threshold) {
    // Stepout guard: a large offset only steps the clock after it has
    // persisted with the same sign for `stepout_rounds` rounds. Anything
    // shorter is treated as a measurement spike and ignored entirely
    // (stepping or slewing on it would corrupt a healthy clock).
    const int sign = offset > core::Duration::zero() ? 1 : -1;
    if (sign == streak_sign_) {
      ++above_threshold_streak_;
    } else {
      streak_sign_ = sign;
      above_threshold_streak_ = 1;
    }
    if (above_threshold_streak_ >= params_.stepout_rounds) {
      clock_.step(offset);
      ++steps_;
      above_threshold_streak_ = 0;
      streak_sign_ = 0;
    }
    // A step invalidates the phase history; keep the frequency integral.
    return;
  }
  above_threshold_streak_ = 0;
  streak_sign_ = 0;
  // PLL-flavoured slew: immediate partial phase correction plus an
  // integral term trimming the oscillator frequency estimate.
  clock_.step(offset.scaled(params_.phase_gain));
  const double update_s = offset.to_seconds();
  freq_integral_ppm_ += params_.frequency_gain * update_s /
                        current_poll_.to_seconds() * 1e6;
  freq_integral_ppm_ = std::clamp(freq_integral_ppm_, -params_.max_frequency_ppm,
                                  params_.max_frequency_ppm);
  clock_.set_frequency_compensation(sim_.now(), freq_integral_ppm_);

  if (params_.adaptive_poll) adapt_poll(offset);
}

void NtpClient::adapt_poll(core::Duration offset) {
  // ntpd's poll management, simplified: a run of in-band updates earns a
  // doubled interval (less traffic, less energy); one out-of-band update
  // snaps back to the base cadence so the loop regains authority fast.
  if (offset.abs() <= params_.stable_offset_bound) {
    if (++stable_streak_ >= params_.stable_updates_to_lengthen &&
        current_poll_ < params_.max_poll_interval) {
      current_poll_ = std::min(params_.max_poll_interval, current_poll_ * 2);
      process_.set_interval(current_poll_);
      stable_streak_ = 0;
    }
  } else {
    stable_streak_ = 0;
    if (current_poll_ > params_.poll_interval) {
      current_poll_ = params_.poll_interval;
      process_.set_interval(current_poll_);
    }
  }
}

}  // namespace mntp::ntp
