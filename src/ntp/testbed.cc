#include "ntp/testbed.h"

namespace mntp::ntp {

Testbed::Testbed(TestbedConfig config) : config_(config), rng_(config.seed) {
  clock_ = std::make_unique<sim::DisciplinedClock>(config_.client_clock,
                                                   rng_.fork());
  channel_ = std::make_unique<net::WirelessChannel>(config_.channel, rng_.fork());
  lan_up_ = std::make_unique<net::WiredLink>(net::WiredLinkParams::lan(),
                                             rng_.fork());
  lan_down_ = std::make_unique<net::WiredLink>(net::WiredLinkParams::lan(),
                                               rng_.fork());
  pool_ = std::make_unique<ServerPool>(config_.pool, rng_.fork());

  // Ping probe destination: a nearby wired host beyond the WAP, so probe
  // RTT/loss reflects the wireless hop (§3.2: probes to a
  // "user-configured probe destination").
  probe_wan_up_ = std::make_unique<net::WiredLink>(
      net::WiredLinkParams::wan(core::Duration::milliseconds(8)), rng_.fork());
  probe_wan_down_ = std::make_unique<net::WiredLink>(
      net::WiredLinkParams::wan(core::Duration::milliseconds(8)), rng_.fork());

  net::LinkPath ping_forward;
  net::LinkPath ping_reverse;
  if (config_.wireless) {
    ping_forward.append(channel_->uplink());
    ping_forward.append(*probe_wan_up_);
    ping_reverse.append(*probe_wan_down_);
    ping_reverse.append(channel_->downlink());
  } else {
    ping_forward.append(*lan_up_);
    ping_forward.append(*probe_wan_up_);
    ping_reverse.append(*probe_wan_down_);
    ping_reverse.append(*lan_down_);
  }
  pinger_ = std::make_unique<net::Pinger>(sim_, ping_forward, ping_reverse,
                                          net::PingerParams{});
  traffic_ = std::make_unique<net::CrossTrafficGenerator>(
      sim_, *channel_, config_.traffic, rng_.fork());
  controller_ = std::make_unique<net::MonitorController>(
      sim_, *channel_, *traffic_, *pinger_, config_.controller);

  if (config_.ntp_correction) {
    ntp_client_ = std::make_unique<NtpClient>(sim_, *clock_, *pool_,
                                              last_hop_up(), last_hop_down(),
                                              config_.ntp);
  }
}

void Testbed::start() {
  if (config_.monitor_active) {
    traffic_->start();
    pinger_->start();
    controller_->start();
  }
  if (ntp_client_) ntp_client_->start();
}

net::Link* Testbed::last_hop_up() {
  return config_.wireless ? &channel_->uplink()
                          : static_cast<net::Link*>(lan_up_.get());
}

net::Link* Testbed::last_hop_down() {
  return config_.wireless ? &channel_->downlink()
                          : static_cast<net::Link*>(lan_down_.get());
}

ServerEndpoint Testbed::endpoint(std::size_t idx) {
  return pool_->endpoint(idx, last_hop_up(), last_hop_down());
}

double Testbed::true_clock_offset_ms() {
  return clock_->offset_at(sim_.now()) * 1e3;
}

}  // namespace mntp::ntp
