// Simulated NTP server pool.
//
// The paper's clients query `0/1/3.pool.ntp.org`; every request is
// "randomly assigned to a new NTP time reference" by pool DNS rotation
// (§3.2). ServerPool owns a set of stratum-1/2 servers, each behind its
// own asymmetric wired WAN segment, and hands out a uniformly random
// endpoint per query. Optionally some members are false tickers, which is
// what MNTP's warm-up rejection is for.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "net/wired_link.h"
#include "ntp/server.h"
#include "ntp/transport.h"

namespace mntp::ntp {

struct PoolParams {
  std::size_t server_count = 8;
  /// Base one-way WAN delay range across pool members; per-member value
  /// drawn uniformly. The paper's log study sees 40–50 ms medians for
  /// wired clients of cloud/ISP providers.
  core::Duration min_base_owd = core::Duration::milliseconds(12);
  core::Duration max_base_owd = core::Duration::milliseconds(90);
  /// Relative up/down asymmetry of each member's WAN segment (fractional,
  /// applied as ±asymmetry/2 around the base).
  double asymmetry = 0.12;
  /// Fraction of members at stratum 1 (the rest stratum 2).
  double stratum1_fraction = 0.35;
  /// Well-behaved server clock error bound (uniform in ±bound), seconds.
  double server_offset_bound_s = 400e-6;
  /// Number of false tickers among the members.
  std::size_t false_ticker_count = 0;
  /// Number of members answering everything with a RATE kiss-of-death
  /// (rate-limiting servers; placed before the false tickers at the end).
  std::size_t kiss_of_death_count = 0;
  /// Clock error magnitude of each false ticker, seconds (sign
  /// alternates).
  double false_ticker_offset_s = 0.35;
};

class ServerPool {
 public:
  ServerPool(PoolParams params, core::Rng rng);

  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// The i-th member's server (stable order; false tickers last).
  [[nodiscard]] NtpServer& server(std::size_t i) { return *members_[i].server; }
  [[nodiscard]] const NtpServer& server(std::size_t i) const {
    return *members_[i].server;
  }

  /// Endpoint reaching member i with `last_hop_up`/`last_hop_down`
  /// prepended/appended (the client's access link, e.g. the wireless
  /// channel). Pass nullptr for a directly-wired client.
  [[nodiscard]] ServerEndpoint endpoint(std::size_t i, net::Link* last_hop_up,
                                        net::Link* last_hop_down);

  /// Uniformly random member index (pool DNS rotation).
  [[nodiscard]] std::size_t pick_index();

  [[nodiscard]] bool is_false_ticker(std::size_t i) const {
    return members_[i].false_ticker;
  }

  /// Step every member's clock by `delta_s` — the global, simultaneous
  /// correction a leap second produces across the public NTP
  /// infrastructure.
  void adjust_all_clocks(double delta_s) {
    for (auto& m : members_) m.server->adjust_clock(delta_s);
  }

 private:
  struct Member {
    std::unique_ptr<NtpServer> server;
    std::unique_ptr<net::WiredLink> wan_up;
    std::unique_ptr<net::WiredLink> wan_down;
    bool false_ticker = false;
  };

  PoolParams params_;
  core::Rng rng_;
  std::vector<Member> members_;
  /// Timeline probes: per-member cumulative requests served (the
  /// server's-eye reachability signal — a flat series means the member
  /// stopped being reached). Inert unless the recorder captures.
  std::vector<obs::ProbeHandle> request_probes_;
};

}  // namespace mntp::ntp
