#include "ntp/transport.h"

#include <utility>

#include "obs/metric_names.h"

namespace mntp::ntp {

namespace {

/// Per-exchange state kept alive by shared_ptr across the event chain.
struct Exchange {
  QueryEngine::Callback callback;
  sim::EventHandle timeout_event;
  bool settled = false;

  void settle(core::Result<SntpSample> result) {
    if (settled) return;
    settled = true;
    timeout_event.cancel();
    callback(std::move(result));
  }
};

}  // namespace

QueryEngine::QueryEngine(sim::Simulation& sim, sim::DisciplinedClock& clock)
    : sim_(sim), clock_(clock) {
  obs::MetricsRegistry& m = sim_.telemetry().metrics();
  sent_counter_ = m.sharded_counter(obs::metric_names::kNtpQuerySent);
  ok_counter_ = m.sharded_counter(obs::metric_names::kNtpQueryOk);
  timeout_counter_ = m.sharded_counter(obs::metric_names::kNtpQueryTimeout);
  error_counter_ = m.sharded_counter(obs::metric_names::kNtpQueryError);
  rtt_ms_ = m.histogram(obs::metric_names::kNtpQueryRttMs,
                        obs::HistogramOptions::latency_ms());
  owd_up_ms_ = m.hdr_histogram(obs::metric_names::kNtpQueryOwdMs, {},
                               obs::Labels{{"dir", "up"}});
  owd_down_ms_ = m.hdr_histogram(obs::metric_names::kNtpQueryOwdMs, {},
                                 obs::Labels{{"dir", "down"}});
  obs::TimeSeriesRecorder& ts = sim_.telemetry().timeseries();
  owd_up_probe_ =
      ts.probe(obs::metric_names::kTsNtpOwdMs, obs::Labels{{"dir", "up"}},
               [this](core::TimePoint) -> std::optional<double> {
                 if (!has_owd_up_) return std::nullopt;
                 return last_owd_up_ms_;
               });
  owd_down_probe_ =
      ts.probe(obs::metric_names::kTsNtpOwdMs, obs::Labels{{"dir", "down"}},
               [this](core::TimePoint) -> std::optional<double> {
                 if (!has_owd_down_) return std::nullopt;
                 return last_owd_down_ms_;
               });
}

void QueryEngine::query(const ServerEndpoint& endpoint,
                        const QueryOptions& options, Callback callback) {
  ++sent_;
  auto ex = std::make_shared<Exchange>();
  ex->callback = std::move(callback);

  const core::TimePoint send_true = sim_.now();
  const core::NtpTimestamp t1 =
      core::NtpTimestamp::from_time_point(clock_.local_time(send_true));
  const NtpPacket request =
      options.sntp_style
          ? NtpPacket::make_sntp_request(t1)
          : NtpPacket::make_ntp_request(t1, /*poll_exponent=*/4,
                                        core::NtpTimestamp::unset());
  const auto request_bytes = request.to_bytes();

  // Mint a per-exchange query trace, parented to the round that issued
  // it (the client installs its round as ambient around this call).
  obs::QueryTracer& qt = sim_.telemetry().query_tracer();
  obs::QueryId qid = 0;
  if (qt.enabled()) {
    qid = qt.begin(send_true, "exchange", obs::ambient_query().id);
    qt.stage(qid, send_true, "request", obs::Reason::kOk,
             {{"wire_bytes", static_cast<std::int64_t>(options.wire_bytes)},
              {"mode", std::string(options.sntp_style ? "sntp" : "ntp")},
              {"timeout_ms", options.timeout.to_millis()}});
  }

  sent_counter_->inc();
  ex->timeout_event = sim_.after(options.timeout, [this, ex, qid] {
    ++timeouts_;
    timeout_counter_->inc();
    if (sim_.telemetry().tracing()) {
      sim_.telemetry().event(sim_.now(), obs::categories::kNtp,
                             "query_timeout", {});
    }
    if (qid != 0) {
      sim_.telemetry().query_tracer().finish(qid, sim_.now(),
                                             obs::Reason::kTimeout);
    }
    ex->settle(core::Error::timeout("no NTP reply within timeout"));
  });

  NtpServer* server = endpoint.server;
  const net::LinkPath down = endpoint.down;
  const std::size_t wire_bytes = options.wire_bytes;

  // Packet loss in either direction is not observable by a real client;
  // the timeout event fires in that case (no on_drop handler needed —
  // the traced loss stage is recorded by the link walker itself).
  net::send_datagram(
      sim_, endpoint.up, wire_bytes,
      [this, ex, server, down, request_bytes, t1, wire_bytes, send_true,
       qid](core::TimePoint arrival) {
        // Uplink one-way delay on the true timeline (simulator's-eye
        // view; a real client cannot separate the directions).
        last_owd_up_ms_ = (arrival - send_true).to_millis();
        has_owd_up_ = true;
        owd_up_ms_->record(last_owd_up_ms_);
        auto reply = server->handle(request_bytes, arrival);
        if (!reply.ok()) {
          error_counter_->inc();
          if (qid != 0) {
            sim_.telemetry().query_tracer().finish(
                qid, arrival, obs::Reason::kServerError);
          }
          ex->settle(reply.error());
          return;
        }
        const NtpPacket reply_packet = reply.value().packet;
        const auto reply_bytes = reply_packet.to_bytes();
        if (qid != 0) {
          sim_.telemetry().query_tracer().stage(
              qid, arrival, "server", obs::Reason::kOk,
              {{"stratum", static_cast<std::int64_t>(reply_packet.stratum)},
               {"processing_ms",
                (reply.value().departs - arrival).to_millis()}});
        }
        // The reply leaves after the server's processing delay.
        sim_.at(reply.value().departs, [this, ex, down, reply_bytes, t1,
                                        wire_bytes, qid] {
          const core::TimePoint departs = sim_.now();
          net::send_datagram(
              sim_, down, wire_bytes,
              [this, ex, reply_bytes, t1, departs,
               qid](core::TimePoint t4_true) {
                last_owd_down_ms_ = (t4_true - departs).to_millis();
                has_owd_down_ = true;
                owd_down_ms_->record(last_owd_down_ms_);
                auto parsed = NtpPacket::parse(reply_bytes);
                if (!parsed.ok()) {
                  error_counter_->inc();
                  if (qid != 0) {
                    sim_.telemetry().query_tracer().finish(
                        qid, t4_true, obs::Reason::kValidationError);
                  }
                  ex->settle(parsed.error());
                  return;
                }
                const NtpPacket& p = parsed.value();
                if (const core::Status s = validate_sntp_response(p, t1);
                    !s.ok()) {
                  error_counter_->inc();
                  if (qid != 0) {
                    sim_.telemetry().query_tracer().finish(
                        qid, t4_true, obs::Reason::kValidationError);
                  }
                  ex->settle(s.error());
                  return;
                }
                ++received_;
                ok_counter_->inc();
                const core::NtpTimestamp t4 = core::NtpTimestamp::from_time_point(
                    clock_.local_time(t4_true));
                const SntpExchange xchg{
                    .t1 = t1, .t2 = p.receive_ts, .t3 = p.transmit_ts, .t4 = t4};
                rtt_ms_->record(xchg.delay().to_millis());
                if (qid != 0) {
                  sim_.telemetry().query_tracer().finish(
                      qid, t4_true, obs::Reason::kOk,
                      {{"offset_ms", xchg.offset().to_millis()},
                       {"rtt_ms", xchg.delay().to_millis()},
                       {"stratum", static_cast<std::int64_t>(p.stratum)}});
                }
                ex->settle(SntpSample{
                    .offset = xchg.offset(),
                    .delay = xchg.delay(),
                    .server_stratum = p.stratum,
                    .server_id = p.reference_id,
                    .completed_at = t4_true,
                });
              },
              /*on_drop=*/{}, qid);
        });
      },
      /*on_drop=*/{}, qid);
}

}  // namespace mntp::ntp
