// NTP mitigation algorithms: selection (intersection), clustering, and
// combining (RFC 5905 §11.2), as standalone testable functions.
//
// Selection implements Marzullo's intersection algorithm as adapted by
// NTP: each peer asserts its true offset lies in
// [offset - rootdist, offset + rootdist]; the algorithm finds the largest
// group of peers whose intervals share a common intersection, tolerating
// up to f < n/2 false tickers. Clustering then prunes statistical
// outliers by "selection jitter", and combining produces the final offset
// as a root-distance-weighted average. The paper's warm-up heuristic
// ("classify the time sources whose offsets exceed the mean plus one
// standard deviation as false tickers") is the lightweight cousin of
// this machinery; we implement both so benches can compare them.
#pragma once

#include <cstddef>
#include <vector>

#include "core/time.h"
#include "ntp/clock_filter.h"

namespace mntp::ntp {

/// Indices (into the input vector) of peers surviving the intersection
/// algorithm — the "truechimers". Empty when no majority clique exists.
[[nodiscard]] std::vector<std::size_t> select_truechimers(
    const std::vector<PeerEstimate>& peers);

struct ClusterParams {
  /// Keep at least this many survivors (RFC 5905 NMIN..CMIN family).
  std::size_t min_survivors = 3;
};

/// Iteratively removes the survivor with the largest selection jitter
/// (RMS offset distance to the other survivors) while that jitter exceeds
/// the smallest peer jitter and more than `min_survivors` remain.
/// Input/output are indices into `peers`.
[[nodiscard]] std::vector<std::size_t> cluster_survivors(
    const std::vector<PeerEstimate>& peers, std::vector<std::size_t> candidates,
    const ClusterParams& params = {});

/// Combine survivor offsets weighted by inverse root distance; returns
/// the system offset. Requires a non-empty survivor set.
[[nodiscard]] core::Duration combine_offsets(
    const std::vector<PeerEstimate>& peers,
    const std::vector<std::size_t>& survivors);

}  // namespace mntp::ntp
