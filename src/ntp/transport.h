// Client-side query engine: one full SNTP/NTP exchange over simulated
// links, asynchronously against the event kernel.
//
// The engine owns the request lifecycle: stamp T1 from the client clock,
// serialize real wire bytes, traverse the uplink path, let the server
// stamp T2/T3, traverse the downlink path, stamp T4, validate (RFC 4330
// checks), and deliver an SntpSample — or a typed error on loss, timeout,
// or validation failure. Retries are the caller's policy, not the
// engine's (Android retries 3 times, Windows Mobile not at all; MNTP
// defers instead).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/result.h"
#include "core/rng.h"
#include "core/time.h"
#include "net/link.h"
#include "ntp/server.h"
#include "ntp/sntp.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::ntp {

/// Where and how to reach one server.
struct ServerEndpoint {
  NtpServer* server = nullptr;
  net::LinkPath up;    ///< client -> server
  net::LinkPath down;  ///< server -> client
};

struct QueryOptions {
  /// Give up if no (valid) reply arrives within this long, measured on
  /// the true timeline.
  core::Duration timeout = core::Duration::seconds(6);
  /// Emit a minimal SNTP request (true) or a full NTP client packet.
  bool sntp_style = true;
  /// Bytes on the wire including UDP/IP overhead (the paper cites ~128 B
  /// NTP polls; the header itself is 48 B).
  std::size_t wire_bytes = 76;
};

class QueryEngine {
 public:
  using Callback = std::function<void(core::Result<SntpSample>)>;

  /// `clock` is the client's system clock used for T1/T4 stamping.
  QueryEngine(sim::Simulation& sim, sim::DisciplinedClock& clock);

  /// Issue one exchange; exactly one callback will fire (sample, loss
  /// mapped to timeout, or validation error).
  void query(const ServerEndpoint& endpoint, const QueryOptions& options,
             Callback callback);

  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t responses_received() const { return received_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t timeouts_ = 0;
  obs::ShardedCounter* sent_counter_ = nullptr;
  obs::ShardedCounter* ok_counter_ = nullptr;
  obs::ShardedCounter* timeout_counter_ = nullptr;
  obs::ShardedCounter* error_counter_ = nullptr;
  obs::Histogram* rtt_ms_ = nullptr;
  /// Per-direction one-way delays on the TRUE timeline (the simulator
  /// can observe what a real client cannot). Mergeable HDR histograms —
  /// these are the distributions replicate/fleet aggregation needs.
  obs::ShardedHdrHistogram* owd_up_ms_ = nullptr;
  obs::ShardedHdrHistogram* owd_down_ms_ = nullptr;
  // Timeline probes: latest OWD per direction.
  double last_owd_up_ms_ = 0.0;
  double last_owd_down_ms_ = 0.0;
  bool has_owd_up_ = false;
  bool has_owd_down_ = false;
  obs::ProbeHandle owd_up_probe_;
  obs::ProbeHandle owd_down_probe_;
};

}  // namespace mntp::ntp
