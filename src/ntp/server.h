// Simulated NTP stratum server.
//
// A server owns its own clock — near-perfect for well-behaved stratum 1/2
// servers, deliberately wrong for *false tickers* (the paper's warm-up
// phase rejects sources "whose offsets exceed the mean plus one standard
// deviation", following NTP's selection heuristic). On a request it
// stamps receive/transmit times from its clock, echoes the origin, and
// answers after a small processing delay — exactly the observable
// behaviour of a real pool server.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/result.h"
#include "core/rng.h"
#include "core/time.h"
#include "ntp/packet.h"

namespace mntp::ntp {

struct NtpServerParams {
  std::uint8_t stratum = 2;
  std::uint32_t reference_id = 0x47505300;  // "GPS\0"
  /// Mean request-handling time (exponentially distributed).
  core::Duration processing_mean = core::Duration::microseconds(250);
  /// Server clock error at t=0 (server - true), seconds. Well-behaved
  /// servers are within a few hundred microseconds of true time.
  double clock_offset_s = 0.0;
  /// Server clock frequency error, ppm (false tickers may drift).
  double clock_skew_ppm = 0.0;
  /// Root delay/dispersion advertised in replies.
  core::Duration root_delay = core::Duration::milliseconds(8);
  core::Duration root_dispersion = core::Duration::milliseconds(4);
  /// When true the server answers every request with a RATE kiss-of-death
  /// (used in robustness tests).
  bool kiss_of_death = false;
  /// Budgeted rate limiting: when > 0, at most this many requests per
  /// window receive time; the overflow gets a RATE kiss-of-death.
  /// (`kiss_of_death = true` is the degenerate zero-budget server.)
  std::uint32_t rate_limit_per_window = 0;
  core::Duration rate_limit_window = core::Duration::seconds(1);
};

/// RFC 5905 kiss-of-death discipline, client side: on a RATE KoD the
/// poll interval backs off multiplicatively up to a cap. Shared by the
/// single-server model below and the fleet-scale rate limiter
/// (`fleet::ServerFleet`) so both model the same client reaction.
[[nodiscard]] constexpr std::uint64_t kod_backoff_interval_ns(
    std::uint64_t current_interval_ns, double backoff_factor,
    std::uint64_t cap_ns) {
  const double backed =
      static_cast<double>(current_interval_ns) * backoff_factor;
  // The cap bounds the degenerate factors (<= 0, NaN) too.
  if (!(backed > 0.0) || backed >= static_cast<double>(cap_ns)) {
    return cap_ns;
  }
  return static_cast<std::uint64_t>(backed);
}

class NtpServer {
 public:
  NtpServer(std::string name, NtpServerParams params, core::Rng rng);

  struct Reply {
    NtpPacket packet;
    /// True time at which the reply leaves the server.
    core::TimePoint departs;
  };

  /// Handle a request that arrived (true time) at `arrival`. Fails on
  /// malformed wire bytes or non-client mode.
  core::Result<Reply> handle(std::span<const std::uint8_t> wire,
                             core::TimePoint arrival);

  /// Server clock reading (server-local time) at true time t.
  [[nodiscard]] core::TimePoint server_time(core::TimePoint t) const;

  /// Server clock error (server - true) at true time t, seconds.
  [[nodiscard]] double clock_error_at(core::TimePoint t) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const NtpServerParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  /// Requests answered with a RATE kiss-of-death by the budgeted rate
  /// limiter (excludes the always-KoD `kiss_of_death` mode).
  [[nodiscard]] std::uint64_t kod_sent() const { return kod_sent_; }

  /// Step this server's clock by `delta_s` (operator action: leap-second
  /// insertion steps every UTC-tracking server by -1 s simultaneously;
  /// see the leap-second robustness tests).
  void adjust_clock(double delta_s) { params_.clock_offset_s += delta_s; }

  /// Convenience factory for a false ticker: a server whose clock is off
  /// by `offset_s` seconds (and optionally drifting).
  static NtpServerParams false_ticker(double offset_s, double skew_ppm = 0.0);

 private:
  std::string name_;
  NtpServerParams params_;
  core::Rng rng_;
  std::uint64_t served_ = 0;
  std::uint64_t kod_sent_ = 0;
  std::int64_t rate_window_ = -1;
  std::uint32_t window_served_ = 0;
};

}  // namespace mntp::ntp
