// SNTP sample arithmetic and sanity checks (RFC 4330).
//
// Given the four timestamps of a request/response exchange —
//   T1 origin (client send), T2 receive (server), T3 transmit (server),
//   T4 destination (client receive) —
// the clock offset and round-trip delay are
//   offset = ((T2 - T1) + (T3 - T4)) / 2
//   delay  = (T4 - T1) - (T3 - T2).
// A positive offset means the server clock is ahead of the client's; an
// SNTP client corrects by adding the offset to its clock. On a perfectly
// synchronized client, offset equals half the path asymmetry — which is
// why lossy, bursty wireless hops translate directly into offset error.
#pragma once

#include <cstdint>

#include "core/ntp_timestamp.h"
#include "core/result.h"
#include "core/time.h"
#include "ntp/packet.h"

namespace mntp::ntp {

/// The four-timestamp exchange plus response metadata.
struct SntpExchange {
  core::NtpTimestamp t1;  ///< client transmit (origin)
  core::NtpTimestamp t2;  ///< server receive
  core::NtpTimestamp t3;  ///< server transmit
  core::NtpTimestamp t4;  ///< client receive (destination)

  [[nodiscard]] core::Duration offset() const;
  [[nodiscard]] core::Duration delay() const;
};

/// One accepted measurement: the exchange result plus server identity,
/// recorded at completion time. This is the unit MNTP's filter consumes.
struct SntpSample {
  core::Duration offset;
  core::Duration delay;
  std::uint8_t server_stratum = 0;
  std::uint32_t server_id = 0;
  core::TimePoint completed_at;  ///< true (simulation) time of T4 arrival
};

/// RFC 4330 §5 response sanity checks, applied before a reply is used:
/// the reply must be a server-mode packet whose origin echoes our request
/// transmit timestamp, with a nonzero transmit timestamp, a usable
/// stratum (1..15), and no kiss-of-death / unsynchronized leap.
core::Status validate_sntp_response(const NtpPacket& reply,
                                    core::NtpTimestamp our_transmit);

}  // namespace mntp::ntp
