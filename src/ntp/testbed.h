// Laboratory testbed assembly (paper Figure 3).
//
// One object wires together the whole experiment apparatus: the target
// node's clock, the wireless access hop (or a wired LAN hop for the
// control runs), the monitor node's interference machinery (cross-traffic
// generator + ping feedback + controller), the NTP server pool across the
// WAN, and optionally a reference NTP client disciplining the target's
// system clock ("with NTP clock correction"). Benches and examples build
// their scenarios on top of this.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/rng.h"
#include "net/cross_traffic.h"
#include "net/monitor_controller.h"
#include "net/pinger.h"
#include "net/wired_link.h"
#include "net/wireless_channel.h"
#include "ntp/ntp_client.h"
#include "ntp/pool.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::ntp {

struct TestbedConfig {
  std::uint64_t seed = 42;
  /// Target node on the wireless hop (true) or a wired LAN hop (false).
  bool wireless = true;
  /// Run the reference NTP client to discipline the target's clock.
  bool ntp_correction = true;
  /// Run the monitor node's interference loop (cross-traffic + control).
  bool monitor_active = true;

  /// Target node oscillator. Defaults model the paper's laptop: ~-5.5 ppm
  /// constant skew (Fig 12 shows ≈ -20 ms/hour free-run drift), modest
  /// wander, a diurnal temperature term and tens-of-µs read noise.
  sim::OscillatorParams client_clock{
      .initial_offset_s = 0.0,
      .constant_skew_ppm = -5.5,
      .wander_ppm_per_sqrt_s = 0.015,
      .temp_amplitude_ppm = 0.8,
      .read_noise_s = 25e-6,
  };

  net::WirelessChannelParams channel;
  net::CrossTrafficParams traffic;
  net::MonitorControllerParams controller;
  /// Pool members are honest by default (the paper's lab experiments hit
  /// well-behaved pool.ntp.org servers); benches exercising MNTP's
  /// false-ticker rejection raise false_ticker_count explicitly.
  PoolParams pool{};
  NtpClientParams ntp;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Start the environment processes (cross-traffic, pings, controller,
  /// NTP correction) per the configuration. Clients under test are
  /// attached and started separately by the caller.
  void start();

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::DisciplinedClock& target_clock() { return *clock_; }
  [[nodiscard]] ServerPool& pool() { return *pool_; }
  [[nodiscard]] net::WirelessChannel& channel() { return *channel_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  /// The target node's access hop in each direction: the wireless channel
  /// (shared state both ways) or the wired LAN segment.
  [[nodiscard]] net::Link* last_hop_up();
  [[nodiscard]] net::Link* last_hop_down();

  /// Endpoint reaching pool member `idx` through the access hop.
  [[nodiscard]] ServerEndpoint endpoint(std::size_t idx);
  [[nodiscard]] std::size_t pick_server() { return pool_->pick_index(); }

  /// Oracle: the target system clock's true offset (local - true) in
  /// milliseconds at the current instant — the paper's "true time offset"
  /// baseline, with zero measurement error.
  [[nodiscard]] double true_clock_offset_ms();

  /// Fresh RNG stream derived from the testbed seed (for client policies
  /// that need randomness without perturbing environment streams).
  [[nodiscard]] core::Rng fork_rng() { return rng_.fork(); }

  [[nodiscard]] NtpClient* ntp_client() { return ntp_client_.get(); }
  [[nodiscard]] net::CrossTrafficGenerator& traffic() { return *traffic_; }
  [[nodiscard]] net::MonitorController& controller() { return *controller_; }
  [[nodiscard]] net::Pinger& pinger() { return *pinger_; }

 private:
  TestbedConfig config_;
  core::Rng rng_;
  sim::Simulation sim_;
  std::unique_ptr<sim::DisciplinedClock> clock_;
  std::unique_ptr<net::WirelessChannel> channel_;
  std::unique_ptr<net::WiredLink> lan_up_;
  std::unique_ptr<net::WiredLink> lan_down_;
  std::unique_ptr<ServerPool> pool_;
  std::unique_ptr<net::WiredLink> probe_wan_up_;
  std::unique_ptr<net::WiredLink> probe_wan_down_;
  std::unique_ptr<net::Pinger> pinger_;
  std::unique_ptr<net::CrossTrafficGenerator> traffic_;
  std::unique_ptr<net::MonitorController> controller_;
  std::unique_ptr<NtpClient> ntp_client_;
};

}  // namespace mntp::ntp
