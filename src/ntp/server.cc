#include "ntp/server.h"

#include <utility>

namespace mntp::ntp {

NtpServer::NtpServer(std::string name, NtpServerParams params, core::Rng rng)
    : name_(std::move(name)), params_(params), rng_(std::move(rng)) {}

double NtpServer::clock_error_at(core::TimePoint t) const {
  return params_.clock_offset_s + params_.clock_skew_ppm * 1e-6 * t.to_seconds();
}

core::TimePoint NtpServer::server_time(core::TimePoint t) const {
  return t + core::Duration::from_seconds(clock_error_at(t));
}

core::Result<NtpServer::Reply> NtpServer::handle(
    std::span<const std::uint8_t> wire, core::TimePoint arrival) {
  auto parsed = NtpPacket::parse(wire);
  if (!parsed.ok()) return parsed.error();
  const NtpPacket& req = parsed.value();
  if (req.mode != Mode::kClient) {
    return core::Error::malformed("server received non-client-mode packet");
  }

  ++served_;
  bool kod = params_.kiss_of_death;
  if (!kod && params_.rate_limit_per_window > 0) {
    const std::int64_t window = arrival.ns() / params_.rate_limit_window.ns();
    if (window != rate_window_) {
      rate_window_ = window;
      window_served_ = 0;
    }
    if (++window_served_ > params_.rate_limit_per_window) {
      kod = true;
      ++kod_sent_;
    }
  }
  const core::Duration processing = core::Duration::from_seconds(
      rng_.exponential(params_.processing_mean.to_seconds()));
  const core::TimePoint departs = arrival + processing;

  NtpPacket reply;
  reply.leap = LeapIndicator::kNoWarning;
  reply.version = req.version;
  reply.mode = Mode::kServer;
  if (kod) {
    reply.stratum = 0;
    reply.reference_id = kiss_code("RATE");
  } else {
    reply.stratum = params_.stratum;
    reply.reference_id = params_.reference_id;
  }
  reply.poll = req.poll;
  reply.precision = -23;  // ~119 ns, typical of a GPS-disciplined server
  reply.root_delay = core::NtpShort::from_duration(params_.root_delay);
  reply.root_dispersion = core::NtpShort::from_duration(params_.root_dispersion);
  // Reference timestamp: pretend the server re-synced to its upstream a
  // little while ago.
  reply.reference_ts =
      core::NtpTimestamp::from_time_point(server_time(arrival) -
                                          core::Duration::seconds(16));
  reply.origin_ts = req.transmit_ts;
  reply.receive_ts = core::NtpTimestamp::from_time_point(server_time(arrival));
  reply.transmit_ts = core::NtpTimestamp::from_time_point(server_time(departs));
  return Reply{.packet = reply, .departs = departs};
}

NtpServerParams NtpServer::false_ticker(double offset_s, double skew_ppm) {
  NtpServerParams p;
  p.stratum = 2;
  p.reference_id = 0x46414c53;  // "FALS"
  p.clock_offset_s = offset_s;
  p.clock_skew_ppm = skew_ppm;
  return p;
}

}  // namespace mntp::ntp
