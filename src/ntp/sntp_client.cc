#include "ntp/sntp_client.h"

#include <algorithm>

namespace mntp::ntp {

SntpClient::SntpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
                       ServerPool& pool, net::Link* last_hop_up,
                       net::Link* last_hop_down, SntpClientPolicy policy,
                       QueryOptions query_options)
    : sim_(sim),
      clock_(clock),
      pool_(pool),
      last_hop_up_(last_hop_up),
      last_hop_down_(last_hop_down),
      policy_(policy),
      query_options_(query_options),
      engine_(sim, clock),
      process_(sim, policy.poll_interval, [this] { poll_once(); }),
      current_poll_(policy.poll_interval) {}

void SntpClient::start() { process_.start(); }
void SntpClient::stop() { process_.stop(); }

void SntpClient::poll_once() {
  ++polls_;
  attempt(policy_.retries);
}

void SntpClient::attempt(int attempts_left) {
  const std::size_t idx = pool_.pick_index();
  const ServerEndpoint ep = pool_.endpoint(idx, last_hop_up_, last_hop_down_);
  engine_.query(ep, query_options_,
                [this, attempts_left](core::Result<SntpSample> result) {
                  handle(std::move(result), attempts_left);
                });
}

void SntpClient::handle(core::Result<SntpSample> result, int attempts_left) {
  if (!result.ok()) {
    if (policy_.honor_kiss_of_death &&
        result.error().code == core::Error::Code::kKissOfDeath) {
      // RFC 4330 §10: a KoD demands rate reduction — back off, no retry.
      ++kod_backoffs_;
      current_poll_ = std::min(policy_.max_poll_interval,
                               current_poll_.scaled(policy_.kod_backoff_factor));
      process_.set_interval(current_poll_);
      ++failures_;
      return;
    }
    if (attempts_left > 0) {
      sim_.after(policy_.retry_gap,
                 [this, attempts_left] { attempt(attempts_left - 1); });
    } else {
      ++failures_;
    }
    return;
  }
  SntpSample sample = std::move(result).take();
  samples_.push_back(sample);
  if (on_sample_) on_sample_(sample);

  if (policy_.update_clock &&
      sample.offset.abs() >= policy_.update_threshold) {
    // SNTP semantics: trust the single sample, step the clock by it.
    clock_.step(sample.offset);
    ++clock_updates_;
  }
}

std::vector<double> SntpClient::offsets_ms() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const SntpSample& s : samples_) out.push_back(s.offset.to_millis());
  return out;
}

}  // namespace mntp::ntp
