#include "ntp/sntp.h"

namespace mntp::ntp {

core::Duration SntpExchange::offset() const {
  const core::Duration a = t2 - t1;
  const core::Duration b = t3 - t4;
  return (a + b) / 2;
}

core::Duration SntpExchange::delay() const {
  return (t4 - t1) - (t3 - t2);
}

core::Status validate_sntp_response(const NtpPacket& reply,
                                    core::NtpTimestamp our_transmit) {
  if (reply.mode != Mode::kServer && reply.mode != Mode::kSymmetricPassive) {
    return core::Error::malformed("reply mode is not server");
  }
  if (reply.is_kiss_of_death()) {
    return core::Error::kiss_of_death("kiss-of-death from server");
  }
  if (reply.stratum > 15) {
    return core::Error::malformed("invalid stratum in reply");
  }
  if (reply.leap == LeapIndicator::kUnsynchronized) {
    return core::Error::unavailable("server unsynchronized (LI=3)");
  }
  if (reply.transmit_ts.is_unset()) {
    return core::Error::malformed("zero transmit timestamp in reply");
  }
  if (reply.origin_ts != our_transmit) {
    return core::Error::malformed("origin timestamp does not echo request (bogus)");
  }
  return {};
}

}  // namespace mntp::ntp
