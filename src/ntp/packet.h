// NTP packet wire format (RFC 5905 §7.3, shared by SNTP per RFC 4330).
//
// The 48-byte header is serialized/parsed explicitly (big-endian byte
// shifts, no host-order assumptions) so the simulation moves real wire
// bytes between client and server — the same code would drive a UDP
// socket unchanged.
//
//  0                   1                   2                   3
//  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
// +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
// |LI | VN  |Mode |    Stratum    |     Poll      |   Precision   |
// +---------------------------------------------------------------+
// |                          Root Delay                           |
// |                       Root Dispersion                         |
// |                        Reference ID                           |
// |                     Reference Timestamp (64)                  |
// |                      Origin Timestamp (64)                    |
// |                      Receive Timestamp (64)                   |
// |                      Transmit Timestamp (64)                  |
// +---------------------------------------------------------------+
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "core/ntp_timestamp.h"
#include "core/result.h"

namespace mntp::ntp {

enum class LeapIndicator : std::uint8_t {
  kNoWarning = 0,
  kLastMinute61 = 1,
  kLastMinute59 = 2,
  kUnsynchronized = 3,  // "alarm condition" — clock not set
};

enum class Mode : std::uint8_t {
  kReserved = 0,
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
  kControl = 6,
  kPrivate = 7,
};

/// One NTP/SNTP message. Plain value type mirroring the wire header.
struct NtpPacket {
  static constexpr std::size_t kWireSize = 48;
  static constexpr std::uint8_t kVersion = 4;

  LeapIndicator leap = LeapIndicator::kNoWarning;
  std::uint8_t version = kVersion;
  Mode mode = Mode::kClient;
  std::uint8_t stratum = 0;
  std::int8_t poll = 0;
  std::int8_t precision = -20;  // ~1 us
  core::NtpShort root_delay;
  core::NtpShort root_dispersion;
  std::uint32_t reference_id = 0;
  core::NtpTimestamp reference_ts;
  core::NtpTimestamp origin_ts;
  core::NtpTimestamp receive_ts;
  core::NtpTimestamp transmit_ts;

  /// Serialize into exactly 48 bytes, network byte order.
  void serialize(std::span<std::uint8_t, kWireSize> out) const;
  [[nodiscard]] std::array<std::uint8_t, kWireSize> to_bytes() const;

  /// Parse from wire bytes. Fails on short input, reserved mode, or a
  /// version outside [1, 4].
  static core::Result<NtpPacket> parse(std::span<const std::uint8_t> in);

  /// Build the minimal client request SNTP sends: everything zero except
  /// the first octet (LI=0, VN, Mode=client) and the transmit timestamp
  /// (RFC 4330 §5).
  static NtpPacket make_sntp_request(core::NtpTimestamp transmit_time);

  /// Build a full-NTP client request (poll/precision populated and the
  /// previous transmit echoed in origin — what ntpd emits).
  static NtpPacket make_ntp_request(core::NtpTimestamp transmit_time,
                                    std::int8_t poll_exponent,
                                    core::NtpTimestamp previous_origin);

  /// Heuristic the log study (§3.1) uses to classify a captured *client*
  /// request as SNTP: all header fields other than the first octet and
  /// transmit timestamp are zero.
  [[nodiscard]] bool looks_like_sntp_request() const;

  /// Kiss-of-death check: stratum 0 replies carry an ASCII code in
  /// reference_id (RFC 5905 §7.4).
  [[nodiscard]] bool is_kiss_of_death() const {
    return mode == Mode::kServer && stratum == 0;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Well-known kiss-of-death reference IDs.
std::uint32_t kiss_code(const char (&ascii)[5]);

}  // namespace mntp::ntp
