// NTP per-peer clock filter (RFC 5905 §10).
//
// Keeps the last eight (offset, delay, dispersion) tuples from one server
// and nominates the sample with the lowest delay — the core insight being
// that offset error correlates with delay inflation, so the min-delay
// sample is the most trustworthy. Dispersion ages at 15 ppm between
// samples; peer jitter is the RMS of the surviving offsets against the
// nominated one. A popcorn spike suppressor discards a sample whose
// offset jumps by more than `popcorn_gate` times the current jitter; a
// second consecutive out-of-gate sample is admitted so a genuine level
// shift converges after one suppressed sample instead of starving the
// filter forever.
//
// This is the machinery SNTP *omits* (the paper: SNTP "does not employ
// the sophisticated clock correction and filtering algorithms of NTP"),
// and the reason the full-NTP baseline stays tight on a lossy channel.
#pragma once

#include <cstddef>
#include <optional>

#include "core/ring_buffer.h"
#include "core/time.h"
#include "obs/telemetry.h"

namespace mntp::ntp {

/// One filtered peer estimate, as consumed by selection/combining.
struct PeerEstimate {
  core::Duration offset;
  core::Duration delay;
  core::Duration dispersion;
  double jitter_s = 0.0;
  /// True when this estimate nominates a sample not yet consumed by the
  /// discipline. RFC 5905 uses each filter output once: re-disciplining
  /// on a stale nomination while the clock moves creates a feedback loop.
  bool fresh = true;

  /// Root distance contribution: delay/2 + dispersion (RFC 5905 §11.1).
  [[nodiscard]] core::Duration root_distance() const {
    return delay / 2 + dispersion;
  }
};

struct ClockFilterParams {
  std::size_t stages = 8;
  /// Dispersion growth rate between samples (RFC 5905 PHI = 15e-6).
  double phi = 15e-6;
  /// Initial per-sample dispersion (measurement precision bound).
  core::Duration base_dispersion = core::Duration::microseconds(500);
  /// Popcorn spike gate: reject a sample whose offset deviates from the
  /// last nominated offset by more than this many jitters. 0 disables
  /// (the default: the min-delay nomination already sidelines spikes, and
  /// a hard gate can starve the filter when jitter is estimated low).
  /// The gate only ever swallows a lone spike: the second consecutive
  /// out-of-gate sample is admitted (level-shift escape hatch).
  double popcorn_gate = 0.0;
  /// Floor on the jitter used by the popcorn gate, so a lucky streak of
  /// identical samples cannot collapse the gate to zero.
  double popcorn_jitter_floor_s = 5e-3;
};

class ClockFilter {
 public:
  explicit ClockFilter(ClockFilterParams params = {});

  /// Insert a new sample observed at true time `now`. Returns the updated
  /// estimate, or nullopt if the sample was swallowed by the popcorn
  /// suppressor (filter state still ages).
  std::optional<PeerEstimate> update(core::Duration offset, core::Duration delay,
                                     core::TimePoint now);

  /// Most recent nominated estimate, if any sample survived yet.
  [[nodiscard]] std::optional<PeerEstimate> current() const { return current_; }

  [[nodiscard]] std::size_t samples_seen() const { return seen_; }
  [[nodiscard]] std::size_t samples_suppressed() const { return suppressed_; }

  void reset();

 private:
  struct Stage {
    core::Duration offset;
    core::Duration delay;
    core::Duration dispersion;
    core::TimePoint when;
  };

  ClockFilterParams params_;
  core::RingBuffer<Stage> stages_;
  core::TimePoint last_used_;
  std::optional<PeerEstimate> current_;
  std::size_t seen_ = 0;
  std::size_t suppressed_ = 0;
  /// Set while the previous sample was popcorn-suppressed: the next
  /// out-of-gate sample is admitted (level-shift escape hatch).
  bool popcorn_armed_ = false;
  obs::ShardedCounter* samples_counter_ = nullptr;
  obs::ShardedCounter* suppressed_counter_ = nullptr;
};

}  // namespace mntp::ntp
