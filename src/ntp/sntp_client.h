// Periodic SNTP client.
//
// This is the baseline the paper measures: a client that polls a pool
// server on a fixed interval, uses the reported offset directly ("SNTP
// uses clock offset to update the local clock directly and none of the
// time-tested filtering algorithms"), retries a configurable number of
// times on failure, and optionally steps the system clock when the
// offset exceeds an update threshold — the knobs vendor implementations
// set (Android: daily poll, 3 retries, 5000 ms threshold; Windows
// Mobile: weekly poll, no retries; the lab experiments: 5 s poll).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/result.h"
#include "core/rng.h"
#include "core/time.h"
#include "ntp/pool.h"
#include "ntp/sntp.h"
#include "ntp/transport.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::ntp {

struct SntpClientPolicy {
  core::Duration poll_interval = core::Duration::seconds(5);
  /// Additional attempts after a failed exchange, back to back.
  int retries = 0;
  core::Duration retry_gap = core::Duration::seconds(1);
  /// Apply the measured offset to the system clock (step) when it exceeds
  /// `update_threshold`. When false the client only reports offsets —
  /// the mode used in the paper's head-to-head experiments.
  bool update_clock = false;
  core::Duration update_threshold = core::Duration::zero();
  /// RFC 4330 §10 compliance: on a kiss-of-death reply, back the polling
  /// interval off multiplicatively instead of retrying.
  bool honor_kiss_of_death = true;
  double kod_backoff_factor = 2.0;
  core::Duration max_poll_interval = core::Duration::hours(36);
};

class SntpClient {
 public:
  /// Queries go through `last_hop_up`/`last_hop_down` (nullptr = wired
  /// client directly on the WAN) to a random pool member per poll.
  SntpClient(sim::Simulation& sim, sim::DisciplinedClock& clock,
             ServerPool& pool, net::Link* last_hop_up, net::Link* last_hop_down,
             SntpClientPolicy policy, QueryOptions query_options = {});

  void start();
  void stop();

  /// All accepted samples, in completion order.
  [[nodiscard]] const std::vector<SntpSample>& samples() const { return samples_; }

  /// Measured offsets in milliseconds (convenience for analysis).
  [[nodiscard]] std::vector<double> offsets_ms() const;

  [[nodiscard]] std::size_t polls() const { return polls_; }
  [[nodiscard]] std::size_t failures() const { return failures_; }
  [[nodiscard]] std::size_t clock_updates() const { return clock_updates_; }
  /// Kiss-of-death replies honored (each one lengthens the poll interval).
  [[nodiscard]] std::size_t kod_backoffs() const { return kod_backoffs_; }
  [[nodiscard]] core::Duration current_poll_interval() const {
    return current_poll_;
  }

  /// Observer invoked on every accepted sample (benches hook this to
  /// record series against true time).
  void set_on_sample(std::function<void(const SntpSample&)> cb) {
    on_sample_ = std::move(cb);
  }

 private:
  void poll_once();
  void attempt(int attempts_left);
  void handle(core::Result<SntpSample> result, int attempts_left);

  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  ServerPool& pool_;
  net::Link* last_hop_up_;
  net::Link* last_hop_down_;
  SntpClientPolicy policy_;
  QueryOptions query_options_;
  QueryEngine engine_;
  sim::PeriodicProcess process_;
  std::vector<SntpSample> samples_;
  std::function<void(const SntpSample&)> on_sample_;
  std::size_t polls_ = 0;
  std::size_t failures_ = 0;
  std::size_t clock_updates_ = 0;
  std::size_t kod_backoffs_ = 0;
  core::Duration current_poll_;
};

}  // namespace mntp::ntp
