#include "ntp/selection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mntp::ntp {

std::vector<std::size_t> select_truechimers(
    const std::vector<PeerEstimate>& peers) {
  const std::size_t n = peers.size();
  if (n == 0) return {};
  if (n == 1) return {0};

  // Endpoint list: (value, type) with type +1 for a lower endpoint and
  // -1 for an upper endpoint.
  struct Edge {
    double value;
    int type;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * n);
  for (const PeerEstimate& p : peers) {
    const double o = p.offset.to_seconds();
    const double r = std::max(p.root_distance().to_seconds(), 1e-9);
    edges.push_back({o - r, +1});
    edges.push_back({o + r, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.type > b.type;  // lower endpoints first at ties
  });

  // Find the smallest number of falsetickers f such that an intersection
  // covered by at least n - f intervals exists (RFC 5905 fig. "selection
  // algorithm"); then collect the peers whose intervals cover it.
  for (std::size_t f = 0; f < (n + 1) / 2; ++f) {
    const int need = static_cast<int>(n - f);
    int depth = 0;
    double lo = 0.0, hi = 0.0;
    bool found_lo = false, found_hi = false;
    for (const Edge& e : edges) {
      depth += e.type;
      if (!found_lo && depth >= need) {
        lo = e.value;
        found_lo = true;
      }
    }
    depth = 0;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
      depth -= it->type;
      if (!found_hi && depth >= need) {
        hi = it->value;
        found_hi = true;
      }
    }
    if (found_lo && found_hi && lo <= hi) {
      std::vector<std::size_t> out;
      for (std::size_t i = 0; i < n; ++i) {
        const double o = peers[i].offset.to_seconds();
        const double r = std::max(peers[i].root_distance().to_seconds(), 1e-9);
        // A truechimer's interval overlaps the intersection interval.
        if (o - r <= hi && o + r >= lo) out.push_back(i);
      }
      if (out.size() >= n - f) return out;
    }
  }
  return {};
}

namespace {

/// RMS offset distance from survivor `i` to the other survivors.
double selection_jitter(const std::vector<PeerEstimate>& peers,
                        const std::vector<std::size_t>& survivors,
                        std::size_t i) {
  double acc = 0.0;
  std::size_t terms = 0;
  for (std::size_t j : survivors) {
    if (j == i) continue;
    const double d =
        (peers[i].offset - peers[j].offset).to_seconds();
    acc += d * d;
    ++terms;
  }
  return terms ? std::sqrt(acc / static_cast<double>(terms)) : 0.0;
}

}  // namespace

std::vector<std::size_t> cluster_survivors(
    const std::vector<PeerEstimate>& peers, std::vector<std::size_t> candidates,
    const ClusterParams& params) {
  while (candidates.size() > std::max<std::size_t>(params.min_survivors, 1)) {
    // Max selection jitter vs min peer jitter.
    double max_sel = -1.0;
    std::size_t worst_pos = 0;
    double min_peer_jitter = 1e18;
    for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
      const double sel = selection_jitter(peers, candidates, candidates[pos]);
      if (sel > max_sel) {
        max_sel = sel;
        worst_pos = pos;
      }
      min_peer_jitter = std::min(min_peer_jitter, peers[candidates[pos]].jitter_s);
    }
    if (max_sel <= min_peer_jitter) break;  // pruning no longer helps
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(worst_pos));
  }
  return candidates;
}

core::Duration combine_offsets(const std::vector<PeerEstimate>& peers,
                               const std::vector<std::size_t>& survivors) {
  if (survivors.empty()) {
    throw std::invalid_argument("combine_offsets: empty survivor set");
  }
  double weight_sum = 0.0;
  double acc = 0.0;
  for (std::size_t i : survivors) {
    const double dist = std::max(peers[i].root_distance().to_seconds(), 1e-6);
    const double w = 1.0 / dist;
    weight_sum += w;
    acc += w * peers[i].offset.to_seconds();
  }
  return core::Duration::from_seconds(acc / weight_sum);
}

}  // namespace mntp::ntp
