#include "ntp/clock_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metric_names.h"

namespace mntp::ntp {

ClockFilter::ClockFilter(ClockFilterParams params)
    : params_(params), stages_(params.stages == 0 ? 1 : params.stages) {
  if (params.stages == 0) {
    throw std::invalid_argument("ClockFilter: stages must be > 0");
  }
  obs::MetricsRegistry& m = obs::Telemetry::global().metrics();
  samples_counter_ = m.sharded_counter(obs::metric_names::kNtpFilterSamples);
  suppressed_counter_ = m.sharded_counter(obs::metric_names::kNtpFilterSuppressed);
}

void ClockFilter::reset() {
  stages_.clear();
  current_.reset();
  last_used_ = core::TimePoint::epoch();
  seen_ = 0;
  suppressed_ = 0;
  popcorn_armed_ = false;
}

std::optional<PeerEstimate> ClockFilter::update(core::Duration offset,
                                                core::Duration delay,
                                                core::TimePoint now) {
  ++seen_;
  samples_counter_->inc();

  // Popcorn spike suppressor: a *lone* sample far from the current
  // estimate is dropped. Suppressed samples never enter `stages_`, so a
  // genuine level shift would otherwise be suppressed forever — the
  // escape hatch admits the second consecutive out-of-gate sample (two
  // in a row is a level shift, not a popcorn spike; same policy as
  // ntpd's suppressor, see DESIGN.md §9).
  if (current_ && params_.popcorn_gate > 0.0) {
    const double jitter =
        std::max(current_->jitter_s, params_.popcorn_jitter_floor_s);
    const double dev_s = (offset - current_->offset).abs().to_seconds();
    if (dev_s > params_.popcorn_gate * jitter) {
      if (!popcorn_armed_) {
        popcorn_armed_ = true;
        ++suppressed_;
        suppressed_counter_->inc();
        if (auto q = obs::ambient_query(); q.tracer) {
          q.tracer->stage(q.id, now, "clock_filter",
                          obs::Reason::kPopcornSuppressed,
                          {{"deviation_ms", dev_s * 1e3},
                           {"gate_ms", params_.popcorn_gate * jitter * 1e3}});
        }
        return std::nullopt;
      }
      // Second consecutive out-of-gate sample: admit it below.
      popcorn_armed_ = false;
    } else {
      popcorn_armed_ = false;  // an in-gate sample disarms the hatch
    }
  }

  stages_.push(Stage{.offset = offset,
                     .delay = delay,
                     .dispersion = params_.base_dispersion,
                     .when = now});

  // Nominate the min-delay sample, with each stage's dispersion aged by
  // PHI * (now - sample time).
  std::size_t best = 0;
  core::Duration best_delay = core::Duration::max();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].delay < best_delay) {
      best_delay = stages_[i].delay;
      best = i;
    }
  }
  const Stage& nominated = stages_[best];

  PeerEstimate est;
  est.offset = nominated.offset;
  est.delay = nominated.delay;
  est.dispersion =
      nominated.dispersion +
      core::Duration::from_seconds(params_.phi * (now - nominated.when).to_seconds());

  // Peer jitter: RMS offset deviation of the other stages from the
  // nominated sample (RFC 5905 §10).
  double acc = 0.0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i == best) continue;
    const double d = (stages_[i].offset - nominated.offset).to_seconds();
    acc += d * d;
    ++terms;
  }
  est.jitter_s = terms > 0 ? std::sqrt(acc / static_cast<double>(terms))
                           : params_.base_dispersion.to_seconds();

  // Each nominated sample is handed to the discipline at most once.
  est.fresh = nominated.when > last_used_;
  if (est.fresh) last_used_ = nominated.when;

  current_ = est;
  return est;
}

}  // namespace mntp::ntp
