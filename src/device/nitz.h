// NITZ (Network Identity and Time Zone) time source.
//
// §2: NITZ is "a weaker mechanism to obtain time information as the
// estimates are not obtained in a periodic fashion like NTP and are
// dependent on the device crossing a network boundary." We model
// boundary crossings as a Poisson process; each crossing delivers a
// coarse time fix (NITZ carries whole-second resolution plus network
// propagation slop), which the device applies as a step.
#pragma once

#include <cstddef>

#include "core/rng.h"
#include "core/time.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::device {

struct NitzParams {
  /// Mean time between network-boundary crossings.
  core::Duration mean_crossing_interval = core::Duration::hours(36);
  /// Residual clock error after a NITZ fix (uniform in ±bound) — NITZ
  /// resolution is seconds, delivery adds network slop.
  core::Duration fix_error_bound = core::Duration::milliseconds(800);
};

class NitzSource {
 public:
  NitzSource(sim::Simulation& sim, sim::DisciplinedClock& clock,
             NitzParams params, core::Rng rng);

  void start();
  void stop();

  [[nodiscard]] std::size_t fixes_delivered() const { return fixes_; }

 private:
  void schedule_next();
  void deliver_fix();

  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  NitzParams params_;
  core::Rng rng_;
  sim::EventHandle pending_;
  bool running_ = false;
  std::size_t fixes_ = 0;
};

}  // namespace mntp::device
