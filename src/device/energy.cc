#include "device/energy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::device {

EnergyAccountant::EnergyAccountant(RadioEnergyParams params,
                                   std::string probe_label)
    : params_(params) {
  obs::Labels labels;
  if (!probe_label.empty()) labels.emplace_back("client", std::move(probe_label));
  obs::TimeSeriesRecorder& ts = obs::Telemetry::global().timeseries();
  energy_probe_ = ts.probe(obs::metric_names::kTsDeviceEnergyMj, labels,
                           [this](core::TimePoint now) -> std::optional<double> {
                             return total_mj(now);
                           });
  radio_probe_ = ts.probe(obs::metric_names::kTsDeviceRadioOnS, labels,
                          [this](core::TimePoint now) -> std::optional<double> {
                            return radio_on_time(now).to_seconds();
                          });
}

void EnergyAccountant::on_exchange(core::TimePoint t, std::size_t bytes) {
  if (window_open_ && t < window_start_) {
    throw std::logic_error("EnergyAccountant: time moved backwards");
  }
  ++exchanges_;
  bytes_ += bytes;
  accrued_mj_ += params_.per_byte_mj * static_cast<double>(bytes);

  // The whole radio-on window accrues tail-level power; each exchange
  // adds the active-over-tail premium on top, so active time is not
  // double counted.
  const double active_premium =
      (params_.active_mw - params_.tail_mw) *
      params_.active_per_exchange.to_seconds();
  const core::TimePoint this_end =
      t + params_.active_per_exchange + params_.tail_time;
  if (window_open_ && t <= window_end_) {
    // The radio is still in its tail: no promotion, the window extends.
    window_end_ = std::max(window_end_, this_end);
    accrued_mj_ += active_premium;
  } else {
    // Close the previous window (its baseline energy) and promote.
    if (window_open_) {
      const core::Duration window = window_end_ - window_start_;
      accrued_mj_ += params_.tail_mw * window.to_seconds();
      accrued_on_time_ += window;
    }
    ++promotions_;
    accrued_mj_ += params_.promotion_mj + active_premium;
    window_open_ = true;
    window_start_ = t;
    window_end_ = this_end;
  }
}

double EnergyAccountant::total_mj(core::TimePoint end) const {
  double total = accrued_mj_;
  if (window_open_) {
    const core::TimePoint upto = std::min(end, window_end_);
    if (upto > window_start_) {
      total += params_.tail_mw * (upto - window_start_).to_seconds();
    }
  }
  return total;
}

core::Duration EnergyAccountant::radio_on_time(core::TimePoint end) const {
  core::Duration on = accrued_on_time_;
  if (window_open_) {
    const core::TimePoint upto = std::min(end, window_end_);
    if (upto > window_start_) on += upto - window_start_;
  }
  return on;
}

}  // namespace mntp::device
