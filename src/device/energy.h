// Radio energy accounting for sync-protocol comparisons.
//
// §3.4 argues NTP's periodic polling is ill-suited to phones because
// "a few 100B transfers periodically on mobile phones with 3G/GSM
// technology can consume more energy than bulk one-shot transfers"
// (Balasubramanian et al.) — the cost is dominated not by bytes but by
// radio state promotions and the high-power tail the radio holds after
// each transfer. This model implements that accounting: each
// transmission wakes the radio (promotion energy) unless it lands inside
// the tail window left by a previous one, transfers cost per-byte energy,
// and every active period is followed by a fixed-length tail at elevated
// power. The paper's future-work benchmarking of MNTP vs SNTP vs NTP
// "in terms of metrics like processor and battery performance" runs on
// top of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/time.h"
#include "obs/timeseries.h"

namespace mntp::device {

struct RadioEnergyParams {
  /// Energy to promote the radio from idle to the active state (RRC
  /// IDLE -> DCH style), millijoules.
  double promotion_mj = 600.0;
  /// Power while actively transferring, milliwatts.
  double active_mw = 800.0;
  /// Time the radio stays in the high-power tail after a transfer.
  core::Duration tail_time = core::Duration::seconds(12);
  /// Power during the tail, milliwatts.
  double tail_mw = 450.0;
  /// Marginal energy per byte transferred, millijoules/byte (small; the
  /// point of the model is that it does NOT dominate).
  double per_byte_mj = 0.005;
  /// Nominal time the radio is active per datagram exchange.
  core::Duration active_per_exchange = core::Duration::milliseconds(250);
};

/// Accumulates radio energy over a simulated run. Not tied to the event
/// kernel: callers report transmissions in non-decreasing time order
/// (clients do this naturally).
class EnergyAccountant {
 public:
  /// `probe_label`, when non-empty, becomes a {"client": label} timeline
  /// label distinguishing several accountants (e.g. one per protocol in a
  /// head-to-head bench).
  explicit EnergyAccountant(RadioEnergyParams params = {},
                            std::string probe_label = {});

  /// Report one network exchange (request + response) of `bytes` total at
  /// time t. Must be called with non-decreasing t.
  void on_exchange(core::TimePoint t, std::size_t bytes);

  /// Total radio energy consumed through time `end`, millijoules.
  [[nodiscard]] double total_mj(core::TimePoint end) const;

  [[nodiscard]] std::size_t promotions() const { return promotions_; }
  [[nodiscard]] std::size_t exchanges() const { return exchanges_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  /// Cumulative time the radio spent out of idle through `end`.
  [[nodiscard]] core::Duration radio_on_time(core::TimePoint end) const;

  [[nodiscard]] const RadioEnergyParams& params() const { return params_; }

 private:
  RadioEnergyParams params_;
  std::size_t promotions_ = 0;
  std::size_t exchanges_ = 0;
  std::uint64_t bytes_ = 0;
  double accrued_mj_ = 0.0;             // energy of fully closed windows
  core::Duration accrued_on_time_;      // radio-on time of closed windows
  bool window_open_ = false;
  core::TimePoint window_start_;
  core::TimePoint window_end_;          // end of the current active+tail window
  // Timeline probes: cumulative draw and radio-on time sampled on the
  // recorder cadence (inert unless the recorder captures).
  obs::ProbeHandle energy_probe_;
  obs::ProbeHandle radio_probe_;
};

}  // namespace mntp::device
