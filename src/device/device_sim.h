// Device clock-error simulation under a vendor policy.
//
// Runs one mobile device (phone-grade oscillator) on a 4G access network
// against the standard server pool, synchronizing per the given policy
// (plus optional NITZ fixes), and samples the *true* clock error on a
// fixed cadence — the quantity the paper argues motivates MNTP: daily or
// weekly SNTP with multi-second update thresholds leaves commodity
// devices seconds off true time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "device/nitz.h"
#include "device/policies.h"
#include "net/cellular.h"
#include "ntp/pool.h"
#include "ntp/sntp_client.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::device {

struct DeviceSimConfig {
  std::uint64_t seed = 7;
  DevicePolicy policy = android_policy();
  /// Phone-grade oscillator: worse than the laptop's (cheap crystal,
  /// thermal swings from the SoC).
  sim::OscillatorParams oscillator{
      .initial_offset_s = 0.4,  // as shipped/boot error
      .constant_skew_ppm = 12.0,
      .wander_ppm_per_sqrt_s = 0.05,
      .temp_amplitude_ppm = 2.0,
      .read_noise_s = 50e-6,
  };
  net::CellularParams cellular;
  ntp::PoolParams pool;
  NitzParams nitz;
  /// True-offset sampling cadence for the output series.
  core::Duration sample_interval = core::Duration::minutes(30);
};

struct DeviceSimResult {
  std::string policy_name;
  /// (t, true clock offset in ms) samples.
  std::vector<std::pair<double, double>> offset_series;
  std::size_t sntp_polls = 0;
  std::size_t sntp_failures = 0;
  std::size_t clock_updates = 0;
  std::size_t nitz_fixes = 0;
  double max_abs_offset_ms = 0.0;
  double mean_abs_offset_ms = 0.0;
};

/// Run the device for `span`; deterministic in the config seed.
[[nodiscard]] DeviceSimResult run_device_simulation(const DeviceSimConfig& config,
                                                    core::Duration span);

}  // namespace mntp::device
