// Vendor time-sync policies (paper §2).
//
// "Android SNTP implementations poll once a day if data from NITZ are
// unavailable... performs only three retries upon error and updates the
// system time only if the estimate differs by more than 5000 ms.
// Similarly, the Windows Mobile OS updates the system clock once every
// 7 days. Even if the synchronization request fails, no further retries
// are sent." These policies are what makes commodity mobile clocks so
// loosely synchronized; the device simulator quantifies the resulting
// clock error against the same substrate the other experiments use.
#pragma once

#include <string>

#include "core/time.h"
#include "ntp/sntp_client.h"

namespace mntp::device {

struct DevicePolicy {
  std::string name;
  ntp::SntpClientPolicy sntp;
  /// Accept NITZ boundary-crossing updates when they occur.
  bool use_nitz = false;
};

/// Android (KitKat-era) defaults.
[[nodiscard]] inline DevicePolicy android_policy() {
  return DevicePolicy{
      .name = "android",
      .sntp = {.poll_interval = core::Duration::hours(24),
               .retries = 3,
               .retry_gap = core::Duration::seconds(5),
               .update_clock = true,
               .update_threshold = core::Duration::milliseconds(5000)},
      .use_nitz = true,
  };
}

/// Windows Mobile defaults.
[[nodiscard]] inline DevicePolicy windows_mobile_policy() {
  return DevicePolicy{
      .name = "windows-mobile",
      .sntp = {.poll_interval = core::Duration::hours(24 * 7),
               .retries = 0,
               .retry_gap = core::Duration::seconds(5),
               .update_clock = true,
               .update_threshold = core::Duration::zero()},
      .use_nitz = false,
  };
}

/// The lab cadence used throughout §5: poll every 5 seconds, no clock
/// update (offsets are reported, not applied).
[[nodiscard]] inline DevicePolicy lab_policy() {
  return DevicePolicy{
      .name = "lab-5s",
      .sntp = {.poll_interval = core::Duration::seconds(5),
               .retries = 0,
               .retry_gap = core::Duration::seconds(1),
               .update_clock = false,
               .update_threshold = core::Duration::zero()},
      .use_nitz = false,
  };
}

}  // namespace mntp::device
