// GPS time source model.
//
// §3.4 weighs GPS as an alternative corrector and rejects it for general
// deployment: availability depends on location ("GPS valleys such as
// buildings and tunnels"), many devices lack receivers or prohibit
// GPS-based time (iOS), and fixes are power-hungry. This model lets the
// comparison benches quantify those trade-offs: a two-state
// (open-sky/denied) availability process, a time-to-fix that stretches
// when signal is marginal, a small residual error on delivered fixes
// (OS-level timestamping, not raw receiver precision), and a fixed energy
// cost per fix attempt.
#pragma once

#include <cstddef>

#include "core/rng.h"
#include "core/time.h"
#include "sim/clock_model.h"
#include "sim/simulation.h"

namespace mntp::device {

struct GpsParams {
  /// Mean sojourns of the availability process.
  core::Duration mean_open_sky = core::Duration::minutes(40);
  core::Duration mean_denied = core::Duration::minutes(20);
  /// Fix acquisition time when the sky is open (exponential mean).
  core::Duration mean_time_to_fix = core::Duration::seconds(8);
  /// Attempts give up after this long (denied environments).
  core::Duration fix_timeout = core::Duration::seconds(30);
  /// Residual clock error after applying a fix (uniform in ±bound) — the
  /// OS delivery path, not the receiver, dominates.
  core::Duration fix_error_bound = core::Duration::milliseconds(15);
  /// Cadence at which the device attempts fixes.
  core::Duration fix_interval = core::Duration::minutes(10);
  /// Energy per fix attempt (receiver powered through acquisition),
  /// millijoules. VTrack-class measurements put continuous GPS at
  /// ~400 mW; a 10 s acquisition is ~4 J.
  double energy_per_attempt_mj = 4000.0;
};

/// Periodically attempts GPS fixes and steps the clock on success.
class GpsTimeSource {
 public:
  GpsTimeSource(sim::Simulation& sim, sim::DisciplinedClock& clock,
                GpsParams params, core::Rng rng);

  void start();
  void stop();

  /// True when satellites are acquirable at `now` (open-sky state).
  [[nodiscard]] bool available(core::TimePoint now);

  [[nodiscard]] std::size_t attempts() const { return attempts_; }
  [[nodiscard]] std::size_t fixes() const { return fixes_; }
  [[nodiscard]] double energy_mj() const { return energy_mj_; }

 private:
  void attempt_fix();
  void advance_to(core::TimePoint t);

  sim::Simulation& sim_;
  sim::DisciplinedClock& clock_;
  GpsParams params_;
  core::Rng rng_;
  sim::PeriodicProcess process_;
  bool open_sky_ = true;
  core::TimePoint next_transition_;
  core::TimePoint last_;
  std::size_t attempts_ = 0;
  std::size_t fixes_ = 0;
  double energy_mj_ = 0.0;
};

}  // namespace mntp::device
