#include "device/nitz.h"

namespace mntp::device {

NitzSource::NitzSource(sim::Simulation& sim, sim::DisciplinedClock& clock,
                       NitzParams params, core::Rng rng)
    : sim_(sim), clock_(clock), params_(params), rng_(std::move(rng)) {}

void NitzSource::start() {
  running_ = true;
  schedule_next();
}

void NitzSource::stop() {
  running_ = false;
  pending_.cancel();
}

void NitzSource::schedule_next() {
  const double gap_s =
      rng_.exponential(params_.mean_crossing_interval.to_seconds());
  pending_ = sim_.after(core::Duration::from_seconds(gap_s), [this] {
    if (!running_) return;
    deliver_fix();
    schedule_next();
  });
}

void NitzSource::deliver_fix() {
  ++fixes_;
  // Step the clock to true time plus the NITZ residual error.
  const double current_offset_s = clock_.offset_at(sim_.now());
  const double residual_s = rng_.uniform(-params_.fix_error_bound.to_seconds(),
                                         params_.fix_error_bound.to_seconds());
  clock_.step(core::Duration::from_seconds(-current_offset_s + residual_s));
}

}  // namespace mntp::device
