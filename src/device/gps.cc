#include "device/gps.h"

#include <algorithm>

namespace mntp::device {

GpsTimeSource::GpsTimeSource(sim::Simulation& sim, sim::DisciplinedClock& clock,
                             GpsParams params, core::Rng rng)
    : sim_(sim),
      clock_(clock),
      params_(params),
      rng_(std::move(rng)),
      process_(sim, params.fix_interval, [this] { attempt_fix(); }) {
  next_transition_ =
      core::TimePoint::epoch() +
      core::Duration::from_seconds(
          rng_.exponential(params_.mean_open_sky.to_seconds()));
}

void GpsTimeSource::start() { process_.start(); }
void GpsTimeSource::stop() { process_.stop(); }

void GpsTimeSource::advance_to(core::TimePoint t) {
  while (next_transition_ <= t) {
    open_sky_ = !open_sky_;
    const double mean_s =
        (open_sky_ ? params_.mean_open_sky : params_.mean_denied).to_seconds();
    next_transition_ += core::Duration::from_seconds(rng_.exponential(mean_s));
  }
  last_ = t;
}

bool GpsTimeSource::available(core::TimePoint now) {
  advance_to(now);
  return open_sky_;
}

void GpsTimeSource::attempt_fix() {
  const core::TimePoint now = sim_.now();
  ++attempts_;
  energy_mj_ += params_.energy_per_attempt_mj;
  if (!available(now)) return;  // burned the energy, no fix

  const core::Duration ttf = std::min(
      core::Duration::from_seconds(
          rng_.exponential(params_.mean_time_to_fix.to_seconds())),
      params_.fix_timeout);
  if (ttf >= params_.fix_timeout) return;  // gave up

  sim_.after(ttf, [this] {
    const core::TimePoint t = sim_.now();
    if (!available(t)) return;  // sky closed mid-acquisition
    ++fixes_;
    const double current = clock_.offset_at(t);
    const double residual =
        rng_.uniform(-params_.fix_error_bound.to_seconds(),
                     params_.fix_error_bound.to_seconds());
    clock_.step(core::Duration::from_seconds(-current + residual));
  });
}

}  // namespace mntp::device
