#include "device/device_sim.h"

#include <algorithm>
#include <cmath>

namespace mntp::device {

DeviceSimResult run_device_simulation(const DeviceSimConfig& config,
                                      core::Duration span) {
  core::Rng rng(config.seed);
  sim::Simulation sim;
  sim::DisciplinedClock clock(config.oscillator, rng.fork());
  net::CellularNetwork cellular(config.cellular, rng.fork());
  ntp::ServerPool pool(config.pool, rng.fork());

  ntp::SntpClient client(sim, clock, pool, &cellular.uplink(),
                         &cellular.downlink(), config.policy.sntp);
  NitzSource nitz(sim, clock, config.nitz, rng.fork());

  DeviceSimResult result;
  result.policy_name = config.policy.name;

  sim::PeriodicProcess sampler(sim, config.sample_interval, [&] {
    const double offset_ms = clock.offset_at(sim.now()) * 1e3;
    result.offset_series.emplace_back(sim.now().to_seconds(), offset_ms);
  });

  client.start();
  if (config.policy.use_nitz) nitz.start();
  sampler.start();

  sim.run_until(core::TimePoint::epoch() + span);

  client.stop();
  nitz.stop();
  sampler.stop();

  result.sntp_polls = client.polls();
  result.sntp_failures = client.failures();
  result.clock_updates = client.clock_updates();
  result.nitz_fixes = nitz.fixes_delivered();
  double acc = 0.0;
  for (const auto& [t, off] : result.offset_series) {
    result.max_abs_offset_ms = std::max(result.max_abs_offset_ms, std::fabs(off));
    acc += std::fabs(off);
  }
  if (!result.offset_series.empty()) {
    result.mean_abs_offset_ms =
        acc / static_cast<double>(result.offset_series.size());
  }
  return result;
}

}  // namespace mntp::device
