// Wireless hints: the link-layer observables MNTP's channel gate reads.
//
// The paper (§4.1) samples Received Signal Strength Indication and the
// noise floor from the wireless adaptor (via `airport` / `iwconfig`) and
// derives the SNR margin as RSSI - noise. This struct is the simulated
// equivalent of one such adaptor reading.
#pragma once

#include "core/time.h"
#include "core/units.h"

namespace mntp::net {

struct WirelessHints {
  core::TimePoint when;
  core::Dbm rssi;
  core::Dbm noise;

  /// SNR margin as the paper defines it: RSSI - noise.
  [[nodiscard]] core::Decibels snr_margin() const { return rssi - noise; }
};

}  // namespace mntp::net
