// Monitor-node controller: the paper's scriptable interference tool.
//
// §3.2: "if the latencies of ping probes reported by TN increases, as
// observed from the number of packet losses in ping probes, the file
// download frequency is decreased and the transmission power value is
// increased thereby making the channel less lossy and dynamic. Otherwise,
// the frequency of downloads and transmission power are increased and
// decreased respectively. Once the channel stabilizes, as denoted by no
// packet losses in ping traffic, our tool automatically responds by a
// decrease in transmission power and increase in download frequency,
// making the channel conditions variable and lossy at random intervals."
//
// The controller closes that loop over the simulated channel: it keeps
// the channel oscillating between stressed and recovering — the "wide
// range of wireless network conditions" the experiments need.
#pragma once

#include "core/time.h"
#include "core/units.h"
#include "net/cross_traffic.h"
#include "net/pinger.h"
#include "net/wireless_channel.h"
#include "sim/simulation.h"

namespace mntp::net {

struct MonitorControllerParams {
  core::Duration control_interval = core::Duration::seconds(10);
  /// Loss fraction above which the channel counts as distressed.
  double loss_high_watermark = 0.15;
  /// Loss fraction below which the channel counts as stable.
  double loss_low_watermark = 0.0;
  /// RTT above which the channel counts as distressed even without loss.
  core::Duration rtt_high_watermark = core::Duration::milliseconds(150);
  core::Decibels tx_power_step{2.0};
  core::Dbm min_tx_power{8.0};
  core::Dbm max_tx_power{27.0};
  double frequency_step_factor = 1.3;
};

class MonitorController {
 public:
  MonitorController(sim::Simulation& sim, WirelessChannel& channel,
                    CrossTrafficGenerator& traffic, Pinger& pinger,
                    MonitorControllerParams params);

  void start();
  void stop();

  /// Number of control decisions taken (diagnostics).
  [[nodiscard]] std::size_t ticks() const { return ticks_; }
  /// Number of "relieve pressure" vs "add pressure" decisions.
  [[nodiscard]] std::size_t relieve_count() const { return relieve_; }
  [[nodiscard]] std::size_t pressure_count() const { return pressure_; }

 private:
  void control_tick();

  sim::Simulation& sim_;
  WirelessChannel& channel_;
  CrossTrafficGenerator& traffic_;
  Pinger& pinger_;
  MonitorControllerParams params_;
  sim::PeriodicProcess process_;
  std::size_t ticks_ = 0;
  std::size_t relieve_ = 0;
  std::size_t pressure_ = 0;
};

}  // namespace mntp::net
