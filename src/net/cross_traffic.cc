#include "net/cross_traffic.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"

namespace mntp::net {

CrossTrafficGenerator::CrossTrafficGenerator(sim::Simulation& sim,
                                             WirelessChannel& channel,
                                             CrossTrafficParams params,
                                             core::Rng rng)
    : sim_(sim), channel_(channel), params_(params), rng_(std::move(rng)) {
  obs::MetricsRegistry& m = sim_.telemetry().metrics();
  downloads_counter_ = m.counter(obs::metric_names::kNetXtrafficDownloads);
  utilization_gauge_ = m.gauge(obs::metric_names::kNetXtrafficUtilization);
}

void CrossTrafficGenerator::start() {
  if (running_) return;
  running_ = true;
  channel_.set_utilization(params_.idle_utilization);
  begin_idle();
}

void CrossTrafficGenerator::stop() {
  running_ = false;
  pending_.cancel();
  downloading_ = false;
  channel_.set_utilization(params_.idle_utilization);
}

void CrossTrafficGenerator::set_frequency_scale(double scale) {
  freq_scale_ = std::clamp(scale, 0.05, 20.0);
}

void CrossTrafficGenerator::begin_idle() {
  downloading_ = false;
  channel_.set_utilization(params_.idle_utilization);
  const double gap_s =
      rng_.exponential(params_.mean_idle.to_seconds() / freq_scale_);
  pending_ = sim_.after(core::Duration::from_seconds(gap_s), [this] {
    if (running_) begin_download();
  });
}

void CrossTrafficGenerator::begin_download() {
  downloading_ = true;
  const double utilization =
      rng_.uniform(params_.min_utilization, params_.max_utilization);
  channel_.set_utilization(utilization);
  utilization_gauge_->set(utilization);
  const double dur_s = rng_.lognormal(
      std::log(params_.median_download.to_seconds()), params_.download_sigma);
  if (sim_.telemetry().tracing()) {
    sim_.telemetry().event(sim_.now(), obs::categories::kNet,
                           "xtraffic_download",
                           {{"utilization", utilization},
                            {"duration_s", dur_s}});
  }
  pending_ = sim_.after(core::Duration::from_seconds(dur_s), [this] {
    ++completed_;
    downloads_counter_->inc();
    if (running_) begin_idle();
  });
}

}  // namespace mntp::net
