#include "net/monitor_controller.h"

#include <algorithm>

namespace mntp::net {

MonitorController::MonitorController(sim::Simulation& sim,
                                     WirelessChannel& channel,
                                     CrossTrafficGenerator& traffic,
                                     Pinger& pinger,
                                     MonitorControllerParams params)
    : sim_(sim),
      channel_(channel),
      traffic_(traffic),
      pinger_(pinger),
      params_(params),
      process_(sim, params.control_interval, [this] { control_tick(); }) {}

void MonitorController::start() { process_.start(params_.control_interval); }
void MonitorController::stop() { process_.stop(); }

void MonitorController::control_tick() {
  ++ticks_;
  const ProbeStats stats = pinger_.stats();
  const bool distressed = stats.loss_fraction() > params_.loss_high_watermark ||
                          stats.mean_rtt > params_.rtt_high_watermark;
  const bool stable = stats.probes > 0 &&
                      stats.loss_fraction() <= params_.loss_low_watermark &&
                      stats.mean_rtt <= params_.rtt_high_watermark;

  auto clamp_power = [&](core::Dbm p) {
    return core::Dbm{std::clamp(p.value(), params_.min_tx_power.value(),
                                params_.max_tx_power.value())};
  };

  if (distressed) {
    // Relieve: fewer downloads, more power.
    ++relieve_;
    traffic_.set_frequency_scale(traffic_.frequency_scale() /
                                 params_.frequency_step_factor);
    channel_.set_tx_power(clamp_power(channel_.tx_power() + params_.tx_power_step));
  } else if (stable) {
    // Stress: more downloads, less power.
    ++pressure_;
    traffic_.set_frequency_scale(traffic_.frequency_scale() *
                                 params_.frequency_step_factor);
    channel_.set_tx_power(clamp_power(channel_.tx_power() - params_.tx_power_step));
  }
  // In between the watermarks: hold.
}

}  // namespace mntp::net
