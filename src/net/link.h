// Link abstraction.
//
// A Link decides, per packet, whether the packet survives and how long it
// takes to traverse the hop. Links are stateful (channels fade, queues
// fill); both decisions may depend on when the packet is offered, and
// stateful links require queries in non-decreasing time order.
// Directionality matters: a duplex hop is modeled as two Link endpoints
// (possibly sharing state), which is what lets the cellular model express
// the uplink/downlink asymmetry that biases SNTP offsets.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/time.h"
#include "obs/query_trace.h"

namespace mntp::sim {
class Simulation;
}

namespace mntp::net {

/// Outcome of offering one packet to a link.
struct TransmitResult {
  bool delivered = false;
  /// One-way traversal time; meaningful only when delivered.
  core::Duration delay = core::Duration::zero();
};

class Link {
 public:
  virtual ~Link() = default;

  /// Offer a packet of `bytes` at true time `now`. `now` must be
  /// non-decreasing across calls for stateful links — which is why
  /// multi-hop traversal is event-driven (see send_datagram).
  virtual TransmitResult transmit(core::TimePoint now, std::size_t bytes) = 0;
};

/// An ordered sequence of links forming a unidirectional path. The packet
/// is lost if any hop drops it; delays accumulate hop by hop.
class LinkPath {
 public:
  LinkPath() = default;
  explicit LinkPath(std::vector<Link*> hops) : hops_(std::move(hops)) {}

  void append(Link& hop) { hops_.push_back(&hop); }

  [[nodiscard]] std::size_t hop_count() const { return hops_.size(); }
  [[nodiscard]] Link& hop(std::size_t i) const { return *hops_.at(i); }

 private:
  std::vector<Link*> hops_;
};

/// Fire-and-forget datagram send. The packet traverses `path` hop by hop;
/// each hop is evaluated by a simulation event at the packet's arrival
/// time at that hop, preserving the time-monotonic query contract of
/// stateful links. On end-to-end delivery `on_arrival(arrival_time)`
/// fires; if any hop drops the packet `on_drop()` fires (at the drop
/// instant) when provided. Exactly one of the two callbacks runs.
///
/// `query` optionally ties the datagram to a query trace (see
/// obs/query_trace.h): each surviving hop records a "hop" stage, a drop
/// records a "loss" stage naming the hop, and the ambient query is
/// installed around each transmit() so channel models can attach
/// airtime detail. Id 0 (the default) traces nothing.
void send_datagram(sim::Simulation& sim, LinkPath path, std::size_t bytes,
                   std::function<void(core::TimePoint)> on_arrival,
                   std::function<void()> on_drop = {},
                   obs::QueryId query = 0);

}  // namespace mntp::net
