#include "net/link.h"

#include <memory>

#include "sim/simulation.h"

namespace mntp::net {

namespace {

struct Walker : std::enable_shared_from_this<Walker> {
  sim::Simulation& sim;
  LinkPath path;
  std::size_t bytes;
  std::function<void(core::TimePoint)> on_arrival;
  std::function<void()> on_drop;

  Walker(sim::Simulation& s, LinkPath p, std::size_t b,
         std::function<void(core::TimePoint)> arr, std::function<void()> drop)
      : sim(s),
        path(std::move(p)),
        bytes(b),
        on_arrival(std::move(arr)),
        on_drop(std::move(drop)) {}

  void step(std::size_t hop_index, core::TimePoint t) {
    if (hop_index == path.hop_count()) {
      if (on_arrival) on_arrival(t);
      return;
    }
    const TransmitResult r = path.hop(hop_index).transmit(t, bytes);
    if (!r.delivered) {
      if (on_drop) on_drop();
      return;
    }
    auto self = shared_from_this();
    sim.at(t + r.delay, [self, hop_index, next = t + r.delay] {
      self->step(hop_index + 1, next);
    });
  }
};

}  // namespace

void send_datagram(sim::Simulation& sim, LinkPath path, std::size_t bytes,
                   std::function<void(core::TimePoint)> on_arrival,
                   std::function<void()> on_drop) {
  auto w = std::make_shared<Walker>(sim, std::move(path), bytes,
                                    std::move(on_arrival), std::move(on_drop));
  w->step(0, sim.now());
}

}  // namespace mntp::net
