#include "net/link.h"

#include <memory>

#include "sim/simulation.h"

namespace mntp::net {

namespace {

struct Walker : std::enable_shared_from_this<Walker> {
  sim::Simulation& sim;
  LinkPath path;
  std::size_t bytes;
  std::function<void(core::TimePoint)> on_arrival;
  std::function<void()> on_drop;
  /// Non-null only when this datagram belongs to a traced query.
  obs::QueryTracer* tracer = nullptr;
  obs::QueryId query = 0;

  Walker(sim::Simulation& s, LinkPath p, std::size_t b,
         std::function<void(core::TimePoint)> arr, std::function<void()> drop)
      : sim(s),
        path(std::move(p)),
        bytes(b),
        on_arrival(std::move(arr)),
        on_drop(std::move(drop)) {}

  void step(std::size_t hop_index, core::TimePoint t) {
    if (hop_index == path.hop_count()) {
      if (on_arrival) on_arrival(t);
      return;
    }
    TransmitResult r;
    if (tracer) {
      // Channel models under this transmit() see the packet's query as
      // ambient and can record airtime detail (retries, queueing, ...).
      obs::ActiveQueryScope scope(*tracer, query);
      r = path.hop(hop_index).transmit(t, bytes);
    } else {
      r = path.hop(hop_index).transmit(t, bytes);
    }
    if (!r.delivered) {
      if (tracer) {
        tracer->stage(query, t, "loss", obs::Reason::kLoss,
                      {{"hop", static_cast<std::int64_t>(hop_index)}});
      }
      if (on_drop) on_drop();
      return;
    }
    if (tracer) {
      tracer->stage(query, t, "hop", obs::Reason::kNone,
                    {{"hop", static_cast<std::int64_t>(hop_index)},
                     {"delay_ms", r.delay.to_millis()}});
    }
    auto self = shared_from_this();
    sim.at(t + r.delay, [self, hop_index, next = t + r.delay] {
      self->step(hop_index + 1, next);
    });
  }
};

}  // namespace

void send_datagram(sim::Simulation& sim, LinkPath path, std::size_t bytes,
                   std::function<void(core::TimePoint)> on_arrival,
                   std::function<void()> on_drop, obs::QueryId query) {
  auto w = std::make_shared<Walker>(sim, std::move(path), bytes,
                                    std::move(on_arrival), std::move(on_drop));
  if (query != 0) {
    obs::QueryTracer& tracer = sim.telemetry().query_tracer();
    if (tracer.enabled()) {
      w->tracer = &tracer;
      w->query = query;
    }
  }
  w->step(0, sim.now());
}

}  // namespace mntp::net
