// Wireless last-hop channel model.
//
// This is the simulated counterpart of the paper's 802.11 testbed hop
// (laptop hotspot WAP + target node, §3.2). It must reproduce the two
// couplings MNTP exploits:
//
//   1. channel quality drives packet fate: low SNR means MAC retries,
//      queueing behind cross-traffic, heavy-tailed delay spikes, loss;
//   2. channel quality is *observable* through link-layer hints (RSSI,
//      noise floor), sampled with measurement noise.
//
// Structure: a Gilbert–Elliott good/bad process models interference and
// deep-fade episodes; Ornstein–Uhlenbeck processes model slow shadowing of
// RSSI and noise-floor wander; cross-traffic (set externally by
// CrossTrafficGenerator) raises utilization, which adds queueing delay,
// collision losses and a noise-floor rise. Transmit power is adjustable
// at runtime — the knob the paper's monitor node scripts.
//
// All state advances lazily and deterministically from the owning
// simulation's clock; two packets offered at the same instant see the
// same channel state.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"
#include "net/hints.h"
#include "net/link.h"
#include "net/snr_lut.h"
#include "obs/telemetry.h"

namespace mntp::net {

struct WirelessChannelParams {
  // --- Radio geometry ---
  core::Dbm default_tx_power{20.0};
  /// Mean path loss between WAP and client; RSSI ~= tx_power - path_loss.
  core::Decibels path_loss{83.0};
  /// Stationary stddev of the slow shadowing process on RSSI.
  double shadowing_sigma_db = 2.5;
  /// Relaxation time of the shadowing OU process.
  double shadowing_tau_s = 25.0;
  /// Per-reading fast-fading fluctuation on hint observations.
  double fast_fading_sigma_db = 1.2;
  core::Dbm base_noise{-95.0};
  double noise_sigma_db = 1.5;
  double noise_tau_s = 15.0;

  // --- Gilbert–Elliott interference/fade episodes ---
  core::Duration mean_good_duration = core::Duration::seconds(30);
  core::Duration mean_bad_duration = core::Duration::seconds(15);
  /// Extra attenuation of RSSI while in the bad state.
  core::Decibels bad_extra_fade{10.0};
  /// Noise-floor rise while in the bad state (adjacent-channel traffic).
  core::Decibels bad_noise_rise{16.0};

  // --- MAC / queueing behaviour ---
  core::Duration base_delay = core::Duration::milliseconds(2);
  /// Mean per-frame service time used by the queueing term.
  core::Duration service_time = core::Duration::milliseconds(6);
  /// Mean additional backoff per MAC retry.
  core::Duration retry_backoff = core::Duration::milliseconds(5);
  int max_retries = 6;
  /// SNR margin (dB) at which a single transmission attempt fails 50% of
  /// the time; lower SNR fails more.
  double snr50_db = 8.0;
  /// Logistic slope of the attempt-failure curve (dB per e-fold).
  double snr_slope_db = 2.2;
  /// Extra per-attempt collision probability contributed by saturating
  /// cross-traffic (scaled by utilization).
  double collision_at_full_load = 0.25;
  /// Noise-floor rise contributed by cross-traffic at full utilization.
  core::Decibels load_noise_rise{6.0};
  /// Cap on the queueing term so the M/M/1 approximation cannot explode.
  core::Duration max_queueing = core::Duration::milliseconds(400);
  /// Probability of a heavy-tailed delay spike per packet in the bad
  /// state (channel-access stalls observed as multi-hundred-ms offsets).
  double bad_spike_probability = 0.8;
  /// Pareto scale/shape of bad-state delay spikes.
  core::Duration spike_scale = core::Duration::milliseconds(80);
  double spike_shape = 1.5;
  core::Duration max_spike = core::Duration::milliseconds(1600);
  double bytes_per_second = 2.5e6;  // ~20 Mbit/s effective

  /// Direction asymmetry. The client's uplink contends against the AP's
  /// bulk downlink bursts and loses (small station vs aggregating AP), so
  /// queueing stalls and access spikes hit the uplink harder — which is
  /// what skews measured SNTP offsets positive in the paper's traces.
  /// Downlink terms are scaled by these factors.
  double downlink_queue_factor = 0.25;
  double downlink_spike_factor = 0.25;

  /// Integration step for the OU processes.
  core::Duration tick = core::Duration::milliseconds(100);

  // --- Opt-in fast paths (both default off) -----------------------------
  //
  // Neither is enabled in the paper-reproduction configurations: the LUT
  // perturbs attempt-failure probabilities by up to its interpolation
  // error (a borderline Bernoulli draw can flip), and the coarse advance
  // draws the OU processes differently, so enabling either changes
  // realizations even though the modeled distributions are unchanged.

  /// Replace the per-attempt logistic evaluation with a precomputed
  /// lookup table (linear interpolation; |error| <= 1e-5 for any slope,
  /// see WirelessChannel::snr_failure_probability).
  bool use_snr_lut = false;
  /// Advance the OU shadowing/noise processes across an idle gap in one
  /// exact transition step (decay e^{-gap/tau}, innovation variance
  /// sigma^2 (1 - e^{-2 gap/tau})) instead of fixed ticks. Exact at any
  /// horizon — the tick integrator is only an Euler approximation — but
  /// one draw per advance means the realization depends on *when* the
  /// channel is queried, not just on the seed.
  bool coarse_ou_advance = false;
};

class WirelessChannel {
 public:
  WirelessChannel(WirelessChannelParams params, core::Rng rng);

  /// Directional Link endpoints sharing this channel's state. Uplink is
  /// client -> AP (carries requests), downlink AP -> client (responses).
  [[nodiscard]] Link& uplink() { return uplink_endpoint_; }
  [[nodiscard]] Link& downlink() { return downlink_endpoint_; }

  /// Offer one frame in the given direction; fate and delay reflect the
  /// channel state at `now`.
  TransmitResult transmit_dir(core::TimePoint now, std::size_t bytes,
                              bool is_uplink);

  /// Sample the link-layer hints as a wireless adaptor would report them
  /// (slow state plus fast-fading measurement noise).
  [[nodiscard]] WirelessHints observe_hints(core::TimePoint now);

  /// Current transmit power (the monitor node's control knob).
  [[nodiscard]] core::Dbm tx_power() const { return tx_power_; }
  void set_tx_power(core::Dbm p) { tx_power_ = p; }

  /// Offered background load in [0,1], set by the cross-traffic process.
  [[nodiscard]] double utilization() const { return utilization_; }
  void set_utilization(double u);

  /// True while the Gilbert–Elliott process is in the bad state.
  [[nodiscard]] bool in_bad_state(core::TimePoint now);

  /// Noise-free RSSI/noise at `now` (state without measurement noise);
  /// used by tests to validate the hint observation path.
  [[nodiscard]] core::Dbm true_rssi(core::TimePoint now);
  [[nodiscard]] core::Dbm true_noise(core::TimePoint now);

  [[nodiscard]] const WirelessChannelParams& params() const { return params_; }

  /// Probability that a single MAC attempt fails from SNR alone (no
  /// collision term): the logistic curve, or its lookup table when
  /// `use_snr_lut` is set. Public so tests can pin the LUT error bound.
  [[nodiscard]] double snr_failure_probability(double snr_db) const;

 private:
  class Endpoint final : public Link {
   public:
    Endpoint(WirelessChannel& channel, bool is_uplink)
        : channel_(channel), is_uplink_(is_uplink) {}
    TransmitResult transmit(core::TimePoint now, std::size_t bytes) override {
      return channel_.transmit_dir(now, bytes, is_uplink_);
    }

   private:
    WirelessChannel& channel_;
    bool is_uplink_;
  };

  void advance_to(core::TimePoint t);
  [[nodiscard]] double attempt_failure_probability(core::Decibels snr) const;

  Endpoint uplink_endpoint_{*this, true};
  Endpoint downlink_endpoint_{*this, false};
  WirelessChannelParams params_;
  core::Rng rng_;
  core::Dbm tx_power_;
  double utilization_ = 0.0;

  core::TimePoint last_;
  bool bad_ = false;
  core::TimePoint next_transition_;
  double shadow_db_ = 0.0;
  double noise_wander_db_ = 0.0;

  // SNR-failure lookup table (built only when params_.use_snr_lut; see
  // net/snr_lut.h — the fleet layer shares the same table type): uniform
  // grid over snr50 ± 20 slopes; outside that span the logistic is
  // within 2.1e-9 of its asymptote, so lookups clamp to the ends.
  SnrFailureLut snr_lut_;

  // Telemetry handles (per direction: [0]=up, [1]=down), bound at
  // construction to the then-current global obs context.
  obs::Telemetry* telemetry_;
  obs::ShardedCounter* tx_counter_[2];
  obs::ShardedCounter* drop_counter_[2];
  obs::Histogram* delay_ms_[2];
  obs::ShardedCounter* bad_transitions_;
  // Timeline probes: latest delivered delay per direction and the
  // offered-load knob (inert unless the recorder captures).
  double last_delay_ms_[2] = {0.0, 0.0};
  bool has_delay_[2] = {false, false};
  obs::ProbeHandle delay_probe_[2];
  obs::ProbeHandle util_probe_;
};

}  // namespace mntp::net
