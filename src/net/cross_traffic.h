// Cross-traffic generator.
//
// The paper's monitor node intermittently downloads a large file through
// the WAP "at random intervals from a fixed download destination" to
// occupy the channel (§3.2). This process reproduces that workload:
// exponential idle gaps, lognormally-distributed download durations, and
// a per-download utilization level pushed into the wireless channel.
// The monitor controller scales the download frequency up and down.
#pragma once

#include <functional>

#include "core/rng.h"
#include "core/time.h"
#include "net/wireless_channel.h"
#include "sim/simulation.h"

namespace mntp::net {

struct CrossTrafficParams {
  /// Mean idle gap between downloads at frequency scale 1.0.
  core::Duration mean_idle = core::Duration::seconds(25);
  /// Median download duration.
  core::Duration median_download = core::Duration::seconds(12);
  /// Lognormal sigma of the download duration.
  double download_sigma = 0.6;
  /// Channel utilization while a download is active (sampled per
  /// download, uniform in [min, max]).
  double min_utilization = 0.55;
  double max_utilization = 0.92;
  /// Residual utilization between downloads (beacons, background apps).
  double idle_utilization = 0.04;
};

class CrossTrafficGenerator {
 public:
  CrossTrafficGenerator(sim::Simulation& sim, WirelessChannel& channel,
                        CrossTrafficParams params, core::Rng rng);

  /// Begin the idle/download cycle.
  void start();

  /// Stop after the current phase completes; the channel is returned to
  /// idle utilization.
  void stop();

  /// Scale the download *frequency* (the monitor node's second knob):
  /// 2.0 halves the mean idle gap, 0.5 doubles it. Clamped to
  /// [0.05, 20].
  void set_frequency_scale(double scale);
  [[nodiscard]] double frequency_scale() const { return freq_scale_; }

  [[nodiscard]] bool download_active() const { return downloading_; }
  [[nodiscard]] std::size_t downloads_completed() const { return completed_; }

 private:
  void begin_idle();
  void begin_download();

  sim::Simulation& sim_;
  WirelessChannel& channel_;
  CrossTrafficParams params_;
  core::Rng rng_;
  sim::EventHandle pending_;
  double freq_scale_ = 1.0;
  bool running_ = false;
  bool downloading_ = false;
  std::size_t completed_ = 0;
  obs::Counter* downloads_counter_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
};

}  // namespace mntp::net
