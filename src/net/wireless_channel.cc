#include "net/wireless_channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metric_names.h"

namespace mntp::net {

WirelessChannel::WirelessChannel(WirelessChannelParams params, core::Rng rng)
    : params_(params),
      rng_(std::move(rng)),
      tx_power_(params.default_tx_power),
      telemetry_(&obs::Telemetry::global()) {
  if (params_.tick <= core::Duration::zero()) {
    throw std::invalid_argument("WirelessChannel: tick must be > 0");
  }
  if (params_.max_retries < 0) {
    throw std::invalid_argument("WirelessChannel: max_retries must be >= 0");
  }
  if (params_.snr_slope_db <= 0.0) {
    throw std::invalid_argument("WirelessChannel: snr_slope_db must be > 0");
  }
  if (params_.use_snr_lut) {
    snr_lut_ = SnrFailureLut::build(params_.snr50_db, params_.snr_slope_db);
  }
  obs::MetricsRegistry& m = telemetry_->metrics();
  for (int d = 0; d < 2; ++d) {
    const obs::Labels dir{{"dir", d == 0 ? "up" : "down"}};
    tx_counter_[d] = m.sharded_counter(obs::metric_names::kNetWifiTx, dir);
    drop_counter_[d] = m.sharded_counter(obs::metric_names::kNetWifiDrop, dir);
    delay_ms_[d] = m.histogram(obs::metric_names::kNetWifiDelayMs,
                               obs::HistogramOptions::latency_ms(), dir);
  }
  bad_transitions_ = m.sharded_counter(obs::metric_names::kNetWifiBadStateTransitions);
  obs::TimeSeriesRecorder& ts = telemetry_->timeseries();
  for (int d = 0; d < 2; ++d) {
    const obs::Labels labels{{"transport", "wifi"},
                             {"dir", d == 0 ? "up" : "down"}};
    delay_probe_[d] =
        ts.probe(obs::metric_names::kTsNetDelayMs, labels,
                 [this, d](core::TimePoint) -> std::optional<double> {
                   if (!has_delay_[d]) return std::nullopt;
                   return last_delay_ms_[d];
                 });
  }
  util_probe_ =
      ts.probe(obs::metric_names::kTsNetUtilization,
               obs::Labels{{"transport", "wifi"}},
               [this](core::TimePoint) -> std::optional<double> {
                 return utilization_;
               });
  // First good->bad transition.
  next_transition_ = core::TimePoint::epoch() +
      core::Duration::from_seconds(
          rng_.exponential(params_.mean_good_duration.to_seconds()));
}

void WirelessChannel::set_utilization(double u) {
  utilization_ = std::clamp(u, 0.0, 1.0);
}

void WirelessChannel::advance_to(core::TimePoint t) {
  if (t < last_) {
    throw std::logic_error("WirelessChannel: time moved backwards");
  }
  // Gilbert–Elliott transitions: exponential sojourn times.
  while (next_transition_ <= t) {
    bad_ = !bad_;
    if (bad_) bad_transitions_->inc();
    const double mean_s = (bad_ ? params_.mean_bad_duration
                                : params_.mean_good_duration)
                              .to_seconds();
    next_transition_ += core::Duration::from_seconds(rng_.exponential(mean_s));
  }
  if (params_.coarse_ou_advance) {
    // One exact OU transition across the whole gap: X(t+g) has mean
    // e^{-g/tau} X(t) and variance sigma^2 (1 - e^{-2g/tau}). Cost is
    // independent of the gap length, where the tick integrator below
    // pays 2 normal draws per 100 ms of simulated idle time.
    if (last_ < t) {
      const double gap = (t - last_).to_seconds();
      const double d_sh = std::exp(-gap / params_.shadowing_tau_s);
      shadow_db_ = d_sh * shadow_db_ +
                   params_.shadowing_sigma_db * std::sqrt(1.0 - d_sh * d_sh) *
                       rng_.normal_fast(0.0, 1.0);
      const double d_no = std::exp(-gap / params_.noise_tau_s);
      noise_wander_db_ = d_no * noise_wander_db_ +
                         params_.noise_sigma_db * std::sqrt(1.0 - d_no * d_no) *
                             rng_.normal_fast(0.0, 1.0);
      last_ = t;
    }
    return;
  }
  // OU processes, integrated in fixed ticks for query-order independence.
  while (last_ < t) {
    const core::TimePoint next = std::min(t, last_ + params_.tick);
    const double dt = (next - last_).to_seconds();
    const double a_sh = dt / params_.shadowing_tau_s;
    shadow_db_ += -a_sh * shadow_db_ +
                  params_.shadowing_sigma_db * std::sqrt(2.0 * a_sh) *
                      rng_.normal(0.0, 1.0);
    const double a_no = dt / params_.noise_tau_s;
    noise_wander_db_ += -a_no * noise_wander_db_ +
                        params_.noise_sigma_db * std::sqrt(2.0 * a_no) *
                            rng_.normal(0.0, 1.0);
    last_ = next;
  }
}

bool WirelessChannel::in_bad_state(core::TimePoint now) {
  advance_to(now);
  return bad_;
}

core::Dbm WirelessChannel::true_rssi(core::TimePoint now) {
  advance_to(now);
  core::Dbm rssi = tx_power_ - params_.path_loss + core::Decibels{shadow_db_};
  if (bad_) rssi = rssi - params_.bad_extra_fade;
  return rssi;
}

core::Dbm WirelessChannel::true_noise(core::TimePoint now) {
  advance_to(now);
  core::Dbm noise = params_.base_noise + core::Decibels{noise_wander_db_} +
                    core::Decibels{params_.load_noise_rise.value() * utilization_};
  if (bad_) noise = noise + params_.bad_noise_rise;
  return noise;
}

WirelessHints WirelessChannel::observe_hints(core::TimePoint now) {
  const core::Dbm rssi = true_rssi(now);
  const core::Dbm noise = true_noise(now);
  return WirelessHints{
      .when = now,
      .rssi = rssi + core::Decibels{rng_.normal(0.0, params_.fast_fading_sigma_db)},
      .noise = noise + core::Decibels{rng_.normal(0.0, params_.fast_fading_sigma_db * 0.5)},
  };
}

double WirelessChannel::snr_failure_probability(double snr_db) const {
  if (!snr_lut_.empty()) return snr_lut_(snr_db);
  // Logistic in SNR margin: ~0 above snr50 + a few slopes, ~1 well below.
  return 1.0 /
         (1.0 + std::exp((snr_db - params_.snr50_db) / params_.snr_slope_db));
}

double WirelessChannel::attempt_failure_probability(core::Decibels snr) const {
  const double p_snr = snr_failure_probability(snr.value());
  const double p_collision = params_.collision_at_full_load * utilization_;
  return std::clamp(p_snr + (1.0 - p_snr) * p_collision, 0.0, 1.0);
}

TransmitResult WirelessChannel::transmit_dir(core::TimePoint now,
                                             std::size_t bytes,
                                             bool is_uplink) {
  advance_to(now);
  const std::size_t dir = is_uplink ? 0 : 1;
  tx_counter_[dir]->inc();
  const double queue_factor = is_uplink ? 1.0 : params_.downlink_queue_factor;
  const double spike_factor = is_uplink ? 1.0 : params_.downlink_spike_factor;
  const core::Decibels snr = true_rssi(now) - true_noise(now);
  const double p_fail = attempt_failure_probability(snr);

  // MAC retry loop: each attempt independently fails with p_fail; a
  // failed attempt costs an exponential backoff before the next try.
  // The final attempt's failure drops the packet outright — no backoff
  // is drawn for a retry that never happens (a dead draw here would
  // shift the RNG stream of every event after a drop).
  int retries = 0;
  bool delivered = false;
  core::Duration backoff = core::Duration::zero();
  for (int attempt = 0; attempt <= params_.max_retries; ++attempt) {
    if (!rng_.bernoulli(p_fail)) {
      delivered = true;
      retries = attempt;
      break;
    }
    if (attempt == params_.max_retries) break;
    backoff += core::Duration::from_seconds(
        rng_.exponential(params_.retry_backoff.to_seconds()) *
        static_cast<double>(attempt + 1));
  }
  if (!delivered) {
    drop_counter_[dir]->inc();
    if (auto q = obs::ambient_query(); q.tracer) {
      q.tracer->stage(q.id, now, "airtime", obs::Reason::kNone,
                      {{"dir", std::string(is_uplink ? "up" : "down")},
                       {"attempts", static_cast<std::int64_t>(params_.max_retries) + 1},
                       {"exhausted", true},
                       {"snr_db", snr.value()},
                       {"p_fail", p_fail}});
    }
    return {.delivered = false, .delay = core::Duration::zero()};
  }

  // Queueing behind cross-traffic: M/M/1-flavoured mean wait
  // rho/(1-rho) * service, sampled exponentially and capped.
  core::Duration queueing = core::Duration::zero();
  if (utilization_ > 0.0) {
    const double rho = std::min(utilization_, 0.97);
    const double mean_wait_s =
        rho / (1.0 - rho) * params_.service_time.to_seconds() * queue_factor;
    queueing = core::Duration::from_seconds(rng_.exponential(mean_wait_s));
    queueing = std::min(queueing, params_.max_queueing);
  }

  // Bad-state heavy-tail stalls: rare but large, the source of the
  // multi-hundred-millisecond SNTP offsets the paper observes. They hit
  // the uplink harder (see downlink_spike_factor).
  core::Duration spike = core::Duration::zero();
  if (bad_ &&
      rng_.bernoulli(params_.bad_spike_probability * spike_factor)) {
    spike = core::Duration::from_seconds(
        rng_.pareto(params_.spike_scale.to_seconds(), params_.spike_shape));
    spike = std::min(spike, params_.max_spike);
  }

  core::Duration serialization = core::Duration::zero();
  if (params_.bytes_per_second > 0.0) {
    serialization = core::Duration::from_seconds(
        static_cast<double>(bytes) * (1.0 + static_cast<double>(retries)) /
        params_.bytes_per_second);
  }

  const core::Duration delay =
      params_.base_delay + backoff + queueing + spike + serialization;
  delay_ms_[dir]->record(delay.to_millis());
  last_delay_ms_[dir] = delay.to_millis();
  has_delay_[dir] = true;
  if (auto q = obs::ambient_query(); q.tracer) {
    // Per-query airtime breakdown: where this packet's delay came from.
    q.tracer->stage(q.id, now, "airtime", obs::Reason::kNone,
                    {{"dir", std::string(is_uplink ? "up" : "down")},
                     {"retries", static_cast<std::int64_t>(retries)},
                     {"backoff_ms", backoff.to_millis()},
                     {"queueing_ms", queueing.to_millis()},
                     {"spike_ms", spike.to_millis()},
                     {"snr_db", snr.value()},
                     {"utilization", utilization_}});
  }
  if (telemetry_->tracing() && spike > core::Duration::zero()) {
    // Heavy-tail stalls are the events MNTP exists to dodge; trace them.
    telemetry_->event(now, obs::categories::kNet, "wifi_spike",
                      {{"dir", std::string(is_uplink ? "up" : "down")},
                       {"delay_ms", delay.to_millis()},
                       {"spike_ms", spike.to_millis()}});
  }
  return {.delivered = true, .delay = delay};
}

}  // namespace mntp::net
