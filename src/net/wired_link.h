// Wired link model: a LAN segment or a wide-area Internet path.
//
// The paper's wired baseline (MacBook on Ethernet reaching pool servers)
// shows SNTP offsets with mean ~4 ms and sd ~7 ms — i.e. low, weakly
// varying queueing jitter and negligible loss. We model the one-way delay
// as base propagation + lognormal queueing jitter + per-byte serialization,
// with a small independent loss probability.
#pragma once

#include "core/rng.h"
#include "net/link.h"

namespace mntp::net {

struct WiredLinkParams {
  /// Fixed propagation + minimum forwarding delay.
  core::Duration base_delay = core::Duration::milliseconds(20);
  /// Median of the additional queueing jitter.
  core::Duration jitter_median = core::Duration::milliseconds(2);
  /// Shape of the lognormal jitter (sigma of the underlying normal).
  /// Larger values thicken the tail.
  double jitter_sigma = 0.8;
  /// Independent per-packet loss probability.
  double loss_probability = 0.001;
  /// Serialization rate; 0 disables the per-byte term.
  double bytes_per_second = 12.5e6;  // 100 Mbit/s

  /// Convenience presets.
  static WiredLinkParams lan();        ///< sub-millisecond local segment
  static WiredLinkParams wan(core::Duration base);  ///< Internet path
};

class WiredLink final : public Link {
 public:
  WiredLink(WiredLinkParams params, core::Rng rng);

  TransmitResult transmit(core::TimePoint now, std::size_t bytes) override;

  [[nodiscard]] const WiredLinkParams& params() const { return params_; }

 private:
  WiredLinkParams params_;
  core::Rng rng_;
};

}  // namespace mntp::net
