#include "net/pinger.h"

#include <algorithm>

namespace mntp::net {

Pinger::Pinger(sim::Simulation& sim, LinkPath forward, LinkPath reverse,
               PingerParams params)
    : sim_(sim),
      forward_(std::move(forward)),
      reverse_(std::move(reverse)),
      params_(params),
      window_(params.window == 0 ? 1 : params.window),
      process_(sim, params.interval, [this] { probe(); }) {}

void Pinger::start() { process_.start(); }
void Pinger::stop() { process_.stop(); }

void Pinger::probe() {
  const core::TimePoint sent = sim_.now();
  ++sent_;
  auto record_loss = [this, sent] {
    window_.push(ProbeResult{.sent_at = sent, .lost = true});
  };
  // The reply is generated immediately at the peer; its fate depends on
  // the channel state at that (later) instant — send_datagram evaluates
  // each hop at the packet's arrival there.
  send_datagram(
      sim_, forward_, params_.probe_bytes,
      [this, sent, record_loss](core::TimePoint /*at_peer*/) {
        send_datagram(
            sim_, reverse_, params_.probe_bytes,
            [this, sent](core::TimePoint back) {
              window_.push(ProbeResult{
                  .sent_at = sent, .lost = false, .rtt = back - sent});
            },
            record_loss);
      },
      record_loss);
}

ProbeStats Pinger::stats() const {
  ProbeStats s;
  core::Duration rtt_sum = core::Duration::zero();
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const ProbeResult& r = window_[i];
    ++s.probes;
    if (r.lost) {
      ++s.losses;
    } else {
      ++delivered;
      rtt_sum += r.rtt;
      s.max_rtt = std::max(s.max_rtt, r.rtt);
    }
  }
  if (delivered > 0) {
    s.mean_rtt = rtt_sum / static_cast<std::int64_t>(delivered);
  }
  return s;
}

}  // namespace mntp::net
