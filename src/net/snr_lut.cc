#include "net/snr_lut.h"

#include <cmath>
#include <cstddef>

namespace mntp::net {

SnrFailureLut SnrFailureLut::build(double snr50_db, double snr_slope_db) {
  constexpr int kHalfSpanSlopes = 20;
  constexpr int kStepsPerSlope = 36;
  SnrFailureLut lut;
  lut.snr50_db_ = snr50_db;
  lut.slope_db_ = snr_slope_db;
  const double step_db = snr_slope_db / kStepsPerSlope;
  const int n = 2 * kHalfSpanSlopes * kStepsPerSlope + 1;
  lut.lo_db_ = snr50_db - kHalfSpanSlopes * snr_slope_db;
  lut.inv_step_ = 1.0 / step_db;
  lut.table_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double snr_db = lut.lo_db_ + i * step_db;
    lut.table_[static_cast<std::size_t>(i)] =
        1.0 / (1.0 + std::exp((snr_db - snr50_db) / snr_slope_db));
  }
  return lut;
}

double SnrFailureLut::operator()(double snr_db) const {
  if (table_.empty()) {
    return 1.0 / (1.0 + std::exp((snr_db - snr50_db_) / slope_db_));
  }
  const double x = (snr_db - lo_db_) * inv_step_;
  if (x <= 0.0) return table_.front();
  const double max_x = static_cast<double>(table_.size() - 1);
  if (x >= max_x) return table_.back();
  const std::size_t i = static_cast<std::size_t>(x);
  const double frac = x - static_cast<double>(i);
  return table_[i] + frac * (table_[i + 1] - table_[i]);
}

}  // namespace mntp::net
