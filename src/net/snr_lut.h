// Precomputed SNR -> attempt-failure-probability lookup table.
//
// The per-attempt failure model is a logistic in the SNR margin
// (1 / (1 + e^{(snr - snr50)/slope})). Evaluating the exp per MAC
// attempt is affordable for one client; it is the hot multiply of a
// fleet simulating millions of queries. SnrFailureLut tabulates the
// logistic once on a uniform grid and answers lookups with one linear
// interpolation — the table WirelessChannel builds under its opt-in
// `use_snr_lut` flag, extracted here so the fleet layer's batched
// channel sampling shares the exact same numerics (and the same
// interpolation-error bound, pinned by net_wireless_channel_test).
#pragma once

#include <vector>

namespace mntp::net {

class SnrFailureLut {
 public:
  /// Empty table; operator() falls back to the exact logistic.
  SnrFailureLut() = default;

  /// Tabulate the logistic failure curve for the given midpoint/slope.
  // Grid sized for a guaranteed interpolation error bound: linear
  // interpolation of f on step h errs at most h^2 max|f''| / 8, and the
  // logistic in dB has max|f''| = 1/(6 sqrt(3) slope^2) ≈ 0.0962/slope^2.
  // h = slope/36 gives error <= 0.0962 (1/36)^2 / 8 < 9.3e-6, so the
  // bound is <= 1e-5 for every slope. Span ±20 slopes: beyond it the
  // clamped endpoint value is within 1/(1+e^20) ≈ 2.1e-9 of exact.
  [[nodiscard]] static SnrFailureLut build(double snr50_db,
                                           double snr_slope_db);

  /// Failure probability of one attempt at the given SNR: interpolated
  /// from the table when built, the exact logistic otherwise.
  [[nodiscard]] double operator()(double snr_db) const;

  [[nodiscard]] bool empty() const { return table_.empty(); }

 private:
  std::vector<double> table_;
  double snr50_db_ = 0.0;
  double slope_db_ = 1.0;
  double lo_db_ = 0.0;        // SNR at table index 0
  double inv_step_ = 0.0;     // indices per dB
};

}  // namespace mntp::net
