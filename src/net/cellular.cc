#include "net/cellular.h"

#include <algorithm>
#include <cmath>

#include "obs/metric_names.h"
#include "obs/telemetry.h"

namespace mntp::net {

class CellularNetwork::DirectionalLink final : public Link {
 public:
  DirectionalLink(CellularNetwork& net, bool is_uplink, core::Rng rng)
      : net_(net), is_uplink_(is_uplink), rng_(std::move(rng)) {
    obs::MetricsRegistry& m = obs::Telemetry::global().metrics();
    const obs::Labels dir{{"dir", is_uplink ? "up" : "down"}};
    tx_counter_ = m.counter(obs::metric_names::kNetCellTx, dir);
    drop_counter_ = m.counter(obs::metric_names::kNetCellDrop, dir);
    delay_ms_ = m.histogram(obs::metric_names::kNetCellDelayMs,
                            obs::HistogramOptions::latency_ms(), dir);
    delay_probe_ = obs::Telemetry::global().timeseries().probe(
        obs::metric_names::kTsNetDelayMs,
        obs::Labels{{"transport", "cell"}, {"dir", is_uplink ? "up" : "down"}},
        [this](core::TimePoint) -> std::optional<double> {
          if (!has_delay_) return std::nullopt;
          return last_delay_ms_;
        });
  }

  TransmitResult transmit(core::TimePoint now, std::size_t /*bytes*/) override {
    net_.advance_to(now);
    const CellularParams& p = net_.params_;
    const bool congested = net_.congested_;

    tx_counter_->inc();
    const double p_loss =
        congested ? p.congested_loss_probability : p.loss_probability;
    if (rng_.bernoulli(p_loss)) {
      drop_counter_->inc();
      if (auto q = obs::ambient_query(); q.tracer) {
        q.tracer->stage(q.id, now, "cell", obs::Reason::kNone,
                        {{"dir", std::string(is_uplink_ ? "up" : "down")},
                         {"congested", congested},
                         {"dropped", true}});
      }
      return {.delivered = false, .delay = core::Duration::zero()};
    }

    core::Duration delay;
    if (is_uplink_) {
      double queue_median_s = p.uplink_queue_median.to_seconds();
      double sigma = p.uplink_queue_sigma;
      if (congested) {
        queue_median_s *= p.congested_uplink_factor;
        sigma = p.congested_uplink_sigma;
      }
      const double queue_s = rng_.lognormal(std::log(queue_median_s), sigma);
      delay = p.uplink_base + core::Duration::from_seconds(queue_s);
    } else {
      const double jitter_s =
          rng_.lognormal(std::log(p.downlink_jitter_median.to_seconds()),
                         p.downlink_jitter_sigma);
      delay = p.downlink_base + core::Duration::from_seconds(jitter_s);
      if (congested) {
        const double extra_s = rng_.lognormal(
            std::log(p.congested_downlink_extra.to_seconds()), 0.7);
        delay += core::Duration::from_seconds(extra_s);
      }
    }
    delay = std::min(delay, p.max_one_way);
    delay_ms_->record(delay.to_millis());
    last_delay_ms_ = delay.to_millis();
    has_delay_ = true;
    if (auto q = obs::ambient_query(); q.tracer) {
      q.tracer->stage(q.id, now, "cell", obs::Reason::kNone,
                      {{"dir", std::string(is_uplink_ ? "up" : "down")},
                       {"congested", congested},
                       {"delay_ms", delay.to_millis()}});
    }
    return {.delivered = true, .delay = delay};
  }

 private:
  CellularNetwork& net_;
  bool is_uplink_;
  core::Rng rng_;
  obs::Counter* tx_counter_;
  obs::Counter* drop_counter_;
  obs::Histogram* delay_ms_;
  double last_delay_ms_ = 0.0;
  bool has_delay_ = false;
  obs::ProbeHandle delay_probe_;
};

CellularNetwork::CellularNetwork(CellularParams params, core::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  congestion_episodes_ = obs::Telemetry::global().metrics().counter(
      obs::metric_names::kNetCellCongestionEpisodes);
  next_transition_ =
      core::TimePoint::epoch() +
      core::Duration::from_seconds(
          rng_.exponential(params_.mean_clear_duration.to_seconds()));
  uplink_ = std::make_unique<DirectionalLink>(*this, true, rng_.fork());
  downlink_ = std::make_unique<DirectionalLink>(*this, false, rng_.fork());
}

CellularNetwork::~CellularNetwork() = default;

Link& CellularNetwork::uplink() { return *uplink_; }
Link& CellularNetwork::downlink() { return *downlink_; }

void CellularNetwork::advance_to(core::TimePoint t) {
  while (next_transition_ <= t) {
    congested_ = !congested_;
    if (congested_) congestion_episodes_->inc();
    const double mean_s = (congested_ ? params_.mean_congested_duration
                                      : params_.mean_clear_duration)
                              .to_seconds();
    next_transition_ += core::Duration::from_seconds(rng_.exponential(mean_s));
  }
}

bool CellularNetwork::congested(core::TimePoint now) {
  advance_to(now);
  return congested_;
}

}  // namespace mntp::net
