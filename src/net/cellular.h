// Cellular (4G) access network model.
//
// §3.3 repeats the wireless experiment on a Samsung Galaxy S4 over a live
// 4G network and observes SNTP offsets with mean 192 ms, sd 55 ms and a
// maximum of ~840 ms against a GPS-corrected clock. An SNTP offset of
// theta = ((T2-T1)+(T3-T4))/2 on a *synchronized* clock equals half the
// uplink/downlink delay asymmetry — so the published moments pin down the
// asymmetry, not the absolute delay. LTE uplinks are scheduled
// (SR/BSR grant cycles) and frequently bufferbloated, producing exactly
// this structure: a large mean uplink excess with occasional multi-second
// episodes.
//
// `CellularNetwork` owns shared radio/congestion state and exposes an
// uplink Link and a downlink Link that both consult it, so congestion
// episodes affect both directions coherently (uplink much harder).
#pragma once

#include <memory>

#include "core/rng.h"
#include "core/time.h"
#include "net/link.h"
#include "obs/telemetry.h"

namespace mntp::net {

struct CellularParams {
  // Downlink: fast and comparatively tight.
  core::Duration downlink_base = core::Duration::milliseconds(28);
  core::Duration downlink_jitter_median = core::Duration::milliseconds(6);
  double downlink_jitter_sigma = 0.6;

  // Uplink: grant-scheduling floor plus a heavy queueing component.
  core::Duration uplink_base = core::Duration::milliseconds(52);
  /// Median of the standing uplink queueing excess.
  core::Duration uplink_queue_median = core::Duration::milliseconds(320);
  double uplink_queue_sigma = 0.22;

  // Congestion episodes (cell load spikes): both directions degrade,
  // uplink disproportionately.
  core::Duration mean_clear_duration = core::Duration::minutes(9);
  core::Duration mean_congested_duration = core::Duration::seconds(35);
  /// Multiplier on the uplink queue excess during congestion.
  double congested_uplink_factor = 2.2;
  /// Lognormal sigma of the uplink queue excess during congestion (the
  /// bufferbloat tail widens under load).
  double congested_uplink_sigma = 0.35;
  /// Additive downlink delay during congestion (median of lognormal).
  core::Duration congested_downlink_extra = core::Duration::milliseconds(25);
  double loss_probability = 0.01;
  double congested_loss_probability = 0.06;

  core::Duration max_one_way = core::Duration::seconds(3);
};

class CellularNetwork {
 public:
  CellularNetwork(CellularParams params, core::Rng rng);
  ~CellularNetwork();
  CellularNetwork(const CellularNetwork&) = delete;
  CellularNetwork& operator=(const CellularNetwork&) = delete;

  /// Device -> network direction (carries NTP requests).
  [[nodiscard]] Link& uplink();
  /// Network -> device direction (carries NTP responses).
  [[nodiscard]] Link& downlink();

  /// True while the cell is in a congestion episode at `now`.
  [[nodiscard]] bool congested(core::TimePoint now);

  [[nodiscard]] const CellularParams& params() const { return params_; }

 private:
  class DirectionalLink;
  void advance_to(core::TimePoint t);

  CellularParams params_;
  core::Rng rng_;
  bool congested_ = false;
  core::TimePoint next_transition_;
  obs::Counter* congestion_episodes_ = nullptr;
  std::unique_ptr<DirectionalLink> uplink_;
  std::unique_ptr<DirectionalLink> downlink_;
};

}  // namespace mntp::net
