#include "net/wired_link.h"

#include <cmath>
#include <stdexcept>

namespace mntp::net {

WiredLinkParams WiredLinkParams::lan() {
  WiredLinkParams p;
  p.base_delay = core::Duration::microseconds(300);
  p.jitter_median = core::Duration::microseconds(100);
  p.jitter_sigma = 0.5;
  p.loss_probability = 1e-5;
  p.bytes_per_second = 125e6;  // 1 Gbit/s
  return p;
}

WiredLinkParams WiredLinkParams::wan(core::Duration base) {
  WiredLinkParams p;
  p.base_delay = base;
  p.jitter_median = core::Duration::milliseconds(2);
  p.jitter_sigma = 1.05;
  p.loss_probability = 0.002;
  p.bytes_per_second = 12.5e6;
  return p;
}

WiredLink::WiredLink(WiredLinkParams params, core::Rng rng)
    : params_(params), rng_(std::move(rng)) {
  if (params_.loss_probability < 0.0 || params_.loss_probability > 1.0) {
    throw std::invalid_argument("WiredLink: loss probability out of range");
  }
}

TransmitResult WiredLink::transmit(core::TimePoint /*now*/, std::size_t bytes) {
  if (rng_.bernoulli(params_.loss_probability)) {
    return {.delivered = false, .delay = core::Duration::zero()};
  }
  // Lognormal with median = jitter_median: mu = ln(median).
  const double median_s = params_.jitter_median.to_seconds();
  double jitter_s = 0.0;
  if (median_s > 0.0) {
    jitter_s = rng_.lognormal(std::log(median_s), params_.jitter_sigma);
  }
  double serialization_s = 0.0;
  if (params_.bytes_per_second > 0.0) {
    serialization_s = static_cast<double>(bytes) / params_.bytes_per_second;
  }
  return {.delivered = true,
          .delay = params_.base_delay + core::Duration::from_seconds(jitter_s) +
                   core::Duration::from_seconds(serialization_s)};
}

}  // namespace mntp::net
