// Active ping probing.
//
// The paper's target node "sends statistics collected through active
// measurement to the MN using tools like ping" (§3.2); the monitor node's
// control loop keys off ping loss and latency. This component issues
// periodic echo probes across a round-trip path and retains a sliding
// window of results for the controller to read.
#pragma once

#include <optional>

#include "core/ring_buffer.h"
#include "core/time.h"
#include "net/link.h"
#include "sim/simulation.h"

namespace mntp::net {

struct ProbeResult {
  core::TimePoint sent_at;
  bool lost = true;
  core::Duration rtt = core::Duration::zero();
};

/// Aggregate view over the most recent probes.
struct ProbeStats {
  std::size_t probes = 0;
  std::size_t losses = 0;
  core::Duration mean_rtt = core::Duration::zero();  // over delivered probes
  core::Duration max_rtt = core::Duration::zero();

  [[nodiscard]] double loss_fraction() const {
    return probes ? static_cast<double>(losses) / static_cast<double>(probes) : 0.0;
  }
};

struct PingerParams {
  core::Duration interval = core::Duration::seconds(1);
  std::size_t window = 20;   ///< probes retained for stats
  std::size_t probe_bytes = 64;
};

class Pinger {
 public:
  /// `forward` carries the echo request, `reverse` the reply.
  Pinger(sim::Simulation& sim, LinkPath forward, LinkPath reverse,
         PingerParams params);

  void start();
  void stop();

  /// Stats over the retained window (most recent `params.window` probes).
  [[nodiscard]] ProbeStats stats() const;

  [[nodiscard]] std::size_t total_sent() const { return sent_; }

 private:
  void probe();

  sim::Simulation& sim_;
  LinkPath forward_;
  LinkPath reverse_;
  PingerParams params_;
  core::RingBuffer<ProbeResult> window_;
  sim::PeriodicProcess process_;
  std::size_t sent_ = 0;
};

}  // namespace mntp::net
