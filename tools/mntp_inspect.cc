// mntp-inspect: terminal summarizer for the observability artifacts the
// bench harness writes — JSONL run reports (--telemetry-out, schema in
// src/obs/report.h), Chrome trace-event span profiles (--profile-out)
// and perf-suite baselines (BENCH_results.json).
//
//   mntp-inspect run.jsonl profile.json BENCH_results.json
//
// The file kind is detected from content, not extension. For run reports
// the tool prints the metric registry as tables, per-category/per-name
// event counts, the span-profile aggregates when present, and flags
// offset anomalies: mntp `round` events whose offset falls more than
// --sigma (default 4) standard deviations from the run's least-squares
// offset trend — the quickest "did the filter see something wild" check
// without replotting the whole series.
//
// Exit code: 0 on success (anomalies are informational), 1 when any
// input cannot be read or parsed, 2 on usage errors.
//
// The `diff` subcommand (src/obs/diff.h) compares two artifacts of the
// same kind and has its own exit contract: 0 identical within
// tolerance, 1 significant regression, 2 error.
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/format.h"
#include "core/json.h"
#include "core/linreg.h"
#include "core/stats.h"
#include "core/table.h"
#include "obs/diff.h"

using mntp::core::Json;

namespace {

struct Options {
  double sigma = 4.0;        // anomaly threshold, in trend-residual sigmas
  std::size_t max_rows = 20; // cap for anomaly listings
  bool explain = false;      // print per-query timelines for query traces
  long long query_id = -1;   // explain a single query (-1: first --limit)
  std::size_t limit = 10;    // timelines shown in explain mode
  bool timeline = false;     // `timeline` subcommand (explicit mode)
  std::string series;        // timeline: only series containing this
  std::size_t width = 64;    // timeline: sparkline columns
  bool diff = false;         // `diff` subcommand (cross-run comparison)
  bool json = false;         // diff: machine output instead of tables
  mntp::obs::DiffOptions diff_opt;  // tolerance/floor/divergence/top
};

/// Checked numeric flag parsing: the whole argument must be a number
/// (strtod/strtoll consume it completely), otherwise the caller prints
/// usage and exits 2 — `--sigma foo` must be a loud usage error, not a
/// silent 0.
bool parse_double_arg(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || !std::isfinite(v)) {
    return false;
  }
  out = v;
  return true;
}

bool parse_ll_arg(const char* s, long long& out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_size_arg(const char* s, std::size_t& out) {
  long long v = 0;
  if (!parse_ll_arg(s, v) || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

std::string format_labels(const Json& labels) {
  std::string out;
  for (const auto& [key, value] : labels.as_object()) {
    if (!out.empty()) out += ",";
    out += key + "=" + value.as_string();
  }
  return out;
}

double field_number(const Json& fields, const char* key) {
  return fields[key].as_double();
}

/// Forward compatibility: an artifact stamped with a schema_version this
/// tool does not know is rendered best-effort (unknown keys are ignored,
/// absent keys read as neutral defaults) behind a warning, instead of
/// hard-failing — a newer producer should not brick an older inspector.
/// Absent / zero versions (pre-versioning artifacts) stay silent.
void warn_unknown_schema(const std::string& path, const Json& meta) {
  const long long version = meta["schema_version"].as_int();
  if (version != 0 && version != 1) {
    std::fprintf(stderr,
                 "mntp-inspect: %s: unknown schema_version %lld (this build "
                 "understands 1); rendering best-effort\n",
                 path.c_str(), version);
  }
}

// ---------------------------------------------------------------- report

struct SpanRow {
  double count = 0, total_us = 0, self_us = 0, p50_us = 0, min_us = 0,
         max_us = 0;
};

int inspect_report(const std::string& path,
                   const std::vector<std::string>& lines, const Options& opt) {
  std::vector<Json> metrics;
  std::map<std::string, std::size_t> category_counts;
  std::map<std::string, std::size_t> event_counts;  // "category/name"
  std::map<std::string, SpanRow> spans;             // from profile.span.*
  std::vector<double> round_t_s, round_offset_ms;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      if (i + 1 == lines.size()) {
        std::fprintf(stderr,
                     "mntp-inspect: %s: truncated artifact (last line is "
                     "not valid JSON)\n",
                     path.c_str());
        return 2;
      }
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), i + 1,
                   parsed.error().message.c_str());
      return 1;
    }
    const Json line = parsed.value();
    const std::string& type = line["type"].as_string();
    if (type == "meta") {
      std::printf("run report: %s\n  run=%s  sim_end=%.1fs  %lld metrics, "
                  "%lld events\n",
                  path.c_str(), line["run"].as_string().c_str(),
                  static_cast<double>(line["sim_end_ns"].as_int()) / 1e9,
                  static_cast<long long>(line["metric_count"].as_int()),
                  static_cast<long long>(line["event_count"].as_int()));
    } else if (type == "metric") {
      const std::string& name = line["name"].as_string();
      if (name.rfind("profile.span.", 0) == 0) {
        SpanRow& row = spans[line["labels"]["span"].as_string()];
        const double v = line["value"].as_double();
        const std::string field = name.substr(std::strlen("profile.span."));
        if (field == "count") row.count = v;
        else if (field == "total_wall_us") row.total_us = v;
        else if (field == "self_wall_us") row.self_us = v;
        else if (field == "p50_us") row.p50_us = v;
        else if (field == "min_us") row.min_us = v;
        else if (field == "max_us") row.max_us = v;
      } else {
        metrics.push_back(line);
      }
    } else if (type == "event") {
      const std::string& category = line["category"].as_string();
      const std::string& name = line["name"].as_string();
      ++category_counts[category];
      ++event_counts[category + "/" + name];
      if (category == "mntp" && name == "round") {
        round_t_s.push_back(static_cast<double>(line["t_ns"].as_int()) / 1e9);
        round_offset_ms.push_back(field_number(line["fields"], "offset_ms"));
      }
    }
  }

  // Metric tables: scalar metrics (counters/gauges) then histograms. The
  // obs.* family (telemetry metering itself — see src/obs/metric_names.h)
  // gets its own table so self-overhead reads at a glance instead of
  // interleaving with the run's real metrics.
  mntp::core::TextTable scalars({"metric", "labels", "kind", "value"});
  mntp::core::TextTable obs_table({"metric", "kind", "value"});
  mntp::core::TextTable histograms(
      {"histogram", "labels", "count", "p50", "p90", "p99", "max"});
  for (const Json& m : metrics) {
    const std::string& kind = m["kind"].as_string();
    if (kind != "histogram" && m["name"].as_string().rfind("obs.", 0) == 0) {
      obs_table.add_row({m["name"].as_string(), kind,
                         mntp::core::fmt_double(m["value"].as_double())});
      continue;
    }
    if (kind == "histogram") {
      histograms.add_row({m["name"].as_string(), format_labels(m["labels"]),
                          mntp::core::strformat("%lld", static_cast<long long>(
                                                            m["count"].as_int())),
                          mntp::core::fmt_double(m["p50"].as_double()),
                          mntp::core::fmt_double(m["p90"].as_double()),
                          mntp::core::fmt_double(m["p99"].as_double()),
                          mntp::core::fmt_double(m["max"].as_double())});
    } else {
      scalars.add_row({m["name"].as_string(), format_labels(m["labels"]), kind,
                       mntp::core::fmt_double(m["value"].as_double())});
    }
  }
  if (scalars.rows() > 0) {
    std::printf("\n%s\n", scalars.render().c_str());
  }
  if (histograms.rows() > 0) {
    std::printf("%s\n", histograms.render().c_str());
  }
  if (obs_table.rows() > 0) {
    std::printf("telemetry self-accounting (obs.* metrics):\n%s\n",
                obs_table.render().c_str());
  }

  if (!spans.empty()) {
    mntp::core::TextTable table({"span", "count", "total_ms", "self_ms",
                                 "p50_us", "max_us"});
    for (const auto& [name, row] : spans) {
      table.add_row({name, mntp::core::strformat("%.0f", row.count),
                     mntp::core::fmt_double(row.total_us / 1e3),
                     mntp::core::fmt_double(row.self_us / 1e3),
                     mntp::core::fmt_double(row.p50_us),
                     mntp::core::fmt_double(row.max_us)});
    }
    std::printf("span profile (from profile.span.* gauges):\n%s\n",
                table.render().c_str());
  }

  if (!event_counts.empty()) {
    mntp::core::TextTable table({"event", "count"});
    for (const auto& [key, n] : event_counts) {
      table.add_row({key, mntp::core::fmt_count(n)});
    }
    std::printf("events by category/name (%zu categories):\n%s\n",
                category_counts.size(), table.render().c_str());
  }

  // Offset anomalies: residuals against the run's offset trend. The
  // trend (not the raw mean) is the right null model because an
  // uncorrected drifting clock makes offsets a line, not a constant.
  if (round_t_s.size() >= 8) {
    const auto fit = mntp::core::least_squares(round_t_s, round_offset_ms);
    if (fit) {
      std::vector<double> residuals(round_t_s.size());
      for (std::size_t i = 0; i < round_t_s.size(); ++i) {
        residuals[i] = fit->residual(round_t_s[i], round_offset_ms[i]);
      }
      const double sd = mntp::core::summarize(residuals).stddev;
      std::size_t flagged = 0, shown = 0;
      for (std::size_t i = 0; i < residuals.size(); ++i) {
        if (sd <= 0.0 || std::fabs(residuals[i]) <= opt.sigma * sd) continue;
        if (flagged == 0) {
          std::printf("offset anomalies (|residual| > %.1f sigma, "
                      "sigma=%.3f ms, trend %.4f ms/s):\n",
                      opt.sigma, sd, fit->slope);
        }
        ++flagged;
        if (shown < opt.max_rows) {
          ++shown;
          std::printf("  t=%9.1fs  offset %+9.2f ms  residual %+9.2f ms "
                      "(%.1f sigma)\n",
                      round_t_s[i], round_offset_ms[i], residuals[i],
                      std::fabs(residuals[i]) / sd);
        }
      }
      if (flagged > shown) {
        std::printf("  ... %zu more\n", flagged - shown);
      }
      if (flagged == 0) {
        std::printf("offset anomalies: none (%zu rounds within %.1f sigma "
                    "of trend)\n",
                    round_t_s.size(), opt.sigma);
      }
    }
  }
  return 0;
}

// ----------------------------------------------------------- query trace

/// One decoded {"type":"query"} line.
struct TraceRow {
  long long id = 0;
  long long parent = 0;
  std::string kind;
  double start_s = 0.0;
  Json stages;  // array
};

std::string format_stage_fields(const Json& fields) {
  std::string out;
  for (const auto& [key, value] : fields.as_object()) {
    if (!out.empty()) out += "  ";
    out += key + "=";
    if (value.is_string()) {
      out += value.as_string();
    } else if (value.is_bool()) {
      out += value.as_bool() ? "true" : "false";
    } else if (value.is_int()) {
      out += mntp::core::strformat("%lld",
                                   static_cast<long long>(value.as_int()));
    } else {
      out += mntp::core::strformat("%g", value.as_double());
    }
  }
  return out;
}

/// The terminal ("verdict") stage of a query, or a null Json.
const Json* verdict_stage(const TraceRow& q) {
  const auto& stages = q.stages.as_array();
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    if ((*it)["stage"].as_string() == "verdict") return &*it;
  }
  return nullptr;
}

void print_timeline(const TraceRow& q,
                    const std::vector<const TraceRow*>& children,
                    int indent) {
  const Json* verdict = verdict_stage(q);
  std::printf("%*squery #%lld (%s) start t=%.3fs  verdict=%s\n", indent, "",
              q.id, q.kind.c_str(), q.start_s,
              verdict ? (*verdict)["reason"].as_string().c_str() : "none");
  for (const Json& s : q.stages.as_array()) {
    const double dt =
        static_cast<double>(s["t_ns"].as_int()) / 1e9 - q.start_s;
    const std::string& reason = s["reason"].as_string();
    std::printf("%*s  +%8.3fs  %-16s %-18s %s\n", indent, "", dt,
                s["stage"].as_string().c_str(),
                reason == "none" ? "" : reason.c_str(),
                format_stage_fields(s["fields"]).c_str());
  }
  for (const TraceRow* child : children) {
    print_timeline(*child, {}, indent + 4);
  }
}

int inspect_query_trace(const std::string& path,
                        const std::vector<std::string>& lines,
                        const Options& opt) {
  std::vector<TraceRow> queries;
  std::string run;
  double sim_end_s = 0.0;
  long long dropped = 0;
  bool sampled = false;       // meta carried a "sampling" block
  long long sample_n = 1, sample_seed = 0, reservoir = 0;
  long long minted = 0, kept = 0, sampled_out = 0;
  bool streamed = false;
  long long reorder_dropped = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      if (i + 1 == lines.size()) {
        std::fprintf(stderr,
                     "mntp-inspect: %s: truncated artifact (last line is "
                     "not valid JSON)\n",
                     path.c_str());
        return 2;
      }
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), i + 1,
                   parsed.error().message.c_str());
      return 1;
    }
    const Json line = parsed.value();
    const std::string& type = line["type"].as_string();
    if (type == "meta") {
      run = line["run"].as_string();
      sim_end_s = static_cast<double>(line["sim_end_ns"].as_int()) / 1e9;
      dropped = line["dropped"].as_int();
      streamed = line["streamed"].as_bool();
      reorder_dropped = line["reorder_dropped"].as_int();
      if (line.has("sampling")) {
        const Json& s = line["sampling"];
        sampled = true;
        sample_n = s["sample_one_in_n"].as_int();
        sample_seed = s["seed"].as_int();
        reservoir = s["reservoir"].as_int();
        minted = s["minted"].as_int();
        kept = s["kept"].as_int();
        sampled_out = s["sampled_out"].as_int();
      }
    } else if (type == "query") {
      TraceRow q;
      q.id = line["id"].as_int();
      q.parent = line["parent"].as_int();
      q.kind = line["kind"].as_string();
      q.start_s = static_cast<double>(line["start_ns"].as_int()) / 1e9;
      q.stages = line["stages"];
      queries.push_back(std::move(q));
    }
  }
  std::printf("query trace: %s\n  run=%s  sim_end=%.1fs  %zu queries stored"
              " (%lld dropped)\n",
              path.c_str(), run.c_str(), sim_end_s, queries.size(), dropped);
  if (streamed || reorder_dropped > 0) {
    std::printf("  streamed artifact (%lld lost to reorder-window "
                "force-advance)\n",
                reorder_dropped);
  }
  if (sampled) {
    std::printf("  sampling: 1-in-%lld (seed %lld%s)  minted=%lld kept=%lld "
                "sampled_out=%lld\n",
                sample_n, sample_seed,
                reservoir > 0
                    ? mntp::core::strformat(", reservoir %lld", reservoir)
                          .c_str()
                    : "",
                minted, kept, sampled_out);
    // Conservation: every minted id ends exactly one way (reorder drops
    // are a subset of "kept" that the streaming sink lost at the file
    // layer). A mismatch means the producer lost track of ids — worth
    // shouting about, but the stored traces still render fine, so it
    // stays informational.
    if (minted != kept + sampled_out + dropped) {
      std::printf("  WARNING: accounting mismatch: minted %lld != kept %lld "
                  "+ sampled_out %lld + dropped %lld\n",
                  minted, kept, sampled_out, dropped);
    }
    if (static_cast<long long>(queries.size()) != kept - reorder_dropped) {
      std::printf("  WARNING: %zu query lines stored but meta claims %lld "
                  "kept\n",
                  queries.size(), kept - reorder_dropped);
    }
  }

  // Aggregate causation: every query's fate, bucketed by kind and
  // verdict reason; for round verdicts also by decision phase, so the
  // table reconciles against the mntp.sample outcome counters.
  std::map<std::string, std::size_t> verdicts;       // "kind/reason"
  std::map<std::string, std::size_t> round_phases;   // "phase/reason"
  std::map<std::string, std::size_t> loss_by_hop;    // hop name
  for (const TraceRow& q : queries) {
    const Json* verdict = verdict_stage(q);
    const std::string reason =
        verdict ? (*verdict)["reason"].as_string() : "unfinished";
    ++verdicts[q.kind + "/" + reason];
    if (q.kind == "round" && verdict && (*verdict)["fields"].has("phase")) {
      ++round_phases[(*verdict)["fields"]["phase"].as_string() + "/" + reason];
    }
    for (const Json& s : q.stages.as_array()) {
      if (s["stage"].as_string() == "loss") {
        // The link walker records the hop index as an integer; channel
        // models may name hops with a string instead.
        const Json& hop = s["fields"]["hop"];
        ++loss_by_hop[hop.is_string()
                          ? hop.as_string()
                          : std::to_string(static_cast<long long>(hop.as_int()))];
      }
    }
  }
  if (!verdicts.empty()) {
    mntp::core::TextTable table({"kind", "verdict", "count"});
    for (const auto& [key, n] : verdicts) {
      const auto slash = key.find('/');
      table.add_row({key.substr(0, slash), key.substr(slash + 1),
                     mntp::core::fmt_count(n)});
    }
    std::printf("\ncausation (verdicts by kind and reason):\n%s\n",
                table.render().c_str());
  }
  if (!round_phases.empty()) {
    mntp::core::TextTable table({"phase", "verdict", "count"});
    for (const auto& [key, n] : round_phases) {
      const auto slash = key.find('/');
      table.add_row({key.substr(0, slash), key.substr(slash + 1),
                     mntp::core::fmt_count(n)});
    }
    std::printf("round verdicts by decision phase:\n%s\n",
                table.render().c_str());
  }
  if (!loss_by_hop.empty()) {
    mntp::core::TextTable table({"hop", "losses"});
    for (const auto& [hop, n] : loss_by_hop) {
      table.add_row({hop, mntp::core::fmt_count(n)});
    }
    std::printf("packet loss by hop:\n%s\n", table.render().c_str());
  }

  if (!opt.explain) return 0;

  // Per-query timelines: roots (rounds and orphan exchanges) with their
  // child exchanges nested underneath.
  std::map<long long, std::vector<const TraceRow*>> children;
  for (const TraceRow& q : queries) {
    if (q.parent != 0) children[q.parent].push_back(&q);
  }
  std::size_t shown = 0;
  bool found = false;
  for (const TraceRow& q : queries) {
    if (opt.query_id >= 0) {
      if (q.id != opt.query_id) continue;
      found = true;
    } else {
      if (q.parent != 0) continue;  // roots only in the default listing
      if (shown >= opt.limit) {
        std::printf("  ... %s\n", "more queries elided (raise --limit or "
                                  "pick one with --query <id>)");
        break;
      }
    }
    std::printf("\n");
    auto it = children.find(q.id);
    print_timeline(q, it == children.end() ? std::vector<const TraceRow*>{}
                                           : it->second,
                   2);
    ++shown;
    if (opt.query_id >= 0) break;
  }
  if (opt.query_id >= 0 && !found) {
    std::fprintf(stderr, "mntp-inspect: query #%lld not in %s\n",
                 opt.query_id, path.c_str());
    return 1;
  }
  return 0;
}

// --------------------------------------------------------------- profile

int inspect_profile(const std::string& path, const Json& doc) {
  const Json& events = doc["traceEvents"];
  std::string run_name;
  struct Agg {
    std::size_t count = 0;
    double total_us = 0, self_us = 0, min_us = 0, max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  std::map<std::int64_t, std::size_t> by_tid;
  for (const Json& e : events.as_array()) {
    const std::string& ph = e["ph"].as_string();
    if (ph == "M") {
      if (e["name"].as_string() == "process_name") {
        run_name = e["args"]["name"].as_string();
      }
      continue;
    }
    if (ph != "X") continue;
    const double dur = e["dur"].as_double();
    Agg& agg = by_name[e["name"].as_string()];
    if (agg.count == 0) agg.min_us = agg.max_us = dur;
    agg.min_us = std::min(agg.min_us, dur);
    agg.max_us = std::max(agg.max_us, dur);
    ++agg.count;
    agg.total_us += dur;
    agg.self_us += e["args"]["self_us"].as_double();
    ++by_tid[e["tid"].as_int()];
  }
  std::printf("span profile: %s\n  run=%s  %zu span names, %zu threads\n",
              path.c_str(), run_name.c_str(), by_name.size(), by_tid.size());
  // Hottest first — total wall time is the question a profile answers.
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  mntp::core::TextTable table({"span", "count", "total_ms", "self_ms",
                               "mean_us", "min_us", "max_us"});
  for (const auto& [name, agg] : rows) {
    table.add_row({name, mntp::core::fmt_count(agg.count),
                   mntp::core::fmt_double(agg.total_us / 1e3),
                   mntp::core::fmt_double(agg.self_us / 1e3),
                   mntp::core::fmt_double(agg.total_us /
                                          static_cast<double>(agg.count)),
                   mntp::core::fmt_double(agg.min_us),
                   mntp::core::fmt_double(agg.max_us)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}

// ----------------------------------------------------------------- bench

int inspect_bench(const std::string& path, const Json& doc) {
  const Json& env = doc["environment"];
  std::printf("perf-suite results: %s\n  reps=%lld warmup=%lld  compiler=%s "
              "build=%s threads=%lld\n",
              path.c_str(), static_cast<long long>(doc["reps"].as_int()),
              static_cast<long long>(doc["warmup"].as_int()),
              env["compiler"].as_string().c_str(),
              env["build_type"].as_string().c_str(),
              static_cast<long long>(env["hardware_threads"].as_int()));
  mntp::core::TextTable table(
      {"workload", "median_us", "mad_us", "p95_us", "min_us", "max_us"});
  for (const Json& w : doc["workloads"].as_array()) {
    table.add_row({w["name"].as_string(),
                   mntp::core::fmt_double(w["median_us"].as_double(), 1),
                   mntp::core::fmt_double(w["mad_us"].as_double(), 1),
                   mntp::core::fmt_double(w["p95_us"].as_double(), 1),
                   mntp::core::fmt_double(w["min_us"].as_double(), 1),
                   mntp::core::fmt_double(w["max_us"].as_double(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}

// -------------------------------------------------------------- timeline

/// One decoded {"type":"series"} line of a timeline artifact.
struct SeriesRow {
  std::string name;
  std::string labels;
  std::string probe;
  long long samples = 0;
  long long stride = 1;
  std::vector<double> t_s;     // per point: time of last folded sample
  std::vector<double> mean;
  std::vector<double> min;
  std::vector<double> max;
  double last = 0.0;
};

/// Resample `mean` into `width` buckets and render one sparkline cell per
/// bucket, scaled to the series' own min..max.
std::string sparkline(const SeriesRow& s, std::size_t width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (s.mean.empty()) return "";
  double lo = s.mean.front(), hi = s.mean.front();
  for (double v : s.mean) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const std::size_t cols = std::min(width, s.mean.size());
  std::string out;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t begin = c * s.mean.size() / cols;
    const std::size_t end =
        std::max(begin + 1, (c + 1) * s.mean.size() / cols);
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += s.mean[i];
    const double v = acc / static_cast<double>(end - begin);
    const double norm = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    const int level =
        std::clamp(static_cast<int>(norm * 8.0), 0, 7);
    out += kLevels[level];
  }
  return out;
}

int inspect_timeline(const std::string& path,
                     const std::vector<std::string>& lines,
                     const Options& opt) {
  std::string run;
  double sim_end_s = 0.0, cadence_s = 0.0;
  long long declared_series = 0;
  std::vector<SeriesRow> series;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      // A cleanly-written timeline parses line by line; a line that does
      // not is a partial write (crashed bench, interrupted copy).
      std::fprintf(stderr,
                   "mntp-inspect: %s: truncated artifact (line %zu is not "
                   "valid JSON)\n",
                   path.c_str(), i + 1);
      return 2;
    }
    const Json line = parsed.value();
    const std::string& type = line["type"].as_string();
    if (type == "meta") {
      run = line["run"].as_string();
      sim_end_s = static_cast<double>(line["sim_end_ns"].as_int()) / 1e9;
      cadence_s = static_cast<double>(line["cadence_ns"].as_int()) / 1e9;
      declared_series = line["series_count"].as_int();
    } else if (type == "series") {
      SeriesRow s;
      s.name = line["name"].as_string();
      s.labels = format_labels(line["labels"]);
      s.probe = line["probe"].as_string();
      s.samples = line["samples"].as_int();
      s.stride = line["stride"].as_int();
      for (const Json& p : line["points"].as_array()) {
        const auto& a = p.as_array();
        s.t_s.push_back(static_cast<double>(a[0].as_int()) / 1e9);
        s.min.push_back(a[1].as_double());
        s.mean.push_back(a[2].as_double());
        s.max.push_back(a[3].as_double());
        s.last = a[4].as_double();
      }
      series.push_back(std::move(s));
    }
  }
  std::printf("timeline: %s\n  run=%s  sim_end=%.1fs  cadence=%.3fs  "
              "%zu series (%lld declared)\n",
              path.c_str(), run.c_str(), sim_end_s, cadence_s, series.size(),
              declared_series);

  std::size_t shown = 0;
  for (const SeriesRow& s : series) {
    if (!opt.series.empty() &&
        s.name.find(opt.series) == std::string::npos) {
      continue;
    }
    ++shown;
    double lo = s.min.empty() ? 0.0 : s.min.front();
    double hi = s.max.empty() ? 0.0 : s.max.front();
    double acc = 0.0;
    for (std::size_t i = 0; i < s.mean.size(); ++i) {
      lo = std::min(lo, s.min[i]);
      hi = std::max(hi, s.max[i]);
      acc += s.mean[i];
    }
    const double grand_mean =
        s.mean.empty() ? 0.0 : acc / static_cast<double>(s.mean.size());
    std::printf("\n%s%s%s  (%s, %lld samples, stride %lld, %zu points)\n",
                s.name.c_str(), s.labels.empty() ? "" : "  ",
                s.labels.c_str(), s.probe.c_str(), s.samples, s.stride,
                s.t_s.size());
    std::printf("  min %s  mean %s  max %s  last %s\n",
                mntp::core::fmt_double(lo).c_str(),
                mntp::core::fmt_double(grand_mean).c_str(),
                mntp::core::fmt_double(hi).c_str(),
                mntp::core::fmt_double(s.last).c_str());
    if (!s.mean.empty()) {
      std::printf("  %s  [%.0fs .. %.0fs]\n",
                  sparkline(s, opt.width).c_str(), s.t_s.front(),
                  s.t_s.back());
    }
    // Step changes: consecutive-point deltas that stand out against the
    // series' own delta noise (same sigma rule as the offset anomaly
    // check). Constant and smoothly-trending series flag nothing.
    if (s.mean.size() >= 8) {
      std::vector<double> deltas(s.mean.size() - 1);
      for (std::size_t i = 1; i < s.mean.size(); ++i) {
        deltas[i - 1] = s.mean[i] - s.mean[i - 1];
      }
      const double sd = mntp::core::summarize(deltas).stddev;
      std::size_t flagged = 0, listed = 0;
      for (std::size_t i = 0; i < deltas.size(); ++i) {
        if (sd <= 0.0 || std::fabs(deltas[i]) <= opt.sigma * sd) continue;
        if (flagged == 0) std::printf("  step changes (|delta| > %.1f sigma):\n", opt.sigma);
        ++flagged;
        if (listed < opt.max_rows) {
          ++listed;
          std::printf("    t=%9.1fs  %+10.3f -> %+10.3f  (delta %+.3f, "
                      "%.1f sigma)\n",
                      s.t_s[i + 1], s.mean[i], s.mean[i + 1], deltas[i],
                      std::fabs(deltas[i]) / sd);
        }
      }
      if (flagged > listed) std::printf("    ... %zu more\n", flagged - listed);
    }
  }
  if (shown == 0 && !opt.series.empty()) {
    std::fprintf(stderr, "mntp-inspect: no series matching '%s' in %s\n",
                 opt.series.c_str(), path.c_str());
    return 1;
  }
  return 0;
}

// -------------------------------------------------------------- dispatch

int inspect_file(const std::string& path, const Options& opt) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mntp-inspect: cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (content.find_first_not_of(" \t\r\n") == std::string::npos) {
    // A zero-byte (or whitespace-only) file is a distinct failure from an
    // unrecognized one: the producing bench crashed before its first
    // write, or the path was pre-created by the harness.
    std::fprintf(stderr, "mntp-inspect: %s: empty artifact file\n",
                 path.c_str());
    return 2;
  }

  // Whole-file JSON first (profile / bench results); on failure fall back
  // to JSONL (run report), whose second line makes whole-file parse fail.
  if (auto doc = Json::parse(content); doc.ok()) {
    const Json& json = doc.value();
    if (opt.timeline) {
      std::fprintf(stderr, "mntp-inspect: %s: not a timeline artifact\n",
                   path.c_str());
      return 1;
    }
    if (json.has("traceEvents")) return inspect_profile(path, json);
    if (json["kind"].as_string() == "mntp_perf_suite") {
      warn_unknown_schema(path, json);
      return inspect_bench(path, json);
    }
    std::fprintf(stderr, "mntp-inspect: %s: unrecognized JSON document\n",
                 path.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  std::string line;
  std::istringstream stream(content);
  while (std::getline(stream, line)) lines.push_back(line);
  if (!lines.empty()) {
    if (auto first = Json::parse(lines.front());
        first.ok() && first.value()["type"].as_string() == "meta") {
      warn_unknown_schema(path, first.value());
      const std::string& kind = first.value()["kind"].as_string();
      if (kind == "mntp_timeline") {
        return inspect_timeline(path, lines, opt);
      }
      if (opt.timeline) {
        std::fprintf(stderr, "mntp-inspect: %s: not a timeline artifact\n",
                     path.c_str());
        return 1;
      }
      if (kind == "mntp_query_trace") {
        return inspect_query_trace(path, lines, opt);
      }
      return inspect_report(path, lines, opt);
    }
    // A JSONL artifact whose FIRST line already fails to parse was cut
    // off mid-write (every writer emits the meta line atomically first).
    if (auto first = Json::parse(lines.front()); !first.ok()) {
      std::fprintf(stderr,
                   "mntp-inspect: %s: truncated artifact (first line is "
                   "not valid JSON)\n",
                   path.c_str());
      return 2;
    }
  }
  std::fprintf(stderr,
               "mntp-inspect: %s: not a run report, span profile, "
               "perf-suite result, query trace or timeline\n",
               path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> paths;
  // Every numeric flag goes through checked parsing: a value that is
  // not entirely a number ("foo", "12x", "") is a usage error (exit 2),
  // never a silent zero.
  const auto bad_value = [](const std::string& flag, const char* value) {
    std::fprintf(stderr,
                 "mntp-inspect: %s needs a numeric value, got '%s'\n",
                 flag.c_str(), value == nullptr ? "" : value);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Split "--flag=value" once so each numeric flag has a single
    // parse-and-validate path for both spellings.
    std::string flag = arg;
    const char* inline_value = nullptr;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        flag = arg.substr(0, eq);
        inline_value = argv[i] + eq + 1;
      }
    }
    const auto take_value = [&](const char*& out) {
      if (inline_value != nullptr) {
        out = inline_value;
        return true;
      }
      if (i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return false;
    };
    const char* value = nullptr;
    if (arg == "explain" && paths.empty() && !opt.explain && !opt.timeline &&
        !opt.diff) {
      // Subcommand: per-query timelines on top of the causation tables.
      opt.explain = true;
    } else if (arg == "timeline" && paths.empty() && !opt.timeline &&
               !opt.explain && !opt.diff) {
      // Subcommand: explicit timeline mode (the artifact kind is also
      // auto-detected; the subcommand exists for --series/--width
      // discoverability and to reject non-timeline inputs).
      opt.timeline = true;
    } else if (arg == "diff" && paths.empty() && !opt.diff && !opt.explain &&
               !opt.timeline) {
      // Subcommand: cross-run diff of two artifacts of the same kind
      // (src/obs/diff.h) with its own 0/1/2 exit-code contract.
      opt.diff = true;
    } else if (flag == "--json") {
      opt.json = true;
    } else if (flag == "--series") {
      if (!take_value(value)) return bad_value(flag, value);
      opt.series = value;
    } else if (flag == "--width") {
      if (!take_value(value) || !parse_size_arg(value, opt.width)) {
        return bad_value(flag, value);
      }
    } else if (flag == "--sigma") {
      if (!take_value(value) || !parse_double_arg(value, opt.sigma)) {
        return bad_value(flag, value);
      }
      opt.diff_opt.sigma = opt.sigma;
    } else if (flag == "--query") {
      if (!take_value(value) || !parse_ll_arg(value, opt.query_id)) {
        return bad_value(flag, value);
      }
    } else if (flag == "--limit") {
      if (!take_value(value) || !parse_size_arg(value, opt.limit)) {
        return bad_value(flag, value);
      }
    } else if (flag == "--tolerance") {
      if (!take_value(value) ||
          !parse_double_arg(value, opt.diff_opt.tolerance)) {
        return bad_value(flag, value);
      }
    } else if (flag == "--abs-floor-us") {
      if (!take_value(value) ||
          !parse_double_arg(value, opt.diff_opt.abs_floor_us)) {
        return bad_value(flag, value);
      }
    } else if (flag == "--divergence") {
      if (!take_value(value) ||
          !parse_double_arg(value, opt.diff_opt.divergence)) {
        return bad_value(flag, value);
      }
    } else if (flag == "--top") {
      if (!take_value(value) || !parse_size_arg(value, opt.diff_opt.top)) {
        return bad_value(flag, value);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: mntp-inspect [--sigma N] <file>...\n"
          "       mntp-inspect explain [--query ID] [--limit N] <trace>...\n"
          "       mntp-inspect timeline [--series S] [--width N] <timeline>...\n"
          "       mntp-inspect diff [--json] [--tolerance R] [--abs-floor-us N]\n"
          "                         [--sigma N] [--divergence D] [--top N] <A> <B>\n"
          "  summarizes JSONL run reports, Chrome span profiles,\n"
          "  BENCH_results.json files, query-trace and timeline JSONL (kind\n"
          "  detected from content). `explain` adds per-query causal\n"
          "  timelines for query traces (--query-trace-out artifacts);\n"
          "  `timeline` renders --timeline-out artifacts as per-series\n"
          "  sparklines with step-change flags (--series filters by\n"
          "  substring, --width sets sparkline columns).\n"
          "  `diff` compares two artifacts of the same kind and attributes\n"
          "  the change: bench medians gate with the bench_compare.py math,\n"
          "  profile spans rank by self-time contribution, report counters\n"
          "  get exact-reconciliation classes, query traces compare verdict\n"
          "  shares, timelines score per-series divergence; --json emits the\n"
          "  machine-readable triage record (kind mntp_diff).\n"
          "  artifacts with an unknown schema_version render best-effort\n"
          "  behind a stderr warning (exit stays 0).\n"
          "  exit codes: 0 ok, 1 unreadable/unrecognized artifact,\n"
          "  2 usage or empty/truncated artifact; diff mode: 0 identical\n"
          "  within tolerance, 1 significant regression, 2 error\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mntp-inspect: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (opt.sigma <= 0.0) {
    std::fprintf(stderr, "mntp-inspect: --sigma must be > 0\n");
    return 2;
  }
  if (opt.diff) {
    if (paths.size() != 2) {
      std::fprintf(stderr,
                   "usage: mntp-inspect diff [--json] [--tolerance R] "
                   "[--abs-floor-us N] [--sigma N] [--divergence D] "
                   "[--top N] <A> <B>\n");
      return 2;
    }
    auto result = mntp::obs::diff_files(paths[0], paths[1], opt.diff_opt);
    if (!result.ok()) {
      std::fprintf(stderr, "mntp-inspect: diff: %s\n",
                   result.error().message.c_str());
      return 2;
    }
    const std::string rendered =
        opt.json ? mntp::obs::render_diff_json(result.value(), opt.diff_opt)
                 : mntp::obs::render_diff_text(result.value(), opt.diff_opt);
    std::fputs(rendered.c_str(), stdout);
    return result.value().exit_code();
  }
  if (opt.json) {
    std::fprintf(stderr, "mntp-inspect: --json requires the diff mode\n");
    return 2;
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: mntp-inspect [explain] [--sigma N] [--query ID] "
                 "[--limit N] <file>...\n");
    return 2;
  }
  if (opt.query_id >= 0 && !opt.explain) {
    std::fprintf(stderr, "mntp-inspect: --query requires the explain mode\n");
    return 2;
  }
  int status = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (i != 0) std::printf("\n");
    status = std::max(status, inspect_file(paths[i], opt));
  }
  return status;
}
