file(REMOVE_RECURSE
  "CMakeFiles/mntp_logs.dir/analyze.cc.o"
  "CMakeFiles/mntp_logs.dir/analyze.cc.o.d"
  "CMakeFiles/mntp_logs.dir/classify.cc.o"
  "CMakeFiles/mntp_logs.dir/classify.cc.o.d"
  "CMakeFiles/mntp_logs.dir/generate.cc.o"
  "CMakeFiles/mntp_logs.dir/generate.cc.o.d"
  "libmntp_logs.a"
  "libmntp_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
