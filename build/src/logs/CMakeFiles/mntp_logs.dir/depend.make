# Empty dependencies file for mntp_logs.
# This may be replaced when dependencies are built.
