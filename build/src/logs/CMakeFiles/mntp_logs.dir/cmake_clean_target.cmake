file(REMOVE_RECURSE
  "libmntp_logs.a"
)
