# Empty dependencies file for mntp_ptp.
# This may be replaced when dependencies are built.
