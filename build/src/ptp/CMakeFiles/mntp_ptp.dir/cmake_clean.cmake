file(REMOVE_RECURSE
  "CMakeFiles/mntp_ptp.dir/clock_servo.cc.o"
  "CMakeFiles/mntp_ptp.dir/clock_servo.cc.o.d"
  "CMakeFiles/mntp_ptp.dir/message.cc.o"
  "CMakeFiles/mntp_ptp.dir/message.cc.o.d"
  "CMakeFiles/mntp_ptp.dir/ptp_nodes.cc.o"
  "CMakeFiles/mntp_ptp.dir/ptp_nodes.cc.o.d"
  "libmntp_ptp.a"
  "libmntp_ptp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_ptp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
