
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptp/clock_servo.cc" "src/ptp/CMakeFiles/mntp_ptp.dir/clock_servo.cc.o" "gcc" "src/ptp/CMakeFiles/mntp_ptp.dir/clock_servo.cc.o.d"
  "/root/repo/src/ptp/message.cc" "src/ptp/CMakeFiles/mntp_ptp.dir/message.cc.o" "gcc" "src/ptp/CMakeFiles/mntp_ptp.dir/message.cc.o.d"
  "/root/repo/src/ptp/ptp_nodes.cc" "src/ptp/CMakeFiles/mntp_ptp.dir/ptp_nodes.cc.o" "gcc" "src/ptp/CMakeFiles/mntp_ptp.dir/ptp_nodes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mntp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mntp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mntp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
