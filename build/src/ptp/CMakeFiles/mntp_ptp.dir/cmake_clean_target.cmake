file(REMOVE_RECURSE
  "libmntp_ptp.a"
)
