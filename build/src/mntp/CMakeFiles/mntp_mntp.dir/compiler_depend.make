# Empty compiler generated dependencies file for mntp_mntp.
# This may be replaced when dependencies are built.
