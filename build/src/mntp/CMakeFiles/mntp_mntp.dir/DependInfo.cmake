
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mntp/drift_filter.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/drift_filter.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/drift_filter.cc.o.d"
  "/root/repo/src/mntp/engine.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/engine.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/engine.cc.o.d"
  "/root/repo/src/mntp/false_ticker.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/false_ticker.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/false_ticker.cc.o.d"
  "/root/repo/src/mntp/mntp_client.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/mntp_client.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/mntp_client.cc.o.d"
  "/root/repo/src/mntp/self_tuning.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/self_tuning.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/self_tuning.cc.o.d"
  "/root/repo/src/mntp/trace.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/trace.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/trace.cc.o.d"
  "/root/repo/src/mntp/tuner.cc" "src/mntp/CMakeFiles/mntp_mntp.dir/tuner.cc.o" "gcc" "src/mntp/CMakeFiles/mntp_mntp.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mntp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mntp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mntp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/mntp_ntp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
