file(REMOVE_RECURSE
  "libmntp_mntp.a"
)
