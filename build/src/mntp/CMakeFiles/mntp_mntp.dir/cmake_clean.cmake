file(REMOVE_RECURSE
  "CMakeFiles/mntp_mntp.dir/drift_filter.cc.o"
  "CMakeFiles/mntp_mntp.dir/drift_filter.cc.o.d"
  "CMakeFiles/mntp_mntp.dir/engine.cc.o"
  "CMakeFiles/mntp_mntp.dir/engine.cc.o.d"
  "CMakeFiles/mntp_mntp.dir/false_ticker.cc.o"
  "CMakeFiles/mntp_mntp.dir/false_ticker.cc.o.d"
  "CMakeFiles/mntp_mntp.dir/mntp_client.cc.o"
  "CMakeFiles/mntp_mntp.dir/mntp_client.cc.o.d"
  "CMakeFiles/mntp_mntp.dir/self_tuning.cc.o"
  "CMakeFiles/mntp_mntp.dir/self_tuning.cc.o.d"
  "CMakeFiles/mntp_mntp.dir/trace.cc.o"
  "CMakeFiles/mntp_mntp.dir/trace.cc.o.d"
  "CMakeFiles/mntp_mntp.dir/tuner.cc.o"
  "CMakeFiles/mntp_mntp.dir/tuner.cc.o.d"
  "libmntp_mntp.a"
  "libmntp_mntp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_mntp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
