file(REMOVE_RECURSE
  "libmntp_core.a"
)
