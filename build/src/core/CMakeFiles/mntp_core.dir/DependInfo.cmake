
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allan.cc" "src/core/CMakeFiles/mntp_core.dir/allan.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/allan.cc.o.d"
  "/root/repo/src/core/linreg.cc" "src/core/CMakeFiles/mntp_core.dir/linreg.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/linreg.cc.o.d"
  "/root/repo/src/core/ntp_timestamp.cc" "src/core/CMakeFiles/mntp_core.dir/ntp_timestamp.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/ntp_timestamp.cc.o.d"
  "/root/repo/src/core/result.cc" "src/core/CMakeFiles/mntp_core.dir/result.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/result.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/mntp_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/stats.cc.o.d"
  "/root/repo/src/core/table.cc" "src/core/CMakeFiles/mntp_core.dir/table.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/table.cc.o.d"
  "/root/repo/src/core/time.cc" "src/core/CMakeFiles/mntp_core.dir/time.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/time.cc.o.d"
  "/root/repo/src/core/units.cc" "src/core/CMakeFiles/mntp_core.dir/units.cc.o" "gcc" "src/core/CMakeFiles/mntp_core.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
