# Empty compiler generated dependencies file for mntp_core.
# This may be replaced when dependencies are built.
