file(REMOVE_RECURSE
  "CMakeFiles/mntp_core.dir/allan.cc.o"
  "CMakeFiles/mntp_core.dir/allan.cc.o.d"
  "CMakeFiles/mntp_core.dir/linreg.cc.o"
  "CMakeFiles/mntp_core.dir/linreg.cc.o.d"
  "CMakeFiles/mntp_core.dir/ntp_timestamp.cc.o"
  "CMakeFiles/mntp_core.dir/ntp_timestamp.cc.o.d"
  "CMakeFiles/mntp_core.dir/result.cc.o"
  "CMakeFiles/mntp_core.dir/result.cc.o.d"
  "CMakeFiles/mntp_core.dir/stats.cc.o"
  "CMakeFiles/mntp_core.dir/stats.cc.o.d"
  "CMakeFiles/mntp_core.dir/table.cc.o"
  "CMakeFiles/mntp_core.dir/table.cc.o.d"
  "CMakeFiles/mntp_core.dir/time.cc.o"
  "CMakeFiles/mntp_core.dir/time.cc.o.d"
  "CMakeFiles/mntp_core.dir/units.cc.o"
  "CMakeFiles/mntp_core.dir/units.cc.o.d"
  "libmntp_core.a"
  "libmntp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
