# Empty compiler generated dependencies file for mntp_ntp.
# This may be replaced when dependencies are built.
