
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ntp/clock_filter.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/clock_filter.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/clock_filter.cc.o.d"
  "/root/repo/src/ntp/ntp_client.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/ntp_client.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/ntp_client.cc.o.d"
  "/root/repo/src/ntp/packet.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/packet.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/packet.cc.o.d"
  "/root/repo/src/ntp/pool.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/pool.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/pool.cc.o.d"
  "/root/repo/src/ntp/selection.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/selection.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/selection.cc.o.d"
  "/root/repo/src/ntp/server.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/server.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/server.cc.o.d"
  "/root/repo/src/ntp/sntp.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/sntp.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/sntp.cc.o.d"
  "/root/repo/src/ntp/sntp_client.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/sntp_client.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/sntp_client.cc.o.d"
  "/root/repo/src/ntp/testbed.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/testbed.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/testbed.cc.o.d"
  "/root/repo/src/ntp/transport.cc" "src/ntp/CMakeFiles/mntp_ntp.dir/transport.cc.o" "gcc" "src/ntp/CMakeFiles/mntp_ntp.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mntp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mntp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mntp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
