file(REMOVE_RECURSE
  "CMakeFiles/mntp_ntp.dir/clock_filter.cc.o"
  "CMakeFiles/mntp_ntp.dir/clock_filter.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/ntp_client.cc.o"
  "CMakeFiles/mntp_ntp.dir/ntp_client.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/packet.cc.o"
  "CMakeFiles/mntp_ntp.dir/packet.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/pool.cc.o"
  "CMakeFiles/mntp_ntp.dir/pool.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/selection.cc.o"
  "CMakeFiles/mntp_ntp.dir/selection.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/server.cc.o"
  "CMakeFiles/mntp_ntp.dir/server.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/sntp.cc.o"
  "CMakeFiles/mntp_ntp.dir/sntp.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/sntp_client.cc.o"
  "CMakeFiles/mntp_ntp.dir/sntp_client.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/testbed.cc.o"
  "CMakeFiles/mntp_ntp.dir/testbed.cc.o.d"
  "CMakeFiles/mntp_ntp.dir/transport.cc.o"
  "CMakeFiles/mntp_ntp.dir/transport.cc.o.d"
  "libmntp_ntp.a"
  "libmntp_ntp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_ntp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
