file(REMOVE_RECURSE
  "libmntp_ntp.a"
)
