file(REMOVE_RECURSE
  "CMakeFiles/mntp_net.dir/cellular.cc.o"
  "CMakeFiles/mntp_net.dir/cellular.cc.o.d"
  "CMakeFiles/mntp_net.dir/cross_traffic.cc.o"
  "CMakeFiles/mntp_net.dir/cross_traffic.cc.o.d"
  "CMakeFiles/mntp_net.dir/link.cc.o"
  "CMakeFiles/mntp_net.dir/link.cc.o.d"
  "CMakeFiles/mntp_net.dir/monitor_controller.cc.o"
  "CMakeFiles/mntp_net.dir/monitor_controller.cc.o.d"
  "CMakeFiles/mntp_net.dir/pinger.cc.o"
  "CMakeFiles/mntp_net.dir/pinger.cc.o.d"
  "CMakeFiles/mntp_net.dir/wired_link.cc.o"
  "CMakeFiles/mntp_net.dir/wired_link.cc.o.d"
  "CMakeFiles/mntp_net.dir/wireless_channel.cc.o"
  "CMakeFiles/mntp_net.dir/wireless_channel.cc.o.d"
  "libmntp_net.a"
  "libmntp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
