file(REMOVE_RECURSE
  "libmntp_net.a"
)
