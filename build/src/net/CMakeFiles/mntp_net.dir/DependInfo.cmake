
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cellular.cc" "src/net/CMakeFiles/mntp_net.dir/cellular.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/cellular.cc.o.d"
  "/root/repo/src/net/cross_traffic.cc" "src/net/CMakeFiles/mntp_net.dir/cross_traffic.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/cross_traffic.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/mntp_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/link.cc.o.d"
  "/root/repo/src/net/monitor_controller.cc" "src/net/CMakeFiles/mntp_net.dir/monitor_controller.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/monitor_controller.cc.o.d"
  "/root/repo/src/net/pinger.cc" "src/net/CMakeFiles/mntp_net.dir/pinger.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/pinger.cc.o.d"
  "/root/repo/src/net/wired_link.cc" "src/net/CMakeFiles/mntp_net.dir/wired_link.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/wired_link.cc.o.d"
  "/root/repo/src/net/wireless_channel.cc" "src/net/CMakeFiles/mntp_net.dir/wireless_channel.cc.o" "gcc" "src/net/CMakeFiles/mntp_net.dir/wireless_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mntp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mntp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
