# Empty compiler generated dependencies file for mntp_net.
# This may be replaced when dependencies are built.
