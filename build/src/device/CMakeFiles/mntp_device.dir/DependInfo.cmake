
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device_sim.cc" "src/device/CMakeFiles/mntp_device.dir/device_sim.cc.o" "gcc" "src/device/CMakeFiles/mntp_device.dir/device_sim.cc.o.d"
  "/root/repo/src/device/energy.cc" "src/device/CMakeFiles/mntp_device.dir/energy.cc.o" "gcc" "src/device/CMakeFiles/mntp_device.dir/energy.cc.o.d"
  "/root/repo/src/device/gps.cc" "src/device/CMakeFiles/mntp_device.dir/gps.cc.o" "gcc" "src/device/CMakeFiles/mntp_device.dir/gps.cc.o.d"
  "/root/repo/src/device/nitz.cc" "src/device/CMakeFiles/mntp_device.dir/nitz.cc.o" "gcc" "src/device/CMakeFiles/mntp_device.dir/nitz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mntp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mntp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mntp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/mntp_ntp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
