file(REMOVE_RECURSE
  "libmntp_device.a"
)
