# Empty compiler generated dependencies file for mntp_device.
# This may be replaced when dependencies are built.
