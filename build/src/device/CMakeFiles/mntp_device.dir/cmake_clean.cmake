file(REMOVE_RECURSE
  "CMakeFiles/mntp_device.dir/device_sim.cc.o"
  "CMakeFiles/mntp_device.dir/device_sim.cc.o.d"
  "CMakeFiles/mntp_device.dir/energy.cc.o"
  "CMakeFiles/mntp_device.dir/energy.cc.o.d"
  "CMakeFiles/mntp_device.dir/gps.cc.o"
  "CMakeFiles/mntp_device.dir/gps.cc.o.d"
  "CMakeFiles/mntp_device.dir/nitz.cc.o"
  "CMakeFiles/mntp_device.dir/nitz.cc.o.d"
  "libmntp_device.a"
  "libmntp_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
