file(REMOVE_RECURSE
  "CMakeFiles/mntp_sim.dir/clock_model.cc.o"
  "CMakeFiles/mntp_sim.dir/clock_model.cc.o.d"
  "CMakeFiles/mntp_sim.dir/event_queue.cc.o"
  "CMakeFiles/mntp_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/mntp_sim.dir/simulation.cc.o"
  "CMakeFiles/mntp_sim.dir/simulation.cc.o.d"
  "libmntp_sim.a"
  "libmntp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
