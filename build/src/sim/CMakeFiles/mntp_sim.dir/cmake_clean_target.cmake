file(REMOVE_RECURSE
  "libmntp_sim.a"
)
