# Empty compiler generated dependencies file for mntp_sim.
# This may be replaced when dependencies are built.
