# Empty compiler generated dependencies file for channel_calibration.
# This may be replaced when dependencies are built.
