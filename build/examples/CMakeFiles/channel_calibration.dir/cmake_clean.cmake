file(REMOVE_RECURSE
  "CMakeFiles/channel_calibration.dir/channel_calibration.cpp.o"
  "CMakeFiles/channel_calibration.dir/channel_calibration.cpp.o.d"
  "channel_calibration"
  "channel_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
