# Empty compiler generated dependencies file for ptp_demo.
# This may be replaced when dependencies are built.
