file(REMOVE_RECURSE
  "CMakeFiles/ptp_demo.dir/ptp_demo.cpp.o"
  "CMakeFiles/ptp_demo.dir/ptp_demo.cpp.o.d"
  "ptp_demo"
  "ptp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
