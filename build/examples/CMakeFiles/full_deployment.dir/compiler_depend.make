# Empty compiler generated dependencies file for full_deployment.
# This may be replaced when dependencies are built.
