file(REMOVE_RECURSE
  "CMakeFiles/full_deployment.dir/full_deployment.cpp.o"
  "CMakeFiles/full_deployment.dir/full_deployment.cpp.o.d"
  "full_deployment"
  "full_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
