file(REMOVE_RECURSE
  "CMakeFiles/wireless_lab.dir/wireless_lab.cpp.o"
  "CMakeFiles/wireless_lab.dir/wireless_lab.cpp.o.d"
  "wireless_lab"
  "wireless_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
