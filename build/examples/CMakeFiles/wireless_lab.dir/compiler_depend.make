# Empty compiler generated dependencies file for wireless_lab.
# This may be replaced when dependencies are built.
