file(REMOVE_RECURSE
  "CMakeFiles/tuner_sweep.dir/tuner_sweep.cpp.o"
  "CMakeFiles/tuner_sweep.dir/tuner_sweep.cpp.o.d"
  "tuner_sweep"
  "tuner_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
