# Empty compiler generated dependencies file for tuner_sweep.
# This may be replaced when dependencies are built.
