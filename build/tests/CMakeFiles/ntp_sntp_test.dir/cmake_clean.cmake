file(REMOVE_RECURSE
  "CMakeFiles/ntp_sntp_test.dir/ntp_sntp_test.cc.o"
  "CMakeFiles/ntp_sntp_test.dir/ntp_sntp_test.cc.o.d"
  "ntp_sntp_test"
  "ntp_sntp_test.pdb"
  "ntp_sntp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_sntp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
