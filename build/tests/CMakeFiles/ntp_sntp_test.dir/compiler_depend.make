# Empty compiler generated dependencies file for ntp_sntp_test.
# This may be replaced when dependencies are built.
