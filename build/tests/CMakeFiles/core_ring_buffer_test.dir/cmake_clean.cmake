file(REMOVE_RECURSE
  "CMakeFiles/core_ring_buffer_test.dir/core_ring_buffer_test.cc.o"
  "CMakeFiles/core_ring_buffer_test.dir/core_ring_buffer_test.cc.o.d"
  "core_ring_buffer_test"
  "core_ring_buffer_test.pdb"
  "core_ring_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ring_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
