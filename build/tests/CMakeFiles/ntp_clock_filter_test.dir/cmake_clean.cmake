file(REMOVE_RECURSE
  "CMakeFiles/ntp_clock_filter_test.dir/ntp_clock_filter_test.cc.o"
  "CMakeFiles/ntp_clock_filter_test.dir/ntp_clock_filter_test.cc.o.d"
  "ntp_clock_filter_test"
  "ntp_clock_filter_test.pdb"
  "ntp_clock_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_clock_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
