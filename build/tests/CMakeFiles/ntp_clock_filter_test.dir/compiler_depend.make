# Empty compiler generated dependencies file for ntp_clock_filter_test.
# This may be replaced when dependencies are built.
