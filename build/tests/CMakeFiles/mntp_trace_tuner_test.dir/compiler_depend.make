# Empty compiler generated dependencies file for mntp_trace_tuner_test.
# This may be replaced when dependencies are built.
