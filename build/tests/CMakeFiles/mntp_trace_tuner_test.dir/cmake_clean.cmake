file(REMOVE_RECURSE
  "CMakeFiles/mntp_trace_tuner_test.dir/mntp_trace_tuner_test.cc.o"
  "CMakeFiles/mntp_trace_tuner_test.dir/mntp_trace_tuner_test.cc.o.d"
  "mntp_trace_tuner_test"
  "mntp_trace_tuner_test.pdb"
  "mntp_trace_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_trace_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
