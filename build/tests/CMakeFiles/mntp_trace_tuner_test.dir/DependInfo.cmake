
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mntp_trace_tuner_test.cc" "tests/CMakeFiles/mntp_trace_tuner_test.dir/mntp_trace_tuner_test.cc.o" "gcc" "tests/CMakeFiles/mntp_trace_tuner_test.dir/mntp_trace_tuner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mntp/CMakeFiles/mntp_mntp.dir/DependInfo.cmake"
  "/root/repo/build/src/ptp/CMakeFiles/mntp_ptp.dir/DependInfo.cmake"
  "/root/repo/build/src/ntp/CMakeFiles/mntp_ntp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mntp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mntp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mntp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/mntp_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/mntp_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
