# Empty dependencies file for mntp_extensions_test.
# This may be replaced when dependencies are built.
