file(REMOVE_RECURSE
  "CMakeFiles/mntp_extensions_test.dir/mntp_extensions_test.cc.o"
  "CMakeFiles/mntp_extensions_test.dir/mntp_extensions_test.cc.o.d"
  "mntp_extensions_test"
  "mntp_extensions_test.pdb"
  "mntp_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
