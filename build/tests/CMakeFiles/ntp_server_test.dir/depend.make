# Empty dependencies file for ntp_server_test.
# This may be replaced when dependencies are built.
