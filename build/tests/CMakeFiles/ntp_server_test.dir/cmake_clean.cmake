file(REMOVE_RECURSE
  "CMakeFiles/ntp_server_test.dir/ntp_server_test.cc.o"
  "CMakeFiles/ntp_server_test.dir/ntp_server_test.cc.o.d"
  "ntp_server_test"
  "ntp_server_test.pdb"
  "ntp_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
