file(REMOVE_RECURSE
  "CMakeFiles/net_traffic_test.dir/net_traffic_test.cc.o"
  "CMakeFiles/net_traffic_test.dir/net_traffic_test.cc.o.d"
  "net_traffic_test"
  "net_traffic_test.pdb"
  "net_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
