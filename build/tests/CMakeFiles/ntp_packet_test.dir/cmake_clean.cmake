file(REMOVE_RECURSE
  "CMakeFiles/ntp_packet_test.dir/ntp_packet_test.cc.o"
  "CMakeFiles/ntp_packet_test.dir/ntp_packet_test.cc.o.d"
  "ntp_packet_test"
  "ntp_packet_test.pdb"
  "ntp_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
