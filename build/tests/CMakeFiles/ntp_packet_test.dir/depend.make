# Empty dependencies file for ntp_packet_test.
# This may be replaced when dependencies are built.
