# Empty dependencies file for leap_second_test.
# This may be replaced when dependencies are built.
