file(REMOVE_RECURSE
  "CMakeFiles/leap_second_test.dir/leap_second_test.cc.o"
  "CMakeFiles/leap_second_test.dir/leap_second_test.cc.o.d"
  "leap_second_test"
  "leap_second_test.pdb"
  "leap_second_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leap_second_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
