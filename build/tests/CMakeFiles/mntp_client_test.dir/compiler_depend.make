# Empty compiler generated dependencies file for mntp_client_test.
# This may be replaced when dependencies are built.
