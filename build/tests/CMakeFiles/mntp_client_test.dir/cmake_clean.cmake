file(REMOVE_RECURSE
  "CMakeFiles/mntp_client_test.dir/mntp_client_test.cc.o"
  "CMakeFiles/mntp_client_test.dir/mntp_client_test.cc.o.d"
  "mntp_client_test"
  "mntp_client_test.pdb"
  "mntp_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
