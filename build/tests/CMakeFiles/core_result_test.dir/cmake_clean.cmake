file(REMOVE_RECURSE
  "CMakeFiles/core_result_test.dir/core_result_test.cc.o"
  "CMakeFiles/core_result_test.dir/core_result_test.cc.o.d"
  "core_result_test"
  "core_result_test.pdb"
  "core_result_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
