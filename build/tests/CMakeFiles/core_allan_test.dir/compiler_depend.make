# Empty compiler generated dependencies file for core_allan_test.
# This may be replaced when dependencies are built.
