file(REMOVE_RECURSE
  "CMakeFiles/core_allan_test.dir/core_allan_test.cc.o"
  "CMakeFiles/core_allan_test.dir/core_allan_test.cc.o.d"
  "core_allan_test"
  "core_allan_test.pdb"
  "core_allan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_allan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
