file(REMOVE_RECURSE
  "CMakeFiles/mntp_engine_test.dir/mntp_engine_test.cc.o"
  "CMakeFiles/mntp_engine_test.dir/mntp_engine_test.cc.o.d"
  "mntp_engine_test"
  "mntp_engine_test.pdb"
  "mntp_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
