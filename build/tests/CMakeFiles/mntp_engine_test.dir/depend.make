# Empty dependencies file for mntp_engine_test.
# This may be replaced when dependencies are built.
