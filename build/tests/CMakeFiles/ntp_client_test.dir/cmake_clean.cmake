file(REMOVE_RECURSE
  "CMakeFiles/ntp_client_test.dir/ntp_client_test.cc.o"
  "CMakeFiles/ntp_client_test.dir/ntp_client_test.cc.o.d"
  "ntp_client_test"
  "ntp_client_test.pdb"
  "ntp_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
