# Empty compiler generated dependencies file for core_ntp_timestamp_test.
# This may be replaced when dependencies are built.
