file(REMOVE_RECURSE
  "CMakeFiles/core_ntp_timestamp_test.dir/core_ntp_timestamp_test.cc.o"
  "CMakeFiles/core_ntp_timestamp_test.dir/core_ntp_timestamp_test.cc.o.d"
  "core_ntp_timestamp_test"
  "core_ntp_timestamp_test.pdb"
  "core_ntp_timestamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ntp_timestamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
