file(REMOVE_RECURSE
  "CMakeFiles/ntp_selection_test.dir/ntp_selection_test.cc.o"
  "CMakeFiles/ntp_selection_test.dir/ntp_selection_test.cc.o.d"
  "ntp_selection_test"
  "ntp_selection_test.pdb"
  "ntp_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
