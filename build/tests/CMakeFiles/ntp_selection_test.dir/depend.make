# Empty dependencies file for ntp_selection_test.
# This may be replaced when dependencies are built.
