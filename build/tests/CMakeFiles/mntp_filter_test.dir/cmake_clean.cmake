file(REMOVE_RECURSE
  "CMakeFiles/mntp_filter_test.dir/mntp_filter_test.cc.o"
  "CMakeFiles/mntp_filter_test.dir/mntp_filter_test.cc.o.d"
  "mntp_filter_test"
  "mntp_filter_test.pdb"
  "mntp_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mntp_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
