# Empty dependencies file for mntp_filter_test.
# This may be replaced when dependencies are built.
