# Empty dependencies file for net_wireless_channel_test.
# This may be replaced when dependencies are built.
