# Empty dependencies file for core_linreg_test.
# This may be replaced when dependencies are built.
