file(REMOVE_RECURSE
  "CMakeFiles/core_linreg_test.dir/core_linreg_test.cc.o"
  "CMakeFiles/core_linreg_test.dir/core_linreg_test.cc.o.d"
  "core_linreg_test"
  "core_linreg_test.pdb"
  "core_linreg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_linreg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
