# Empty compiler generated dependencies file for device_energy_gps_test.
# This may be replaced when dependencies are built.
