file(REMOVE_RECURSE
  "CMakeFiles/device_energy_gps_test.dir/device_energy_gps_test.cc.o"
  "CMakeFiles/device_energy_gps_test.dir/device_energy_gps_test.cc.o.d"
  "device_energy_gps_test"
  "device_energy_gps_test.pdb"
  "device_energy_gps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_energy_gps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
