file(REMOVE_RECURSE
  "CMakeFiles/ntp_adaptive_test.dir/ntp_adaptive_test.cc.o"
  "CMakeFiles/ntp_adaptive_test.dir/ntp_adaptive_test.cc.o.d"
  "ntp_adaptive_test"
  "ntp_adaptive_test.pdb"
  "ntp_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
