# Empty compiler generated dependencies file for ntp_adaptive_test.
# This may be replaced when dependencies are built.
