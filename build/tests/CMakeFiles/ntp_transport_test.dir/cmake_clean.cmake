file(REMOVE_RECURSE
  "CMakeFiles/ntp_transport_test.dir/ntp_transport_test.cc.o"
  "CMakeFiles/ntp_transport_test.dir/ntp_transport_test.cc.o.d"
  "ntp_transport_test"
  "ntp_transport_test.pdb"
  "ntp_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntp_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
