# Empty compiler generated dependencies file for ntp_transport_test.
# This may be replaced when dependencies are built.
