file(REMOVE_RECURSE
  "CMakeFiles/core_time_test.dir/core_time_test.cc.o"
  "CMakeFiles/core_time_test.dir/core_time_test.cc.o.d"
  "core_time_test"
  "core_time_test.pdb"
  "core_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
