# Empty dependencies file for core_time_test.
# This may be replaced when dependencies are built.
