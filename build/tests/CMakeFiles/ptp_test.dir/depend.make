# Empty dependencies file for ptp_test.
# This may be replaced when dependencies are built.
