file(REMOVE_RECURSE
  "CMakeFiles/ptp_test.dir/ptp_test.cc.o"
  "CMakeFiles/ptp_test.dir/ptp_test.cc.o.d"
  "ptp_test"
  "ptp_test.pdb"
  "ptp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
