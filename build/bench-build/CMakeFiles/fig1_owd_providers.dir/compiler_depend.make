# Empty compiler generated dependencies file for fig1_owd_providers.
# This may be replaced when dependencies are built.
