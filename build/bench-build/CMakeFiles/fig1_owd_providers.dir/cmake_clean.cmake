file(REMOVE_RECURSE
  "../bench/fig1_owd_providers"
  "../bench/fig1_owd_providers.pdb"
  "CMakeFiles/fig1_owd_providers.dir/fig1_owd_providers.cc.o"
  "CMakeFiles/fig1_owd_providers.dir/fig1_owd_providers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_owd_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
