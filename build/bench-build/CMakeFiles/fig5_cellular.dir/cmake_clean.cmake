file(REMOVE_RECURSE
  "../bench/fig5_cellular"
  "../bench/fig5_cellular.pdb"
  "CMakeFiles/fig5_cellular.dir/fig5_cellular.cc.o"
  "CMakeFiles/fig5_cellular.dir/fig5_cellular.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
