# Empty dependencies file for fig5_cellular.
# This may be replaced when dependencies are built.
