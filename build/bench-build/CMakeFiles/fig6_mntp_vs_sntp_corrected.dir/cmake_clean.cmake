file(REMOVE_RECURSE
  "../bench/fig6_mntp_vs_sntp_corrected"
  "../bench/fig6_mntp_vs_sntp_corrected.pdb"
  "CMakeFiles/fig6_mntp_vs_sntp_corrected.dir/fig6_mntp_vs_sntp_corrected.cc.o"
  "CMakeFiles/fig6_mntp_vs_sntp_corrected.dir/fig6_mntp_vs_sntp_corrected.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mntp_vs_sntp_corrected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
