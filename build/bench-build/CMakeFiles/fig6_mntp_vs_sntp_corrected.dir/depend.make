# Empty dependencies file for fig6_mntp_vs_sntp_corrected.
# This may be replaced when dependencies are built.
