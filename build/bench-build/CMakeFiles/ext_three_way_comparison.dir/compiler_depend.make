# Empty compiler generated dependencies file for ext_three_way_comparison.
# This may be replaced when dependencies are built.
