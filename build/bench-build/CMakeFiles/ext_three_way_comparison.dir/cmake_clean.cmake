file(REMOVE_RECURSE
  "../bench/ext_three_way_comparison"
  "../bench/ext_three_way_comparison.pdb"
  "CMakeFiles/ext_three_way_comparison.dir/ext_three_way_comparison.cc.o"
  "CMakeFiles/ext_three_way_comparison.dir/ext_three_way_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_three_way_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
