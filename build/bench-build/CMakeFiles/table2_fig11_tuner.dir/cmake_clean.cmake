file(REMOVE_RECURSE
  "../bench/table2_fig11_tuner"
  "../bench/table2_fig11_tuner.pdb"
  "CMakeFiles/table2_fig11_tuner.dir/table2_fig11_tuner.cc.o"
  "CMakeFiles/table2_fig11_tuner.dir/table2_fig11_tuner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_fig11_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
