# Empty dependencies file for table2_fig11_tuner.
# This may be replaced when dependencies are built.
