# Empty dependencies file for fig8_mntp_vs_sntp_freerun.
# This may be replaced when dependencies are built.
