file(REMOVE_RECURSE
  "../bench/fig8_mntp_vs_sntp_freerun"
  "../bench/fig8_mntp_vs_sntp_freerun.pdb"
  "CMakeFiles/fig8_mntp_vs_sntp_freerun.dir/fig8_mntp_vs_sntp_freerun.cc.o"
  "CMakeFiles/fig8_mntp_vs_sntp_freerun.dir/fig8_mntp_vs_sntp_freerun.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mntp_vs_sntp_freerun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
