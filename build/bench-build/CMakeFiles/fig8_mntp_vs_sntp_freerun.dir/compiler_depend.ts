# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_mntp_vs_sntp_freerun.
