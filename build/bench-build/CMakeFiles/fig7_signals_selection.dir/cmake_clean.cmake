file(REMOVE_RECURSE
  "../bench/fig7_signals_selection"
  "../bench/fig7_signals_selection.pdb"
  "CMakeFiles/fig7_signals_selection.dir/fig7_signals_selection.cc.o"
  "CMakeFiles/fig7_signals_selection.dir/fig7_signals_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_signals_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
