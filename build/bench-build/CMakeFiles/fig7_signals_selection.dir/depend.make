# Empty dependencies file for fig7_signals_selection.
# This may be replaced when dependencies are built.
