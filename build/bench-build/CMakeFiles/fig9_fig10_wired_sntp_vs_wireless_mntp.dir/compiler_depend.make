# Empty compiler generated dependencies file for fig9_fig10_wired_sntp_vs_wireless_mntp.
# This may be replaced when dependencies are built.
