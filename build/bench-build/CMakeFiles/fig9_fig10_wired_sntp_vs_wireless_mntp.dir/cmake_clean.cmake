file(REMOVE_RECURSE
  "../bench/fig9_fig10_wired_sntp_vs_wireless_mntp"
  "../bench/fig9_fig10_wired_sntp_vs_wireless_mntp.pdb"
  "CMakeFiles/fig9_fig10_wired_sntp_vs_wireless_mntp.dir/fig9_fig10_wired_sntp_vs_wireless_mntp.cc.o"
  "CMakeFiles/fig9_fig10_wired_sntp_vs_wireless_mntp.dir/fig9_fig10_wired_sntp_vs_wireless_mntp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fig10_wired_sntp_vs_wireless_mntp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
