file(REMOVE_RECURSE
  "../bench/fig4_wired_vs_wireless"
  "../bench/fig4_wired_vs_wireless.pdb"
  "CMakeFiles/fig4_wired_vs_wireless.dir/fig4_wired_vs_wireless.cc.o"
  "CMakeFiles/fig4_wired_vs_wireless.dir/fig4_wired_vs_wireless.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_wired_vs_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
