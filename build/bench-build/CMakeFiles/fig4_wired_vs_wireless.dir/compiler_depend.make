# Empty compiler generated dependencies file for fig4_wired_vs_wireless.
# This may be replaced when dependencies are built.
