# Empty dependencies file for table1_server_stats.
# This may be replaced when dependencies are built.
