# Empty dependencies file for fig12_long_run.
# This may be replaced when dependencies are built.
