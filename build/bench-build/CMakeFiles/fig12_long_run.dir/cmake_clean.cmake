file(REMOVE_RECURSE
  "../bench/fig12_long_run"
  "../bench/fig12_long_run.pdb"
  "CMakeFiles/fig12_long_run.dir/fig12_long_run.cc.o"
  "CMakeFiles/fig12_long_run.dir/fig12_long_run.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_long_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
