file(REMOVE_RECURSE
  "../bench/ext_self_tuning"
  "../bench/ext_self_tuning.pdb"
  "CMakeFiles/ext_self_tuning.dir/ext_self_tuning.cc.o"
  "CMakeFiles/ext_self_tuning.dir/ext_self_tuning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_self_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
