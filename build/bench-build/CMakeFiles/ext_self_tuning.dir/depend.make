# Empty dependencies file for ext_self_tuning.
# This may be replaced when dependencies are built.
