# Empty dependencies file for ablation_mntp_design.
# This may be replaced when dependencies are built.
