file(REMOVE_RECURSE
  "../bench/ablation_mntp_design"
  "../bench/ablation_mntp_design.pdb"
  "CMakeFiles/ablation_mntp_design.dir/ablation_mntp_design.cc.o"
  "CMakeFiles/ablation_mntp_design.dir/ablation_mntp_design.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mntp_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
