file(REMOVE_RECURSE
  "../bench/ext_protocol_family"
  "../bench/ext_protocol_family.pdb"
  "CMakeFiles/ext_protocol_family.dir/ext_protocol_family.cc.o"
  "CMakeFiles/ext_protocol_family.dir/ext_protocol_family.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_protocol_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
