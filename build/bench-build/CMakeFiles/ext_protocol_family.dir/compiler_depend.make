# Empty compiler generated dependencies file for ext_protocol_family.
# This may be replaced when dependencies are built.
