file(REMOVE_RECURSE
  "../bench/fig2_protocol_share"
  "../bench/fig2_protocol_share.pdb"
  "CMakeFiles/fig2_protocol_share.dir/fig2_protocol_share.cc.o"
  "CMakeFiles/fig2_protocol_share.dir/fig2_protocol_share.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_protocol_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
