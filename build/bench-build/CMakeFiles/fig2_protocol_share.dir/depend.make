# Empty dependencies file for fig2_protocol_share.
# This may be replaced when dependencies are built.
