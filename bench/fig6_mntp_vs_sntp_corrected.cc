// Figure 6: reported SNTP vs MNTP offsets on a wireless network with NTP
// clock correction — the §5.1 head-to-head baseline: both clients poll at
// the 5 s cadence on the SAME testbed; MNTP runs without warm-up/regular
// split and without drift correction (gating + filtering only).
//
// Paper numbers: SNTP offsets up to 292 ms; MNTP maximum 23 ms — a
// 12-fold improvement; all outliers discarded by the MNTP filter.
#include <cstdio>

#include "common.h"

using namespace mntp;

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fig6_mntp_vs_sntp_corrected", argc, argv);
  std::printf("== Figure 6: SNTP vs MNTP on wireless, NTP-corrected clock ==\n");
  ntp::TestbedConfig config;
  config.seed = 6;
  config.wireless = true;
  config.ntp_correction = true;

  const core::Duration span = core::Duration::hours(1);
  const bench::HeadToHead r =
      bench::run_head_to_head(config, protocol::head_to_head_params(), span);

  bench::print_offset_summary("SNTP reported offsets", r.sntp.offsets_ms);
  bench::print_offset_summary("MNTP reported offsets", r.mntp.accepted_ms);
  bench::print_offset_summary("MNTP rejected offsets", r.mntp.rejected_ms);
  std::printf("  MNTP deferrals: %zu, requests sent: %zu (SNTP polls: %zu)\n",
              r.mntp.deferrals, r.mntp.requests, r.sntp.polls);
  std::printf("  true clock offset at end: %+.2f ms\n",
              r.sntp.final_clock_offset_ms);

  bench::plot_offsets(
      "SNTP vs MNTP offsets (x: minutes, y: ms)",
      {{.label = "SNTP", .points = r.sntp.series, .marker = 's'},
       {.label = "MNTP accepted", .points = r.mntp.accepted, .marker = 'M'},
       {.label = "MNTP rejected", .points = r.mntp.rejected, .marker = 'x'}});

  const double sntp_max = core::max_abs(r.sntp.offsets_ms);
  const double mntp_max = core::max_abs(r.mntp.accepted_ms);
  const double improvement = sntp_max / std::max(mntp_max, 1e-9);

  bench::Checks checks;
  checks.expect(sntp_max > 150.0,
                "SNTP offsets reach into the hundreds of ms (paper: 292)");
  checks.expect(mntp_max < 40.0,
                "MNTP reported offsets stay within tens of ms (paper max: 23)");
  checks.expect(improvement > 6.0,
                "MNTP improves max offset by >6x (paper: ~12x)");
  checks.expect(!r.mntp.rejected_ms.empty() || r.mntp.deferrals > 50,
                "outliers handled by filter rejection and/or deferral");
  checks.expect(core::rmse(r.mntp.accepted_ms) <
                    core::rmse(r.sntp.offsets_ms) / 3.0,
                "MNTP RMSE at least 3x tighter than SNTP");
  for (double rej : r.mntp.rejected_ms) {
    if (std::abs(rej) > 100.0) {
      checks.expect(true, "large outliers visible among MNTP rejections");
      break;
    }
  }
  std::printf("  measured improvement factor (max|offset|): %.1fx\n",
              improvement);
  int failures = checks.finish("Figure 6");
  if (!telemetry.finalize(core::TimePoint::epoch() + span)) ++failures;
  return failures;
}
