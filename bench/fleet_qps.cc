// Fleet-scale throughput workload: queries/sec/core at 10^5..10^6
// simulated clients.
//
// Reproduces the server's-eye view of the paper's §3.1 measurement
// study from simulated traffic instead of parsed logs: per-server
// request totals (Table 1 shape), per-provider-category OWD quantiles
// (Figure 1 shape), the SNTP share by category (Figure 2 shape), and
// the per-(speaker, population) OWD split — while measuring the fleet
// simulator's sustained simulated-queries/sec/core, the number the
// bench gate tracks via the perf_suite `fleet_qps` workload.
//
// Flags: --clients N --seconds S --shards K --threads T --seed S
//        --kod-limit N --fleet-out PATH (mntp_fleet_report artifact)
//        --min-qps-per-core Q (throughput check floor, default 1e5)
//        --no-fast-paths (disable the SNR LUT + coarse OU advance, to
//        measure what the fleet fast paths buy)
//        --check-determinism (re-run serially and require bit-identical
//        results; the cross-thread/shard matrix lives in
//        fleet_determinism_test)
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common.h"
#include "core/table.h"
#include "fleet/client_fleet.h"
#include "fleet/params.h"
#include "fleet/report.h"
#include "fleet/simulator.h"
#include "logs/spec.h"

namespace {

using namespace mntp;

double parse_double_flag(int argc, char** argv, const char* flag,
                         double def) {
  const std::string v = bench::parse_flag(argc, argv, flag);
  if (v.empty()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  return (end == nullptr || *end != '\0') ? def : parsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fleet_qps", argc, argv);

  fleet::FleetParams params;
  params.clients = bench::parse_size_flag(argc, argv, "--clients", 250'000);
  params.duration_s = parse_double_flag(argc, argv, "--seconds", 60.0);
  params.shards = bench::parse_size_flag(argc, argv, "--shards", 64);
  params.seed = bench::parse_size_flag(argc, argv, "--seed", 1);
  params.kod_limit_per_slice =
      bench::parse_size_flag(argc, argv, "--kod-limit", 1'500);
  if (bench::parse_bool_flag(argc, argv, "--no-fast-paths")) {
    params.use_snr_lut = false;
    params.coarse_ou_advance = false;
  }
  const std::size_t threads = bench::parse_threads(argc, argv, 1);
  const double min_qps_per_core =
      parse_double_flag(argc, argv, "--min-qps-per-core", 1e5);
  const std::string fleet_out = bench::parse_flag(argc, argv, "--fleet-out");

  std::printf("fleet_qps: %llu clients, %.0f s, %zu shards, %zu thread(s), "
              "fast paths %s\n\n",
              static_cast<unsigned long long>(params.clients),
              params.duration_s, params.shards, threads,
              params.use_snr_lut ? "on" : "off");

  auto fleet = std::make_shared<const fleet::ClientFleet>(
      fleet::ClientFleet::build(params));
  fleet::Simulator sim(fleet, params);
  fleet::FleetResult result = sim.run(threads);

  // --- Table 1 shape: per-server request totals --------------------------
  {
    core::TextTable table({"server", "stratum", "requests", "share_%"});
    for (std::size_t s = 0; s < result.server_requests.size(); ++s) {
      const logs::ServerSpec& spec = logs::kPaperServers[s];
      table.add_row({std::string(spec.id), core::fmt_int(spec.stratum),
                     core::fmt_count(result.server_requests[s]),
                     core::fmt_double(100.0 *
                                          static_cast<double>(
                                              result.server_requests[s]) /
                                          static_cast<double>(std::max<
                                              std::uint64_t>(1,
                                                             result.arrived)),
                                      1)});
    }
    std::printf("Per-server requests (Table 1 shape):\n%s\n",
                table.render().c_str());
  }

  // --- Figure 1 shape: per-category OWD quantiles ------------------------
  {
    core::TextTable table(
        {"category", "count", "p50_ms", "p90_ms", "p99_ms"});
    for (std::size_t c = 0; c < result.owd.by_category.size(); ++c) {
      const obs::HdrHistogram& h = result.owd.by_category[c];
      table.add_row(
          {std::string(logs::category_name(
               static_cast<logs::ProviderCategory>(c))),
           core::fmt_count(h.count()), core::fmt_double(h.quantile(0.5), 1),
           core::fmt_double(h.quantile(0.9), 1),
           core::fmt_double(h.quantile(0.99), 1)});
    }
    std::printf("Measured OWD by provider category (Figure 1 shape):\n%s\n",
                table.render().c_str());
  }

  // --- Figure 2 shape: SNTP share by category ----------------------------
  std::array<std::uint64_t, 4> cat_clients{};
  std::array<std::uint64_t, 4> cat_sntp{};
  for (std::uint64_t i = 0; i < fleet->size(); ++i) {
    const auto c = static_cast<std::size_t>(fleet->category(i));
    ++cat_clients[c];
    if (fleet->speaker(i) == fleet::Speaker::kSntp) ++cat_sntp[c];
  }
  {
    core::TextTable table({"category", "clients", "sntp_share_%"});
    for (std::size_t c = 0; c < 4; ++c) {
      table.add_row(
          {std::string(logs::category_name(
               static_cast<logs::ProviderCategory>(c))),
           core::fmt_count(cat_clients[c]),
           core::fmt_double(100.0 * static_cast<double>(cat_sntp[c]) /
                                static_cast<double>(
                                    std::max<std::uint64_t>(1,
                                                            cat_clients[c])),
                            1)});
    }
    std::printf("SNTP share by provider category (Figure 2 shape):\n%s\n",
                table.render().c_str());
  }

  // --- Speaker x population OWD ------------------------------------------
  {
    core::TextTable table(
        {"speaker", "population", "count", "p50_ms", "p99_ms"});
    for (fleet::Speaker sp : {fleet::Speaker::kNtp, fleet::Speaker::kSntp}) {
      for (fleet::Population pop :
           {fleet::Population::kWired, fleet::Population::kWireless}) {
        const obs::HdrHistogram& h =
            result.owd.by_class[static_cast<std::size_t>(sp)]
                               [static_cast<std::size_t>(pop)];
        table.add_row({std::string(fleet::speaker_name(sp)),
                       std::string(fleet::population_name(pop)),
                       core::fmt_count(h.count()),
                       core::fmt_double(h.quantile(0.5), 1),
                       core::fmt_double(h.quantile(0.99), 1)});
      }
    }
    std::printf("Measured OWD by speaker x population:\n%s\n",
                table.render().c_str());
  }

  std::printf("Totals: %llu queries (%llu arrived, %llu dropped), "
              "%llu KoD, %llu batches, cache %llu hit / %llu miss, "
              "OWD %llu valid / %llu invalid\n",
              static_cast<unsigned long long>(result.queries),
              static_cast<unsigned long long>(result.arrived),
              static_cast<unsigned long long>(result.dropped),
              static_cast<unsigned long long>(result.kod),
              static_cast<unsigned long long>(result.batches),
              static_cast<unsigned long long>(result.cache_hits),
              static_cast<unsigned long long>(result.cache_misses),
              static_cast<unsigned long long>(result.owd.valid),
              static_cast<unsigned long long>(result.owd.invalid));
  std::printf("Throughput: %.3f s wall, %.0f queries/s, "
              "%.0f queries/s/core (%zu thread(s))\n\n",
              result.wall_s, result.qps, result.qps_per_core, result.threads);

  if (!fleet_out.empty()) {
    if (!fleet::write_fleet_report(fleet_out, params, result)) {
      std::fprintf(stderr, "fleet_qps: failed to write %s\n",
                   fleet_out.c_str());
      return 1;
    }
    std::printf("fleet report written to %s\n", fleet_out.c_str());
  }

  bench::Checks checks;
  checks.expect(result.queries == result.arrived + result.dropped,
                "conservation: queries == arrived + dropped");
  std::uint64_t server_sum = 0;
  for (const std::uint64_t r : result.server_requests) server_sum += r;
  checks.expect(server_sum == result.arrived,
                "conservation: sum(server requests) == arrived");
  checks.expect(result.cache_hits + result.cache_misses ==
                    result.arrived - result.kod,
                "conservation: cache hits + misses == arrived - kod");
  checks.expect(result.owd.valid + result.owd.invalid ==
                    result.arrived - result.kod,
                "conservation: owd valid + invalid == arrived - kod");
  checks.expect(result.qps_per_core >= min_qps_per_core,
                "throughput: >= " + std::to_string(
                                        static_cast<long long>(
                                            min_qps_per_core)) +
                    " simulated queries/s/core");
  const double mobile_sntp_share =
      static_cast<double>(cat_sntp[3]) /
      static_cast<double>(std::max<std::uint64_t>(1, cat_clients[3]));
  checks.expect(mobile_sntp_share >= 0.90,
                "population: mobile providers are >=90% SNTP (Figure 2)");
  const double cloud_p50 = result.owd.by_category[0].quantile(0.5);
  const double isp_p50 = result.owd.by_category[1].quantile(0.5);
  const double broadband_p50 = result.owd.by_category[2].quantile(0.5);
  const double mobile_p50 = result.owd.by_category[3].quantile(0.5);
  checks.expect(cloud_p50 < isp_p50 && isp_p50 < broadband_p50 &&
                    broadband_p50 < mobile_p50,
                "OWD ordering: cloud < isp < broadband < mobile medians "
                "(Figure 1)");
  checks.expect(result.owd.invalid > 0,
                "filter: unsynchronized clients produce invalid OWDs");
  checks.expect(result.cache_hits > result.cache_misses,
                "cache: bucket reuse dominates at fleet request rates");

  if (bench::parse_bool_flag(argc, argv, "--check-determinism")) {
    fleet::FleetResult serial = sim.run(1);
    checks.expect(result.deterministic_equal(serial),
                  "determinism: threaded run bit-identical to serial");
  }

  telemetry.finalize(core::TimePoint::epoch() +
                     core::Duration::from_seconds(params.duration_s));
  return checks.finish("fleet_qps");
}
