// Extension (paper §7 future work): self-tuning of MNTP parameters and
// the trade-off between performance and tuning, plus the perpetually
// unstable channel case deferred in §4.2.
//
//   A. Self-tuning: MNTP with the adaptation loop vs fixed cadences on
//      the accuracy/request frontier over 8 hours.
//   B. Unstable channel: paper-default MNTP starves when hints never
//      pass the thresholds; the max_deferral fallback keeps coarse time
//      flowing at a quantified accuracy cost.
//   C. Offline tuning baseline: capture a trace and grid-search it with
//      the tuner (parallelized via --threads N) — the offline frontier
//      the online self-tuner is trying to approach without a trace.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "mntp/mntp_client.h"
#include "mntp/self_tuning.h"
#include "mntp/tuner.h"

using namespace mntp;

namespace {

int self_tuning_tradeoff() {
  std::printf("== Extension A: self-tuning vs fixed cadences (8 h) ==\n");
  struct Row {
    std::string name;
    double rmse_ms;
    std::size_t requests;
    std::size_t adaptations;
  };
  std::vector<Row> rows;

  auto run = [&](const std::string& name, core::Duration regular_wait,
                 bool adapt) {
    ntp::TestbedConfig config;
    config.seed = 850;
    config.wireless = true;
    config.ntp_correction = true;
    ntp::Testbed bed(config);
    protocol::MntpParams params = protocol::head_to_head_params();
    params.regular_wait_time = regular_wait;
    protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                                bed.channel(), params, bed.fork_rng());
    bed.start();
    client.start();
    protocol::SelfTuner tuner(bed.sim(), client, {});
    if (adapt) tuner.start();
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(8));
    rows.push_back(Row{name, core::rmse(client.engine().accepted_offsets_ms()),
                       client.requests_sent(),
                       tuner.speedups() + tuner.backoffs()});
  };

  run("fixed 5 s", core::Duration::seconds(5), false);
  run("fixed 60 s", core::Duration::seconds(60), false);
  run("fixed 10 min", core::Duration::minutes(10), false);
  run("self-tuning (from 5 s)", core::Duration::seconds(5), true);

  core::TextTable table({"Cadence", "RMSE(ms)", "Requests", "Adaptations"});
  for (const Row& r : rows) {
    table.add_row({r.name, core::fmt_double(r.rmse_ms, 2),
                   core::fmt_int(static_cast<long long>(r.requests)),
                   core::fmt_int(static_cast<long long>(r.adaptations))});
  }
  std::printf("%s", table.render().c_str());

  bench::Checks checks;
  const Row& fast = rows[0];
  const Row& slow = rows[2];
  const Row& adaptive = rows[3];
  checks.expect(adaptive.requests < fast.requests / 2,
                "self-tuning sheds most of the fixed-fast request volume");
  checks.expect(adaptive.rmse_ms < slow.rmse_ms * 2.0 + 5.0,
                "self-tuning keeps accuracy near the frontier");
  checks.expect(adaptive.adaptations > 0, "the loop actually adapted");
  return checks.finish("Extension A (self-tuning)");
}

int unstable_channel() {
  std::printf("\n== Extension B: perpetually unstable channel ==\n");
  auto run = [&](core::Duration max_deferral) {
    ntp::TestbedConfig config;
    config.seed = 851;
    config.wireless = true;
    config.ntp_correction = true;
    // Noise floor pinned above the -70 dBm threshold: the gate never
    // opens on merit.
    config.channel.base_noise = core::Dbm{-67.0};
    ntp::Testbed bed(config);
    protocol::MntpParams params = protocol::head_to_head_params();
    params.max_deferral = max_deferral;
    protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                                bed.channel(), params, bed.fork_rng());
    bed.start();
    client.start();
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(2));
    return std::make_tuple(client.engine().accepted_offsets_ms(),
                           client.forced_emissions(), client.requests_sent());
  };

  const auto [paper_offsets, paper_forced, paper_requests] =
      run(core::Duration::zero());
  const auto [fb_offsets, fb_forced, fb_requests] =
      run(core::Duration::minutes(2));

  std::printf("  paper behaviour:   %zu requests, %zu accepted offsets\n",
              paper_requests, paper_offsets.size());
  std::printf("  with 2 min fallback: %zu requests (%zu forced), %zu accepted, "
              "RMSE %.2f ms\n",
              fb_requests, fb_forced, fb_offsets.size(),
              core::rmse(fb_offsets));

  bench::Checks checks;
  checks.expect(paper_offsets.size() < 5,
                "paper-default MNTP starves on a hint-hostile channel");
  checks.expect(fb_offsets.size() > 30,
                "the fallback keeps time samples flowing");
  checks.expect(fb_forced > 30, "emissions were indeed forced by the bound");
  checks.expect(core::rmse(fb_offsets) < 100.0,
                "degraded-channel samples still usable after filtering");
  return checks.finish("Extension B (unstable channel)");
}

int offline_grid_baseline(std::size_t threads) {
  std::printf("\n== Extension C: offline grid search baseline (%zu threads) ==\n",
              threads);

  // Capture a 2-hour trace on the same testbed family as Extension A.
  ntp::TestbedConfig config;
  config.seed = 852;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  protocol::tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(),
                                 bed.channel(), {}, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(2));
  logger.stop();
  const protocol::Trace& trace = logger.trace();
  std::printf("  captured %zu records over %.0f min\n", trace.size(),
              trace.span_s() / 60.0);

  // A modest grid around the head-to-head defaults: what should the
  // regular cadence have been, given the warm-up budget?
  protocol::tuner::SearchSpace space;
  space.base = protocol::head_to_head_params();
  space.warmup_periods = {core::Duration::minutes(30),
                          core::Duration::minutes(60)};
  space.warmup_wait_times = {core::Duration::seconds(15),
                             core::Duration::seconds(60)};
  space.regular_wait_times = {core::Duration::seconds(5),
                              core::Duration::seconds(60),
                              core::Duration::minutes(10)};
  space.reset_periods = {core::Duration::hours(4)};
  const auto entries =
      protocol::tuner::search(trace, space, {.threads = threads});
  const auto serial = protocol::tuner::search(trace, space);

  const auto best = std::min_element(
      entries.begin(), entries.end(),
      [](const auto& a, const auto& b) { return a.rmse_ms < b.rmse_ms; });
  std::printf("  offline-best config: %s\n", best->to_string().c_str());

  bench::Checks checks;
  checks.expect(entries.size() == 12, "grid fully enumerated");
  bool identical = serial.size() == entries.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].rmse_ms == entries[i].rmse_ms &&
                serial[i].requests == entries[i].requests;
  }
  checks.expect(identical, "parallel search matches serial bit-for-bit");
  checks.expect(best->rmse_ms < 50.0,
                "offline-tuned configuration reaches usable accuracy");
  return checks.finish("Extension C (offline grid baseline)");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bench::parse_threads(argc, argv);
  int failures = 0;
  failures += self_tuning_tradeoff();
  failures += unstable_channel();
  failures += offline_grid_baseline(threads);
  return failures;
}
