// Figure 2: percentage of clients using NTP vs SNTP — across the 19 NTP
// servers (left) and across the top-25 service providers seen at SU1
// (right).
//
// Paper claims reproduced: a majority of clients at every public server
// speak SNTP; the ISP-internal servers (CI1-4, EN1-2) are the exception;
// over 95% of mobile-provider clients use SNTP.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "logs/analyze.h"
#include "logs/generate.h"

using namespace mntp;

int main() {
  std::printf("== Figure 2: NTP vs SNTP share per server and per provider ==\n");
  logs::LogGenerator generator({.scale = 1.0 / 100.0}, core::Rng(3));
  bench::Checks checks;

  std::printf("\n-- per server (left panel) --\n");
  core::TextTable per_server({"Server", "Clients", "SNTP%", "NTP%"});
  for (std::size_t i = 0; i < logs::kPaperServers.size(); ++i) {
    const auto log = generator.generate(i);
    const auto stats = logs::LogAnalyzer::server_stats(log);
    per_server.add_row({stats.server_id,
                        core::fmt_int(static_cast<long long>(stats.unique_clients)),
                        core::fmt_double(stats.sntp_share() * 100.0, 1),
                        core::fmt_double((1.0 - stats.sntp_share()) * 100.0, 1)});
    if (log.spec.isp_internal && stats.unique_clients >= 3) {
      checks.expect(stats.sntp_share() < 0.6,
                    stats.server_id + " (ISP-internal) is NTP-heavy");
    } else if (!log.spec.isp_internal && stats.unique_clients >= 30) {
      checks.expect(stats.sntp_share() > 0.5,
                    stats.server_id + " (public) majority-SNTP");
    }
  }
  std::printf("%s", per_server.render().c_str());

  std::printf("\n-- top-25 providers at SU1 (right panel) --\n");
  const auto su1 = generator.generate(14);
  const auto providers = logs::LogAnalyzer::provider_owd_stats(su1, 5);
  core::TextTable per_provider({"Provider", "Category", "Clients", "SNTP%"});
  for (const auto& ps : providers) {
    per_provider.add_row({ps.provider_name,
                          std::string(category_name(ps.category)),
                          core::fmt_int(static_cast<long long>(ps.clients)),
                          core::fmt_double(ps.sntp_share * 100.0, 1)});
  }
  std::printf("%s", per_provider.render().c_str());

  // ">95% of the clients of mobile providers use SNTP" — pooled across
  // the mobile providers (per-provider counts are small at 1:500 scale).
  double mobile_sntp = 0.0, mobile_n = 0.0;
  for (const auto& ps : providers) {
    if (ps.category == logs::ProviderCategory::kMobile) {
      mobile_sntp += ps.sntp_share * static_cast<double>(ps.clients);
      mobile_n += static_cast<double>(ps.clients);
    }
  }
  if (mobile_n > 0) {
    const double share = mobile_sntp / mobile_n;
    std::printf("\npooled mobile-provider SNTP share at SU1: %.1f%%\n",
                share * 100.0);
    checks.expect(share > 0.9, "mobile providers >90% SNTP (paper: >95%)");
  }
  return checks.finish("Figure 2");
}
