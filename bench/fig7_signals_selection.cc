// Figure 7: "Signals and selection plot" — the measured wireless hints
// (RSSI, noise, SNR margin) over the Figure 6 run, annotated with which
// acquisition opportunities were deferred, which offsets were accepted
// and which were rejected by the MNTP filter.
//
// Paper claims reproduced: requests are deferred when RSSI/noise/SNR
// fail the thresholds; the large reported offsets are rejected by the
// trend filter; accepted offsets hug the drift trend line.
#include <cstdio>

#include "common.h"

using namespace mntp;

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fig7_signals_selection", argc, argv);
  std::printf("== Figure 7: wireless hints and MNTP selection ==\n");
  ntp::TestbedConfig config;
  config.seed = 6;  // same run as Figure 6
  config.wireless = true;
  config.ntp_correction = true;

  const bench::MntpRun run = bench::run_mntp_experiment(
      config, protocol::head_to_head_params(), core::Duration::hours(1));

  // Hint series, split by gate outcome.
  core::Series rssi_ok{.label = "RSSI at emitted requests (dBm)", .points = {}, .marker = '+'};
  core::Series rssi_deferred{.label = "RSSI at deferrals (dBm)", .points = {}, .marker = '.'};
  core::Series snr_ok{.label = "SNR margin, emitted (dB)", .points = {}, .marker = '+'};
  core::Series snr_deferred{.label = "SNR margin, deferred (dB)", .points = {}, .marker = '.'};
  core::RunningStats snr_when_ok, snr_when_deferred;
  for (const auto& h : run.hints) {
    const double t_min = h.hints.when.to_seconds() / 60.0;
    if (h.favorable) {
      rssi_ok.points.emplace_back(t_min, h.hints.rssi.value());
      snr_ok.points.emplace_back(t_min, h.hints.snr_margin().value());
      snr_when_ok.add(h.hints.snr_margin().value());
    } else {
      rssi_deferred.points.emplace_back(t_min, h.hints.rssi.value());
      snr_deferred.points.emplace_back(t_min, h.hints.snr_margin().value());
      snr_when_deferred.add(h.hints.snr_margin().value());
    }
  }

  bench::plot_offsets("RSSI over the run (x: minutes, y: dBm)",
                      {rssi_ok, rssi_deferred});
  bench::plot_offsets("SNR margin over the run (x: minutes, y: dB)",
                      {snr_ok, snr_deferred});
  bench::plot_offsets(
      "MNTP selection (x: minutes, y: ms)",
      {{.label = "accepted", .points = run.accepted, .marker = 'M'},
       {.label = "rejected", .points = run.rejected, .marker = 'x'}});

  std::printf("  opportunities: %zu emitted, %zu deferred\n",
              rssi_ok.points.size(), run.deferrals);
  std::printf("  SNR margin mean: %.1f dB when emitting vs %.1f dB when deferring\n",
              snr_when_ok.mean(), snr_when_deferred.mean());
  std::printf("  offsets: %zu accepted, %zu rejected by the filter\n",
              run.accepted_ms.size(), run.rejected_ms.size());

  bench::Checks checks;
  checks.expect(run.deferrals > 50, "substantial deferral activity");
  checks.expect(!rssi_ok.points.empty(), "requests do get emitted");
  checks.expect(snr_when_ok.mean() >= 20.0,
                "emitted requests satisfy the 20 dB SNR-margin threshold");
  checks.expect(snr_when_ok.mean() - snr_when_deferred.mean() > 10.0,
                "deferral instants have materially worse SNR");
  checks.expect(core::max_abs(run.accepted_ms) <
                    (run.rejected_ms.empty()
                         ? 1e9
                         : core::max_abs(run.rejected_ms)),
                "rejected offsets are the large ones");
  int failures = checks.finish("Figure 7");
  if (!telemetry.finalize(core::TimePoint::epoch() + core::Duration::hours(1))) ++failures;
  return failures;
}
