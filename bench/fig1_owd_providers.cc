// Figure 1: minimum one-way delays of clients per service provider at
// three NTP servers (AG1, JW2, SU1) — box statistics (left) and CDFs
// (right).
//
// Paper claims reproduced: four latency regimes — cloud/hosting ~40 ms,
// ISPs ~50 ms, broadband ~250 ms, mobile ~550 ms with huge interquartile
// ranges and a near-linear CDF; 50% of mobile clients above 400 ms.
#include <cstdio>

#include "common.h"
#include "logs/analyze.h"
#include "logs/generate.h"

using namespace mntp;

namespace {

constexpr std::size_t kServers[] = {0, 8, 14};  // AG1, JW2, SU1

void print_server(const logs::ServerLog& log,
                  const std::vector<logs::ProviderOwdStats>& stats) {
  std::printf("\n-- server %s: per-provider min-OWD (ms) --\n",
              std::string(log.spec.id).c_str());
  core::TextTable table({"Provider", "Category", "Clients", "p25", "Median",
                         "p75", "p90"});
  for (const auto& ps : stats) {
    table.add_row({ps.provider_name, std::string(category_name(ps.category)),
                   core::fmt_int(static_cast<long long>(ps.clients)),
                   core::fmt_double(ps.min_owd_ms.p25, 0),
                   core::fmt_double(ps.min_owd_ms.median, 0),
                   core::fmt_double(ps.min_owd_ms.p75, 0),
                   core::fmt_double(ps.min_owd_ms.p90, 0)});
  }
  std::printf("%s", table.render().c_str());

  // CDF curves for one provider per category (the figure's right column).
  std::vector<core::Series> curves;
  const char markers[] = {'c', 'i', 'b', 'm'};
  bool used[4] = {false, false, false, false};
  for (const auto& ps : stats) {
    const auto cat = static_cast<std::size_t>(ps.category);
    if (used[cat] || ps.min_owds_ms.size() < 20) continue;
    used[cat] = true;
    const core::Cdf cdf(ps.min_owds_ms);
    core::Series s;
    s.label = ps.provider_name + " (" +
              std::string(category_name(ps.category)) + ")";
    s.marker = markers[cat];
    for (const auto& [x, y] : cdf.curve(60)) s.points.emplace_back(x, y);
    curves.push_back(std::move(s));
  }
  if (!curves.empty()) {
    bench::plot_offsets("CDF of per-client min OWD (x: ms, y: fraction)",
                        curves);
  }
}

}  // namespace

int main() {
  std::printf("== Figure 1: min OWDs per service provider (AG1, JW2, SU1) ==\n");
  logs::LogGenerator generator({.scale = 1.0 / 500.0}, core::Rng(2));

  bench::Checks checks;
  std::vector<std::vector<logs::ProviderOwdStats>> per_server;
  std::vector<logs::ServerLog> kept;
  for (std::size_t idx : kServers) {
    kept.push_back(generator.generate(idx));
    per_server.push_back(logs::LogAnalyzer::provider_owd_stats(kept.back(), 10));
    print_server(kept.back(), per_server.back());
  }

  // Category medians across the three servers.
  const auto medians = logs::LogAnalyzer::category_median_owd_ms(kept);
  std::printf("\ncategory medians (ms): cloud %.0f, isp %.0f, broadband %.0f, "
              "mobile %.0f\n",
              medians[0], medians[1], medians[2], medians[3]);
  checks.expect_near(medians[0], 40.0, 20.0, "cloud median ~40 ms");
  checks.expect_near(medians[1], 50.0, 25.0, "ISP median ~50 ms");
  checks.expect_near(medians[2], 250.0, 100.0, "broadband median ~250 ms");
  checks.expect_near(medians[3], 550.0, 150.0, "mobile median ~550 ms");
  checks.expect(medians[0] < medians[1] && medians[1] < medians[2] &&
                    medians[2] < medians[3],
                "latency regimes ordered cloud < isp < broadband < mobile");

  // "For all servers, 50% of the hosts from the three mobile providers
  // exhibit a latency of more than 400ms" — per-server mobile medians.
  for (std::size_t s = 0; s < per_server.size(); ++s) {
    std::vector<double> mobile_owds;
    for (const auto& ps : per_server[s]) {
      if (ps.category == logs::ProviderCategory::kMobile) {
        mobile_owds.insert(mobile_owds.end(), ps.min_owds_ms.begin(),
                           ps.min_owds_ms.end());
      }
    }
    if (mobile_owds.size() >= 20) {
      checks.expect(core::percentile(mobile_owds, 50) > 400.0,
                    "mobile median > 400 ms at server " +
                        std::string(kept[s].spec.id));
    }
  }

  // Mobile CDF linearity (the "striking" linear trend): the middle of the
  // CDF rises roughly uniformly — quartile gaps of similar magnitude.
  for (const auto& ps : per_server[0]) {
    if (ps.category != logs::ProviderCategory::kMobile || ps.clients < 50) {
      continue;
    }
    const double lower_gap = ps.min_owd_ms.median - ps.min_owd_ms.p25;
    const double upper_gap = ps.min_owd_ms.p75 - ps.min_owd_ms.median;
    checks.expect(lower_gap > 0 && upper_gap > 0 &&
                      lower_gap / upper_gap > 0.4 && lower_gap / upper_gap < 2.5,
                  ps.provider_name + " CDF near-linear (balanced quartiles)");
    break;
  }
  return checks.finish("Figure 1");
}
