// Shared experiment harness for the bench binaries.
//
// Every bench regenerates one table or figure from the paper: it builds
// the corresponding workload on the Testbed (or cellular/log substrate),
// runs it, prints the same rows/series the paper reports (as aligned
// tables and ASCII plots), and finishes with explicit PASS/FAIL checks of
// the paper's qualitative claims. Absolute numbers come from a simulator,
// so checks assert the *shape*: who wins, by roughly what factor, where
// the spikes are.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "core/time.h"
#include "mntp/mntp_client.h"
#include "mntp/params.h"
#include "ntp/sntp_client.h"
#include "ntp/testbed.h"
#include "obs/report.h"
#include "obs/streaming.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"
#include "sim/replicate.h"

namespace mntp::bench {

/// (minutes since start, offset in ms) series of one client run.
using Series = std::vector<std::pair<double, double>>;

struct SntpRun {
  Series series;
  std::vector<double> offsets_ms;
  std::size_t polls = 0;
  std::size_t failures = 0;
  /// True clock offset at the end of the run (oracle), ms.
  double final_clock_offset_ms = 0.0;
};

/// Run a plain SNTP client on a fresh testbed for `span`, polling every
/// `poll` (the paper's lab cadence is 5 s).
SntpRun run_sntp_experiment(const ntp::TestbedConfig& config,
                            core::Duration span,
                            core::Duration poll = core::Duration::seconds(5));

struct MntpRun {
  Series accepted;
  Series rejected;
  /// Residuals against the drift trend ("clock corrected" series, Fig 12).
  Series corrected;
  std::vector<double> accepted_ms;
  std::vector<double> rejected_ms;
  std::vector<double> corrected_ms;
  std::size_t deferrals = 0;
  std::size_t requests = 0;
  double drift_ppm = 0.0;
  bool has_drift = false;
  double final_clock_offset_ms = 0.0;
  /// Hint log copied out for the signals plot (Fig 7).
  std::vector<protocol::HintRecord> hints;
};

/// Run an MNTP client on a fresh testbed for `span`.
MntpRun run_mntp_experiment(const ntp::TestbedConfig& config,
                            const protocol::MntpParams& params,
                            core::Duration span);

/// Run SNTP and MNTP *side by side on the same testbed* (same channel
/// realization, same servers) — the paper's head-to-head methodology.
struct HeadToHead {
  SntpRun sntp;
  MntpRun mntp;
};
HeadToHead run_head_to_head(const ntp::TestbedConfig& config,
                            const protocol::MntpParams& params,
                            core::Duration span,
                            core::Duration sntp_poll = core::Duration::seconds(5));

/// Print a labeled offset summary row.
void print_offset_summary(const std::string& label,
                          const std::vector<double>& offsets_ms);

/// Plot one or two offset series (x in minutes, y in ms).
void plot_offsets(const std::string& title,
                  const std::vector<core::Series>& series);

/// PASS/FAIL check accumulation. Checks never abort; the bench prints a
/// verdict block at the end and returns the number of failed checks as
/// its exit code (0 = all shape checks hold).
class Checks {
 public:
  void expect(bool condition, const std::string& description);
  /// expect with a formatted "measured vs target" tail.
  void expect_near(double value, double target, double tolerance,
                   const std::string& description);
  /// Print the verdict block; returns the failure count.
  int finish(const std::string& experiment_name) const;

 private:
  struct Entry {
    bool pass;
    std::string text;
  };
  std::vector<Entry> entries_;
};

/// Convert an engine record list into bench series (minutes, ms).
void split_engine_records(const protocol::MntpEngine& engine, Series* accepted,
                          Series* rejected, Series* corrected);

/// Parse `--threads N` (or `--threads=N`) from argv; `def` when absent
/// or malformed. 0 means "one worker per hardware thread".
std::size_t parse_threads(int argc, char** argv, std::size_t def = 1);

/// `--replicates K --threads N` for the multi-seed benches. replicates
/// defaults to 1 (the original single-seed experiment, bit for bit);
/// threads defaults to 1 (exact serial path).
struct ReplicateCli {
  std::size_t replicates = 1;
  std::size_t threads = 1;
};
ReplicateCli parse_replicate_cli(int argc, char** argv);

/// Print a replicate report as an aggregate table (one row per metric:
/// median / mean / stddev / min / max across replicates).
void print_replicate_report(const sim::ReplicateReport& report);

/// Print the report's cross-replicate merged distributions (one row per
/// distribution: count / p50 / p90 / p99 / min / max). No-op when the
/// report carries none.
void print_replicate_distributions(const sim::ReplicateReport& report);

/// Parse `--<flag> value` / `--<flag>=value` from argv (last occurrence
/// wins); empty string when absent. `flag` includes the leading dashes.
std::string parse_flag(int argc, char** argv, const char* flag);

/// parse_flag for non-negative integers; `def` when absent or malformed.
std::size_t parse_size_flag(int argc, char** argv, const char* flag,
                            std::size_t def);

/// True when the bare flag is present (`--flag`; `--flag=anything` also
/// counts). For switches that carry no value.
bool parse_bool_flag(int argc, char** argv, const char* flag);

/// Per-run telemetry harness for bench binaries.
///
/// Construct FIRST in main() — before any Testbed or client — so every
/// instrumented component binds its metric handles to this run's isolated
/// context. Parses `--telemetry-out <path>` (or `--telemetry-out=<path>`)
/// from argv; when present, a ring-buffer trace sink is attached and
/// `finalize(sim_end)` writes the JSONL run report (schema in
/// src/obs/report.h) to that path. Also parses `--profile-out <path>`:
/// when present, the run's span profiler is enabled and finalize()
/// exports span aggregates into the metrics registry (so they land in
/// the run report too) and writes the Chrome trace-event JSON there.
/// Also parses `--query-trace-out <path>`: when present, the run's
/// query tracer is enabled and finalize() writes the per-query causal
/// trace JSONL there (schema in src/obs/query_trace.h; inspect with
/// `mntp-inspect explain`). Also parses `--timeline-out <path>` (with
/// optional `--timeline-cadence-ms <ms>`, default 1000): when present,
/// the run's sim-time series recorder is enabled, every instrumented
/// component's probes get sampled on the cadence, and finalize() writes
/// the timeline JSONL there (schema in src/obs/timeseries.h; inspect
/// with `mntp-inspect timeline`). Without any flag the run pays only
/// counter increments and finalize() is a no-op.
///
/// Fleet-scale knobs (all opt-in; without them every artifact and stdout
/// line is byte-identical to the plain flags above):
///
///   * `--query-trace-sample N` — deterministic 1-in-N trace sampling
///     (hash-of-id gate; see QueryTracer::Sampling), with
///     `--query-trace-seed S` (default 0) selecting the kept set and
///     `--query-trace-reservoir M` capping it at M traces.
///   * `--query-trace-stream` — stream finished traces straight to
///     --query-trace-out through a bounded reorder buffer instead of
///     retaining them (obs/streaming.h); memory stays O(open queries).
///   * `--trace-stream-out <path>` — stream trace events to a JSONL
///     file (kind "mntp_trace_events") as they are emitted, unbounded by
///     the ring buffer's capacity.
///   * `--obs-self` — meter the telemetry itself: finalize() writes the
///     run report LAST and folds an obs.self.* metric family (artifact
///     bytes, stream flushes, registry merge wall time) plus the
///     obs.query_trace.{kept,sampled_out,dropped} reconciliation
///     counters into it.
class BenchTelemetry {
 public:
  BenchTelemetry(std::string run_name, int argc, char** argv);

  /// True when --telemetry-out was passed.
  [[nodiscard]] bool enabled() const { return !out_path_.empty(); }
  /// True when --profile-out was passed (span profiling active).
  [[nodiscard]] bool profiling() const { return !profile_path_.empty(); }
  /// True when --query-trace-out was passed (query tracing active).
  [[nodiscard]] bool query_tracing() const {
    return !query_trace_path_.empty();
  }
  /// True when --timeline-out was passed (sim-time sampling active).
  [[nodiscard]] bool timeline_enabled() const {
    return !timeline_path_.empty();
  }
  [[nodiscard]] const std::string& out_path() const { return out_path_; }
  [[nodiscard]] const std::string& profile_path() const {
    return profile_path_;
  }
  [[nodiscard]] const std::string& query_trace_path() const {
    return query_trace_path_;
  }
  [[nodiscard]] const std::string& timeline_path() const {
    return timeline_path_;
  }
  [[nodiscard]] obs::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] obs::TimeSeriesRecorder& timeseries() {
    return telemetry_.timeseries();
  }

  /// True when --query-trace-stream was passed (and the sink opened).
  [[nodiscard]] bool query_trace_streaming() const { return query_streaming_; }
  /// True when --trace-stream-out was passed (and the sink opened).
  [[nodiscard]] bool event_streaming() const {
    return event_stream_.is_open();
  }
  /// True when --obs-self was passed (self-overhead metering).
  [[nodiscard]] bool self_metering() const { return obs_self_; }

  /// Write the report / Chrome trace / query trace (no-op without the
  /// flags). Returns false and prints to stderr on I/O failure.
  bool finalize(core::TimePoint sim_end);

 private:
  bool write_report(core::TimePoint sim_end);
  bool write_profile();
  bool write_query_trace(core::TimePoint sim_end);
  bool write_timeline(core::TimePoint sim_end);
  bool close_event_stream(core::TimePoint sim_end);
  /// Adds the on-disk size of `path` to artifact_bytes_ (self-metering).
  void account_artifact(const std::string& path);

  std::string run_name_;
  std::string out_path_;
  std::string profile_path_;
  std::string query_trace_path_;
  std::string timeline_path_;
  bool query_streaming_ = false;
  bool obs_self_ = false;
  std::uint64_t artifact_bytes_ = 0;
  std::uint64_t timeline_flushes_ = 0;
  obs::Telemetry telemetry_;
  obs::RingBufferSink trace_;
  obs::StreamingQueryTraceSink query_stream_;
  obs::StreamingTraceEventSink event_stream_;
  obs::ScopedTelemetry scope_;
};

}  // namespace mntp::bench
