// Figure 12: the 4-hour long experiment — SNTP vs MNTP on a wireless
// network with a free-running clock, full MNTP (trend line fitted and
// re-estimated; the "clock corrected drift" series is offset minus
// trend).
//
// Paper numbers: SNTP offsets as high as 392 ms; MNTP's corrected drift
// values always below 20 ms; the drift trend line is clearly visible and
// large offsets are rejected by the filter.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common.h"

using namespace mntp;

namespace {

/// One replicate of the 4-hour scenario: shape metrics plus the reported
/// offset distributions (merged exactly across replicates). Replicate 0
/// alone records the sim-time timeline.
sim::ReplicateResult run_replicate(ntp::TestbedConfig config,
                                   std::uint64_t seed,
                                   std::size_t replicate) {
  obs::TimeSeriesRecorder::SuppressScope suppress(replicate != 0);
  config.seed = seed;
  const bench::HeadToHead r = bench::run_head_to_head(
      config, protocol::head_to_head_params(), core::Duration::hours(4));
  sim::ReplicateResult out;
  out.metrics = {
      {"sntp_max_abs_ms", core::max_abs(r.sntp.offsets_ms)},
      {"corrected_max_ms", core::max_abs(r.mntp.corrected_ms)},
      {"rejections", static_cast<double>(r.mntp.rejected_ms.size())},
      {"deferrals", static_cast<double>(r.mntp.deferrals)},
      {"has_drift", r.mntp.has_drift ? 1.0 : 0.0},
      {"drift_ppm", r.mntp.has_drift ? r.mntp.drift_ppm : 0.0},
      {"final_clock_offset_ms", r.mntp.final_clock_offset_ms},
  };
  obs::HdrHistogram sntp_offsets, mntp_resid;
  for (double v : r.sntp.offsets_ms) sntp_offsets.record(v);
  for (double v : r.mntp.corrected_ms) mntp_resid.record(v);
  out.distributions = {
      {"sntp_offset_ms", std::move(sntp_offsets)},
      {"mntp_resid_ms", std::move(mntp_resid)},
  };
  return out;
}

/// Multi-seed mode (`--replicates K --threads N`); the K=1 path below is
/// the untouched single-seed experiment.
int run_replicated(const ntp::TestbedConfig& config,
                   const bench::ReplicateCli& cli,
                   bench::BenchTelemetry& telemetry) {
  sim::ReplicationRunner runner({cli.replicates, cli.threads});
  const sim::ReplicateReport report = runner.run(
      config.seed,
      sim::ReplicationRunner::RichScenario(
          [&](std::uint64_t seed, std::size_t replicate) {
            return run_replicate(config, seed, replicate);
          }));
  bench::print_replicate_report(report);
  bench::print_replicate_distributions(report);

  bench::Checks checks;
  checks.expect(report.median("sntp_max_abs_ms") > 200.0,
                "median SNTP max offset in the hundreds of ms (paper: 392)");
  checks.expect(report.median("corrected_max_ms") < 30.0,
                "median MNTP corrected drift below tens of ms (paper: <20)");
  checks.expect(report.median("rejections") > 0.0,
                "filter rejects large offsets over the long run (median)");
  int failures = checks.finish("Figure 12 (replicated)");
  if (!telemetry.finalize(core::TimePoint::epoch() + core::Duration::hours(4)))
    ++failures;
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fig12_long_run", argc, argv);
  std::printf("== Figure 12: 4-hour run, free-running clock ==\n");
  ntp::TestbedConfig config;
  config.seed = 12;
  config.wireless = true;
  config.ntp_correction = false;

  const bench::ReplicateCli cli = bench::parse_replicate_cli(argc, argv);
  if (cli.replicates > 1) return run_replicated(config, cli, telemetry);

  const bench::HeadToHead r = bench::run_head_to_head(
      config, protocol::head_to_head_params(), core::Duration::hours(4));

  bench::print_offset_summary("SNTP reported offsets", r.sntp.offsets_ms);
  bench::print_offset_summary("MNTP reported offsets", r.mntp.accepted_ms);
  bench::print_offset_summary("MNTP corrected drift", r.mntp.corrected_ms);
  std::printf("  MNTP rejections: %zu, deferrals: %zu\n",
              r.mntp.rejected_ms.size(), r.mntp.deferrals);
  if (r.mntp.has_drift) {
    std::printf("  drift estimate %+.2f ppm (true constant skew %.2f ppm)\n",
                r.mntp.drift_ppm, config.client_clock.constant_skew_ppm);
  }
  std::printf("  true clock offset after 4 h: %+.2f ms\n",
              r.mntp.final_clock_offset_ms);

  bench::plot_offsets(
      "4-hour run (x: minutes, y: ms)",
      {{.label = "SNTP", .points = r.sntp.series, .marker = 's'},
       {.label = "MNTP accepted (trend)", .points = r.mntp.accepted, .marker = 'M'},
       {.label = "MNTP corrected drift", .points = r.mntp.corrected, .marker = 'c'}});

  bench::Checks checks;
  checks.expect(core::max_abs(r.sntp.offsets_ms) > 200.0,
                "SNTP offsets reach hundreds of ms over 4 h (paper: 392)");
  checks.expect(core::max_abs(r.mntp.corrected_ms) < 30.0,
                "MNTP corrected drift always below tens of ms (paper: <20)");
  checks.expect(!r.mntp.rejected_ms.empty(),
                "filter rejects large offsets over the long run");
  // The trend tracks the actual free-run drift: the accepted offsets at
  // the end of the run sit near the true accumulated clock error
  // (measured offset ~ -clock offset).
  if (!r.mntp.accepted.empty()) {
    const double last_measured = r.mntp.accepted.back().second;
    checks.expect_near(last_measured, -r.mntp.final_clock_offset_ms, 25.0,
                       "accepted offsets track the true drift trend");
  }
  if (r.mntp.has_drift) {
    // Measured offset = (server - client): a clock losing time (negative
    // skew) produces a *rising* measured-offset trend, hence the sign flip.
    checks.expect_near(r.mntp.drift_ppm, -config.client_clock.constant_skew_ppm,
                       3.0, "drift estimate matches the oscillator skew");
  }
  int failures = checks.finish("Figure 12");
  if (!telemetry.finalize(core::TimePoint::epoch() + core::Duration::hours(4))) ++failures;
  return failures;
}
