// Microbenchmarks (google-benchmark): the hot paths a deployed MNTP/SNTP
// implementation exercises per packet/sample, plus simulation throughput.
#include <benchmark/benchmark.h>

#include "core/fixed_function.h"
#include "core/linreg.h"
#include "core/rng.h"
#include "mntp/drift_filter.h"
#include "mntp/engine.h"
#include "mntp/trace.h"
#include "mntp/tuner.h"
#include "logs/generate.h"
#include "net/wireless_channel.h"
#include "ntp/clock_filter.h"
#include "ntp/packet.h"
#include "ntp/selection.h"
#include "ntp/testbed.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"
#include "sim/event_queue.h"

using namespace mntp;

namespace {

void BM_PacketSerialize(benchmark::State& state) {
  ntp::NtpPacket p = ntp::NtpPacket::make_sntp_request(
      core::NtpTimestamp::from_parts(123456, 789));
  std::array<std::uint8_t, ntp::NtpPacket::kWireSize> buf{};
  for (auto _ : state) {
    p.serialize(buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_PacketSerialize);

void BM_PacketParse(benchmark::State& state) {
  const auto wire = ntp::NtpPacket::make_sntp_request(
                        core::NtpTimestamp::from_parts(123456, 789))
                        .to_bytes();
  for (auto _ : state) {
    auto parsed = ntp::NtpPacket::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_PacketParse);

void BM_ClockFilterUpdate(benchmark::State& state) {
  ntp::ClockFilter filter;
  core::Rng rng(1);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1'000'000'000;
    auto est = filter.update(core::Duration::from_millis(rng.normal(0, 5)),
                             core::Duration::from_millis(rng.uniform(20, 80)),
                             core::TimePoint::from_ns(t));
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_ClockFilterUpdate);

void BM_SelectionPipeline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(2);
  std::vector<ntp::PeerEstimate> peers;
  for (std::size_t i = 0; i < n; ++i) {
    ntp::PeerEstimate e;
    e.offset = core::Duration::from_millis(rng.normal(0, 3));
    e.delay = core::Duration::from_millis(rng.uniform(20, 80));
    e.dispersion = core::Duration::from_millis(2);
    e.jitter_s = 1e-3;
    peers.push_back(e);
  }
  for (auto _ : state) {
    auto chimers = ntp::select_truechimers(peers);
    if (!chimers.empty()) {
      chimers = ntp::cluster_survivors(peers, std::move(chimers), {});
      auto combined = ntp::combine_offsets(peers, chimers);
      benchmark::DoNotOptimize(combined);
    }
  }
}
BENCHMARK(BM_SelectionPipeline)->Arg(4)->Arg(8)->Arg(32);

void BM_DriftFilterOffer(benchmark::State& state) {
  protocol::DriftFilter filter({.bootstrap_samples = 10, .max_samples = 512});
  core::Rng rng(3);
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 5'000'000'000;
    auto d = filter.offer(core::TimePoint::from_ns(t), rng.normal(0, 0.002));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DriftFilterOffer);

void BM_IncrementalLinReg(benchmark::State& state) {
  core::IncrementalLinReg reg;
  core::Rng rng(4);
  double x = 0;
  for (auto _ : state) {
    x += 1.0;
    reg.add(x, 2.0 * x + rng.normal(0, 0.1));
    auto fit = reg.fit();
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_IncrementalLinReg);

void BM_WirelessChannelTransmit(benchmark::State& state) {
  net::WirelessChannel channel(net::WirelessChannelParams{}, core::Rng(5));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 100'000'000;  // 100 ms apart
    auto r = channel.transmit_dir(core::TimePoint::from_ns(t), 76, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WirelessChannelTransmit);

void BM_WirelessChannelTransmitCoarse(benchmark::State& state) {
  net::WirelessChannelParams params;
  params.coarse_ou_advance = true;
  params.use_snr_lut = true;
  net::WirelessChannel channel(params, core::Rng(5));
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 100'000'000;  // 100 ms apart
    auto r = channel.transmit_dir(core::TimePoint::from_ns(t), 76, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_WirelessChannelTransmitCoarse);

void BM_RngNormal(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    double x = rng.normal(0.0, 1.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_RngNormal);

void BM_RngNormalFast(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    double x = rng.normal_fast(0.0, 1.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_RngNormalFast);

void BM_RngExponential(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    double x = rng.exponential(1.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_RngExponential);

void BM_RngExponentialFast(benchmark::State& state) {
  core::Rng rng(7);
  for (auto _ : state) {
    double x = rng.exponential_fast(1.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_RngExponentialFast);

void BM_EngineRound(benchmark::State& state) {
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              core::TimePoint::epoch());
  core::Rng rng(6);
  std::int64_t t = 0;
  std::vector<double> offsets(1);
  for (auto _ : state) {
    t += 5'000'000'000;
    offsets[0] = rng.normal(0, 0.003);
    auto r = engine.on_round(core::TimePoint::from_ns(t), offsets);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineRound);

// Telemetry overhead on the engine hot path, for the <5% budget in
// DESIGN.md §Observability: counters-only (the default above) vs the
// fully disabled registry vs event emission into null/ring sinks.
void BM_EngineRoundTelemetryDisabled(benchmark::State& state) {
  obs::Telemetry telemetry;
  telemetry.set_enabled(false);
  obs::ScopedTelemetry scope(telemetry);
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              core::TimePoint::epoch());
  core::Rng rng(6);
  std::int64_t t = 0;
  std::vector<double> offsets(1);
  for (auto _ : state) {
    t += 5'000'000'000;
    offsets[0] = rng.normal(0, 0.003);
    auto r = engine.on_round(core::TimePoint::from_ns(t), offsets);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineRoundTelemetryDisabled);

// Span-profiler overhead on the same hot path. BM_EngineRound above IS
// the profiler-disabled case (each on_round opens a ProfileScope that
// sees the default-off flag); comparing it against the seed's numbers
// pins the disabled-profiler cost, which must stay within 1% (DESIGN.md
// §6). This variant measures the profiler fully on.
void BM_EngineRoundProfilerEnabled(benchmark::State& state) {
  obs::Telemetry telemetry;
  telemetry.profiler().set_enabled(true);
  obs::ScopedTelemetry scope(telemetry);
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              core::TimePoint::epoch());
  core::Rng rng(6);
  std::int64_t t = 0;
  std::vector<double> offsets(1);
  for (auto _ : state) {
    t += 5'000'000'000;
    offsets[0] = rng.normal(0, 0.003);
    auto r = engine.on_round(core::TimePoint::from_ns(t), offsets);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineRoundProfilerEnabled);

void BM_ProfileScopeDisabled(benchmark::State& state) {
  // The bare cost a disabled ProfileScope adds to any instrumented
  // function: one current_profiler() call, one relaxed load, one branch.
  for (auto _ : state) {
    obs::ProfileScope span("bench.noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ProfileScopeDisabled);

void BM_QueryTraceDisabled(benchmark::State& state) {
  // The bare cost a disabled-tracer decision point adds: one
  // thread_local read and a null-tracer branch (the ambient pattern of
  // obs/query_trace.h). This is what every instrumented decision site
  // (drift_filter, false_ticker, clock_filter, channels) pays on
  // untraced runs; the ≤1% bench budget rests on it staying trivial.
  for (auto _ : state) {
    auto q = obs::ambient_query();
    benchmark::DoNotOptimize(q.tracer);
  }
}
BENCHMARK(BM_QueryTraceDisabled);

void BM_EngineRoundQueryTraceEnabled(benchmark::State& state) {
  // Engine hot path with the flight recorder fully on (engine owns the
  // round trace: mint + decision stages + verdict per on_round call).
  obs::Telemetry telemetry;
  telemetry.query_tracer().set_enabled(true);
  obs::ScopedTelemetry scope(telemetry);
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              core::TimePoint::epoch());
  core::Rng rng(6);
  std::int64_t t = 0;
  std::vector<double> offsets(1);
  for (auto _ : state) {
    t += 5'000'000'000;
    offsets[0] = rng.normal(0, 0.003);
    auto r = engine.on_round(core::TimePoint::from_ns(t), offsets);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineRoundQueryTraceEnabled);

void BM_EngineRoundTracedNullSink(benchmark::State& state) {
  obs::Telemetry telemetry;
  obs::NullSink sink;
  telemetry.add_sink(&sink);
  obs::ScopedTelemetry scope(telemetry);
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              core::TimePoint::epoch());
  core::Rng rng(6);
  std::int64_t t = 0;
  std::vector<double> offsets(1);
  for (auto _ : state) {
    t += 5'000'000'000;
    offsets[0] = rng.normal(0, 0.003);
    auto r = engine.on_round(core::TimePoint::from_ns(t), offsets);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineRoundTracedNullSink);

void BM_EngineRoundTracedRingSink(benchmark::State& state) {
  obs::Telemetry telemetry;
  obs::RingBufferSink sink(1 << 12);
  telemetry.add_sink(&sink);
  obs::ScopedTelemetry scope(telemetry);
  protocol::MntpEngine engine(protocol::head_to_head_params(),
                              core::TimePoint::epoch());
  core::Rng rng(6);
  std::int64_t t = 0;
  std::vector<double> offsets(1);
  for (auto _ : state) {
    t += 5'000'000'000;
    offsets[0] = rng.normal(0, 0.003);
    auto r = engine.on_round(core::TimePoint::from_ns(t), offsets);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineRoundTracedRingSink);

void BM_MetricsCounterInc(benchmark::State& state) {
  obs::Telemetry telemetry;
  obs::ScopedTelemetry scope(telemetry);
  obs::Counter* c = telemetry.metrics().counter("bench.counter");
  for (auto _ : state) {
    c->inc();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::Telemetry telemetry;
  obs::ScopedTelemetry scope(telemetry);
  obs::Histogram* h = telemetry.metrics().histogram(
      "bench.histogram", obs::HistogramOptions::latency_ms());
  core::Rng rng(11);
  for (auto _ : state) {
    h->record(rng.uniform(0.1, 500.0));
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_TraceCsvRoundTrip(benchmark::State& state) {
  // The tuner's interchange path: serialize + reparse a 1-hour trace.
  protocol::Trace trace;
  core::Rng rng(8);
  for (int i = 0; i < 720; ++i) {
    protocol::TraceRecord r;
    r.t_s = i * 5.0;
    r.rssi_dbm = rng.uniform(-80, -55);
    r.noise_dbm = rng.uniform(-95, -70);
    r.offsets_s = {rng.normal(0, 0.01), rng.normal(0, 0.01), rng.normal(0, 0.01)};
    trace.records.push_back(std::move(r));
  }
  for (auto _ : state) {
    const std::string csv = trace.to_csv();
    auto parsed = protocol::Trace::from_csv(csv);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_TraceCsvRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_TunerEmulate(benchmark::State& state) {
  protocol::Trace trace;
  core::Rng rng(9);
  for (int i = 0; i < 2880; ++i) {  // 4 hours at 5 s
    protocol::TraceRecord r;
    r.t_s = i * 5.0;
    r.rssi_dbm = rng.uniform(-80, -55);
    r.noise_dbm = rng.uniform(-95, -70);
    r.offsets_s = {rng.normal(0, 0.01)};
    trace.records.push_back(std::move(r));
  }
  for (auto _ : state) {
    auto result = protocol::tuner::emulate(trace, protocol::MntpParams{});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TunerEmulate)->Unit(benchmark::kMicrosecond);

// Serial vs parallel grid search over the Table 2-shaped grid (18
// configs, 8-hour trace). Arg is the worker count; Arg(1) is the exact
// serial path (no pool is created). Throughput scaling = the Arg(1) time
// divided by the Arg(N) time.
void BM_TunerSearch(benchmark::State& state) {
  protocol::Trace trace;
  core::Rng rng(9);
  for (int i = 0; i < 5760; ++i) {  // 8 hours at 5 s
    protocol::TraceRecord r;
    r.t_s = i * 5.0;
    r.rssi_dbm = rng.uniform(-80, -55);
    r.noise_dbm = rng.uniform(-95, -70);
    r.offsets_s = {rng.normal(0, 0.01), rng.normal(0, 0.01),
                   rng.normal(0, 0.01)};
    trace.records.push_back(std::move(r));
  }
  protocol::tuner::SearchSpace space;
  space.warmup_periods = {core::Duration::minutes(30),
                          core::Duration::minutes(60),
                          core::Duration::minutes(120)};
  space.warmup_wait_times = {core::Duration::seconds(15),
                             core::Duration::seconds(60)};
  space.regular_wait_times = {core::Duration::minutes(5),
                              core::Duration::minutes(15),
                              core::Duration::minutes(30)};
  space.reset_periods = {core::Duration::hours(4)};
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto entries = protocol::tuner::search(trace, space, {.threads = threads});
    benchmark::DoNotOptimize(entries);
  }
  state.counters["configs/s"] = benchmark::Counter(
      18.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TunerSearch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Event-core primitives: the slab/heap kernel's per-event cost with no
// payload. Schedule+fire is the dominant simulation operation; the slab
// recycles one slot per iteration so steady state is allocation-free.
void BM_EventScheduleFire(benchmark::State& state) {
  sim::EventQueue queue;
  std::uint64_t fired = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    t += 1'000;
    queue.schedule(core::TimePoint::from_ns(t), [&fired] { ++fired; });
    queue.run_next();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventScheduleFire);

void BM_EventCancelPending(benchmark::State& state) {
  // Schedule + cancel: slot release plus one heap tombstone per
  // iteration; the periodic drain pays the purge/compaction cost.
  sim::EventQueue queue;
  std::uint64_t fired = 0;
  std::int64_t t = 0;
  int batch = 0;
  for (auto _ : state) {
    t += 1'000;
    sim::EventHandle h =
        queue.schedule(core::TimePoint::from_ns(t), [&fired] { ++fired; });
    h.cancel();
    if (++batch == 1024) {
      batch = 0;
      while (!queue.empty()) queue.run_next();
    }
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventCancelPending);

void BM_FixedFunctionCall(benchmark::State& state) {
  // Invocation through the type-erased inline callable (the ops-table
  // indirect call an event dispatch pays), vs ~2x this for std::function.
  std::uint64_t count = 0;
  core::FixedFunction<void()> fn([&count] { ++count; });
  for (auto _ : state) {
    fn();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_FixedFunctionCall);

void BM_LogGeneration(benchmark::State& state) {
  // One mid-size server (JW2, ~36k clients at 1:100) per iteration.
  for (auto _ : state) {
    logs::LogGenerator gen({.scale = 1.0 / 100.0}, core::Rng(10));
    auto log = gen.generate(8);
    benchmark::DoNotOptimize(log.clients.size());
  }
}
BENCHMARK(BM_LogGeneration)->Unit(benchmark::kMillisecond);

void BM_TestbedMinuteOfSimulation(benchmark::State& state) {
  // Wall-clock cost of simulating one minute of the full wireless
  // testbed with interference machinery running.
  for (auto _ : state) {
    state.PauseTiming();
    ntp::TestbedConfig config;
    config.seed = 7;
    config.wireless = true;
    ntp::Testbed bed(config);
    bed.start();
    state.ResumeTiming();
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::minutes(1));
    benchmark::DoNotOptimize(bed.sim().events_executed());
  }
}
BENCHMARK(BM_TestbedMinuteOfSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
