// Extension (paper §7 future work): "build a reference NTP implementation
// and perform an exhaustive benchmarking of MNTP against SNTP and NTP in
// terms of metrics like processor and battery performance".
//
// Four correction strategies run the same drifting phone-grade clock over
// the same wireless conditions for six hours, each on its own identically
// seeded testbed:
//   * SNTP  — steps the clock with every reported offset (no filtering);
//   * NTP   — the reference client (filter/select/cluster/combine + PLL);
//   * MNTP  — full algorithm, corrections applied to the clock;
//   * GPS   — periodic fixes, urban availability.
// Metrics: true clock error (oracle), request volume, radio/GPS energy
// via the RRC-tail model, and radio-on time. Also §3.4's discussion,
// quantified: GPS is accurate but energy-hungry and availability-bound;
// NTP is tight but chatty; MNTP approaches NTP accuracy at a fraction of
// the traffic.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common.h"
#include "device/energy.h"
#include "device/gps.h"
#include "mntp/mntp_client.h"
#include "ntp/sntp_client.h"

using namespace mntp;

namespace {

constexpr std::uint64_t kSeed = 777;
const core::Duration kSpan = core::Duration::hours(6);
const core::Duration kSampleEvery = core::Duration::seconds(30);

ntp::TestbedConfig base_config(bool ntp_correction,
                               std::uint64_t seed = kSeed) {
  ntp::TestbedConfig config;
  config.seed = seed;
  config.wireless = true;
  config.ntp_correction = ntp_correction;
  // Phone-grade oscillator (worse than the laptop default).
  config.client_clock.constant_skew_ppm = 12.0;
  config.client_clock.wander_ppm_per_sqrt_s = 0.05;
  config.client_clock.temp_amplitude_ppm = 2.0;
  return config;
}

struct Outcome {
  std::string name;
  core::Summary abs_error_ms;
  double worst_ms = 0.0;
  std::size_t requests = 0;
  double energy_j = 0.0;
  double radio_on_min = 0.0;
};

Outcome sample_clock_error(const std::string& name,
                           std::vector<double>* errors) {
  Outcome o;
  o.name = name;
  for (double& e : *errors) e = std::abs(e);
  o.abs_error_ms = core::summarize(*errors);
  o.worst_ms = o.abs_error_ms.max;
  return o;
}

template <typename StepFn>
std::vector<double> drive(ntp::Testbed& bed, StepFn&& per_step) {
  std::vector<double> errors;
  core::TimePoint t = core::TimePoint::epoch();
  while (t < core::TimePoint::epoch() + kSpan) {
    t += kSampleEvery;
    bed.sim().run_until(t);
    errors.push_back(bed.true_clock_offset_ms());
    per_step();
  }
  return errors;
}

Outcome run_sntp(std::uint64_t seed = kSeed) {
  ntp::Testbed bed(base_config(false, seed));
  ntp::SntpClientPolicy policy;
  policy.poll_interval = core::Duration::seconds(64);
  policy.update_clock = true;  // raw SNTP semantics: trust every sample
  ntp::SntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                         bed.last_hop_up(), bed.last_hop_down(), policy);
  device::EnergyAccountant energy;
  client.set_on_sample([&](const ntp::SntpSample& s) {
    energy.on_exchange(s.completed_at, 152);
  });
  bed.start();
  client.start();
  auto errors = drive(bed, [] {});
  Outcome o = sample_clock_error("SNTP (64 s, step every sample)", &errors);
  o.requests = client.polls();
  o.energy_j = energy.total_mj(bed.sim().now()) / 1e3;
  o.radio_on_min = energy.radio_on_time(bed.sim().now()).to_seconds() / 60.0;
  return o;
}

Outcome run_ntp(std::uint64_t seed = kSeed) {
  ntp::Testbed bed(base_config(true, seed));  // testbed runs the reference client
  device::EnergyAccountant energy;
  bed.start();
  std::size_t rounds = 0;
  auto errors = drive(bed, [&] {});
  // 4 peers polled every 16 s: reconstruct the exchange schedule for the
  // energy model (all four land in one radio window per round).
  core::TimePoint t = core::TimePoint::epoch();
  while (t < core::TimePoint::epoch() + kSpan) {
    for (int peer = 0; peer < 4; ++peer) energy.on_exchange(t, 152);
    ++rounds;
    t += core::Duration::seconds(16);
  }
  Outcome o = sample_clock_error("NTP (reference, 4 peers @16 s)", &errors);
  o.requests = rounds * 4;
  o.energy_j = energy.total_mj(bed.sim().now()) / 1e3;
  o.radio_on_min = energy.radio_on_time(bed.sim().now()).to_seconds() / 60.0;
  return o;
}

Outcome run_mntp(std::uint64_t seed = kSeed) {
  ntp::Testbed bed(base_config(false, seed));
  protocol::MntpParams params;
  params.warmup_period = core::Duration::minutes(15);
  params.warmup_wait_time = core::Duration::seconds(15);
  params.regular_wait_time = core::Duration::minutes(2);
  params.reset_period = core::Duration::hours(12);
  params.apply_corrections_to_clock = true;
  protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                              bed.channel(), params, bed.fork_rng());
  bed.start();
  client.start();
  auto errors = drive(bed, [] {});
  Outcome o = sample_clock_error("MNTP (full, corrections applied)", &errors);
  o.requests = client.requests_sent();
  device::EnergyAccountant energy;
  for (const auto& h : client.hint_log()) {
    if (h.emitted) energy.on_exchange(h.hints.when, 152);
  }
  o.energy_j = energy.total_mj(bed.sim().now()) / 1e3;
  o.radio_on_min = energy.radio_on_time(bed.sim().now()).to_seconds() / 60.0;
  return o;
}

Outcome run_gps(std::uint64_t seed = kSeed) {
  ntp::Testbed bed(base_config(false, seed));
  device::GpsParams gps_params;  // urban availability defaults
  device::GpsTimeSource gps(bed.sim(), bed.target_clock(), gps_params,
                            bed.fork_rng());
  bed.start();
  gps.start();
  auto errors = drive(bed, [] {});
  Outcome o = sample_clock_error("GPS (10 min fixes, urban sky)", &errors);
  o.requests = gps.attempts();
  o.energy_j = gps.energy_mj() / 1e3;
  o.radio_on_min = 0.0;  // GPS receiver, not the cellular radio
  return o;
}

/// One replicate for the multi-seed mode: all four strategies on the
/// same derived seed, flattened to strategy-prefixed metrics.
std::vector<mntp::sim::MetricValue> run_replicate(std::uint64_t seed) {
  const Outcome outcomes[] = {run_sntp(seed), run_ntp(seed), run_mntp(seed),
                              run_gps(seed)};
  const char* prefixes[] = {"sntp", "ntp", "mntp", "gps"};
  std::vector<mntp::sim::MetricValue> metrics;
  for (std::size_t i = 0; i < 4; ++i) {
    const Outcome& o = outcomes[i];
    const std::string p = prefixes[i];
    metrics.push_back({p + ".mean_err_ms", o.abs_error_ms.mean});
    metrics.push_back({p + ".p90_err_ms", o.abs_error_ms.p90});
    metrics.push_back({p + ".worst_ms", o.worst_ms});
    metrics.push_back({p + ".requests", static_cast<double>(o.requests)});
    metrics.push_back({p + ".energy_j", o.energy_j});
  }
  return metrics;
}

/// Multi-seed mode (`--replicates K --threads N`): the single-run shape
/// checks, applied to medians across K independent realizations.
int run_replicated(const mntp::bench::ReplicateCli& cli) {
  using mntp::sim::ReplicateReport;
  mntp::sim::ReplicationRunner runner({cli.replicates, cli.threads});
  const ReplicateReport report =
      runner.run(kSeed, [](std::uint64_t seed, std::size_t) {
        return run_replicate(seed);
      });
  mntp::bench::print_replicate_report(report);

  mntp::bench::Checks checks;
  checks.expect(report.median("ntp.mean_err_ms") <
                    report.median("sntp.mean_err_ms"),
                "reference NTP beats raw SNTP on accuracy (medians)");
  checks.expect(report.median("mntp.mean_err_ms") <
                    report.median("sntp.mean_err_ms") / 2.0,
                "MNTP far more accurate than raw SNTP (medians)");
  checks.expect(report.median("mntp.requests") <
                    report.median("ntp.requests") / 2.0,
                "MNTP needs a fraction of NTP's traffic (medians)");
  checks.expect(report.median("mntp.energy_j") <
                    report.median("ntp.energy_j") / 2.0,
                "MNTP burns a fraction of NTP's radio energy (medians)");
  checks.expect(report.median("mntp.p90_err_ms") <
                    report.median("ntp.p90_err_ms") * 4.0,
                "MNTP accuracy in NTP's neighbourhood (medians)");
  checks.expect(report.median("gps.worst_ms") > report.median("mntp.worst_ms"),
                "duty-cycled GPS pays in worst-case error (medians)");
  return checks.finish("Three-way comparison (+GPS, replicated)");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Extension: SNTP vs NTP vs MNTP vs GPS (6 h, same channel) ==\n");
  const mntp::bench::ReplicateCli cli =
      mntp::bench::parse_replicate_cli(argc, argv);
  if (cli.replicates > 1) return run_replicated(cli);
  const Outcome outcomes[] = {run_sntp(), run_ntp(), run_mntp(), run_gps()};

  core::TextTable table({"Strategy", "mean|err|(ms)", "p90|err|(ms)",
                         "worst|err|(ms)", "Requests", "Energy(J)",
                         "RadioOn(min)"});
  for (const Outcome& o : outcomes) {
    table.add_row({o.name, core::fmt_double(o.abs_error_ms.mean, 2),
                   core::fmt_double(o.abs_error_ms.p90, 2),
                   core::fmt_double(o.worst_ms, 2),
                   core::fmt_int(static_cast<long long>(o.requests)),
                   core::fmt_double(o.energy_j, 1),
                   core::fmt_double(o.radio_on_min, 1)});
  }
  std::printf("%s", table.render().c_str());

  const Outcome& sntp = outcomes[0];
  const Outcome& ntp_o = outcomes[1];
  const Outcome& mntp_o = outcomes[2];
  const Outcome& gps = outcomes[3];

  bench::Checks checks;
  checks.expect(ntp_o.abs_error_ms.mean < sntp.abs_error_ms.mean,
                "reference NTP beats raw SNTP on accuracy");
  checks.expect(mntp_o.abs_error_ms.mean < sntp.abs_error_ms.mean / 2.0,
                "MNTP far more accurate than raw SNTP");
  checks.expect(mntp_o.requests < ntp_o.requests / 2,
                "MNTP needs a fraction of NTP's traffic");
  checks.expect(mntp_o.energy_j < ntp_o.energy_j / 2,
                "MNTP burns a fraction of NTP's radio energy (the §3.4 concern)");
  checks.expect(mntp_o.abs_error_ms.p90 < ntp_o.abs_error_ms.p90 * 4.0,
                "MNTP accuracy in NTP's neighbourhood despite the budget gap");
  checks.expect(gps.abs_error_ms.mean < sntp.abs_error_ms.mean,
                "GPS fixes beat raw SNTP when available");
  // The paper's energy objection targets continuous GPS (~400 mW); a
  // 10-minute duty cycle is cheap but pays for it in availability-bound
  // tail accuracy. Quantify both sides.
  const double continuous_gps_j = 0.4 * kSpan.to_seconds();
  std::printf("  (continuous GPS at 400 mW over this run would cost %.0f J)\n",
              continuous_gps_j);
  checks.expect(continuous_gps_j > mntp_o.energy_j,
                "continuous GPS dwarfs MNTP's energy (the paper's objection)");
  checks.expect(gps.worst_ms > mntp_o.worst_ms,
                "duty-cycled GPS pays in worst-case error (availability gaps)");
  return checks.finish("Three-way comparison (+GPS)");
}
