// Figure 8: reported SNTP vs MNTP offsets on a wireless network WITHOUT
// NTP clock correction — the client's clock free-runs and drifts, so
// accepted offsets ride the skew trend line.
//
// Paper numbers: SNTP offsets as high as 450 ms; MNTP maximum 24 ms from
// the trend, on average within 4.5 ms of the reference — 17x better.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common.h"

using namespace mntp;

namespace {

/// One replicate of the Figure 8 scenario: shape metrics plus the full
/// reported-offset distributions (merged exactly across replicates).
/// Replicate 0 runs the base seed — the single-seed experiment bit for
/// bit — so it alone records the sim-time timeline; other replicates
/// suppress theirs.
sim::ReplicateResult run_replicate(ntp::TestbedConfig config,
                                   std::uint64_t seed,
                                   std::size_t replicate) {
  obs::TimeSeriesRecorder::SuppressScope suppress(replicate != 0);
  config.seed = seed;
  const bench::HeadToHead r = bench::run_head_to_head(
      config, protocol::head_to_head_params(), core::Duration::hours(1));
  sim::ReplicateResult out;
  out.metrics = {
      {"sntp_max_abs_ms", core::max_abs(r.sntp.offsets_ms)},
      {"mntp_max_abs_ms", core::max_abs(r.mntp.accepted_ms)},
      {"resid_max_ms", core::max_abs(r.mntp.corrected_ms)},
      {"resid_mean_ms", core::mean_abs(r.mntp.corrected_ms)},
      {"has_drift", r.mntp.has_drift ? 1.0 : 0.0},
      {"drift_ppm", r.mntp.has_drift ? r.mntp.drift_ppm : 0.0},
  };
  obs::HdrHistogram sntp_offsets, mntp_accepted, mntp_resid;
  for (double v : r.sntp.offsets_ms) sntp_offsets.record(v);
  for (double v : r.mntp.accepted_ms) mntp_accepted.record(v);
  for (double v : r.mntp.corrected_ms) mntp_resid.record(v);
  out.distributions = {
      {"sntp_offset_ms", std::move(sntp_offsets)},
      {"mntp_accepted_ms", std::move(mntp_accepted)},
      {"mntp_resid_ms", std::move(mntp_resid)},
  };
  return out;
}

/// Multi-seed mode (`--replicates K --threads N`): aggregate the shape
/// metrics over K independent channel/clock realizations and apply the
/// paper's qualitative checks to the medians. The K=1 path below is the
/// untouched single-seed experiment.
int run_replicated(const ntp::TestbedConfig& config,
                   const bench::ReplicateCli& cli,
                   bench::BenchTelemetry& telemetry) {
  sim::ReplicationRunner runner({cli.replicates, cli.threads});
  const sim::ReplicateReport report = runner.run(
      config.seed,
      sim::ReplicationRunner::RichScenario(
          [&](std::uint64_t seed, std::size_t replicate) {
            return run_replicate(config, seed, replicate);
          }));
  bench::print_replicate_report(report);
  bench::print_replicate_distributions(report);

  bench::Checks checks;
  checks.expect(report.median("sntp_max_abs_ms") > 250.0,
                "median SNTP max offset reaches hundreds of ms (paper: 450)");
  checks.expect(report.median("mntp_max_abs_ms") < 45.0,
                "median MNTP max offset within tens of ms (paper max: 24)");
  checks.expect(report.median("resid_max_ms") < 40.0,
                "median MNTP max deviation from trend within tens of ms");
  checks.expect(report.median("resid_mean_ms") < 10.0,
                "median MNTP mean deviation small (paper: 4.5 ms)");
  checks.expect(report.median("sntp_max_abs_ms") /
                        std::max(report.median("mntp_max_abs_ms"), 1e-9) >
                    6.0,
                "improvement factor approaching the paper's 17x");
  int failures = checks.finish("Figure 8 (replicated)");
  if (!telemetry.finalize(core::TimePoint::epoch() + core::Duration::hours(1)))
    ++failures;
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fig8_mntp_vs_sntp_freerun", argc, argv);
  std::printf("== Figure 8: SNTP vs MNTP on wireless, free-running clock ==\n");
  ntp::TestbedConfig config;
  config.seed = 8;
  config.wireless = true;
  config.ntp_correction = false;
  // The clock is synchronized just before the run (as in the paper: NTP
  // corrects it, then is switched off), so offsets start near zero and
  // ride the skew trend over the hour.

  const bench::ReplicateCli cli = bench::parse_replicate_cli(argc, argv);
  if (cli.replicates > 1) return run_replicated(config, cli, telemetry);

  const bench::HeadToHead r = bench::run_head_to_head(
      config, protocol::head_to_head_params(), core::Duration::hours(1));

  bench::print_offset_summary("SNTP reported offsets", r.sntp.offsets_ms);
  bench::print_offset_summary("MNTP reported offsets", r.mntp.accepted_ms);
  bench::print_offset_summary("MNTP offsets minus trend", r.mntp.corrected_ms);
  if (r.mntp.has_drift) {
    std::printf("  MNTP drift estimate: %+.2f ppm (true oscillator skew %.2f ppm)\n",
                r.mntp.drift_ppm, config.client_clock.constant_skew_ppm);
  }

  bench::plot_offsets(
      "SNTP vs MNTP offsets, free-running clock (x: minutes, y: ms)",
      {{.label = "SNTP", .points = r.sntp.series, .marker = 's'},
       {.label = "MNTP accepted", .points = r.mntp.accepted, .marker = 'M'},
       {.label = "MNTP rejected", .points = r.mntp.rejected, .marker = 'x'}});

  // "Within x ms of the reference": MNTP's accepted offsets vs the true
  // clock offset they estimate. The trend-corrected residuals measure the
  // deviation from the skew line (paper: max 24 ms, mean 4.5 ms).
  const double resid_max = core::max_abs(r.mntp.corrected_ms);
  const double resid_mean = core::mean_abs(r.mntp.corrected_ms);
  const double sntp_max = core::max_abs(r.sntp.offsets_ms);

  bench::Checks checks;
  checks.expect(sntp_max > 250.0,
                "SNTP offsets reach hundreds of ms (paper: 450)");
  checks.expect(core::max_abs(r.mntp.accepted_ms) < 45.0,
                "MNTP reported offsets stay within tens of ms (paper max: 24)");
  checks.expect(resid_max < 40.0,
                "MNTP stays within tens of ms of the trend");
  checks.expect(resid_mean < 10.0,
                "MNTP mean deviation small (paper: 4.5 ms)");
  checks.expect(sntp_max / std::max(core::max_abs(r.mntp.accepted_ms), 1e-9) >
                    6.0,
                "improvement factor approaching the paper's 17x");
  if (r.mntp.has_drift) {
    // Measured offset = (server - client): a clock losing time (negative
    // skew) produces a *rising* measured-offset trend, hence the sign flip.
    checks.expect_near(r.mntp.drift_ppm, -config.client_clock.constant_skew_ppm,
                       3.0, "drift estimate recovers the oscillator skew");
  }
  int failures = checks.finish("Figure 8");
  if (!telemetry.finalize(core::TimePoint::epoch() + core::Duration::hours(1))) ++failures;
  return failures;
}
