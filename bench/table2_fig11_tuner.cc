// Table 2 + Figure 11: the MNTP tuner — trace-driven parameter search.
//
// Reproduction: capture a 4-hour trace with the tuner's logger (SNTP
// offsets from 3 reference clocks every 5 s plus wireless hints, on the
// standard interference testbed with an NTP-corrected clock), replay the
// paper's six sample configurations through the emulator, print the
// Table 2 rows (RMSE of reported offsets vs a perfect clock, request
// count), then run a broader grid search with the searcher.
//
// Paper shape: RMSE falls from 13.08 ms (config 1, 239 requests) to
// 8.9 ms (config 6, 2913 requests) — more tuning requests buy accuracy,
// but MNTP "performs well with only modest tuning".
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "mntp/tuner.h"

using namespace mntp;

namespace {

protocol::MntpParams paper_config(double warmup_min, double wwait_min,
                                  double rwait_min, double reset_min) {
  protocol::MntpParams p;
  p.warmup_period = core::Duration::from_seconds(warmup_min * 60);
  p.warmup_wait_time = core::Duration::from_seconds(wwait_min * 60);
  p.regular_wait_time = core::Duration::from_seconds(rwait_min * 60);
  p.reset_period = core::Duration::from_seconds(reset_min * 60);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("table2_fig11_tuner", argc, argv);
  const std::size_t threads = bench::parse_threads(argc, argv);
  std::printf("== Table 2 / Figure 11: MNTP tuner ==\n");
  std::printf("searcher threads: %zu\n", threads);

  // 1. Capture the trace (logger component).
  ntp::TestbedConfig config;
  config.seed = 11;
  config.wireless = true;
  config.ntp_correction = true;
  ntp::Testbed bed(config);
  protocol::tuner::Logger logger(bed.sim(), bed.target_clock(), bed.pool(),
                                 bed.channel(), {}, bed.fork_rng());
  bed.start();
  logger.start();
  bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(4));
  logger.stop();
  const protocol::Trace& trace = logger.trace();
  std::printf("captured trace: %zu records over %.0f min\n", trace.size(),
              trace.span_s() / 60.0);

  // 2. The paper's six sample configurations (Table 2).
  struct PaperRow {
    double warmup, wwait, rwait, reset, rmse;
    std::size_t requests;
  };
  const PaperRow paper_rows[] = {
      {30, 0.25, 15, 240, 13.08, 239},  {40, 0.25, 15, 240, 11.66, 316},
      {50, 0.25, 15, 240, 11.09, 387},  {70, 0.25, 30, 240, 10.86, 534},
      {90, 0.084, 15, 240, 9.27, 1210}, {240, 0.084, 15, 240, 8.90, 2913},
  };

  core::TextTable table({"Cfg", "warmup(min)", "wwait(min)", "rwait(min)",
                         "reset(min)", "RMSE(ms)", "RMSE(paper)", "Requests",
                         "Req(paper)"});
  std::vector<double> rmse_measured;
  std::vector<std::size_t> requests_measured;
  std::vector<core::Series> fig11;
  int cfg_no = 1;
  for (const PaperRow& row : paper_rows) {
    const auto params = paper_config(row.warmup, row.wwait, row.rwait, row.reset);
    const auto result = protocol::tuner::emulate(trace, params);
    rmse_measured.push_back(result.rmse_ms);
    requests_measured.push_back(result.requests);
    table.add_row({core::fmt_int(cfg_no), core::fmt_double(row.warmup, 1),
                   core::fmt_double(row.wwait, 3), core::fmt_double(row.rwait, 1),
                   core::fmt_double(row.reset, 0),
                   core::fmt_double(result.rmse_ms, 2),
                   core::fmt_double(row.rmse, 2),
                   core::fmt_int(static_cast<long long>(result.requests)),
                   core::fmt_int(static_cast<long long>(row.requests))});
    // Figure 11: achievable offset values per configuration.
    if (cfg_no == 1 || cfg_no == 6) {
      core::Series s;
      s.label = "config " + std::to_string(cfg_no) + " reported offsets (ms)";
      s.marker = cfg_no == 1 ? '1' : '6';
      double i = 0;
      for (double off : result.reported_offsets_ms) {
        s.points.emplace_back(i++, off);
      }
      fig11.push_back(std::move(s));
    }
    ++cfg_no;
  }
  std::printf("%s", table.render().c_str());
  bench::plot_offsets(
      "Figure 11: reported offsets per configuration (x: sample #, y: ms)",
      fig11);

  // 3. Broader sweep with the searcher.
  protocol::tuner::SearchSpace space;
  space.warmup_periods = {core::Duration::minutes(30), core::Duration::minutes(60),
                          core::Duration::minutes(120)};
  space.warmup_wait_times = {core::Duration::seconds(15),
                             core::Duration::seconds(60)};
  space.regular_wait_times = {core::Duration::minutes(5),
                              core::Duration::minutes(15),
                              core::Duration::minutes(30)};
  space.reset_periods = {core::Duration::hours(4)};
  auto entries =
      protocol::tuner::search(trace, space, {.threads = threads});
  // The parallel searcher guarantees bit-identical output to the serial
  // path; cross-check it on the real grid whenever threads were asked for.
  bool parallel_matches_serial = true;
  if (threads > 1) {
    const auto serial = protocol::tuner::search(trace, space);
    parallel_matches_serial = serial.size() == entries.size();
    for (std::size_t i = 0; parallel_matches_serial && i < serial.size(); ++i) {
      parallel_matches_serial = serial[i].rmse_ms == entries[i].rmse_ms &&
                                serial[i].requests == entries[i].requests &&
                                serial[i].to_string() == entries[i].to_string();
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.rmse_ms < b.rmse_ms; });
  std::printf("\n-- searcher sweep (%zu configurations, best first) --\n",
              entries.size());
  for (const auto& e : entries) {
    std::printf("  %s\n", e.to_string().c_str());
  }

  // Shape checks.
  bench::Checks checks;
  checks.expect(requests_measured.back() > requests_measured.front() * 4,
                "config 6 issues far more requests than config 1");
  bool requests_monotone = true;
  for (std::size_t i = 1; i < requests_measured.size(); ++i) {
    requests_monotone &= requests_measured[i] > requests_measured[i - 1];
  }
  checks.expect(requests_monotone,
                "request count grows across the six configs (paper: 239 -> 2913)");
  const double worst_rmse =
      *std::max_element(rmse_measured.begin(), rmse_measured.end());
  const double best_rmse =
      *std::min_element(rmse_measured.begin(), rmse_measured.end());
  // Our simulated trace is cleaner than the authors' live capture, so the
  // RMSE-vs-requests slope is flatter; the claims that survive are that
  // every config lands in a tight, modest band ("MNTP performs well with
  // only modest tuning") and the spread between configs stays small
  // (paper: 8.9 vs 13.08 ms, a 1.5x spread).
  checks.expect(worst_rmse < 40.0,
                "worst-config RMSE still modest (paper: 13 ms)");
  checks.expect(worst_rmse / std::max(best_rmse, 1e-9) < 3.0,
                "config spread small (paper: 1.5x between best and worst)");
  checks.expect(entries.size() == 18, "searcher enumerated the full grid");
  checks.expect(parallel_matches_serial,
                "parallel search output identical to serial enumeration");
  int failures = checks.finish("Table 2 / Figure 11");
  if (!telemetry.finalize(core::TimePoint::epoch() + core::Duration::hours(4))) ++failures;
  return failures;
}
