#include "common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "core/format.h"
#include "core/thread_pool.h"
#include "obs/metric_names.h"

namespace mntp::bench {

namespace {

double minutes_at(core::TimePoint t) { return t.to_seconds() / 60.0; }

}  // namespace

SntpRun run_sntp_experiment(const ntp::TestbedConfig& config,
                            core::Duration span, core::Duration poll) {
  ntp::Testbed bed(config);
  ntp::SntpClientPolicy policy;
  policy.poll_interval = poll;
  ntp::SntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                         bed.last_hop_up(), bed.last_hop_down(), policy);
  SntpRun run;
  client.set_on_sample([&](const ntp::SntpSample& s) {
    run.series.emplace_back(minutes_at(s.completed_at), s.offset.to_millis());
  });
  bed.start();
  client.start();
  bed.sim().run_until(core::TimePoint::epoch() + span);
  run.offsets_ms = client.offsets_ms();
  run.polls = client.polls();
  run.failures = client.failures();
  run.final_clock_offset_ms = bed.true_clock_offset_ms();
  return run;
}

void split_engine_records(const protocol::MntpEngine& engine, Series* accepted,
                          Series* rejected, Series* corrected) {
  for (const auto& r : engine.records()) {
    const double t_min = minutes_at(r.t);
    const bool ok = r.outcome == protocol::SampleOutcome::kAcceptedWarmup ||
                    r.outcome == protocol::SampleOutcome::kAcceptedRegular;
    if (ok) {
      if (accepted) accepted->emplace_back(t_min, r.offset_s * 1e3);
      if (corrected && !r.bootstrap) {
        corrected->emplace_back(t_min, r.corrected_s * 1e3);
      }
    } else if (rejected) {
      rejected->emplace_back(t_min, r.offset_s * 1e3);
    }
  }
}

MntpRun run_mntp_experiment(const ntp::TestbedConfig& config,
                            const protocol::MntpParams& params,
                            core::Duration span) {
  ntp::Testbed bed(config);
  protocol::MntpClient client(bed.sim(), bed.target_clock(), bed.pool(),
                              bed.channel(), params, bed.fork_rng());
  bed.start();
  client.start();
  bed.sim().run_until(core::TimePoint::epoch() + span);

  MntpRun run;
  split_engine_records(client.engine(), &run.accepted, &run.rejected,
                       &run.corrected);
  run.accepted_ms = client.engine().accepted_offsets_ms();
  run.rejected_ms = client.engine().rejected_offsets_ms();
  run.corrected_ms = client.engine().corrected_offsets_ms();
  run.deferrals = client.engine().deferrals();
  run.requests = client.requests_sent();
  if (const auto d = client.engine().drift_s_per_s()) {
    run.drift_ppm = *d * 1e6;
    run.has_drift = true;
  }
  run.final_clock_offset_ms = bed.true_clock_offset_ms();
  run.hints = client.hint_log();
  return run;
}

HeadToHead run_head_to_head(const ntp::TestbedConfig& config,
                            const protocol::MntpParams& params,
                            core::Duration span, core::Duration sntp_poll) {
  ntp::Testbed bed(config);
  ntp::SntpClientPolicy policy;
  policy.poll_interval = sntp_poll;
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), policy);
  protocol::MntpClient mntp_client(bed.sim(), bed.target_clock(), bed.pool(),
                                   bed.channel(), params, bed.fork_rng());

  HeadToHead result;
  sntp.set_on_sample([&](const ntp::SntpSample& s) {
    result.sntp.series.emplace_back(minutes_at(s.completed_at),
                                    s.offset.to_millis());
  });
  bed.start();
  sntp.start();
  mntp_client.start();
  bed.sim().run_until(core::TimePoint::epoch() + span);

  result.sntp.offsets_ms = sntp.offsets_ms();
  result.sntp.polls = sntp.polls();
  result.sntp.failures = sntp.failures();
  result.sntp.final_clock_offset_ms = bed.true_clock_offset_ms();

  split_engine_records(mntp_client.engine(), &result.mntp.accepted,
                       &result.mntp.rejected, &result.mntp.corrected);
  result.mntp.accepted_ms = mntp_client.engine().accepted_offsets_ms();
  result.mntp.rejected_ms = mntp_client.engine().rejected_offsets_ms();
  result.mntp.corrected_ms = mntp_client.engine().corrected_offsets_ms();
  result.mntp.deferrals = mntp_client.engine().deferrals();
  result.mntp.requests = mntp_client.requests_sent();
  if (const auto d = mntp_client.engine().drift_s_per_s()) {
    result.mntp.drift_ppm = *d * 1e6;
    result.mntp.has_drift = true;
  }
  result.mntp.final_clock_offset_ms = bed.true_clock_offset_ms();
  result.mntp.hints = mntp_client.hint_log();
  return result;
}

void print_offset_summary(const std::string& label,
                          const std::vector<double>& offsets_ms) {
  const core::Summary s = core::summarize(offsets_ms);
  std::printf(
      "  %-34s n=%-5zu mean %+8.2f ms  sd %8.2f  med %+7.2f  max|.| %8.2f\n",
      label.c_str(), s.count, s.mean, s.stddev, s.median,
      core::max_abs(offsets_ms));
}

void plot_offsets(const std::string& title,
                  const std::vector<core::Series>& series) {
  std::printf("%s\n", core::ascii_plot(series, 78, 18, title).c_str());
}

void Checks::expect(bool condition, const std::string& description) {
  entries_.push_back({condition, description});
}

void Checks::expect_near(double value, double target, double tolerance,
                         const std::string& description) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s (measured %.2f, paper ~%.2f, tol %.2f)",
                description.c_str(), value, target, tolerance);
  entries_.push_back({std::fabs(value - target) <= tolerance, buf});
}

std::string parse_flag(int argc, char** argv, const char* flag) {
  const std::size_t flag_len = std::strlen(flag);
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, flag) == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(arg, flag, flag_len) == 0 &&
               arg[flag_len] == '=') {
      value = arg + flag_len + 1;
    }
  }
  return value;
}

std::size_t parse_size_flag(int argc, char** argv, const char* flag,
                            std::size_t def) {
  const std::string value = parse_flag(argc, argv, flag);
  if (value.empty()) return def;
  char* end = nullptr;
  const unsigned long n = std::strtoul(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return def;
  return static_cast<std::size_t>(n);
}

bool parse_bool_flag(int argc, char** argv, const char* flag) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, flag) == 0) return true;
    if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
      return true;
    }
  }
  return false;
}

ReplicateCli parse_replicate_cli(int argc, char** argv) {
  ReplicateCli cli;
  cli.replicates =
      std::max<std::size_t>(1, parse_size_flag(argc, argv, "--replicates", 1));
  cli.threads = parse_threads(argc, argv, 1);
  return cli;
}

void print_replicate_report(const sim::ReplicateReport& report) {
  std::printf("\n== replication: %zu seeds from base %llu ==\n",
              report.replicates,
              static_cast<unsigned long long>(report.base_seed));
  core::TextTable table(
      {"metric", "median", "mean", "sd", "min", "max"});
  for (const sim::ReplicatedMetric& m : report.metrics) {
    table.add_row({m.name, core::strformat("%.3f", m.summary.median),
                   core::strformat("%.3f", m.summary.mean),
                   core::strformat("%.3f", m.summary.stddev),
                   core::strformat("%.3f", m.summary.min),
                   core::strformat("%.3f", m.summary.max)});
  }
  std::printf("%s", table.render().c_str());
}

void print_replicate_distributions(const sim::ReplicateReport& report) {
  if (report.distributions.empty()) return;
  std::printf("\n== merged distributions (exact counts across %zu seeds) ==\n",
              report.replicates);
  core::TextTable table({"distribution", "count", "p50", "p90", "p99", "min",
                         "max"});
  for (const sim::MergedDistribution& d : report.distributions) {
    table.add_row({d.name,
                   core::strformat("%llu", static_cast<unsigned long long>(
                                               d.merged.count())),
                   core::strformat("%.3f", d.merged.quantile(0.50)),
                   core::strformat("%.3f", d.merged.quantile(0.90)),
                   core::strformat("%.3f", d.merged.quantile(0.99)),
                   core::strformat("%.3f", d.merged.min()),
                   core::strformat("%.3f", d.merged.max())});
  }
  std::printf("%s", table.render().c_str());
}

std::size_t parse_threads(int argc, char** argv, std::size_t def) {
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else {
      constexpr const char kPrefix[] = "--threads=";
      if (std::strncmp(arg, kPrefix, sizeof kPrefix - 1) == 0) {
        value = arg + (sizeof kPrefix - 1);
      }
    }
  }
  if (value == nullptr) return def;
  char* end = nullptr;
  const unsigned long n = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0') return def;
  return n == 0 ? core::ThreadPool::default_workers()
                : static_cast<std::size_t>(n);
}

BenchTelemetry::BenchTelemetry(std::string run_name, int argc, char** argv)
    : run_name_(std::move(run_name)),
      out_path_(parse_flag(argc, argv, "--telemetry-out")),
      profile_path_(parse_flag(argc, argv, "--profile-out")),
      query_trace_path_(parse_flag(argc, argv, "--query-trace-out")),
      timeline_path_(parse_flag(argc, argv, "--timeline-out")),
      obs_self_(parse_bool_flag(argc, argv, "--obs-self")),
      scope_(telemetry_) {
  if (enabled()) telemetry_.add_sink(&trace_);
  if (profiling()) telemetry_.profiler().set_enabled(true);
  if (query_tracing()) {
    obs::QueryTracer& qt = telemetry_.query_tracer();
    qt.set_enabled(true);
    obs::QueryTracer::Sampling sampling;
    sampling.sample_one_in_n = std::max<std::size_t>(
        1, parse_size_flag(argc, argv, "--query-trace-sample", 1));
    sampling.seed = parse_size_flag(argc, argv, "--query-trace-seed", 0);
    sampling.reservoir =
        parse_size_flag(argc, argv, "--query-trace-reservoir", 0);
    if (sampling.sample_one_in_n > 1 || sampling.reservoir > 0) {
      qt.set_sampling(sampling);
    }
    if (parse_bool_flag(argc, argv, "--query-trace-stream")) {
      if (query_stream_.open(query_trace_path_)) {
        qt.set_stream(&query_stream_);
        query_streaming_ = true;
      } else {
        std::fprintf(stderr,
                     "query trace stream failed to open %s; "
                     "falling back to batch export\n",
                     query_trace_path_.c_str());
      }
    }
  }
  const std::string trace_stream_path =
      parse_flag(argc, argv, "--trace-stream-out");
  if (!trace_stream_path.empty()) {
    if (event_stream_.open(trace_stream_path)) {
      telemetry_.add_sink(&event_stream_);
    } else {
      std::fprintf(stderr, "trace stream failed to open %s\n",
                   trace_stream_path.c_str());
    }
  }
  if (timeline_enabled()) {
    const std::size_t cadence_ms =
        parse_size_flag(argc, argv, "--timeline-cadence-ms", 1000);
    telemetry_.timeseries().set_cadence(
        core::Duration::milliseconds(std::max<std::size_t>(1, cadence_ms)));
    telemetry_.timeseries().set_enabled(true);
  }
}

void BenchTelemetry::account_artifact(const std::string& path) {
  if (!obs_self_) return;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec) artifact_bytes_ += size;
}

bool BenchTelemetry::write_report(core::TimePoint sim_end) {
  if (!enabled()) return true;
  const core::Status status = obs::write_run_report_file(
      out_path_, telemetry_, &trace_,
      obs::ReportOptions{.run_name = run_name_, .sim_end = sim_end});
  if (!status.ok()) {
    std::fprintf(stderr, "telemetry report failed: %s\n",
                 status.error().message.c_str());
    return false;
  }
  std::printf("\ntelemetry report: %s (%zu metrics, %zu events)\n",
              out_path_.c_str(), telemetry_.metrics().snapshot().size(),
              trace_.events().size());
  return true;
}

bool BenchTelemetry::write_profile() {
  if (!profiling()) return true;
  const core::Status status = obs::write_chrome_trace_file(
      profile_path_, telemetry_.profiler(), run_name_);
  if (!status.ok()) {
    std::fprintf(stderr, "profile trace failed: %s\n",
                 status.error().message.c_str());
    return false;
  }
  std::printf("profile trace: %s (%llu spans, %llu dropped)\n",
              profile_path_.c_str(),
              static_cast<unsigned long long>(
                  telemetry_.profiler().total_spans()),
              static_cast<unsigned long long>(
                  telemetry_.profiler().dropped()));
  account_artifact(profile_path_);
  return true;
}

bool BenchTelemetry::write_query_trace(core::TimePoint sim_end) {
  if (!query_tracing()) return true;
  obs::QueryTracer& qt = telemetry_.query_tracer();
  if (query_streaming_) {
    if (!qt.finish_stream(run_name_, sim_end)) {
      std::fprintf(stderr, "query trace stream failed: %s\n",
                   query_trace_path_.c_str());
      return false;
    }
  } else if (!qt.write_jsonl_file(query_trace_path_, run_name_, sim_end)) {
    std::fprintf(stderr, "query trace failed: %s\n",
                 query_trace_path_.c_str());
    return false;
  }
  std::printf("query trace: %s (%llu queries, %llu dropped)\n",
              query_trace_path_.c_str(),
              static_cast<unsigned long long>(qt.minted()),
              static_cast<unsigned long long>(qt.dropped()));
  account_artifact(query_trace_path_);
  return true;
}

bool BenchTelemetry::write_timeline(core::TimePoint sim_end) {
  if (!timeline_enabled()) return true;
  const obs::TimeSeriesRecorder& ts = telemetry_.timeseries();
  // The chunked writer produces byte-identical output to
  // write_timeline_file (shared line serializers) while flushing in
  // bounded chunks and metering bytes/flushes for obs.self.*.
  std::uint64_t bytes = 0;
  const core::Status status = obs::write_timeline_chunked(
      timeline_path_, ts, run_name_, sim_end, &bytes, &timeline_flushes_);
  if (!status.ok()) {
    std::fprintf(stderr, "timeline failed: %s\n",
                 status.error().message.c_str());
    return false;
  }
  std::printf("timeline: %s (%zu series, %llu samples)\n",
              timeline_path_.c_str(), ts.series_count(),
              static_cast<unsigned long long>(ts.samples_taken()));
  if (obs_self_) artifact_bytes_ += bytes;
  return true;
}

bool BenchTelemetry::close_event_stream(core::TimePoint sim_end) {
  if (!event_streaming()) return true;
  if (!event_stream_.close(run_name_, sim_end)) {
    std::fprintf(stderr, "trace stream close failed\n");
    return false;
  }
  // Counters survive close(); read them after so the final flush counts.
  const std::uint64_t bytes = event_stream_.bytes_written();
  std::printf("trace stream: %llu events (%llu bytes)\n",
              static_cast<unsigned long long>(event_stream_.events()),
              static_cast<unsigned long long>(bytes));
  if (obs_self_) artifact_bytes_ += bytes;
  return true;
}

bool BenchTelemetry::finalize(core::TimePoint sim_end) {
  bool ok = true;
  // Export span aggregates BEFORE the run report so profile.span.*
  // gauges are serialized alongside the run's other metrics.
  if (profiling()) {
    telemetry_.profiler().export_to_metrics(telemetry_.metrics());
  }
  // Export trace-sampling reconciliation counters whenever traces can
  // have been sampled away — mntp-inspect needs them to tell "sampled
  // out on purpose" from "lost". Off the sampling path the metric set
  // (and so the report artifact) stays byte-identical to earlier
  // releases.
  const obs::QueryTracer::Sampling sampling =
      telemetry_.query_tracer().sampling();
  const bool sampling_on =
      sampling.sample_one_in_n > 1 || sampling.reservoir > 0;
  if (!obs_self_ && query_tracing() && (sampling_on || query_streaming_)) {
    telemetry_.query_tracer().export_counters(telemetry_.metrics());
  }
  if (!obs_self_) {
    // Historical order, byte-identical stdout.
    ok = write_report(sim_end) && ok;
    ok = write_profile() && ok;
    ok = write_query_trace(sim_end) && ok;
    ok = write_timeline(sim_end) && ok;
    ok = close_event_stream(sim_end) && ok;
    return ok;
  }
  // Self-metering: write every other artifact first so its cost is
  // known, fold the obs.self.* family into the registry, and write the
  // report LAST so it carries the measurements. (The report cannot
  // account its own bytes; obs.self.bytes_written covers the profile,
  // query-trace, timeline and stream artifacts.)
  ok = write_profile() && ok;
  ok = write_query_trace(sim_end) && ok;
  ok = write_timeline(sim_end) && ok;
  ok = close_event_stream(sim_end) && ok;
  obs::MetricsRegistry& metrics = telemetry_.metrics();
  const auto merge_start = std::chrono::steady_clock::now();
  const std::size_t merged_series = metrics.snapshot().size();
  const double merge_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - merge_start)
          .count();
  if (query_tracing()) {
    telemetry_.query_tracer().export_counters(metrics);
  }
  metrics.counter(obs::metric_names::kObsSelfBytesWritten)
      ->inc(artifact_bytes_);
  metrics.counter(obs::metric_names::kObsSelfStreamFlushes)
      ->inc(query_stream_.flushes() + event_stream_.flushes() +
            timeline_flushes_);
  metrics.gauge(obs::metric_names::kObsSelfMergeWallUs)->set(merge_us);
  std::printf(
      "telemetry self: %llu artifact bytes, %llu stream flushes, "
      "merge %zu series in %.1f us\n",
      static_cast<unsigned long long>(artifact_bytes_),
      static_cast<unsigned long long>(query_stream_.flushes() +
                                      event_stream_.flushes() +
                                      timeline_flushes_),
      merged_series, merge_us);
  ok = write_report(sim_end) && ok;
  return ok;
}

int Checks::finish(const std::string& experiment_name) const {
  int failures = 0;
  std::printf("\n-- shape checks: %s --\n", experiment_name.c_str());
  for (const auto& e : entries_) {
    std::printf("  [%s] %s\n", e.pass ? "PASS" : "FAIL", e.text.c_str());
    if (!e.pass) ++failures;
  }
  std::printf("  %zu checks, %d failed\n", entries_.size(), failures);
  return failures;
}

}  // namespace mntp::bench
