// Extension: the full protocol family of the paper's §2 background —
// PTP (LAN, hardware and software timestamping), full NTP (WAN), and
// SNTP (WAN) — disciplining identical oscillators, compared on
// steady-state clock error.
//
// Expected hierarchy (and the reason each exists): PTP with hardware
// timestamps reaches the microsecond class on a LAN; software
// timestamping costs an order of magnitude; NTP holds low milliseconds
// across a jittery WAN; raw SNTP is at the mercy of every delay sample.
#include <cstdio>

#include "common.h"
#include "net/wired_link.h"
#include "ptp/ptp_nodes.h"

using namespace mntp;

namespace {

sim::OscillatorParams test_oscillator() {
  sim::OscillatorParams p;
  p.initial_offset_s = 0.03;
  p.constant_skew_ppm = 18.0;
  p.wander_ppm_per_sqrt_s = 0.01;
  return p;
}

/// Steady-state |clock error| stats over the second hour of a run.
struct Steady {
  core::Summary abs_error_ms;
};

Steady run_ptp(double timestamp_noise_s) {
  core::Rng rng(61);
  sim::Simulation sim;
  sim::DisciplinedClock clock(test_oscillator(), rng.fork());
  net::WiredLink m2s(net::WiredLinkParams::lan(), rng.fork());
  net::WiredLink s2m(net::WiredLinkParams::lan(), rng.fork());
  ptp::PtpMaster master(sim,
                        ptp::PtpMasterParams{.timestamp_noise_s = timestamp_noise_s},
                        rng.fork());
  ptp::PtpSlave slave(sim, clock,
                      ptp::PtpSlaveParams{.timestamp_noise_s = timestamp_noise_s, .servo = {}},
                      rng.fork());
  master.attach(slave, net::LinkPath({&m2s}), net::LinkPath({&s2m}));
  master.start();

  sim.run_until(core::TimePoint::epoch() + core::Duration::hours(1));
  std::vector<double> errors;
  for (int i = 0; i < 3600; i += 10) {
    sim.run_until(core::TimePoint::epoch() + core::Duration::hours(1) +
                  core::Duration::seconds(i));
    errors.push_back(std::abs(clock.offset_at(sim.now())) * 1e3);
  }
  return Steady{core::summarize(errors)};
}

Steady run_wan(bool full_ntp) {
  ntp::TestbedConfig config;
  config.seed = 62;
  config.wireless = false;
  config.monitor_active = false;
  config.ntp_correction = full_ntp;
  config.client_clock = test_oscillator();
  ntp::Testbed bed(config);

  ntp::SntpClientPolicy policy;
  policy.poll_interval = core::Duration::seconds(16);
  policy.update_clock = !full_ntp;  // raw SNTP steps every sample
  ntp::SntpClient sntp(bed.sim(), bed.target_clock(), bed.pool(),
                       bed.last_hop_up(), bed.last_hop_down(), policy);
  bed.start();
  if (!full_ntp) sntp.start();

  bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(1));
  std::vector<double> errors;
  for (int i = 0; i < 3600; i += 10) {
    bed.sim().run_until(core::TimePoint::epoch() + core::Duration::hours(1) +
                        core::Duration::seconds(i));
    errors.push_back(std::abs(bed.true_clock_offset_ms()));
  }
  return Steady{core::summarize(errors)};
}

}  // namespace

int main() {
  std::printf("== Extension: protocol family — PTP vs NTP vs SNTP ==\n");
  const Steady ptp_hw = run_ptp(100e-9);
  const Steady ptp_sw = run_ptp(50e-6);
  const Steady ntp_wan = run_wan(/*full_ntp=*/true);
  const Steady sntp_wan = run_wan(/*full_ntp=*/false);

  core::TextTable table(
      {"Protocol / setting", "mean|err|", "p90|err|", "max|err|"});
  auto add = [&](const char* name, const Steady& s) {
    auto fmt = [](double ms) {
      return ms < 0.1 ? core::fmt_double(ms * 1e3, 1) + " us"
                      : core::fmt_double(ms, 3) + " ms";
    };
    table.add_row({name, fmt(s.abs_error_ms.mean), fmt(s.abs_error_ms.p90),
                   fmt(s.abs_error_ms.max)});
  };
  add("PTP, LAN, hardware timestamps (1 Hz)", ptp_hw);
  add("PTP, LAN, software timestamps (1 Hz)", ptp_sw);
  add("NTP, WAN pool (16 s, 4 peers)", ntp_wan);
  add("SNTP, WAN pool (16 s, step each sample)", sntp_wan);
  std::printf("%s", table.render().c_str());

  bench::Checks checks;
  checks.expect(ptp_hw.abs_error_ms.mean < 0.1,
                "hardware-timestamped PTP reaches the sub-100us class");
  checks.expect(ptp_hw.abs_error_ms.mean < ptp_sw.abs_error_ms.mean,
                "hardware timestamping beats software timestamping");
  checks.expect(ptp_sw.abs_error_ms.mean < ntp_wan.abs_error_ms.mean,
                "LAN PTP (even software) beats WAN NTP");
  checks.expect(ntp_wan.abs_error_ms.mean < sntp_wan.abs_error_ms.mean,
                "full NTP beats raw SNTP on the same WAN");
  return checks.finish("Protocol family");
}
