// Figure 4: SNTP clock offsets, wired vs wireless, with (left) and
// without (right) NTP clock correction. 1-hour runs, 5 s polls, the same
// interference apparatus as §3.2.
//
// Paper numbers: wireless+correction mean 31 ms / sd 47 ms with spikes to
// ~600 ms; wireless free-run mean 118 / sd 133 with spikes to ~1.58 s;
// wired+correction mean ~4 / sd ~7 (offsets near 0); wired free-run shows
// a steady temperature-dependent drift.
#include <cstdio>

#include "common.h"

using namespace mntp;

namespace {

ntp::TestbedConfig scenario(bool wireless, bool corrected, std::uint64_t seed) {
  ntp::TestbedConfig config;
  config.seed = seed;
  config.wireless = wireless;
  config.ntp_correction = corrected;
  if (!corrected) {
    // A free-running mobile clock has been drifting since boot; the paper's
    // uncorrected runs start from a standing error (their offsets sit
    // around ~100 ms and grow).
    config.client_clock.initial_offset_s = -0.1;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fig4_wired_vs_wireless", argc, argv);
  std::printf("== Figure 4: SNTP offsets, wired vs wireless, +/- NTP correction ==\n");
  const core::Duration span = core::Duration::hours(1);
  bench::Checks checks;

  const bench::SntpRun wired_corr = bench::run_sntp_experiment(scenario(false, true, 41), span);
  const bench::SntpRun wired_free = bench::run_sntp_experiment(scenario(false, false, 42), span);
  const bench::SntpRun wless_corr = bench::run_sntp_experiment(scenario(true, true, 43), span);
  const bench::SntpRun wless_free = bench::run_sntp_experiment(scenario(true, false, 44), span);

  std::printf("\n-- with NTP clock correction (left panel) --\n");
  bench::print_offset_summary("wired + NTP correction", wired_corr.offsets_ms);
  bench::print_offset_summary("wireless + NTP correction", wless_corr.offsets_ms);
  std::printf("\n-- without NTP clock correction (right panel) --\n");
  bench::print_offset_summary("wired free-run", wired_free.offsets_ms);
  bench::print_offset_summary("wireless free-run", wless_free.offsets_ms);

  bench::plot_offsets(
      "SNTP offsets with correction (x: minutes, y: ms)",
      {{.label = "wired", .points = wired_corr.series, .marker = 'w'},
       {.label = "wireless", .points = wless_corr.series, .marker = 'X'}});
  bench::plot_offsets(
      "SNTP offsets without correction (x: minutes, y: ms)",
      {{.label = "wired", .points = wired_free.series, .marker = 'w'},
       {.label = "wireless", .points = wless_free.series, .marker = 'X'}});

  // Shape checks against the published moments.
  const auto s_wc = core::summarize(wired_corr.offsets_ms);
  const auto s_xc = core::summarize(wless_corr.offsets_ms);
  const auto s_wf = core::summarize(wired_free.offsets_ms);
  const auto s_xf = core::summarize(wless_free.offsets_ms);

  checks.expect(std::abs(s_wc.mean) < 10.0 && s_wc.stddev < 15.0,
                "wired+correction offsets near 0 (paper: mean 4, sd 7)");
  checks.expect(s_xc.stddev > 3.0 * s_wc.stddev,
                "wireless offsets far more variable than wired (corrected)");
  checks.expect_near(s_xc.mean, 31.0, 30.0,
                     "wireless+correction mean in the paper's band");
  checks.expect(core::max_abs(wless_corr.offsets_ms) > 250.0,
                "wireless+correction shows multi-hundred-ms spikes (paper: ~600)");
  checks.expect_near(s_xf.mean, 118.0, 60.0,
                     "wireless free-run mean in the paper's band");
  checks.expect(core::max_abs(wless_free.offsets_ms) >
                    core::max_abs(wired_free.offsets_ms) * 3.0,
                "free-run wireless spikes dwarf wired");
  // Wired free-run drift is steady: mean offset reflects the standing
  // error + drift, with modest sd.
  checks.expect(s_wf.stddev < 20.0,
                "wired free-run is a steady drift, not spiky");
  checks.expect(wless_corr.failures > wired_corr.failures,
                "wireless hop loses requests; wired barely does");
  int failures = checks.finish("Figure 4");
  if (!telemetry.finalize(core::TimePoint::epoch() + span)) ++failures;
  return failures;
}
