// Figure 5: SNTP clock offsets reported by a mobile host on a 4G network
// (§3.3): Galaxy S4, 3-hour run, GPS-corrected system clock, SNTP polls
// against a pool server.
//
// Paper numbers: mean offset 192 ms, sd 55 ms, maximum ~840 ms.
#include <cstdio>

#include "common.h"
#include "net/cellular.h"

using namespace mntp;

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("fig5_cellular", argc, argv);
  std::printf("== Figure 5: SNTP offsets on a 4G network (3 h) ==\n");
  core::Rng rng(5);
  sim::Simulation sim;
  // GPS-corrected baseline: the device clock is held at true time (the
  // SmartTimeSync app role), so measured offsets isolate the network.
  sim::DisciplinedClock clock(
      sim::OscillatorParams{.constant_skew_ppm = 0.0, .read_noise_s = 30e-6},
      rng.fork());
  net::CellularNetwork cellular(net::CellularParams{}, rng.fork());
  ntp::ServerPool pool(ntp::PoolParams{}, rng.fork());

  ntp::SntpClientPolicy policy;
  policy.poll_interval = core::Duration::seconds(5);
  ntp::SntpClient client(sim, clock, pool, &cellular.uplink(),
                         &cellular.downlink(), policy);
  bench::Series series;
  client.set_on_sample([&](const ntp::SntpSample& s) {
    series.emplace_back(s.completed_at.to_seconds() / 60.0,
                        s.offset.to_millis());
  });
  client.start();
  sim.run_until(core::TimePoint::epoch() + core::Duration::hours(3));

  const auto offsets = client.offsets_ms();
  bench::print_offset_summary("SNTP on 4G (GPS-corrected clock)", offsets);
  std::printf("  polls %zu, failures %zu\n", client.polls(), client.failures());
  bench::plot_offsets("4G SNTP offsets (x: minutes, y: ms)",
                      {{.label = "SNTP offset", .points = series, .marker = '*'}});

  const auto s = core::summarize(offsets);
  bench::Checks checks;
  checks.expect_near(s.mean, 192.0, 50.0, "mean offset ~192 ms");
  checks.expect_near(s.stddev, 55.0, 40.0, "offset sd ~55 ms");
  checks.expect(s.max > 500.0 && s.max < 1500.0,
                "maximum offset in the high hundreds of ms (paper: ~840)");
  checks.expect(s.min > 0.0,
                "4G offsets systematically positive (uplink-dominated asymmetry)");
  int failures = checks.finish("Figure 5");
  if (!telemetry.finalize(sim.now())) ++failures;
  return failures;
}
