// Table 1: "Summary of client statistics seen in the NTP logs."
//
// Regenerates the 19-server log dataset (downscaled 1:2000) through the
// synthetic generator, runs the §3.1 analysis pipeline over it, and
// prints the table with both generated counts and the scale-corrected
// estimates next to the paper's published values.
#include <cstdio>

#include "common.h"
#include "logs/analyze.h"
#include "logs/generate.h"

using namespace mntp;

int main() {
  std::printf("== Table 1: summary of client statistics seen in the NTP logs ==\n");
  const double scale = 1.0 / 2000.0;
  logs::LogGenerator generator({.scale = scale}, core::Rng(1));
  const auto all_logs = generator.generate_all();

  core::TextTable table({"Server", "Stratum", "IP", "Clients(gen)",
                         "Clients(est)", "Clients(paper)", "Meas(gen)",
                         "Meas(est)", "Meas(paper)", "SNTP%"});
  bench::Checks checks;
  std::uint64_t est_meas_total = 0;
  for (const auto& log : all_logs) {
    const logs::ServerStats stats = logs::LogAnalyzer::server_stats(log);
    const auto est_clients =
        static_cast<std::uint64_t>(stats.unique_clients / scale);
    // Estimated total measurements: the generator caps stored OWD samples
    // but counts all requests, so request totals scale back directly.
    const auto est_meas =
        static_cast<std::uint64_t>(static_cast<double>(stats.total_measurements) / scale);
    est_meas_total += est_meas;
    table.add_row({stats.server_id, core::fmt_int(stats.stratum),
                   log.spec.ipv6 ? "v4/v6" : "v4",
                   core::fmt_count(stats.unique_clients),
                   core::fmt_count(est_clients),
                   core::fmt_count(log.spec.unique_clients),
                   core::fmt_count(stats.total_measurements),
                   core::fmt_count(est_meas),
                   core::fmt_count(log.spec.total_measurements),
                   core::fmt_double(stats.sntp_share() * 100.0, 1)});

    // Client counts must scale back to within sampling error of Table 1
    // (at least 1 client is generated even for tiny servers).
    if (log.spec.unique_clients > 10000) {
      const double rel_err =
          std::abs(static_cast<double>(est_clients) -
                   static_cast<double>(log.spec.unique_clients)) /
          static_cast<double>(log.spec.unique_clients);
      checks.expect(rel_err < 0.25,
                    std::string(log.spec.id) + " client count within 25% after rescale");
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper totals: 209,447,922 measurements across 19 servers\n");
  std::printf("estimated total from generated logs: %s\n",
              core::fmt_count(est_meas_total).c_str());

  // Order-of-magnitude check on the measurement volume (the per-client
  // request distribution is heavy-tailed, so the factor is loose).
  checks.expect(est_meas_total > 209'447'922ull / 5 &&
                    est_meas_total < 209'447'922ull * 5,
                "total measurement volume within 5x of the paper");
  return checks.finish("Table 1");
}
