// Figures 9 and 10: reported SNTP offsets on a WIRED network versus MNTP
// offsets on a WIRELESS network — with NTP clock correction (Fig 9) and
// without (Fig 10). The strongest form of the claim: MNTP over a lossy
// wireless hop is competitive with (even beats the tail of) plain SNTP
// over a clean wired path.
//
// Paper numbers: wired SNTP spikes to ~50 ms in both variants; MNTP on
// wireless stays around 20 ms.
#include <cstdio>

#include "common.h"

using namespace mntp;

namespace {

int run_variant(bool corrected, const char* figure, std::uint64_t seed) {
  std::printf("\n== %s: wired SNTP vs wireless MNTP (%s) ==\n", figure,
              corrected ? "with NTP correction" : "free-running clock");

  ntp::TestbedConfig wired;
  wired.seed = seed;
  wired.wireless = false;
  wired.ntp_correction = corrected;
  const bench::SntpRun sntp =
      bench::run_sntp_experiment(wired, core::Duration::hours(1));

  ntp::TestbedConfig wireless;
  wireless.seed = seed + 1;
  wireless.wireless = true;
  wireless.ntp_correction = corrected;
  const bench::MntpRun mntp = bench::run_mntp_experiment(
      wireless, protocol::head_to_head_params(), core::Duration::hours(1));

  bench::print_offset_summary("SNTP on wired", sntp.offsets_ms);
  bench::print_offset_summary("MNTP on wireless", mntp.accepted_ms);
  bench::print_offset_summary("MNTP minus trend", mntp.corrected_ms);
  bench::plot_offsets(
      "wired SNTP vs wireless MNTP (x: minutes, y: ms)",
      {{.label = "SNTP (wired)", .points = sntp.series, .marker = 's'},
       {.label = "MNTP (wireless)", .points = mntp.accepted, .marker = 'M'}});

  const double sntp_max = core::max_abs(sntp.offsets_ms);
  // With a free-running clock the MNTP offsets ride the drift trend; the
  // comparison metric is deviation from the trend, as in Fig 10.
  const double mntp_spread =
      corrected ? core::max_abs(mntp.accepted_ms)
                : core::max_abs(mntp.corrected_ms);

  bench::Checks checks;
  checks.expect(sntp_max > 10.0,
                "wired SNTP still shows multi-ms tail (paper: up to 50 ms)");
  checks.expect(mntp_spread < 40.0,
                "wireless MNTP stays within tens of ms (paper: ~20 ms)");
  checks.expect(mntp_spread < sntp_max * 1.5,
                "MNTP over a lossy wireless hop competitive with wired SNTP");
  checks.expect(core::rmse(corrected ? mntp.accepted_ms : mntp.corrected_ms) <
                    core::rmse(sntp.offsets_ms) * 1.5,
                "MNTP RMSE competitive with wired SNTP RMSE");
  return checks.finish(figure);
}

}  // namespace

int main() {
  int failures = 0;
  failures += run_variant(/*corrected=*/true, "Figure 9", 90);
  failures += run_variant(/*corrected=*/false, "Figure 10", 92);
  return failures;
}
