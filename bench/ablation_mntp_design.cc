// Ablation studies of MNTP's design choices (DESIGN.md §4):
//
//   A. Gate vs filter — run MNTP with the channel gate disabled (accept
//      all channel states), with the trend filter disabled (accept all
//      offsets), and with both; compare against the full protocol. Shows
//      the two mechanisms are complementary, as §5.1 argues.
//   B. Drift re-estimation (§5.3 refinement) — without per-sample
//      re-estimation the filter underestimates drift and starves the
//      regular phase.
//   C. Multi-source warm-up — 1 vs 3 warm-up sources against a pool with
//      a false ticker: the mean+sd vote needs the fan-out.
#include <cstdio>
#include <utility>

#include "common.h"
#include "mntp/false_ticker.h"
#include "ntp/selection.h"

using namespace mntp;

namespace {

int ablation_gate_vs_filter() {
  std::printf("\n== Ablation A: channel gate vs trend filter ==\n");
  const core::Duration span = core::Duration::hours(1);

  auto run_with = [&](bool gate, bool filter) {
    ntp::TestbedConfig config;
    config.seed = 70;
    config.wireless = true;
    config.ntp_correction = true;
    protocol::MntpParams params = protocol::head_to_head_params();
    if (!gate) {
      // Thresholds no real channel can fail.
      params.thresholds.min_rssi = core::Dbm{-200.0};
      params.thresholds.max_noise = core::Dbm{100.0};
      params.thresholds.min_snr_margin = core::Decibels{-100.0};
    }
    bench::MntpRun r = bench::run_mntp_experiment(config, params, span);
    if (!filter) {
      // "Filter off" variant: count every offset (accepted + rejected) as
      // reported, as plain gating-only MNTP would.
      r.accepted_ms.insert(r.accepted_ms.end(), r.rejected_ms.begin(),
                           r.rejected_ms.end());
    }
    return r;
  };

  const auto full = run_with(true, true);
  const auto no_gate = run_with(false, true);
  const auto no_filter = run_with(true, false);
  const auto neither = run_with(false, false);

  core::TextTable table({"Variant", "Samples", "RMSE(ms)", "max|off|(ms)",
                         "Deferrals", "Rejections"});
  auto add = [&](const char* name, const bench::MntpRun& r) {
    table.add_row({name, core::fmt_int(static_cast<long long>(r.accepted_ms.size())),
                   core::fmt_double(core::rmse(r.accepted_ms), 2),
                   core::fmt_double(core::max_abs(r.accepted_ms), 1),
                   core::fmt_int(static_cast<long long>(r.deferrals)),
                   core::fmt_int(static_cast<long long>(r.rejected_ms.size()))});
  };
  add("full MNTP (gate + filter)", full);
  add("filter only (gate off)", no_gate);
  add("gate only (filter off)", no_filter);
  add("neither (SNTP-equivalent)", neither);
  std::printf("%s", table.render().c_str());

  bench::Checks checks;
  checks.expect(core::rmse(full.accepted_ms) <= core::rmse(neither.accepted_ms),
                "full MNTP no worse than the unprotected baseline");
  checks.expect(core::max_abs(full.accepted_ms) <
                    core::max_abs(neither.accepted_ms),
                "both mechanisms together tame the max offset");
  checks.expect(core::max_abs(no_gate.accepted_ms) <
                    core::max_abs(neither.accepted_ms),
                "the filter alone already rejects spikes");
  checks.expect(core::max_abs(no_filter.accepted_ms) <
                    core::max_abs(neither.accepted_ms),
                "the gate alone already avoids bad-channel samples");
  return checks.finish("Ablation A (gate vs filter)");
}

int ablation_drift_reestimation() {
  std::printf("\n== Ablation B: drift re-estimation each sample (the §5.3 fix) ==\n");
  ntp::TestbedConfig config;
  config.seed = 71;
  config.wireless = true;
  config.ntp_correction = false;
  // A wandering oscillator makes the early drift estimate go stale.
  config.client_clock.wander_ppm_per_sqrt_s = 0.12;

  protocol::MntpParams with_fix = protocol::head_to_head_params();
  with_fix.reestimate_drift_each_sample = true;
  protocol::MntpParams without_fix = with_fix;
  without_fix.reestimate_drift_each_sample = false;

  const auto span = core::Duration::hours(3);
  const auto fixed = bench::run_mntp_experiment(config, with_fix, span);
  const auto frozen = bench::run_mntp_experiment(config, without_fix, span);

  std::printf("  with re-estimation:    %zu accepted, %zu rejected\n",
              fixed.accepted_ms.size(), fixed.rejected_ms.size());
  std::printf("  without re-estimation: %zu accepted, %zu rejected\n",
              frozen.accepted_ms.size(), frozen.rejected_ms.size());

  bench::Checks checks;
  checks.expect(fixed.accepted_ms.size() > frozen.accepted_ms.size(),
                "re-estimation keeps accepting as the skew wanders");
  checks.expect(frozen.rejected_ms.size() > fixed.rejected_ms.size(),
                "a frozen trend rejects progressively more samples "
                "(the failure the tuner uncovered)");
  return checks.finish("Ablation B (drift re-estimation)");
}

int ablation_multisource() {
  std::printf("\n== Ablation C: warm-up fan-out vs a false ticker ==\n");
  auto run_with_sources = [](std::size_t sources) {
    ntp::TestbedConfig config;
    config.seed = 72;
    config.wireless = false;  // isolate the voting logic
    config.ntp_correction = false;
    config.pool.false_ticker_count = 2;
    config.pool.false_ticker_offset_s = 0.4;
    protocol::MntpParams params;
    params.warmup_period = core::Duration::minutes(20);
    params.warmup_wait_time = core::Duration::seconds(10);
    params.regular_wait_time = core::Duration::seconds(30);
    params.reset_period = core::Duration::hours(12);
    params.warmup_sources = sources;
    params.min_warmup_samples = 10;
    return bench::run_mntp_experiment(config, params,
                                      core::Duration::minutes(40));
  };
  const auto one = run_with_sources(1);
  const auto three = run_with_sources(3);

  bench::print_offset_summary("warm-up with 1 source", one.accepted_ms);
  bench::print_offset_summary("warm-up with 3 sources", three.accepted_ms);

  bench::Checks checks;
  // With one source there is no vote: 400 ms ticker offsets pollute the
  // accepted set (the bootstrap accepts unconditionally). With three, the
  // mean+sd vote strips them.
  checks.expect(core::max_abs(three.accepted_ms) < 150.0,
                "3-source warm-up keeps ticker offsets out");
  checks.expect(core::max_abs(one.accepted_ms) >
                    core::max_abs(three.accepted_ms),
                "1-source warm-up is measurably worse against false tickers");
  return checks.finish("Ablation C (multi-source warm-up)");
}

int ablation_vote_vs_marzullo() {
  // The paper's warm-up vote is the lightweight cousin of NTP's
  // intersection algorithm; quantify what the simplification costs.
  // Feed both the same synthetic multi-source rounds — k honest offsets
  // near a small true value plus f false tickers at +-350 ms — and
  // measure the combined-offset error each mitigation produces.
  std::printf("\n== Ablation D: mean+sd vote vs Marzullo intersection ==\n");
  core::Rng rng(73);
  core::TextTable table({"Sources", "Tickers", "vote err(ms)",
                         "marzullo err(ms)", "vote failures",
                         "marzullo failures"});
  bench::Checks checks;
  for (const auto& [k, f] : {std::pair{3, 1}, std::pair{5, 1}, std::pair{5, 2},
                             std::pair{7, 3}}) {
    core::RunningStats vote_err, marzullo_err;
    std::size_t vote_bad = 0, marzullo_bad = 0;
    const int rounds = 2000;
    for (int round = 0; round < rounds; ++round) {
      const double truth = rng.normal(0.0, 0.002);
      std::vector<double> offsets;
      std::vector<ntp::PeerEstimate> peers;
      for (int i = 0; i < k; ++i) {
        const bool ticker = i >= k - f;
        const double off =
            ticker ? (rng.bernoulli(0.5) ? 0.35 : -0.35) + rng.normal(0, 0.003)
                   : truth + rng.normal(0.0, 0.003);
        offsets.push_back(off);
        ntp::PeerEstimate e;
        e.offset = core::Duration::from_seconds(off);
        e.delay = core::Duration::from_millis(rng.uniform(20, 60));
        e.dispersion = core::Duration::from_millis(2);
        e.jitter_s = 3e-3;
        peers.push_back(e);
      }
      // Paper's vote.
      const auto survivors = protocol::reject_false_tickers(offsets);
      const double vote =
          protocol::combine_surviving_offsets(offsets, survivors);
      vote_err.add(std::abs(vote - truth) * 1e3);
      if (std::abs(vote - truth) > 0.1) ++vote_bad;
      // Full mitigation.
      auto chimers = ntp::select_truechimers(peers);
      if (chimers.empty()) {
        ++marzullo_bad;
      } else {
        chimers = ntp::cluster_survivors(peers, std::move(chimers), {});
        const double combined =
            ntp::combine_offsets(peers, chimers).to_seconds();
        marzullo_err.add(std::abs(combined - truth) * 1e3);
        if (std::abs(combined - truth) > 0.1) ++marzullo_bad;
      }
    }
    table.add_row({core::fmt_int(k), core::fmt_int(f),
                   core::fmt_double(vote_err.mean(), 3),
                   core::fmt_double(marzullo_err.mean(), 3),
                   core::fmt_int(static_cast<long long>(vote_bad)),
                   core::fmt_int(static_cast<long long>(marzullo_bad))});
    if (f * 2 < k) {
      checks.expect(marzullo_err.mean() < 5.0,
                    "Marzullo near-exact with a ticker minority");
    }
    if (k == 3 && f == 1) {
      // The headline case (the paper queries 3 sources): the lightweight
      // vote must also strip the ticker almost always.
      checks.expect(static_cast<double>(vote_bad) / rounds < 0.02,
                    "mean+sd vote strips 1-of-3 tickers in >98% of rounds");
    }
  }
  std::printf("%s", table.render().c_str());
  checks.expect(true, "see table: the vote trades worst-case robustness "
                      "(ticker majorities) for 274-lines-of-python simplicity");
  return checks.finish("Ablation D (vote vs Marzullo)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("ablation_mntp_design", argc, argv);
  int failures = 0;
  failures += ablation_gate_vs_filter();
  failures += ablation_drift_reestimation();
  failures += ablation_multisource();
  failures += ablation_vote_vs_marzullo();
  if (!telemetry.finalize(core::TimePoint::epoch())) ++failures;
  return failures;
}
