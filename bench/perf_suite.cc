// Performance-baseline suite: named workloads over the hot subsystems,
// timed with warmup + repetitions, summarized robustly (median / MAD /
// p95 — medians because wall time on shared machines is contaminated by
// scheduling noise) and written as BENCH_results.json in a stable schema
// that scripts/bench_compare.py diffs against the committed
// BENCH_baseline.json.
//
//   build/bench/perf_suite --reps 9 --warmup 2 --out BENCH_results.json
//
// Flags: --reps N (timed repetitions, default 9), --warmup N (untimed
// shakeout reps, default 2), --out PATH (default BENCH_results.json),
// --workload NAME (run just one), plus the common --telemetry-out /
// --profile-out harness flags (the suite is itself instrumented: a
// profiled run shows the span tree of every workload).
//
// Workloads are sized for seconds-not-minutes total runtime so the
// bench-smoke CTest entry can run the full suite with --reps 2.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.h"
#include "core/format.h"
#include "core/json_writer.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"
#include "fleet/client_fleet.h"
#include "fleet/params.h"
#include "fleet/simulator.h"
#include "logs/analyze.h"
#include "logs/generate.h"
#include "mntp/engine.h"
#include "mntp/trace.h"
#include "mntp/tuner.h"
#include "net/wireless_channel.h"
#include "obs/telemetry.h"
#include "obs/trace_event.h"
#include "sim/simulation.h"

// Build metadata injected by bench/CMakeLists.txt; the fallbacks keep
// the file compiling standalone.
#ifndef MNTP_BUILD_TYPE
#define MNTP_BUILD_TYPE "unknown"
#endif
#ifndef MNTP_BUILD_FLAGS
#define MNTP_BUILD_FLAGS ""
#endif

using namespace mntp;

namespace {

struct Workload {
  std::string name;
  std::function<void()> run;  ///< one timed repetition
};

struct WorkloadResult {
  std::string name;
  std::vector<double> samples_us;
  double median_us = 0.0;
  double mad_us = 0.0;
  double p95_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  double mean_us = 0.0;
};

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median absolute deviation: the robust spread bench_compare uses to
/// judge whether a regression exceeds run-to-run noise.
double mad(std::vector<double> xs, double median) {
  for (double& x : xs) x = std::fabs(x - median);
  return core::percentile(xs, 50.0);
}

WorkloadResult measure(const Workload& w, std::size_t warmup,
                       std::size_t reps) {
  WorkloadResult result;
  result.name = w.name;
  for (std::size_t i = 0; i < warmup; ++i) w.run();
  result.samples_us.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const double t0 = now_us();
    w.run();
    result.samples_us.push_back(now_us() - t0);
  }
  result.median_us = core::percentile(result.samples_us, 50.0);
  result.mad_us = mad(result.samples_us, result.median_us);
  result.p95_us = core::percentile(result.samples_us, 95.0);
  const auto [min_it, max_it] =
      std::minmax_element(result.samples_us.begin(), result.samples_us.end());
  result.min_us = *min_it;
  result.max_us = *max_it;
  double sum = 0.0;
  for (const double s : result.samples_us) sum += s;
  result.mean_us = sum / static_cast<double>(result.samples_us.size());
  return result;
}

/// Synthetic hint+offset trace shared by the tuner workload: `hours` of
/// 5-second capture records, deterministic under the fixed seed.
protocol::Trace make_trace(int hours) {
  protocol::Trace trace;
  core::Rng rng(9);
  const int n = hours * 720;
  trace.records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    protocol::TraceRecord r;
    r.t_s = i * 5.0;
    r.rssi_dbm = rng.uniform(-80, -55);
    r.noise_dbm = rng.uniform(-95, -70);
    r.offsets_s = {rng.normal(0, 0.01), rng.normal(0, 0.01),
                   rng.normal(0, 0.01)};
    trace.records.push_back(std::move(r));
  }
  return trace;
}

std::vector<Workload> build_workloads() {
  std::vector<Workload> workloads;

  // MNTP engine: 20k rounds through gate/filter/trend bookkeeping. A
  // fresh engine per rep keeps the record list from growing across reps.
  workloads.push_back({"engine_round", [] {
    protocol::MntpEngine engine(protocol::head_to_head_params(),
                                core::TimePoint::epoch());
    core::Rng rng(6);
    std::int64_t t = 0;
    std::vector<double> offsets(1);
    for (int i = 0; i < 20'000; ++i) {
      t += 5'000'000'000;
      offsets[0] = rng.normal(0, 0.003);
      engine.on_round(core::TimePoint::from_ns(t), offsets);
    }
  }});

  // Telemetry self-overhead: the engine_round body under three
  // instrumentation levels. `off` pins the disabled-telemetry budget
  // (≤1% over engine_round — every metric record degrades to one
  // branch); `metrics` prices the sharded-counter hot path; `trace`
  // additionally mints one sampled query per round (1-in-16 hash gate)
  // with the ambient scope installed, so filter decision points pay
  // their tracer lookups.
  {
    auto telemetry_round = [](obs::Telemetry& tel, bool trace_rounds) {
      obs::ScopedTelemetry scope(tel);
      protocol::MntpEngine engine(protocol::head_to_head_params(),
                                  core::TimePoint::epoch());
      core::Rng rng(6);
      obs::QueryTracer& tracer = tel.query_tracer();
      std::int64_t t = 0;
      std::vector<double> offsets(1);
      for (int i = 0; i < 20'000; ++i) {
        t += 5'000'000'000;
        const auto now = core::TimePoint::from_ns(t);
        offsets[0] = rng.normal(0, 0.003);
        if (trace_rounds) {
          const obs::QueryId id = tracer.begin(now, "round");
          obs::ActiveQueryScope q(tracer, id);
          engine.on_round(now, offsets);
          tracer.finish(id, now, obs::Reason::kNone);
        } else {
          engine.on_round(now, offsets);
        }
      }
    };
    workloads.push_back({"telemetry_overhead_off", [telemetry_round] {
      obs::Telemetry tel;
      tel.set_enabled(false);
      telemetry_round(tel, false);
    }});
    workloads.push_back({"telemetry_overhead_metrics", [telemetry_round] {
      obs::Telemetry tel;  // enabled; counters record, no sinks/tracer
      telemetry_round(tel, false);
    }});
    workloads.push_back({"telemetry_overhead_trace", [telemetry_round] {
      obs::Telemetry tel;
      obs::QueryTracer& tracer = tel.query_tracer();
      tracer.set_enabled(true);
      obs::QueryTracer::Sampling sampling;
      sampling.sample_one_in_n = 16;
      sampling.seed = 7;
      tracer.set_sampling(sampling);
      telemetry_round(tel, true);
    }});
  }

  // Tuner: a 12-config slice of the Table 2 grid over a 2-hour trace,
  // serial — thread-pool scheduling jitter belongs to the micro
  // benchmarks, not the regression baseline.
  {
    auto trace = std::make_shared<protocol::Trace>(make_trace(2));
    workloads.push_back({"tuner_grid_slice", [trace] {
      protocol::tuner::SearchSpace space;
      space.warmup_periods = {core::Duration::minutes(30),
                              core::Duration::minutes(60)};
      space.warmup_wait_times = {core::Duration::seconds(15),
                                 core::Duration::seconds(60)};
      space.regular_wait_times = {core::Duration::minutes(5),
                                  core::Duration::minutes(15),
                                  core::Duration::minutes(30)};
      space.reset_periods = {core::Duration::hours(4)};
      protocol::tuner::search(*trace, space, {.threads = 1});
    }});
  }

  // Log pipeline: generate one mid-size server log (JW2 at 1:200 scale)
  // and run both classification passes over it.
  workloads.push_back({"log_generate_classify", [] {
    logs::LogGenerator gen({.scale = 1.0 / 200.0}, core::Rng(10));
    const logs::ServerLog log = gen.generate(8);
    const logs::ServerStats stats = logs::LogAnalyzer::server_stats(log);
    const auto providers = logs::LogAnalyzer::provider_owd_stats(log, 1);
    // Keep the results observable so the passes cannot be elided.
    static volatile std::size_t sink;
    sink = stats.unique_clients + providers.size();
  }});

  // Event kernel: 64 interleaved self-rescheduling chains churning 100k
  // events through the queue — dispatch + reschedule, no payload.
  workloads.push_back({"event_queue_churn", [] {
    sim::Simulation sim;
    constexpr std::size_t kTarget = 100'000;
    std::size_t fired = 0;
    core::Rng rng(12);
    std::function<void()> tick = [&] {
      if (++fired >= kTarget) return;
      sim.after(core::Duration::from_millis(rng.uniform(0.1, 10.0)),
                [&] { tick(); });
    };
    for (int chain = 0; chain < 64; ++chain) {
      sim.after(core::Duration::from_millis(rng.uniform(0.1, 10.0)),
                [&] { tick(); });
    }
    sim.run();
  }});

  // Slab + heap under cancellation pressure: schedule 50k far-out
  // timers, cancel three quarters of them (exercising tombstone purge
  // and compaction), then drain the survivors plus 50k short chains.
  workloads.push_back({"event_schedule_cancel", [] {
    sim::Simulation sim;
    core::Rng rng(13);
    std::vector<sim::EventHandle> handles;
    handles.reserve(50'000);
    static volatile std::size_t sink;
    std::size_t fired = 0;
    for (int i = 0; i < 50'000; ++i) {
      handles.push_back(
          sim.after(core::Duration::from_millis(rng.uniform(100.0, 200.0)),
                    [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 4 != 0) handles[i].cancel();
    }
    std::function<void()> tick = [&] {
      if (++fired >= 62'500) return;
      sim.after(core::Duration::from_millis(rng.uniform(0.1, 10.0)),
                [&] { tick(); });
    };
    sim.after(core::Duration::from_millis(0.5), [&] { tick(); });
    sim.run();
    sink = fired;
  }});

  // Wireless channel: 20k acquisition-shaped interactions (hint sample +
  // both-direction transmits) spaced 5 s apart — dominated by the OU
  // tick integrator, which pays 2 normal draws per 100 ms of idle gap.
  workloads.push_back({"channel_transmit", [] {
    net::WirelessChannel channel({}, core::Rng(14));
    channel.set_utilization(0.35);
    static volatile std::size_t sink;
    std::size_t delivered = 0;
    std::int64_t t = 0;
    for (int i = 0; i < 20'000; ++i) {
      t += 5'000'000'000;
      const auto now = core::TimePoint::from_ns(t);
      const net::WirelessHints hints = channel.observe_hints(now);
      delivered += hints.rssi.value() > -200.0;  // keep hints observable
      delivered += channel.transmit_dir(now, 90, true).delivered;
      delivered += channel.transmit_dir(now, 90, false).delivered;
    }
    sink = delivered;
  }});

  // Same interaction pattern with the opt-in fast paths (closed-form OU
  // advance + SNR lookup table): gap cost becomes O(1), quantifying what
  // the coarse model buys a long-horizon simulation.
  workloads.push_back({"channel_transmit_coarse", [] {
    net::WirelessChannelParams params;
    params.coarse_ou_advance = true;
    params.use_snr_lut = true;
    net::WirelessChannel channel(params, core::Rng(14));
    channel.set_utilization(0.35);
    static volatile std::size_t sink;
    std::size_t delivered = 0;
    std::int64_t t = 0;
    for (int i = 0; i < 20'000; ++i) {
      t += 5'000'000'000;
      const auto now = core::TimePoint::from_ns(t);
      const net::WirelessHints hints = channel.observe_hints(now);
      delivered += hints.rssi.value() > -200.0;
      delivered += channel.transmit_dir(now, 90, true).delivered;
      delivered += channel.transmit_dir(now, 90, false).delivered;
    }
    sink = delivered;
  }});

  // Replication harness: fan 16 small engine scenarios out over 4 pool
  // threads — measures per-replicate dispatch + aggregation overhead on
  // top of the scenario cost.
  workloads.push_back({"replicate_fanout", [] {
    sim::ReplicationRunner runner({.replicates = 16, .threads = 4});
    const sim::ReplicateReport report = runner.run(
        99, [](std::uint64_t seed, std::size_t) {
          protocol::MntpEngine engine(protocol::head_to_head_params(),
                                      core::TimePoint::epoch());
          core::Rng rng(seed);
          std::int64_t t = 0;
          std::vector<double> offsets(1);
          for (int i = 0; i < 2'000; ++i) {
            t += 5'000'000'000;
            offsets[0] = rng.normal(0, 0.003);
            engine.on_round(core::TimePoint::from_ns(t), offsets);
          }
          return std::vector<sim::MetricValue>{
              {"accepted", static_cast<double>(
                               engine.accepted_offsets_ms().size())}};
        });
    static volatile std::size_t sink;
    sink = static_cast<std::size_t>(report.median("accepted"));
  }});

  // Fleet simulator: 50k SoA clients advanced through 30 sim-seconds of
  // time-sliced shard processing plus the server-side batching / cache /
  // KoD pipeline, single-threaded (the per-core number the gate tracks;
  // thread scaling belongs to fleet_qps --threads). The population is
  // built once and shared across reps — run() copies its mutable state.
  {
    fleet::FleetParams params;
    params.clients = 50'000;
    params.duration_s = 30.0;
    params.shards = 16;
    params.seed = 21;
    auto fleet_pop = std::make_shared<const fleet::ClientFleet>(
        fleet::ClientFleet::build(params));
    workloads.push_back({"fleet_qps", [fleet_pop, params] {
      fleet::Simulator sim(fleet_pop, params);
      const fleet::FleetResult result = sim.run(1);
      static volatile std::size_t sink;
      sink = static_cast<std::size_t>(result.queries);
    }});
  }

  return workloads;
}

/// BENCH_results.json schema v1 (validated by
/// scripts/check_telemetry_schema.py, diffed by scripts/bench_compare.py):
/// {schema_version, kind:"mntp_perf_suite", reps, warmup,
///  environment{compiler, build_type, build_flags, hardware_threads},
///  workloads:[{name, unit:"us", median_us, mad_us, p95_us, min_us,
///              max_us, mean_us, samples_us:[...]}]}
bool write_results(const std::string& path, std::size_t reps,
                   std::size_t warmup,
                   const std::vector<WorkloadResult>& results) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  std::string text;
  core::JsonWriter w(text, /*indent=*/2);
  w.begin_object()
      .kv("schema_version", std::int64_t{1})
      .kv("kind", "mntp_perf_suite")
      .kv("reps", static_cast<std::int64_t>(reps))
      .kv("warmup", static_cast<std::int64_t>(warmup))
      .key("environment")
      .begin_object()
      .kv("compiler", __VERSION__)
      .kv("build_type", MNTP_BUILD_TYPE)
      .kv("build_flags", MNTP_BUILD_FLAGS)
      .kv("hardware_threads",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()))
      .end_object()
      .key("workloads")
      .begin_array();
  for (const WorkloadResult& r : results) {
    w.begin_object()
        .kv("name", r.name)
        .kv("unit", "us")
        .key("median_us")
        .value_fixed(r.median_us, 3)
        .key("mad_us")
        .value_fixed(r.mad_us, 3)
        .key("p95_us")
        .value_fixed(r.p95_us, 3)
        .key("min_us")
        .value_fixed(r.min_us, 3)
        .key("max_us")
        .value_fixed(r.max_us, 3)
        .key("mean_us")
        .value_fixed(r.mean_us, 3)
        .key("samples_us")
        .begin_array();
    for (const double s : r.samples_us) w.value_fixed(s, 3);
    w.end_array().end_object();
  }
  w.end_array().end_object();
  out << text << "\n";
  return static_cast<bool>(out.flush());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchTelemetry telemetry("perf_suite", argc, argv);
  const std::size_t reps =
      std::max<std::size_t>(1, bench::parse_size_flag(argc, argv, "--reps", 9));
  const std::size_t warmup =
      bench::parse_size_flag(argc, argv, "--warmup", 2);
  std::string out_path = bench::parse_flag(argc, argv, "--out");
  if (out_path.empty()) out_path = "BENCH_results.json";
  const std::string only = bench::parse_flag(argc, argv, "--workload");

  std::printf("== MNTP perf suite: %zu reps (+%zu warmup) ==\n", reps, warmup);
  std::vector<WorkloadResult> results;
  for (const Workload& w : build_workloads()) {
    if (!only.empty() && w.name != only) continue;
    results.push_back(measure(w, warmup, reps));
    const WorkloadResult& r = results.back();
    std::printf("  %-22s median %10.1f us  mad %8.1f  p95 %10.1f\n",
                r.name.c_str(), r.median_us, r.mad_us, r.p95_us);
  }
  if (results.empty()) {
    std::fprintf(stderr, "no workload matched --workload %s\n", only.c_str());
    return 2;
  }

  core::TextTable table({"workload", "median_us", "mad_us", "p95_us",
                         "min_us", "max_us"});
  for (const WorkloadResult& r : results) {
    table.add_row({r.name, core::strformat("%.1f", r.median_us),
                   core::strformat("%.1f", r.mad_us),
                   core::strformat("%.1f", r.p95_us),
                   core::strformat("%.1f", r.min_us),
                   core::strformat("%.1f", r.max_us)});
  }
  std::printf("\n%s\n", table.render().c_str());

  if (!write_results(out_path, reps, warmup, results)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("results: %s (%zu workloads)\n", out_path.c_str(),
              results.size());
  telemetry.finalize(core::TimePoint::epoch());
  return 0;
}
