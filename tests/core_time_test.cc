#include "core/time.h"

#include <gtest/gtest.h>

namespace mntp::core {
namespace {

TEST(Duration, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Duration::nanoseconds(42).ns(), 42);
  EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
}

TEST(Duration, FromSecondsRoundsToNearest) {
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(1.4e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(1.6e-9).ns(), 2);
  EXPECT_EQ(Duration::from_seconds(-1.6e-9).ns(), -2);
  EXPECT_EQ(Duration::from_millis(2.5).ns(), 2'500'000);
}

TEST(Duration, ArithmeticAndComparison) {
  const Duration a = Duration::milliseconds(30);
  const Duration b = Duration::milliseconds(12);
  EXPECT_EQ((a + b).to_millis(), 42.0);
  EXPECT_EQ((a - b).to_millis(), 18.0);
  EXPECT_EQ((-a).ns(), -a.ns());
  EXPECT_EQ((a * 3).to_millis(), 90.0);
  EXPECT_EQ((a / 3).to_millis(), 10.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  EXPECT_GT(a, Duration::zero());
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1);
  d += Duration::milliseconds(500);
  EXPECT_EQ(d.to_millis(), 1500.0);
  d -= Duration::seconds(1);
  EXPECT_EQ(d.to_millis(), 500.0);
}

TEST(Duration, ScaledRounds) {
  EXPECT_EQ(Duration::milliseconds(10).scaled(0.5).to_millis(), 5.0);
  EXPECT_EQ(Duration::nanoseconds(3).scaled(0.5).ns(), 2);  // 1.5 -> 2
  EXPECT_EQ(Duration::milliseconds(-10).scaled(0.5).to_millis(), -5.0);
}

TEST(Duration, Abs) {
  EXPECT_EQ(Duration::milliseconds(-7).abs(), Duration::milliseconds(7));
  EXPECT_EQ(Duration::milliseconds(7).abs(), Duration::milliseconds(7));
  EXPECT_EQ(Duration::zero().abs(), Duration::zero());
}

TEST(Duration, ConversionAccessors) {
  const Duration d = Duration::microseconds(1500);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1.5e-3);
  EXPECT_DOUBLE_EQ(d.to_millis(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_micros(), 1500.0);
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ(Duration::nanoseconds(12).to_string(), "12ns");
  EXPECT_EQ(Duration::microseconds(12).to_string(), "12.0us");
  EXPECT_EQ(Duration::milliseconds(12).to_string(), "12.00ms");
  EXPECT_EQ(Duration::seconds(12).to_string(), "12.00s");
  EXPECT_EQ(Duration::minutes(2).to_string(), "2.0min");
}

TEST(TimePoint, EpochAndOffsets) {
  const TimePoint e = TimePoint::epoch();
  EXPECT_EQ(e.ns(), 0);
  const TimePoint t = e + Duration::seconds(5);
  EXPECT_EQ(t.ns(), 5'000'000'000);
  EXPECT_EQ(t - e, Duration::seconds(5));
  EXPECT_EQ(t - Duration::seconds(2), e + Duration::seconds(3));
}

TEST(TimePoint, Comparison) {
  const TimePoint a = TimePoint::from_ns(10);
  const TimePoint b = TimePoint::from_ns(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::from_ns(10));
  EXPECT_GT(TimePoint::max(), b);
}

TEST(TimePoint, PlusEquals) {
  TimePoint t = TimePoint::epoch();
  t += Duration::milliseconds(250);
  EXPECT_EQ(t.to_seconds(), 0.25);
}

TEST(TimePoint, ToString) {
  EXPECT_EQ((TimePoint::epoch() + Duration::milliseconds(12500)).to_string(),
            "t=12.500s");
}

// Property sweep: round-tripping through seconds loses < 1 ns.
class DurationRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DurationRoundTrip, SecondsRoundTrip) {
  const Duration d = Duration::nanoseconds(GetParam());
  const Duration back = Duration::from_seconds(d.to_seconds());
  EXPECT_LE((back - d).abs().ns(), 1) << "ns=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DurationRoundTrip,
                         ::testing::Values(0, 1, -1, 999, 1'000'000,
                                           123'456'789, -987'654'321,
                                           3'600'000'000'000LL,
                                           -3'600'000'000'000LL));

}  // namespace
}  // namespace mntp::core
