#include "obs/trace_event.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/time.h"
#include "obs/report.h"
#include "obs/telemetry.h"

namespace mntp::obs {
namespace {

using core::Duration;
using core::TimePoint;

TraceEvent make_event(std::int64_t t_ns, std::string name = "ping",
                      std::vector<Field> fields = {}) {
  return TraceEvent{.t = TimePoint::from_ns(t_ns),
                    .category = "test",
                    .name = std::move(name),
                    .fields = std::move(fields)};
}

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonlLine, ExactShapeAndFieldTypes) {
  const TraceEvent e = make_event(
      1500000000, "round",
      {{"outcome", std::string("accepted")},
       {"n", std::int64_t{3}},
       {"offset_ms", 1.5},
       {"forced", false}});
  EXPECT_EQ(to_jsonl_line(e),
            "{\"type\":\"event\",\"t_ns\":1500000000,\"category\":\"test\","
            "\"name\":\"round\",\"fields\":{\"outcome\":\"accepted\","
            "\"n\":3,\"offset_ms\":1.5,\"forced\":false}}");
}

TEST(JsonlLine, EmptyFieldsAndNonFiniteNumbers) {
  EXPECT_EQ(to_jsonl_line(make_event(0)),
            "{\"type\":\"event\",\"t_ns\":0,\"category\":\"test\","
            "\"name\":\"ping\",\"fields\":{}}");
  const TraceEvent inf_event =
      make_event(1, "x", {{"v", std::numeric_limits<double>::infinity()}});
  // JSON has no inf; the exporter must not emit an invalid token.
  EXPECT_NE(to_jsonl_line(inf_event).find("\"v\":null"), std::string::npos);
}

TEST(CsvLine, FlatRendering) {
  const TraceEvent e =
      make_event(42, "tick", {{"k", std::int64_t{7}}, {"s", std::string("v")}});
  EXPECT_EQ(to_csv_line(e), "42,test,tick,\"k=7;s=v\"");
}

TEST(RingBufferSink, EvictsOldestKeepsTotals) {
  RingBufferSink sink(3);
  for (std::int64_t i = 0; i < 5; ++i) sink.on_event(make_event(i));
  EXPECT_EQ(sink.total_events(), 5u);
  EXPECT_EQ(sink.evicted(), 2u);
  ASSERT_EQ(sink.events().size(), 3u);
  // Oldest first, events 0 and 1 evicted.
  EXPECT_EQ(sink.events()[0].t.ns(), 2);
  EXPECT_EQ(sink.events()[2].t.ns(), 4);
  sink.clear();
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_EQ(sink.events().size(), 0u);
}

TEST(Telemetry, TracingReflectsSinks) {
  Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  RingBufferSink sink;
  tel.add_sink(&sink);
  EXPECT_TRUE(tel.tracing());
  tel.remove_sink(&sink);
  EXPECT_FALSE(tel.tracing());
}

TEST(Telemetry, EventFansOutToEverySink) {
  Telemetry tel;
  RingBufferSink a, b;
  tel.add_sink(&a);
  tel.add_sink(&b);
  tel.event(TimePoint::from_ns(7), "cat", "name", {{"k", std::int64_t{1}}});
  ASSERT_EQ(a.events().size(), 1u);
  ASSERT_EQ(b.events().size(), 1u);
  EXPECT_EQ(a.events()[0].category, "cat");
  EXPECT_EQ(a.events()[0].fields[0].key, "k");
}

TEST(Telemetry, DisabledDropsEvents) {
  Telemetry tel;
  RingBufferSink sink;
  tel.add_sink(&sink);
  tel.set_enabled(false);
  tel.event(TimePoint::from_ns(1), "cat", "dropped");
  EXPECT_EQ(sink.events().size(), 0u);
  // Metric records are disabled by the same switch.
  Counter* c = tel.metrics().counter("c");
  c->inc();
  EXPECT_EQ(c->value(), 0u);
  tel.set_enabled(true);
  tel.event(TimePoint::from_ns(2), "cat", "kept");
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(ScopedTelemetry, SwapsAndRestoresGlobal) {
  Telemetry& before = Telemetry::global();
  {
    Telemetry scoped;
    ScopedTelemetry scope(scoped);
    EXPECT_EQ(&Telemetry::global(), &scoped);
    {
      Telemetry nested;
      ScopedTelemetry inner(nested);
      EXPECT_EQ(&Telemetry::global(), &nested);
    }
    EXPECT_EQ(&Telemetry::global(), &scoped);
  }
  EXPECT_EQ(&Telemetry::global(), &before);
}

TEST(JsonlTraceSink, OneLinePerEvent) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.on_event(make_event(1));
  sink.on_event(make_event(2));
  sink.flush();
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_EQ(text.rfind("{\"type\":\"event\",\"t_ns\":1,", 0), 0u);
}

TEST(SpanTimer, RecordsWallAndSimDurations) {
  Telemetry tel;
  {
    SpanTimer span(tel, "test.span", TimePoint::epoch());
    span.finish(TimePoint::epoch() + Duration::seconds(2));
  }
  const auto snaps = tel.metrics().snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].name, "test.span.sim_ms");
  EXPECT_EQ(snaps[0].count, 1u);
  EXPECT_DOUBLE_EQ(snaps[0].sum, 2000.0);  // 2 s of simulated time, in ms
  EXPECT_EQ(snaps[1].name, "test.span.wall_us");
  EXPECT_EQ(snaps[1].count, 1u);
  EXPECT_GE(snaps[1].sum, 0.0);
}

TEST(RunReport, MetaCountsMatchBody) {
  Telemetry tel;
  RingBufferSink trace;
  tel.add_sink(&trace);
  tel.metrics().counter("a")->inc(5);
  tel.metrics().gauge("b")->set(1.0);
  tel.metrics().histogram("c")->record(3.0);
  tel.event(TimePoint::from_ns(10), "test", "first");
  tel.event(TimePoint::from_ns(20), "test", "second");

  std::ostringstream out;
  write_run_report(out, tel, &trace,
                   ReportOptions{.run_name = "unit",
                                 .sim_end = TimePoint::from_ns(99)});
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);

  ASSERT_EQ(lines.size(), 6u);  // meta + 3 metrics + 2 events
  EXPECT_EQ(lines[0],
            "{\"type\":\"meta\",\"schema_version\":1,\"run\":\"unit\","
            "\"sim_end_ns\":99,\"metric_count\":3,\"event_count\":2}");
  // Metrics first (name-sorted), then events in sim-time order.
  EXPECT_NE(lines[1].find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"t_ns\":10"), std::string::npos);
  EXPECT_NE(lines[5].find("\"t_ns\":20"), std::string::npos);
}

TEST(RunReport, HistogramLineHasBucketsWithInfTail) {
  Telemetry tel;
  Histogram* h = tel.metrics().histogram(
      "lat", HistogramOptions{.bucket_bounds = {1.0, 2.0}});
  h->record(0.5);
  h->record(99.0);
  std::ostringstream out;
  write_run_report(out, tel, nullptr, ReportOptions{});
  const std::string text = out.str();
  EXPECT_NE(text.find("\"buckets\":[{\"le\":1,\"count\":1},"
                      "{\"le\":2,\"count\":0},{\"le\":\"inf\",\"count\":1}]"),
            std::string::npos);
}

TEST(RunReport, EventsKeepSimTimeOrder) {
  Telemetry tel;
  RingBufferSink trace(4);
  tel.add_sink(&trace);
  // Monotone emission (the simulation dispatches in timestamp order);
  // overflow evicts from the front, preserving order.
  for (std::int64_t t = 0; t < 10; ++t) {
    tel.event(TimePoint::from_ns(t), "test", "tick");
  }
  std::ostringstream out;
  write_run_report(out, tel, &trace, ReportOptions{});
  std::istringstream in(out.str());
  std::string line;
  std::int64_t last = -1;
  std::size_t events = 0;
  while (std::getline(in, line)) {
    const auto pos = line.find("\"t_ns\":");
    if (pos == std::string::npos || line.find("\"type\":\"event\"") == std::string::npos) {
      continue;
    }
    const std::int64_t t = std::stoll(line.substr(pos + 7));
    EXPECT_GT(t, last);
    last = t;
    ++events;
  }
  EXPECT_EQ(events, 4u);
  EXPECT_EQ(last, 9);
}

}  // namespace
}  // namespace mntp::obs
